"""The static speculation-outcome bounds tier (repro.lint.bounds):
per-kernel reports, the L9/L10 info rules and the byte-stable
``st2-lint bounds --json`` export."""

import io
import json
from pathlib import Path

import pytest

from repro.lint.bounds import (CLASS_KEYS, bounds_for_kernel,
                               module_bounds_from_source,
                               trivial_report)
from repro.lint.cli import bounds_main

DATA = Path(__file__).parent / "data"
KERNEL = DATA / "golden_kernel.py"

PINNED_IADD = '''import numpy as np


def pinned(k, data, out):
    x = k.iadd(3, 5)
    for i in k.range(4):
        x = k.iadd(x, 0)
'''

ROW_FREE = '''import numpy as np


def rowfree(k, data, out):
    t = k.thread_id()
    for i in k.range(0):
        t = k.iadd(t, 1)
'''

SITE_FREE = '''import numpy as np


def helper(k, key):
    return k.lt(key, 8)
'''

BAILING = '''import numpy as np


def bailer(k, data, out):
    bump = lambda v: k.iadd(v, 1)
    k.st_global(out, k.thread_id(), bump(k.thread_id()))
'''


class TestKernelReports:
    def test_pinned_kernel_is_tight(self):
        rep = module_bounds_from_source(PINNED_IADD)["pinned"]
        assert not rep.trivial
        assert (rep.rows.lo, rep.rows.hi) == (9, 9)
        cls = rep.bounds_for("static0", False)
        assert (cls.mis.lo, cls.mis.hi) == (0.0, 0.0)
        assert (cls.over.lo, cls.over.hi) == (0.0, 0.0)
        assert cls.saved.lo is not None and cls.saved.lo >= 0.0

    def test_row_free_kernel_saves_nothing(self):
        rep = module_bounds_from_source(ROW_FREE)["rowfree"]
        assert not rep.trivial
        assert rep.sites               # the adder site exists...
        assert (rep.rows.lo, rep.rows.hi) == (0, 0)   # ...dead
        for key in CLASS_KEYS:
            cls = rep.classes[key]
            assert (cls.saved.lo, cls.saved.hi) == (0.0, 0.0)
            assert (cls.mis.lo, cls.mis.hi) == (0.0, 0.0)

    def test_bail_degrades_to_trivial(self):
        rep = module_bounds_from_source(BAILING)["bailer"]
        assert rep.trivial and rep.bail_reason
        template = trivial_report(rep.function, rep.path, rep.lineno,
                                  rep.bail_reason)
        assert rep.classes == template.classes
        assert rep.rows == template.rows and not rep.sites

    def test_affine_chain_regression(self):
        """Pinned numbers for the suite kernel the CI sweep prunes:
        affineChain's carries are all provably zero, so static1
        mispredicts every pinned row (96 of 97; the LEA row is
        indeterminate)."""
        rep = bounds_for_kernel("affineChain")
        assert rep is not None and not rep.trivial
        assert (rep.rows.lo, rep.rows.hi) == (97, 97)
        s1 = rep.bounds_for("static1", False)
        assert s1.mis.lo == pytest.approx(96 / 97)
        assert s1.mis.hi == 1.0
        s0 = rep.bounds_for("static0", False)
        assert s0.mis.lo == 0.0
        assert s0.mis.hi == pytest.approx(1 / 97)


class TestInfoRules:
    def run_lint(self, src, tmp_path, *flags):
        from repro.lint.cli import main
        mod = tmp_path / "m.py"
        mod.write_text(src)
        out = io.StringIO()
        code = main([str(mod), "--show-info", *flags], out=out)
        return code, out.getvalue()

    def test_l9_fires_on_row_free_kernel(self, tmp_path):
        code, text = self.run_lint(ROW_FREE, tmp_path)
        assert code == 0          # info-only: never the exit code
        assert "L9" in text and "never profitable" in text

    def test_l9_silent_on_site_free_helper(self, tmp_path):
        """A function with no adder site at all is vacuously
        unprofitable — L9 must not spam every non-emitting helper."""
        code, text = self.run_lint(SITE_FREE, tmp_path)
        assert code == 0
        assert "L9" not in text

    def test_l10_fires_on_pinned_kernel(self, tmp_path):
        code, text = self.run_lint(PINNED_IADD, tmp_path)
        assert code == 0
        assert "L10" in text and "always profitable" in text

    def test_info_rules_hidden_without_flag(self, tmp_path):
        from repro.lint.cli import main
        mod = tmp_path / "m.py"
        mod.write_text(PINNED_IADD)
        out = io.StringIO()
        assert main([str(mod)], out=out) == 0
        assert "L10" not in out.getvalue()
        assert "clean" in out.getvalue()


class TestBoundsCli:
    def test_always_exits_zero(self):
        out = io.StringIO()
        assert bounds_main([str(KERNEL)], out) == 0
        assert "kernel(s)" in out.getvalue()

    def test_json_shape(self):
        out = io.StringIO()
        assert bounds_main([str(KERNEL), "--json"], out) == 0
        doc = json.loads(out.getvalue())
        assert doc["version"] == 1
        assert doc["kernels"] >= 2      # golden_kernel + golden_bailer
        [module] = doc["modules"].values()
        rec = module["golden_kernel"]
        assert not rec["trivial"]
        assert sorted(rec["bounds"]) == sorted(CLASS_KEYS)
        for cls in rec["bounds"].values():
            assert set(cls) == {"misprediction_rate",
                                "recompute_per_row", "perf_overhead",
                                "energy_saved"}
        assert module["golden_bailer"]["trivial"]
        assert module["golden_bailer"]["bail_reason"]

    def test_json_byte_stable_across_path_shuffles(self, tmp_path):
        """Same file set, any argv order: identical bytes."""
        a = tmp_path / "a.py"
        b = tmp_path / "b.py"
        a.write_text(PINNED_IADD)
        b.write_text(ROW_FREE)
        outputs = []
        for paths in ([str(a), str(b)], [str(b), str(a)],
                      [str(b), str(a), str(b)]):
            out = io.StringIO()
            assert bounds_main([*paths, "--json"], out) == 0
            outputs.append(out.getvalue())
        assert outputs[0] == outputs[1] == outputs[2]
