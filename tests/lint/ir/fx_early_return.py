"""IR-lowering fixture: early ``return`` inside a divergent branch.

The return seals its block straight to the exit; statements after it
in the same branch are unreachable, while the barrier on the
fall-through path stays reachable (at where-depth 0, so it is clean).
"""


def early_return_kernel(k, out, n):
    t = k.thread_id()
    if n == 0:
        k.st_global(out, t, t)
        return
    x = k.iadd(t, 1)
    k.syncthreads()
    k.st_global(out, t, x)


def dead_barrier_kernel(k, out, n):
    t = k.thread_id()
    if True:
        k.st_global(out, t, t)
        return
    with k.where(k.lt(t, n)):
        k.syncthreads()
