"""The ``st2-run`` CLI and the JSONL manifest format."""

from __future__ import annotations

import json

import pytest

from repro.kernels.suite import KERNEL_NAMES, resolve_kernels
from repro.runner import read_manifest, resolve_configs, write_manifest
from repro.runner.cli import main
from repro.runner.units import ENGINES


def test_resolve_kernels_groups_and_lists():
    assert resolve_kernels("all") == KERNEL_NAMES
    assert resolve_kernels("smoke") == ("binomial", "pathfinder",
                                        "qrng_K2")
    assert resolve_kernels("qrng_K2,binomial") == ("qrng_K2",
                                                   "binomial")
    assert resolve_kernels(["smoke", "binomial"]) == \
        ("binomial", "pathfinder", "qrng_K2")     # deduplicated
    with pytest.raises(KeyError):
        resolve_kernels("no_such_kernel")


def test_resolve_configs_aliases_and_names():
    (st2,) = resolve_configs("st2")
    assert st2.name == "Ltid+Prev+ModPC4+Peek"
    ladder = resolve_configs("ladder")
    assert len(ladder) == 12
    assert len(resolve_configs("st2,Ltid+Prev+ModPC4+Peek")) == 1
    with pytest.raises(KeyError):
        resolve_configs("no_such_config")


def test_cli_writes_manifest(tmp_path, capsys):
    out = tmp_path / "run" / "manifest.jsonl"
    rc = main(["--kernels", "qrng_K2", "--workers", "1", "--no-aux",
               "--cache-dir", str(tmp_path / "cache"),
               "--out", str(out)])
    assert rc == 0
    header, units = read_manifest(out)
    assert header["kernels"] == ["qrng_K2"]
    assert header["configs"] == ["Ltid+Prev+ModPC4+Peek"]
    assert header["n_units"] == len(units) == 1
    assert header["cache_misses"] == 1
    assert "code_version" in header
    unit = units[0]
    assert unit["cached"] is False
    assert unit["trace_rows"] > 0
    assert unit["trace_bytes"] > 0
    assert unit["wall_time_s"] > 0
    assert 0 <= unit["metrics"]["misprediction_rate"] <= 1
    captured = capsys.readouterr().out
    assert "st2-run results" in captured
    assert "qrng_K2" in captured

    # warm rerun: all hits, identical numbers
    rc = main(["--kernels", "qrng_K2", "--workers", "1", "--no-aux",
               "--cache-dir", str(tmp_path / "cache"),
               "--out", str(out), "--quiet"])
    assert rc == 0
    header2, units2 = read_manifest(out)
    assert header2["cache_hits"] == 1
    assert units2[0]["cached"] is True
    assert units2[0]["metrics"] == unit["metrics"]


def test_cli_trace_store_round_trip(tmp_path):
    """--trace-store: cold pass captures once per kernel; warm pass
    re-executes nothing and reproduces identical numbers."""
    from repro.runner.units import results_equal
    out = tmp_path / "m.jsonl"
    args = ["--kernels", "qrng_K2,pathfinder", "--configs", "st2,prev",
            "--workers", "1", "--no-aux", "--scale", "0.2",
            "--cache-dir", str(tmp_path / "cache"),
            "--trace-store", str(tmp_path / "traces"),
            "--out", str(out), "--quiet"]
    assert main(args) == 0
    header, units = read_manifest(out)
    assert header["trace_store"] == str(tmp_path / "traces")
    assert header["traces_total"] == 2          # kernels, not configs
    assert header["traces_captured"] == 2
    assert len(units) == 4
    assert all(u["trace_cache_hit"] is False for u in units)

    # bypass the result cache so every unit re-evaluates, then check
    # the store absorbed all functional execution
    assert main(args + ["--no-cache"]) == 0
    header2, units2 = read_manifest(out)
    assert header2["traces_captured"] == 0
    assert header2["trace_store_hits"] == 2
    assert all(u["trace_cache_hit"] is True for u in units2)
    for a, b in zip(units, units2):
        assert results_equal(a, b)


def test_cli_list_mode(tmp_path, capsys):
    rc = main(["--kernels", "smoke", "--list"])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.count("Ltid+Prev+ModPC4+Peek") == 3


def test_cli_rejects_unknown_kernel(capsys):
    rc = main(["--kernels", "bogus"])
    assert rc == 2
    assert "unknown kernel" in capsys.readouterr().err


def test_cli_rejects_empty_work_list(capsys):
    rc = main(["--kernels", ""])
    assert rc == 2
    assert "no work units" in capsys.readouterr().err


def test_manifest_round_trip(tmp_path):
    results = [{"kernel": "k", "metrics": {"x": float("nan")},
                "cached": False}]
    path = write_manifest(tmp_path / "m.jsonl", results,
                          meta={"workers": 3})
    header, units = read_manifest(path)
    assert header["workers"] == 3
    assert units[0]["kernel"] == "k"
    assert units[0]["metrics"]["x"] != units[0]["metrics"]["x"]  # NaN


def test_manifest_rejects_bad_records(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text(json.dumps({"type": "run", "manifest_version": 99,
                                "n_units": 0}) + "\n")
    with pytest.raises(ValueError):
        read_manifest(path)
    path.write_text(json.dumps({"type": "unit"}) + "\n")
    with pytest.raises(ValueError):
        read_manifest(path)


class TestEngineCliContract:
    """``--engine`` help and choices must stay in sync with
    :data:`repro.runner.units.ENGINES` — the same tuple gates
    ``RunOptions`` and ``execute_unit``."""

    @pytest.fixture(scope="class")
    def help_text(self):
        from repro.runner.cli import build_parser
        return build_parser().format_help()

    @pytest.mark.parametrize("engine", ENGINES)
    def test_choice_documented_in_help(self, help_text, engine):
        assert f"'{engine}'" in help_text, engine

    @pytest.mark.parametrize("engine", ENGINES)
    def test_choice_parses(self, engine):
        from repro.runner.cli import build_parser
        args = build_parser().parse_args(["--engine", engine])
        assert args.engine == engine

    def test_default_is_auto(self):
        from repro.runner.cli import build_parser
        assert build_parser().parse_args([]).engine == "auto"

    def test_unknown_choice_rejected(self, capsys):
        with pytest.raises(SystemExit):
            from repro.runner.cli import build_parser
            build_parser().parse_args(["--engine", "turbo"])
        assert "invalid choice" in capsys.readouterr().err

    def test_engine_recorded_in_manifest_meta(self, tmp_path):
        out = tmp_path / "m.jsonl"
        rc = main(["--kernels", "qrng_K2", "--workers", "1",
                   "--no-aux", "--no-cache", "--engine", "vec",
                   "--quiet", "--out", str(out)])
        assert rc == 0
        header, units = read_manifest(out)
        assert header["engine"] == "vec"
        assert units[0]["engine"] == "vec"


def test_module_entry_point():
    import repro.runner.__main__  # noqa: F401  (importable entry point)
