"""Cycle-approximate timing model behaviour."""

import numpy as np
import pytest

from repro.core.predictors import run_speculation
from repro.core.speculation import ST2_DESIGN
from repro.kernels import pathfinder
from repro.sim.config import LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher
from repro.sim.pipeline import (compare_baseline_st2, simulate_sm,
                                warp_misprediction_map)


@pytest.fixture(scope="module")
def small_run():
    return pathfinder.prepare(scale=0.3, seed=1).run()


class TestSimulateSm:
    def test_nonzero_makespan(self, small_run):
        t = simulate_sm(small_run.insts, small_run.launch)
        assert t.cycles > 0
        assert t.instructions > 0
        assert t.total_cycles == t.cycles * t.waves

    def test_duration_from_clock(self, small_run):
        t = simulate_sm(small_run.insts, small_run.launch)
        expect = t.total_cycles / (TITAN_V.core_clock_ghz * 1e9)
        assert t.duration_s() == pytest.approx(expect)

    def test_deterministic(self, small_run):
        t1 = simulate_sm(small_run.insts, small_run.launch)
        t2 = simulate_sm(small_run.insts, small_run.launch)
        assert t1.total_cycles == t2.total_cycles

    def test_more_work_takes_longer(self):
        def light(k):
            k.iadd(1, 1)

        def heavy(k):
            for _i in k.range(64):
                k.iadd(1, 1)

        launcher = GridLauncher()
        r_light = launcher.run(light, LaunchConfig(1, 128))
        r_heavy = launcher.run(heavy, LaunchConfig(1, 128))
        t_light = simulate_sm(r_light.insts, r_light.launch)
        t_heavy = simulate_sm(r_heavy.insts, r_heavy.launch)
        assert t_heavy.cycles > t_light.cycles

    def test_waves_scale_with_grid(self):
        def kernel(k):
            k.iadd(1, 1)

        launcher = GridLauncher()
        # 16 blocks of 128 threads fit one SM; 80 SMs -> 1281 blocks
        # need a second wave
        big = launcher.run(kernel, LaunchConfig(2000, 128))
        t = simulate_sm(big.insts, big.launch)
        assert t.waves == 2


class TestST2Stalls:
    def test_mispredictions_never_speed_up_fu_time(self, small_run):
        res = run_speculation(small_run.trace, ST2_DESIGN)
        base, st2 = compare_baseline_st2(small_run, res.mispredicted)
        assert st2.extra_recompute_insts > 0
        # makespans may jitter slightly from scheduling, but the ST2
        # run can never be meaningfully faster
        assert st2.total_cycles >= base.total_cycles * 0.95

    def test_no_mispredictions_means_identical_timing(self, small_run):
        none = np.zeros(len(small_run.trace), dtype=bool)
        base, st2 = compare_baseline_st2(small_run, none)
        assert base.total_cycles == st2.total_cycles
        assert st2.extra_recompute_insts == 0

    def test_all_mispredicted_slower_than_none(self, small_run):
        every = np.ones(len(small_run.trace), dtype=bool)
        base, st2 = compare_baseline_st2(small_run, every)
        assert st2.total_cycles > base.total_cycles


class TestWarpMispredictionMap:
    def test_fraction_aggregation(self, small_run):
        miss = np.zeros(len(small_run.trace), dtype=bool)
        miss[:5] = True
        m = warp_misprediction_map(small_run.trace, miss)
        assert len(m) >= 1
        assert all(0 < f <= 1 for f in m.values())

    def test_empty(self, small_run):
        m = warp_misprediction_map(
            small_run.trace, np.zeros(len(small_run.trace), bool))
        assert m == {}

    def test_full_warp_miss_fraction_one(self):
        def kernel(k):
            k.isub(0, 1)   # every lane: 0 - 1 -> borrow everywhere

        launcher = GridLauncher()
        run = launcher.run(kernel, LaunchConfig(1, 32))
        miss = np.ones(len(run.trace), dtype=bool)
        m = warp_misprediction_map(run.trace, miss)
        assert set(m.values()) == {1.0}
