"""Opt-in runtime sanitizer for DSL kernel executions.

Two independent probes, both off by default (zero work on the hot path)
and enabled per launch with ``GridLauncher(sanitize=True)`` or globally
with ``ST2_SANITIZE=1``:

* **Shared-memory race detection** — every shared buffer gets a shadow
  array tracking, per cell, the last writing warp and the *barrier
  epoch* of that write (``syncthreads`` advances the epoch).  A load
  that observes a cell written by a *different* warp in the *current*
  epoch is a cross-warp write→read race: on real hardware the warps are
  not ordered, so the value is undefined even though this
  warp-synchronous model happens to produce one deterministically.
  Read→write and write→write cross-warp conflicts in one epoch are
  caught the same way, as is ``syncthreads`` under a divergent mask
  (deadlock on hardware).

* **Trace-coverage probe** — DSL ops return their vectors as
  :class:`DeviceVector` views whose ``+``/``-`` report the call site
  instead of silently bypassing the DSL emit path.  Raw numpy
  arithmetic on device vectors computes the right *values* but records
  no :class:`~repro.sim.trace.AddTrace` rows, undercounting adder
  energy and misprediction statistics — the runtime twin of lint rule
  L1.  Sites carrying a ``# st2-lint: disable=L1`` comment are
  intentional and not reported.

Shadow state costs O(shared cells) memory and one fancy-indexing pass
per shared access — acceptable for debugging runs, which is why the
default stays off.
"""

from __future__ import annotations

import linecache
import os
import sys

import numpy as np

from repro.lint.suppress import line_suppresses

#: Environment variable that flips the launcher default to sanitizing.
ENV_SANITIZE = "ST2_SANITIZE"

#: Reader/writer shadow sentinel: cell untouched this launch.
_NOBODY = -1
#: Reader shadow sentinel: cell read by more than one warp this epoch.
_MANY = -2

#: ufuncs that would have produced AddTrace rows had they gone through
#: the DSL (adder-class arithmetic).
_ADDER_UFUNCS = frozenset({np.add, np.subtract})

_PACKAGE_DIRS = (os.path.join("repro", "sim"),
                 os.path.join("repro", "core"))


def env_sanitize_default() -> bool:
    """Resolve the ``ST2_SANITIZE`` environment default."""
    return os.environ.get(ENV_SANITIZE, "").strip().lower() in (
        "1", "true", "on", "yes")


class SanitizerError(RuntimeError):
    """Base class for all dynamic-sanitizer findings."""


class SharedMemoryRaceError(SanitizerError):
    """Cross-warp shared-memory conflict without an intervening barrier."""


class BarrierDivergenceError(SanitizerError):
    """``syncthreads`` reached under a divergent mask (hardware deadlock)."""


class UntracedArithmeticError(SanitizerError):
    """Raw numpy arithmetic on device vectors bypassed the DSL emit path."""


def _kernel_frame() -> tuple:
    """(file, line) of the innermost stack frame outside the simulator.

    Walks out of :mod:`repro.sim` / :mod:`repro.core` so findings point
    at kernel code, not at the DSL helper that triggered the check.
    """
    frame = sys._getframe(2)
    while frame is not None:
        fname = frame.f_code.co_filename
        if not any(d in fname for d in _PACKAGE_DIRS):
            return fname, frame.f_lineno
        frame = frame.f_back
    return "<unknown>", 0


class DeviceVector(np.ndarray):
    """ndarray view marking a value as device-resident (sanitize mode).

    Adder-class ufuncs applied directly to these views are reported to
    the owning sanitizer; all results are demoted to plain ndarrays so
    DSL-internal math (which always converts through ``asarray``) never
    self-reports.
    """

    _san = None

    def __array_finalize__(self, obj):
        self._san = getattr(obj, "_san", None)

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        base = tuple(x.view(np.ndarray) if isinstance(x, DeviceVector)
                     else x for x in inputs)
        out = kwargs.get("out")
        if out is not None:
            kwargs["out"] = tuple(
                x.view(np.ndarray) if isinstance(x, DeviceVector) else x
                for x in out)
        if (method == "__call__" and ufunc in _ADDER_UFUNCS
                and self._san is not None):
            self._san.record_untraced(ufunc.__name__, _kernel_frame())
        return getattr(ufunc, method)(*base, **kwargs)


class _Shadow:
    """Per-cell access metadata of one shared buffer."""

    def __init__(self, n_cells: int):
        self.writer = np.full(n_cells, _NOBODY, dtype=np.int32)
        self.write_epoch = np.full(n_cells, _NOBODY, dtype=np.int64)
        self.reader = np.full(n_cells, _NOBODY, dtype=np.int32)
        self.read_epoch = np.full(n_cells, _NOBODY, dtype=np.int64)
        # last write was an atomic RMW (atomics serialise: they never
        # race with each other, only with plain accesses)
        self.atomic = np.zeros(n_cells, dtype=bool)


class KernelSanitizer:
    """Shadow state and findings for one kernel launch."""

    def __init__(self, kernel_name: str = ""):
        self.kernel_name = kernel_name
        self.epoch = 0
        self._shadows: dict = {}
        # (file, line, ufunc name) -> occurrence count
        self.untraced_sites: dict = {}

    # -- block / barrier lifecycle ------------------------------------

    def begin_block(self, block_id: int) -> None:
        """Shared memory is block-local: drop the previous block's state."""
        self.epoch = 0
        self._shadows.clear()

    def on_barrier(self, mask: np.ndarray) -> None:
        if not mask.any():
            # no thread reaches the barrier — on hardware the BAR
            # simply never executes (the legal uniform-branch pattern
            # ``if (blockIdx.x == 0) __syncthreads()``).  Nothing to
            # check, and the epoch must NOT advance: an unexecuted
            # barrier orders nothing, so advancing would hide real
            # cross-warp races spanning it.
            return
        if not mask.all():
            fname, line = _kernel_frame()
            raise BarrierDivergenceError(
                f"{fname}:{line}: syncthreads under a divergent mask "
                f"({int(mask.sum())}/{mask.size} threads active) — "
                f"inactive threads never reach the barrier on hardware "
                f"(kernel {self.kernel_name!r})")
        self.epoch += 1

    # -- shared-memory epoch tracking ---------------------------------

    def on_shared_alloc(self, buf) -> None:
        self._shadows[id(buf)] = _Shadow(buf.data.size)

    def _shadow(self, buf) -> _Shadow:
        sh = self._shadows.get(id(buf))
        if sh is None:          # buffer from an outer scope (rare)
            sh = _Shadow(buf.data.size)
            self._shadows[id(buf)] = sh
        return sh

    def _race(self, kind: str, buf, cell: int, war_a: int, war_b: int):
        fname, line = _kernel_frame()
        raise SharedMemoryRaceError(
            f"{fname}:{line}: cross-warp shared-memory {kind} race on "
            f"{buf.name}[{cell}]: warp {war_a} then warp {war_b} in the "
            f"same barrier interval (epoch {self.epoch}) — insert "
            f"syncthreads between them (kernel {self.kernel_name!r})")

    def on_shared_load(self, buf, idx: np.ndarray, mask: np.ndarray,
                       warp_in_block: np.ndarray) -> None:
        if not mask.any():
            return
        sh = self._shadow(buf)
        cells = np.asarray(idx)[mask]
        warps = warp_in_block[mask].astype(np.int32)
        fresh = sh.write_epoch[cells] == self.epoch
        foreign = fresh & (sh.writer[cells] != warps)
        if foreign.any():
            i = int(np.argmax(foreign))
            self._race("write→read", buf, int(cells[i]),
                       int(sh.writer[cells[i]]), int(warps[i]))
        for w in np.unique(warps):
            cw = cells[warps == w]
            seen = sh.read_epoch[cw] == self.epoch
            other = seen & (sh.reader[cw] != w)
            sh.reader[cw] = np.where(other, _MANY, w)
            sh.read_epoch[cw] = self.epoch

    def on_shared_store(self, buf, idx: np.ndarray, mask: np.ndarray,
                        warp_in_block: np.ndarray,
                        atomic: bool = False) -> None:
        if not mask.any():
            return
        sh = self._shadow(buf)
        cells = np.asarray(idx)[mask]
        warps = warp_in_block[mask].astype(np.int32)
        read_fresh = sh.read_epoch[cells] == self.epoch
        raced_read = read_fresh & ((sh.reader[cells] == _MANY)
                                   | (sh.reader[cells] != warps))
        if raced_read.any():
            i = int(np.argmax(raced_read))
            self._race("read→write", buf, int(cells[i]),
                       int(sh.reader[cells[i]]), int(warps[i]))
        for w in np.unique(warps):
            cw = cells[warps == w]
            other = (sh.write_epoch[cw] == self.epoch) \
                & (sh.writer[cw] != _NOBODY) & (sh.writer[cw] != w)
            # atomic-vs-atomic collisions serialise in the RMW unit;
            # everything else is a write→write race
            clash = other & ~sh.atomic[cw] if atomic else other
            if clash.any():
                i = int(np.argmax(clash))
                self._race("write→write", buf, int(cw[i]),
                           int(sh.writer[cw[i]]), int(w))
            if atomic:
                # a cell updated by several warps' atomics has no single
                # owner: any same-epoch plain access still conflicts
                sh.writer[cw] = np.where(other, _MANY, w)
            else:
                sh.writer[cw] = w
            sh.write_epoch[cw] = self.epoch
            sh.atomic[cw] = atomic

    # -- trace-coverage probe -----------------------------------------

    def wrap_value(self, value):
        """Mark a DSL-returned vector as device-resident."""
        if isinstance(value, np.ndarray):
            view = value.view(DeviceVector)
            view._san = self
            return view
        return value

    def record_untraced(self, op_name: str, site: tuple) -> None:
        fname, line = site
        key = (fname, line, op_name)
        self.untraced_sites[key] = self.untraced_sites.get(key, 0) + 1

    def unsuppressed_untraced(self) -> list:
        """Probe findings minus ``st2-lint: disable=L1``-annotated sites."""
        findings = []
        for (fname, line, op), count in sorted(self.untraced_sites.items()):
            text = linecache.getline(fname, line)
            if line_suppresses(text, "L1"):
                continue
            findings.append((fname, line, op, count))
        return findings

    def finish(self) -> None:
        """Raise if the launch performed unsuppressed untraced arithmetic."""
        findings = self.unsuppressed_untraced()
        if not findings:
            return
        lines = [
            f"  {fname}:{line}: numpy {op} on a device vector "
            f"(×{count}) bypassed the DSL — no AddTrace rows "
            f"recorded" for fname, line, op, count in findings]
        raise UntracedArithmeticError(
            f"kernel {self.kernel_name!r}: {len(findings)} untraced "
            "arithmetic site(s) (use the DSL op, or annotate the line "
            "with `# st2-lint: disable=L1` and a justification):\n"
            + "\n".join(lines))
