"""Related-work adder baselines (paper Section VII).

The paper positions ST2 against two families:

* **Approximate speculative adders** — ACA [Kahng & Kang, DAC'12] and
  ETAII-style segmented adders [Chen ICCD'17, Hu DATE'15]: every sum bit
  is computed from a bounded window of lower-order bits, so carries
  longer than the window produce *wrong results* with no detection or
  correction.  We model the classic ACA: sum bit ``i`` sees only the
  ``window`` bits below it.
* **VLSA** [Verma, Brisk & Ienne, DATE'08] — speculates that no carry
  chain exceeds a lookahead window, detects violations at the end of
  the nominal cycle and takes extra cycles to patch, so results are
  always correct but latency is variable (like ST2, but with
  operand-local speculation instead of history).

These models let the benchmarks reproduce the qualitative trade-off the
paper draws: approximate adders are cheap but silently wrong on long
carry chains; VLSA is correct but mispredicts whenever a chain exceeds
its window; ST2's history-based speculation beats both on real value
streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import bitops
from repro.core.slices import AdderGeometry

U64 = np.uint64


@dataclass
class ApproximateOutcome:
    """Result of an approximate (uncorrected) addition."""

    result: np.ndarray          # possibly wrong sums
    exact: np.ndarray           # ground truth
    erroneous: np.ndarray       # per-lane bool
    error_magnitude: np.ndarray  # |result - exact| (wrapped domain)

    @property
    def error_rate(self) -> float:
        return float(self.erroneous.mean()) if len(self.erroneous) \
            else 0.0

    @property
    def mean_relative_error(self) -> float:
        """Mean |error| / 2^width — the usual approximate-adder metric."""
        if not len(self.exact):
            return 0.0
        return float(self.error_magnitude.mean())


class AccuracyConfigurableAdder:
    """ACA: sum bit i uses only the ``window`` lower bits' carries.

    Carry into bit ``i`` is computed as if the carry chain started at
    bit ``i - window`` (carry-in 0 there); any true chain longer than the
    window is silently truncated — the canonical approximate-adder
    failure mode.
    """

    def __init__(self, geometry: AdderGeometry, window: int = 8):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.geometry = geometry
        self.window = window

    def add(self, a, b, cin: int = 0) -> ApproximateOutcome:
        geo = self.geometry
        a_u = bitops.to_unsigned(np.atleast_1d(a), geo.width)
        b_u = bitops.to_unsigned(np.atleast_1d(b), geo.width)
        exact = bitops.add_wrapped(a_u, b_u, geo.width, cin)

        # approximate carry into bit i: the carry that a window-limited
        # chain starting at max(i-window, 0) would deliver
        result = np.zeros_like(exact)
        width = geo.width
        w = self.window
        # compute sum bits in blocks: for bit i, evaluate the window
        # addition (a>>lo + b>>lo) and take its bit (i - lo)
        for i in range(width):
            lo = max(i - w, 0)
            local_cin = cin if lo == 0 else 0
            local = bitops.add_wrapped(
                a_u >> U64(lo), b_u >> U64(lo), width, local_cin)
            bit = (local >> U64(i - lo)) & U64(1)
            result |= bit << U64(i)

        erroneous = result != exact
        diff = np.where(result >= exact, result - exact, exact - result)
        # normalise to the value range
        magnitude = diff.astype(np.float64) / float(1 << geo.width) \
            if geo.width < 63 else diff.astype(np.float64) / 2.0**64
        return ApproximateOutcome(result=result, exact=exact,
                                  erroneous=erroneous,
                                  error_magnitude=magnitude)


class VLSAAdder:
    """VLSA: speculate 'no carry chain exceeds the window'; detect and
    repair violations with extra cycles (always correct)."""

    def __init__(self, geometry: AdderGeometry, window: int = 8):
        self.geometry = geometry
        self.window = window

    def add(self, a, b, cin: int = 0):
        """Returns ``(result, mispredicted, cycles)`` per lane."""
        geo = self.geometry
        a_u = bitops.to_unsigned(np.atleast_1d(a), geo.width)
        b_u = bitops.to_unsigned(np.atleast_1d(b), geo.width)
        result = bitops.add_wrapped(a_u, b_u, geo.width, cin)

        # a speculation violation occurs when some carry chain is
        # longer than the window: propagate runs of >= window bits that
        # actually receive a carry
        carries = bitops.carry_into_bits(a_u, b_u, geo.width, cin)
        propagate = (a_u ^ b_u) & U64(bitops.mask(geo.width))
        # run-length of propagate ending at each bit
        max_run_with_carry = np.zeros(len(a_u), dtype=np.int64)
        run_now = np.zeros(len(a_u), dtype=np.int64)
        for i in range(geo.width):
            p = ((propagate >> U64(i)) & U64(1)).astype(np.int64)
            run_now = (run_now + 1) * p
            carry_here = ((carries >> U64(i)) & U64(1)).astype(bool)
            max_run_with_carry = np.where(
                carry_here,
                np.maximum(max_run_with_carry, run_now),
                max_run_with_carry)
        mispredicted = max_run_with_carry >= self.window
        cycles = np.where(mispredicted, 2, 1)
        return result, mispredicted, cycles


def compare_on_stream(a, b, width: int = 64, window: int = 8,
                      cin: int = 0) -> dict:
    """Error/misprediction statistics of every adder family on one
    operand stream — the Related Work comparison in one call."""
    geo = AdderGeometry(width)
    aca = AccuracyConfigurableAdder(geo, window).add(a, b, cin)
    __, vlsa_miss, __ = VLSAAdder(geo, window).add(a, b, cin)
    return {
        "aca_error_rate": aca.error_rate,
        "aca_mean_relative_error": aca.mean_relative_error,
        "vlsa_misprediction_rate": float(vlsa_miss.mean()),
    }
