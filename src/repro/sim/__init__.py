"""GPU simulator substrate: configuration, kernel DSL, functional
execution, trace capture and the cycle-approximate timing pipeline.

Exports are lazy (PEP 562): importing :mod:`repro.sim` costs nothing
until a name is touched.
"""

from repro._lazy import lazy_attrs

_LAZY_EXPORTS = {
    "AddTrace": ("repro.sim.trace", "AddTrace"),
    "GPUConfig": ("repro.sim.config", "GPUConfig"),
    "GridLauncher": ("repro.sim.functional", "GridLauncher"),
    "InstStream": ("repro.sim.trace", "InstStream"),
    "KernelRun": ("repro.sim.functional", "KernelRun"),
    "LaunchConfig": ("repro.sim.config", "LaunchConfig"),
    "StoredRun": ("repro.sim.trace_store", "StoredRun"),
    "TITAN_V": ("repro.sim.config", "TITAN_V"),
    "TimingResult": ("repro.sim.pipeline", "TimingResult"),
    "TraceBundle": ("repro.sim.trace_io", "TraceBundle"),
    "TraceStore": ("repro.sim.trace_store", "TraceStore"),
    "compare_baseline_st2": ("repro.sim.pipeline",
                             "compare_baseline_st2"),
    "load_trace": ("repro.sim.trace_io", "load_trace"),
    "run_kernel": ("repro.sim.functional", "run_kernel"),
    "save_trace": ("repro.sim.trace_io", "save_trace"),
    "simulate_sm": ("repro.sim.pipeline", "simulate_sm"),
    "trace_key": ("repro.sim.trace_store", "trace_key"),
}

__all__ = sorted(_LAZY_EXPORTS)

__getattr__, __dir__ = lazy_attrs(__name__, globals(), _LAZY_EXPORTS)
