"""The paper's published numbers, as a single structured registry.

Every quantitative claim the reproduction targets lives here with its
source location in the paper, so benchmarks, the report and the
documentation all quote one canonical set (and a test keeps them
consistent with EXPERIMENTS.md's prose).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperClaim:
    """One published number."""

    key: str
    value: float
    unit: str           # "fraction" | "ratio" | "bytes" | "count" | ...
    source: str         # where in the paper
    note: str = ""


PAPER_CLAIMS = {
    c.key: c for c in (
        # abstract / headline
        PaperClaim("adder_power_saving", 0.70, "fraction", "Abstract",
                   "ST2 saves 70% of nominal adder power"),
        PaperClaim("chip_energy_saving", 0.21, "fraction", "Abstract",
                   "21% chip energy (excl. DRAM)"),
        PaperClaim("system_energy_saving", 0.19, "fraction", "§VI",
                   "19% system energy (incl. DRAM)"),
        # instruction mix
        PaperClaim("arith_intensive_kernels", 21, "count", "§I Fig 1",
                   ">20% ALU+FPU instructions, out of 23"),
        # correlation study
        PaperClaim("corr_prev_gtid", 0.50, "fraction", "§III Fig 3"),
        PaperClaim("corr_prev_fullpc_gtid", 0.83, "fraction",
                   "§III Fig 3"),
        PaperClaim("corr_prev_fullpc_ltid", 0.89, "fraction",
                   "§III Fig 3"),
        # design space
        PaperClaim("miss_valhalla", 0.26, "fraction", "§IV-B Fig 5",
                   "reconstructed from '57% lower at 12%'"),
        PaperClaim("miss_modpc4", 0.12, "fraction", "§IV-B"),
        PaperClaim("miss_st2", 0.09, "fraction", "§IV-B / §VI Fig 6"),
        PaperClaim("st2_vs_valhalla_reduction", 0.65, "fraction",
                   "§IV-B"),
        PaperClaim("valhalla_peek_reduction", 0.18, "fraction",
                   "§IV-B", "retrofit VaLHALLA with Peek"),
        # recompute statistics
        PaperClaim("recompute_per_miss_avg", 1.94, "ratio", "§VI"),
        PaperClaim("recompute_per_miss_max", 2.73, "ratio", "§VI"),
        # energy structure
        PaperClaim("alu_fpu_system_share", 0.27, "fraction", "§VI"),
        PaperClaim("alu_fpu_chip_share", 0.30, "fraction", "§VI"),
        PaperClaim("alu_fpu_share_max", 0.57, "fraction", "§VI",
                   "qrng_K1"),
        PaperClaim("ai_kernel_count", 14, "count", "§VI",
                   ">20% of system energy in ALU+FPU"),
        PaperClaim("ai_system_saving", 0.26, "fraction", "§VI"),
        PaperClaim("ai_chip_saving", 0.28, "fraction", "§VI"),
        PaperClaim("max_system_saving", 0.40, "fraction", "§VI",
                   "msort_K2"),
        PaperClaim("max_chip_saving", 0.42, "fraction", "§VI"),
        # performance
        PaperClaim("avg_slowdown", 0.0036, "fraction", "§VI"),
        PaperClaim("worst_slowdown", 0.035, "fraction", "§VI",
                   "dwt2d_K1"),
        # circuit study
        PaperClaim("slice_width", 8, "bits", "§V-B"),
        PaperClaim("slice_vdd_fraction", 0.60, "fraction", "§V-B"),
        PaperClaim("potential_saving_lo", 0.75, "fraction", "§V-B"),
        PaperClaim("potential_saving_hi", 0.87, "fraction", "§V-B"),
        # power model validation
        PaperClaim("power_model_mape", 0.105, "fraction", "§V-C"),
        PaperClaim("power_model_mape_ci", 0.038, "fraction", "§V-C"),
        PaperClaim("power_model_pearson_r", 0.8, "ratio", "§V-C"),
        PaperClaim("n_microbenchmarks", 123, "count", "§V-C"),
        # overheads
        PaperClaim("crf_bytes_per_sm", 448, "bytes", "§VI"),
        PaperClaim("crf_kb_chip", 35, "kB", "§VI"),
        PaperClaim("dff_kb_chip", 15, "kB", "§VI"),
        PaperClaim("total_storage_kb", 50, "kB", "§VI"),
        PaperClaim("storage_sram_fraction", 0.0009, "fraction", "§VI"),
        PaperClaim("shifter_area_fraction", 0.0068, "fraction", "§VI"),
        PaperClaim("shifter_static_w", 0.6, "watts", "§VI"),
        PaperClaim("shifter_dynamic_uw", 470, "microwatts", "§VI",
                   "worst-case every-bit-flips estimate"),
        PaperClaim("shifter_savings_penalty", 0.005, "fraction", "§VI",
                   "net system saving drops to 18.5%"),
        PaperClaim("dff_bits_alu_adder", 14, "bits", "§VI"),
        PaperClaim("dff_bits_fp32_adder", 4, "bits", "§VI"),
        PaperClaim("dff_bits_fp64_adder", 12, "bits", "§VI"),
        # methodology
        PaperClaim("n_kernels", 23, "count", "§V-A"),
        PaperClaim("n_workloads", 18, "count", "§V-A"),
        PaperClaim("prediction_accuracy", 0.91, "fraction", "§VIII",
                   "91% average accuracy of the final design"),
    )
}


def claim(key: str) -> PaperClaim:
    """Look up one paper number by key."""
    return PAPER_CLAIMS[key]


def value(key: str) -> float:
    return PAPER_CLAIMS[key].value
