"""The 23-kernel evaluation suite (Rodinia, CUDA Samples, Parboil),
re-implemented against the CUDA-like DSL, plus the tensorGemm
extension.  See :mod:`repro.kernels.suite` for the registry."""
