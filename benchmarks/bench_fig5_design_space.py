"""Figure 5 — design-space exploration of the carry-speculation
mechanism.

Paper claims (suite-average thread misprediction rates):
staticZero/staticOne poor; VaLHALLA ~26 %; +Peek −18 % relative;
Prev+Peek ~20 %; ModPC4 ~12 % (57 % below VaLHALLA); Gtid significantly
*worse* than sharing; the final Ltid+Prev+ModPC4+Peek ~9 % (65 % below
VaLHALLA); XOR hashing adds nothing.
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import hbar_chart
from repro.core.speculation import DESIGN_LADDER, explore

PAPER = {
    "VaLHALLA": 0.26, "Prev+Peek": 0.20, "Prev+ModPC4+Peek": 0.12,
    "Ltid+Prev+ModPC4+Peek": 0.09,
}


def _explore_all(suite_runs):
    rates = {cfg.name: [] for cfg in DESIGN_LADDER}
    for run in suite_runs.values():
        for point in explore(run.trace):
            rates[point.config.name].append(point.misprediction_rate)
    return {name: float(np.mean(vals)) for name, vals in rates.items()}


def test_fig5_design_space(benchmark, suite_runs, artifact_dir):
    rates = benchmark.pedantic(_explore_all, args=(suite_runs,),
                               rounds=1, iterations=1)

    txt = hbar_chart(
        "Figure 5: avg thread misprediction rate per mechanism",
        list(rates), list(rates.values()))
    txt += "\n\nanchors (ours vs paper):"
    for name, paper in PAPER.items():
        txt += f"\n  {name:24s} {rates[name]:6.1%}  (paper {paper:.0%})"
    st2 = rates["Ltid+Prev+ModPC4+Peek"]
    val = rates["VaLHALLA"]
    txt += (f"\n\nST2 vs VaLHALLA: {1 - st2 / val:.0%} lower "
            "misprediction (paper: 65% lower)")
    save_artifact(artifact_dir, "fig5_design_space.txt", txt)

    # ladder-shape claims
    assert rates["staticOne"] > rates["staticZero"]
    assert rates["VaLHALLA+Peek"] < rates["VaLHALLA"]
    assert rates["Prev+Peek"] < rates["VaLHALLA+Peek"]
    assert rates["Prev+ModPC4+Peek"] <= rates["Prev+ModPC1+Peek"]
    assert rates["Gtid+Prev+ModPC4+Peek"] \
        > rates["Ltid+Prev+ModPC4+Peek"], "Gtid must be worse (paper)"
    assert abs(rates["Ltid+Prev+XorPC4+Peek"]
               - rates["Ltid+Prev+ModPC4+Peek"]) < 0.02
    # final design beats VaLHALLA decisively
    assert st2 < 0.65 * val
    assert st2 < 0.20
