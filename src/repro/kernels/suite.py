"""The 23-kernel evaluation suite (paper Section V-A).

The kernel set and figure-axis names follow Figures 1, 6 and 7 exactly:
23 kernels from 17 workloads out of Rodinia, NVIDIA CUDA Samples and
Parboil.  (The paper's workload list also names cudaTensorCoreGemm, but
no tensor kernel appears on any figure axis — its FP32 accumulation path
is available as the :mod:`repro.kernels.tensor_gemm` extension.)

``run_suite`` executes every kernel once and caches the
:class:`~repro.sim.functional.KernelRun` per (name, scale, seed), since
several experiments (Figures 1, 3, 5, 6, 7) share the same traces.
"""

from __future__ import annotations

from repro.kernels import (backprop, binomial, btree, dct8x8, dwt2d,
                           histogram, kmeans, mergesort, mriq, pathfinder,
                           qrng, sad, sgemm, sobol, sorting_networks,
                           sradv1, walsh)
from repro.kernels.runtime import KernelSpec

SUITE = (
    KernelSpec("binomial", "BinomialOptions", "CUDA Samples",
               binomial.prepare, "binomial option pricing lattice"),
    KernelSpec("kmeans_K1", "kmeans", "Rodinia",
               kmeans.prepare, "nearest-centre assignment"),
    KernelSpec("sgemm", "sgemm", "Parboil",
               sgemm.prepare, "tiled FP32 matrix multiply"),
    KernelSpec("walsh_K1", "fastWalshTransform", "CUDA Samples",
               walsh.prepare_k1, "global strided Walsh butterflies"),
    KernelSpec("mri-q_K1", "mri-q", "Parboil",
               mriq.prepare, "non-Cartesian MRI Q computation"),
    KernelSpec("bprop_K2", "backprop", "Rodinia",
               backprop.prepare_k2, "momentum weight update"),
    KernelSpec("sradv1_K1", "sradv1", "Rodinia",
               sradv1.prepare, "SRAD diffusion coefficients"),
    KernelSpec("pathfinder", "pathfinder", "Rodinia",
               pathfinder.prepare, "grid dynamic programming"),
    KernelSpec("dwt2d_K1", "dwt2d", "Rodinia",
               dwt2d.prepare, "5/3 integer lifting wavelet"),
    KernelSpec("sortNets_K1", "sortingNetworks", "CUDA Samples",
               sorting_networks.prepare_k1, "shared-memory bitonic sort"),
    KernelSpec("qrng_K2", "quasirandomGenerator", "CUDA Samples",
               qrng.prepare_k2, "Moro inverse CND"),
    KernelSpec("bprop_K1", "backprop", "Rodinia",
               backprop.prepare_k1, "layer forward reduction"),
    KernelSpec("b+tree_K1", "b+tree", "Rodinia",
               btree.prepare_k1, "B+ tree point queries"),
    KernelSpec("histo_K1", "histogram", "CUDA Samples",
               histogram.prepare, "shared-memory histogram"),
    KernelSpec("dct8x8_K1", "dct8x8", "CUDA Samples",
               dct8x8.prepare, "8x8 block DCT"),
    KernelSpec("msort_K1", "mergeSort", "CUDA Samples",
               mergesort.prepare_k1, "shared-memory merge sort"),
    KernelSpec("walsh_K2", "fastWalshTransform", "CUDA Samples",
               walsh.prepare_k2, "shared-memory Walsh stage"),
    KernelSpec("sad_K1", "sad", "Parboil",
               sad.prepare, "4x4 sum of absolute differences"),
    KernelSpec("sobolQRNG", "SobolQRNG", "CUDA Samples",
               sobol.prepare, "Sobol' sequence generation"),
    KernelSpec("msort_K2", "mergeSort", "CUDA Samples",
               mergesort.prepare_k2, "rank-merge of sorted tiles"),
    KernelSpec("b+tree_K2", "b+tree", "Rodinia",
               btree.prepare_k2, "B+ tree range queries"),
    KernelSpec("sortNets_K2", "sortingNetworks", "CUDA Samples",
               sorting_networks.prepare_k2, "global bitonic merge pass"),
    KernelSpec("qrng_K1", "quasirandomGenerator", "CUDA Samples",
               qrng.prepare_k1, "Niederreiter point generation"),
)

KERNEL_NAMES = tuple(spec.name for spec in SUITE)

#: Extension kernels: the secondary kernels of suite workloads (and the
#: tensor-core workload the paper lists but does not plot).  Not part of
#: the 23-kernel evaluation; usable through the same machinery.
from repro.kernels import (affine_chain, dp_stencil, hotspot,  # noqa: E402
                           needle, reduction, tensor_gemm)

EXTENDED_SUITE = (
    KernelSpec("sradv1_K2", "sradv1", "Rodinia",
               sradv1.prepare_k2, "SRAD diffusion update step"),
    KernelSpec("dct8x8_K2", "dct8x8", "CUDA Samples",
               dct8x8.prepare_k2, "column DCT pass"),
    KernelSpec("histo_K2", "histogram", "CUDA Samples",
               histogram.prepare_merge, "partial-histogram merge"),
    KernelSpec("mri-q_K2", "mri-q", "Parboil",
               mriq.prepare_phimag, "phi magnitude precomputation"),
    KernelSpec("tensorGemm", "cudaTensorCoreGemm", "CUDA Samples",
               tensor_gemm.prepare, "tensor-core GEMM epilogue"),
    KernelSpec("reduction", "reduction", "CUDA Samples",
               reduction.prepare, "shuffle-based parallel reduction"),
    KernelSpec("jacobiDP", "jacobi", "HPC",
               dp_stencil.prepare, "double-precision Jacobi stencil"),
    KernelSpec("hotspot", "hotspot", "Rodinia",
               hotspot.prepare, "thermal simulation stencil"),
    KernelSpec("needle", "nw", "Rodinia",
               needle.prepare, "Needleman-Wunsch wavefront DP"),
    KernelSpec("affineChain", "affineChain", "Microbenchmark",
               affine_chain.prepare,
               "statically-pinned affine index chains (bounds witness)"),
)

EXTENDED_NAMES = tuple(spec.name for spec in EXTENDED_SUITE)

#: Named kernel groups the runner CLI and CI accept in place of an
#: explicit list.  ``smoke`` is a three-kernel subset (one slow tracer,
#: one mid, one fast) sized for CI smoke jobs.
KERNEL_GROUPS = {
    "all": KERNEL_NAMES,
    "extended": EXTENDED_NAMES,
    "full": KERNEL_NAMES + EXTENDED_NAMES,
    "smoke": ("binomial", "pathfinder", "qrng_K2"),
}


def resolve_kernels(spec) -> tuple:
    """Resolve a kernel selection into a tuple of suite kernel names.

    ``spec`` is a comma-separated string or an iterable; each element
    is a kernel name or a group from :data:`KERNEL_GROUPS`.  Order is
    preserved, duplicates dropped, unknown names raise ``KeyError``.
    """
    if isinstance(spec, str):
        spec = [s for s in spec.split(",") if s]
    names = []
    for item in spec:
        if item in KERNEL_GROUPS:
            names.extend(KERNEL_GROUPS[item])
        else:
            spec_by_name(item)      # raises KeyError with valid names
            names.append(item)
    seen = set()
    return tuple(n for n in names
                 if not (n in seen or seen.add(n)))


_run_cache: dict = {}


def spec_by_name(name: str) -> KernelSpec:
    for spec in SUITE + EXTENDED_SUITE:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown kernel {name!r}; valid: "
                   f"{KERNEL_NAMES + EXTENDED_NAMES}")


def run_kernel(name: str, scale: float = 1.0, seed: int = 0,
               use_cache: bool = True):
    """Run (or fetch the cached run of) one suite kernel."""
    key = (name, scale, seed)
    if use_cache and key in _run_cache:
        return _run_cache[key]
    run = spec_by_name(name).run(scale=scale, seed=seed)
    if use_cache:
        _run_cache[key] = run
    return run


def run_suite(scale: float = 1.0, seed: int = 0, names=None,
              use_cache: bool = True) -> dict:
    """Execute the whole suite; returns ``{kernel name: KernelRun}``."""
    names = KERNEL_NAMES if names is None else names
    return {name: run_kernel(name, scale, seed, use_cache)
            for name in names}


def clear_cache() -> None:
    _run_cache.clear()
