"""The ST2 machinery must be chip-shape agnostic: every study runs on
a non-GV100 configuration with sensible results."""

import pytest

from repro.core.predictors import run_speculation
from repro.core.speculation import ST2_DESIGN
from repro.kernels import pathfinder
from repro.sim.config import TITAN_V, TURING_TU102
from repro.sim.pipeline import compare_baseline_st2
from repro.st2.overheads import overhead_report


@pytest.fixture(scope="module")
def turing_run():
    return pathfinder.prepare(scale=0.25, seed=0,
                              gpu=TURING_TU102).run()


class TestTuringConfig:
    def test_config_differs_meaningfully(self):
        assert TURING_TU102.n_sms != TITAN_V.n_sms
        assert TURING_TU102.dpus_per_sm == 2

    def test_functional_execution(self, turing_run):
        assert len(turing_run.trace) > 0
        assert turing_run.gpu is TURING_TU102

    def test_speculation_unaffected_by_chip_shape(self, turing_run):
        """Carry behaviour is a property of the values, not the chip."""
        titan_run = pathfinder.prepare(scale=0.25, seed=0,
                                       gpu=TITAN_V).run()
        r_turing = run_speculation(turing_run.trace, ST2_DESIGN)
        r_titan = run_speculation(titan_run.trace, ST2_DESIGN)
        assert r_turing.thread_misprediction_rate == pytest.approx(
            r_titan.thread_misprediction_rate, abs=0.02)

    def test_timing_runs_on_turing(self, turing_run):
        res = run_speculation(turing_run.trace, ST2_DESIGN)
        base, st2 = compare_baseline_st2(turing_run, res.mispredicted,
                                         gpu=TURING_TU102)
        assert st2.total_cycles >= base.total_cycles
        assert abs(st2.total_cycles / base.total_cycles - 1) < 0.05

    def test_overheads_scale_with_chip(self):
        titan = overhead_report(TITAN_V)
        turing = overhead_report(TURING_TU102)
        # fewer SMs and DPUs -> less CRF storage and fewer DFFs
        assert turing.crf_bytes_chip < titan.crf_bytes_chip
        assert turing.dff_bits_per_sm < titan.dff_bits_per_sm
        # CRF entry geometry is per-SM, unchanged
        assert turing.crf_bytes_per_sm == 448
