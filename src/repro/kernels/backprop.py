"""Rodinia *backprop* — ``bprop_K1`` (layerforward) and ``bprop_K2``
(adjust_weights).

K1: a 16x16 block computes ``input[i] * weight[i][j]`` partial products
into shared memory and reduces them with a log-step FADD tree — the
forward pass of one hidden layer.

K2: the weight update ``w += (eta * delta[j] * ly[i]) + (momentum *
oldw)``, an FFMA + FADD per weight, plus the index arithmetic to locate
the weight — the paper's Figure 1 shows this kernel as FPU-add heavy.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

WIDTH = 16          # hidden units per block (blockDim.x)
HEIGHT = 16         # input rows per block (blockDim.y)
BLOCK = WIDTH * HEIGHT
ETA = 0.3
MOMENTUM = 0.3


def layerforward_kernel(k, inputs, weights, partial_sums, n_inputs,
                        n_hidden):
    """bprop_K1: hidden-layer forward pass with shared-memory reduction."""
    tx = k.thread_id() % WIDTH           # hidden-unit lane
    ty = k.thread_id() // WIDTH          # input row within tile
    by = k.block_id
    row = k.imad(by, HEIGHT, ty)         # global input index

    node = k.shared(HEIGHT, np.float32)
    prods = k.shared(BLOCK, np.float32)

    with k.where(k.eq(tx, 0)):
        k.st_shared(node, ty, k.ld_global(inputs, row))
    k.syncthreads()

    widx = k.iadd(k.imul(row, n_hidden), tx)
    w = k.ld_global(weights, widx)
    prod = k.fmul(w, k.ld_shared(node, ty))
    sidx = k.imad(ty, WIDTH, tx)
    k.st_shared(prods, sidx, prod)
    k.syncthreads()

    stride = 1
    while stride < HEIGHT:
        k.syncthreads()
        take = (ty % (2 * stride) == 0)
        with k.where(take):
            lo = k.ld_shared(prods, sidx)
            hi = k.ld_shared(prods, k.imad(stride, WIDTH, sidx))
            k.st_shared(prods, sidx, k.fadd(lo, hi))
        stride *= 2
    k.syncthreads()

    with k.where(k.eq(ty, 0)):
        out = k.imad(by, n_hidden, tx)
        k.st_global(partial_sums, out, k.ld_shared(prods, tx))


def adjust_weights_kernel(k, ly, delta, w, oldw, n_inputs, n_hidden):
    """bprop_K2: momentum SGD weight update."""
    tx = k.thread_id() % WIDTH
    ty = k.thread_id() // WIDTH
    by = k.block_id
    row = k.imad(by, HEIGHT, ty)
    index = k.iadd(k.imul(k.iadd(row, 1), n_hidden + 1), k.iadd(tx, 1))

    d = k.ld_global(delta, k.iadd(tx, 1))
    l = k.ld_global(ly, k.iadd(row, 1))
    old = k.ld_global(oldw, index)
    grad = k.fmul(k.fmul(ETA, d), l)
    dw = k.ffma(MOMENTUM, old, grad)
    cur = k.ld_global(w, index)
    k.st_global(w, index, k.fadd(cur, dw))
    k.st_global(oldw, index, dw)


def _net(rng, scale):
    n_hidden = WIDTH
    n_rows = scaled(16, scale, minimum=4) * HEIGHT
    return n_rows, n_hidden


def prepare_k1(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    n_inputs, n_hidden = _net(rng, scale)
    launcher = GridLauncher(gpu=gpu, seed=seed)
    grid = n_inputs // HEIGHT
    return PreparedKernel(
        name="bprop_K1",
        fn=layerforward_kernel,
        launch=LaunchConfig(grid, BLOCK),
        params=dict(
            inputs=launcher.buffer(
                "inputs", rng.uniform(0, 1, n_inputs).astype(np.float32)),
            weights=launcher.buffer(
                "weights", rng.normal(0, 0.3, n_inputs * n_hidden)
                .astype(np.float32)),
            partial_sums=launcher.buffer(
                "sums", np.zeros(grid * n_hidden, np.float32)),
            n_inputs=n_inputs, n_hidden=n_hidden),
        launcher=launcher)


def prepare_k2(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    n_inputs, n_hidden = _net(rng, scale)
    n_w = (n_inputs + 2) * (n_hidden + 2)
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="bprop_K2",
        fn=adjust_weights_kernel,
        launch=LaunchConfig(n_inputs // HEIGHT, BLOCK),
        params=dict(
            ly=launcher.buffer(
                "ly", rng.uniform(0, 1, n_inputs + 2).astype(np.float32)),
            delta=launcher.buffer(
                "delta", rng.normal(0, 0.1, n_hidden + 2)
                .astype(np.float32)),
            w=launcher.buffer(
                "w", rng.normal(0, 0.3, n_w).astype(np.float32)),
            oldw=launcher.buffer(
                "oldw", rng.normal(0, 0.03, n_w).astype(np.float32)),
            n_inputs=n_inputs, n_hidden=n_hidden),
        launcher=launcher)
