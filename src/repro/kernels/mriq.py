"""Parboil *mri-q* — ``mri-q_K1`` (ComputeQ).

Non-Cartesian MRI reconstruction: each thread owns one voxel and sums
the contribution of every k-space sample:

    expArg = 2*pi * (kx*x + ky*y + kz*z)     (FFMA chain)
    Qr += phiMag * cos(expArg)               (SFU + FFMA)
    Qi += phiMag * sin(expArg)

The k-space sample coordinates are streamed from constant-like memory,
so consecutive iterations at the same PC see smoothly-varying operands.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128
TWO_PI = np.float32(2 * np.pi)


def computeq_kernel(k, kx, ky, kz, phi_mag, x, y, z, qr, qi, n_voxels,
                    n_samples):
    """ComputeQ_GPU: accumulate k-space contributions per voxel."""
    v = k.global_id()
    with k.where(k.lt(v, n_voxels)):
        xv = k.ld_global(x, v)
        yv = k.ld_global(y, v)
        zv = k.ld_global(z, v)
        acc_r = np.zeros(k.n_threads, dtype=np.float32)
        acc_i = np.zeros(k.n_threads, dtype=np.float32)
        for s in k.range(n_samples):
            arg = k.fmul(k.ld_const(kx, s), xv)
            arg = k.ffma(k.ld_const(ky, s), yv, arg)
            arg = k.ffma(k.ld_const(kz, s), zv, arg)
            arg = k.fmul(TWO_PI, arg)
            mag = k.ld_const(phi_mag, s)
            acc_r = k.ffma(mag, k.cos(arg), acc_r)
            acc_i = k.ffma(mag, k.sin(arg), acc_i)
        k.st_global(qr, v, acc_r)
        k.st_global(qi, v, acc_i)


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    n_voxels = scaled(512, scale, minimum=BLOCK, multiple=BLOCK)
    n_samples = scaled(40, scale, minimum=8)

    # radial k-space trajectory: coordinates sweep smoothly
    t = np.linspace(0, 3 * np.pi, n_samples)
    kx = (0.2 * t * np.cos(t)).astype(np.float32)
    ky = (0.2 * t * np.sin(t)).astype(np.float32)
    kz = np.linspace(-0.5, 0.5, n_samples).astype(np.float32)
    phi = (1.0 / (1.0 + t)).astype(np.float32)

    side = int(round(n_voxels ** (1 / 3))) + 1
    coords = np.indices((side, side, side)).reshape(3, -1)[:, :n_voxels]
    x, y, z = (c.astype(np.float32) / side - 0.5 for c in coords)

    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="mri-q_K1",
        fn=computeq_kernel,
        launch=LaunchConfig(n_voxels // BLOCK, BLOCK),
        params=dict(
            kx=launcher.buffer("kx", kx), ky=launcher.buffer("ky", ky),
            kz=launcher.buffer("kz", kz),
            phi_mag=launcher.buffer("phiMag", phi),
            x=launcher.buffer("x", x), y=launcher.buffer("y", y),
            z=launcher.buffer("z", z),
            qr=launcher.buffer("Qr", np.zeros(n_voxels, np.float32)),
            qi=launcher.buffer("Qi", np.zeros(n_voxels, np.float32)),
            n_voxels=n_voxels, n_samples=n_samples),
        launcher=launcher)


def phimag_kernel(k, phi_r, phi_i, phi_mag, n_samples):
    """Extension (ComputePhiMag_GPU): |phi|^2 per k-space sample."""
    t = k.global_id()
    with k.where(k.lt(t, n_samples)):
        r = k.ld_global(phi_r, t)
        i = k.ld_global(phi_i, t)
        k.st_global(phi_mag, t, k.ffma(r, r, k.fmul(i, i)))


def prepare_phimag(scale: float = 1.0, seed: int = 0,
                   gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    """Extension kernel: the phiMag precomputation of mri-q."""
    rng = np.random.default_rng(seed)
    n_samples = scaled(2048, scale, minimum=BLOCK, multiple=BLOCK)
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="mri-q_K2",
        fn=phimag_kernel,
        launch=LaunchConfig(n_samples // BLOCK, BLOCK),
        params=dict(
            phi_r=launcher.buffer(
                "phiR", rng.normal(0, 1, n_samples).astype(np.float32)),
            phi_i=launcher.buffer(
                "phiI", rng.normal(0, 1, n_samples).astype(np.float32)),
            phi_mag=launcher.buffer(
                "phiMag", np.zeros(n_samples, np.float32)),
            n_samples=n_samples),
        launcher=launcher)
