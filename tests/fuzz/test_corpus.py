"""The committed counterexample corpus replays green — and would
still catch the bugs it memorializes if they were re-introduced."""

import json
from pathlib import Path

import pytest

from repro.fuzz.corpus import (Fixture, corpus_paths, fixture_filename,
                               load_fixture, replay_fixture,
                               save_fixture)

CORPUS = Path(__file__).parent / "corpus"
FIXTURE_PATHS = corpus_paths(str(CORPUS))


def test_corpus_is_not_empty():
    """Every genuine bug the fuzzer found leaves a fixture behind."""
    assert FIXTURE_PATHS


@pytest.mark.parametrize("path", FIXTURE_PATHS,
                         ids=[Path(p).stem for p in FIXTURE_PATHS])
def test_fixture_replays_green(path, tmp_path):
    """All oracles pass on every minimized counterexample: the bug
    each fixture captured stays fixed."""
    fixture = load_fixture(path)
    verdict = replay_fixture(fixture, str(tmp_path))
    assert verdict.ok, [f.message for f in verdict.failures]


@pytest.mark.parametrize("path", FIXTURE_PATHS,
                         ids=[Path(p).stem for p in FIXTURE_PATHS])
def test_fixture_is_well_formed(path):
    doc = json.loads(Path(path).read_text())
    assert {"name", "oracle", "seed", "description", "source",
            "launch", "data_seed"} <= set(doc)
    assert doc["source"].lstrip().startswith("import numpy")
    assert doc["launch"]["threads"] % 32 == 0
    assert doc["description"]                # reviewable in a diff


def test_round_trip(tmp_path):
    fixture = Fixture(name="t", oracle="static", seed=5,
                      description="a bug", source="import numpy\n",
                      blocks=2, threads=32, data_seed=9)
    path = save_fixture(fixture, str(tmp_path))
    assert load_fixture(path) == fixture
    assert fixture_filename(fixture).startswith("static-")


def test_empty_mask_fixture_would_catch_the_old_sanitizer(tmp_path,
                                                          monkeypatch):
    """Red-before/green-after, permanently: re-introduce the old
    ``on_barrier`` (raise whenever the mask is not full — including
    all-false masks at barriers no thread reaches) and the committed
    fixture must go red again."""
    import numpy as np

    from repro.sim import sanitizer as san_mod
    from repro.sim.sanitizer import BarrierDivergenceError

    [path] = [p for p in FIXTURE_PATHS if "empty-mask" in p]

    def old_on_barrier(self, mask: np.ndarray) -> None:
        if not mask.all():
            raise BarrierDivergenceError(
                f"{self.kernel_name}: divergent barrier")
        self.epoch += 1

    monkeypatch.setattr(san_mod.KernelSanitizer, "on_barrier",
                        old_on_barrier)
    verdict = replay_fixture(load_fixture(path), str(tmp_path))
    assert not verdict.ok, \
        "fixture no longer detects the empty-mask false positive"
