"""Sweep-spec files: JSON and YAML readers for ``st2-sweep``.

JSON always works.  YAML goes through PyYAML when it is importable and
otherwise falls back to a built-in parser for the *sweep-spec subset*
of YAML — nested mappings by indentation, block lists of scalars
(``- value``), inline lists (``[a, b]``), ``#`` comments, and plain /
quoted scalars with the usual bool/int/float coercions.  That subset
covers every field of a :class:`~repro.api.SweepSpec` document, so
sweep specs stay loadable on machines without PyYAML and the package
never grows a hard dependency.

The parsed document feeds :meth:`SweepSpec.from_wire`, so files follow
the exact wire schema (including ``schema_version`` skew rules);
:class:`SpecIOError` wraps both parse and schema failures with the
file path attached.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.api import SweepSpec, WireError


class SpecIOError(ValueError):
    """A sweep-spec file that cannot be parsed or fails the schema."""


# ----------------------------------------------------------------------
# mini-YAML fallback (sweep-spec subset)
# ----------------------------------------------------------------------

def _unquote(token: str) -> Any:
    token = token.strip()
    if len(token) >= 2 and token[0] == token[-1] and token[0] in "\"'":
        if token[0] == '"':
            try:
                return json.loads(token)
            except ValueError:
                raise SpecIOError(f"bad quoted scalar {token!r}")
        return token[1:-1]
    low = token.lower()
    if low in ("true", "yes", "on"):
        return True
    if low in ("false", "no", "off"):
        return False
    # YAML resolves only null/~ (and empty) as null — bare "none" is a
    # plain string (it is a pc_index axis value), matching PyYAML.
    if low in ("null", "~", ""):
        return None
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _split_inline_list(body: str) -> List[Any]:
    items: List[Any] = []
    depth_quote = ""
    current = ""
    for ch in body:
        if depth_quote:
            current += ch
            if ch == depth_quote:
                depth_quote = ""
        elif ch in "\"'":
            depth_quote = ch
            current += ch
        elif ch == ",":
            items.append(current)
            current = ""
        else:
            current += ch
    if depth_quote:
        raise SpecIOError(f"unterminated quote in [{body}]")
    items.append(current)
    items = [item for item in (s.strip() for s in items) if item != ""]
    return [_unquote(item) for item in items]


def _strip_comment(line: str) -> str:
    out = ""
    quote = ""
    for ch in line:
        if quote:
            out += ch
            if ch == quote:
                quote = ""
        elif ch in "\"'":
            quote = ch
            out += ch
        elif ch == "#":
            break
        else:
            out += ch
    return out.rstrip()


def _logical_lines(text: str) -> List[Tuple[int, str]]:
    lines = []
    for raw in text.splitlines():
        if "\t" in raw[:len(raw) - len(raw.lstrip())]:
            raise SpecIOError("tabs in indentation are not supported")
        line = _strip_comment(raw)
        if not line.strip():
            continue
        indent = len(line) - len(line.lstrip(" "))
        lines.append((indent, line.strip()))
    return lines


def _parse_value(token: str) -> Any:
    token = token.strip()
    if token.startswith("[") and token.endswith("]"):
        return _split_inline_list(token[1:-1])
    return _unquote(token)


def _parse_block(lines: List[Tuple[int, str]], start: int,
                 indent: int) -> Tuple[Any, int]:
    """Parse the block starting at ``lines[start]`` (all at ``indent``);
    returns ``(value, next_index)``."""
    if lines[start][1].startswith("- ") or lines[start][1] == "-":
        items = []
        i = start
        while i < len(lines) and lines[i][0] == indent \
                and (lines[i][1].startswith("- ")
                     or lines[i][1] == "-"):
            body = lines[i][1][1:].strip()
            if not body:
                raise SpecIOError("empty or nested list items are not "
                                  "supported (scalar items only)")
            items.append(_parse_value(body))
            i += 1
        return items, i
    mapping: Dict[str, Any] = {}
    i = start
    while i < len(lines) and lines[i][0] == indent:
        content = lines[i][1]
        if ":" not in content:
            raise SpecIOError(f"expected 'key: value', got {content!r}")
        key, _, rest = content.partition(":")
        key = _unquote(key)
        if not isinstance(key, str):
            key = str(key)
        rest = rest.strip()
        i += 1
        if rest:
            mapping[key] = _parse_value(rest)
        elif i < len(lines) and lines[i][0] > indent:
            mapping[key], i = _parse_block(lines, i, lines[i][0])
        else:
            mapping[key] = None
    return mapping, i


def mini_yaml(text: str) -> Any:
    """Parse the sweep-spec YAML subset (see module docstring)."""
    lines = _logical_lines(text)
    if not lines:
        return {}
    value, i = _parse_block(lines, 0, lines[0][0])
    if i != len(lines):
        raise SpecIOError(
            f"unparsed trailing content at {lines[i][1]!r} "
            f"(inconsistent indentation?)")
    return value


# ----------------------------------------------------------------------
# document loading
# ----------------------------------------------------------------------

def parse_text(text: str, fmt: str) -> Any:
    """Parse spec text as ``json`` or ``yaml``."""
    if fmt == "json":
        try:
            return json.loads(text)
        except ValueError as exc:
            raise SpecIOError(f"invalid JSON: {exc}") from None
    if fmt == "yaml":
        try:
            import yaml
        except ImportError:
            return mini_yaml(text)
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise SpecIOError(f"invalid YAML: {exc}") from None
    raise SpecIOError(f"unknown spec format {fmt!r} (json or yaml)")


def detect_format(path: Any) -> str:
    suffix = Path(path).suffix.lower()
    if suffix == ".json":
        return "json"
    if suffix in (".yaml", ".yml"):
        return "yaml"
    raise SpecIOError(
        f"cannot infer spec format from {Path(path).name!r} "
        f"(use .json / .yaml / .yml)")


def spec_from_doc(doc: Any, source: str = "<doc>") -> SweepSpec:
    """A parsed document to a validated :class:`SweepSpec`."""
    if not isinstance(doc, dict):
        raise SpecIOError(f"{source}: expected a mapping at top level, "
                          f"got {type(doc).__name__}")
    try:
        return SweepSpec.from_wire(doc)
    except WireError as exc:
        raise SpecIOError(f"{source}: {exc}") from None


def load_spec(path: Any, fmt: str = None) -> SweepSpec:
    """Load and validate a sweep spec file (format from extension
    unless forced)."""
    path = Path(path)
    fmt = fmt if fmt is not None else detect_format(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SpecIOError(f"cannot read {path}: {exc}") from None
    return spec_from_doc(parse_text(text, fmt), source=str(path))


# ----------------------------------------------------------------------
# examples (``st2-sweep example``)
# ----------------------------------------------------------------------

#: The example sweep: the paper's mechanism ladder crossed with the
#: peek overlay and PC indexing depth on two short kernels.
EXAMPLE_WIRE: Dict[str, Any] = {
    "schema_version": 1,
    "name": "ladder-mini",
    "kernels": ["qrng_K2", "pathfinder"],
    "axes": {
        "mechanism": ["static1", "operand", "valhalla", "prev"],
        "peek": [False, True],
        "pc_index": ["none", "mod"],
        "pc_bits": [0, 4],
    },
    "scale": 1.0,
    "seed": 0,
    "engine": "auto",
    "aux": False,
}


def example_spec() -> SweepSpec:
    return SweepSpec.from_wire(EXAMPLE_WIRE)


def example_text(fmt: str = "yaml") -> str:
    """The example spec rendered as a ready-to-edit file."""
    if fmt == "json":
        return json.dumps(EXAMPLE_WIRE, indent=1) + "\n"
    if fmt != "yaml":
        raise SpecIOError(f"unknown spec format {fmt!r} (json or yaml)")
    lines = [
        "# st2-sweep spec: axes over SpeculationConfig fields,",
        "# crossed with a kernel list (docs/sweeping.md).",
        "schema_version: 1",
        f"name: {EXAMPLE_WIRE['name']}",
        "kernels: [" + ", ".join(EXAMPLE_WIRE["kernels"]) + "]",
        "axes:",
    ]
    for axis, values in EXAMPLE_WIRE["axes"].items():
        rendered = ", ".join(
            "true" if v is True else "false" if v is False else str(v)
            for v in values)
        lines.append(f"  {axis}: [{rendered}]")
    lines += ["scale: 1.0", "seed: 0", "engine: auto", "aux: false"]
    return "\n".join(lines) + "\n"


__all__ = ["EXAMPLE_WIRE", "SpecIOError", "detect_format",
           "example_spec", "example_text", "load_spec", "mini_yaml",
           "parse_text", "spec_from_doc"]
