"""Set-associative L2 cache model."""

import numpy as np
import pytest

from repro.sim.cache import (SetAssociativeCache,
                             l2_miss_ratio_for_run, simulate_l2)
from repro.sim.config import LaunchConfig
from repro.sim.functional import GridLauncher


class TestCacheMechanics:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(size_bytes=1024, line_bytes=64, ways=2)
        assert c.access_block(np.array([0])) == 1
        assert c.access_block(np.array([0])) == 0
        assert c.stats.accesses == 2
        assert c.stats.misses == 1

    def test_same_line_coalesces(self):
        c = SetAssociativeCache(size_bytes=1024, line_bytes=64, ways=2)
        # three addresses in one 64B line = one access, one miss
        c.access_block(np.array([0, 8, 63]))
        assert c.stats.accesses == 1
        assert c.stats.misses == 1

    def test_lru_eviction(self):
        # 2-way, 1 set: lines A, B fill; C evicts A (LRU)
        c = SetAssociativeCache(size_bytes=128, line_bytes=64, ways=2)
        assert c.n_sets == 1
        a, b, cc = 0, 64 * 1, 64 * 2
        c.access_block(np.array([a]))
        c.access_block(np.array([b]))
        c.access_block(np.array([a]))       # touch A: B is now LRU
        assert c.access_block(np.array([cc])) == 1   # evicts B
        assert c.access_block(np.array([a])) == 0    # A survived
        assert c.access_block(np.array([b])) == 1    # B was evicted

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=100, line_bytes=64, ways=2)

    def test_streaming_misses_everything(self):
        SetAssociativeCache(size_bytes=1024, line_bytes=64, ways=2)
        stream = [np.array([i * 64]) for i in range(200)]
        stats = simulate_l2(stream, size_bytes=1024, line_bytes=64,
                            ways=2)
        assert stats.miss_ratio == 1.0

    def test_resident_working_set_hits(self):
        stream = [np.array([i * 64]) for i in range(8)] * 20
        stats = simulate_l2(stream, size_bytes=4096, line_bytes=64,
                            ways=4)
        assert stats.miss_ratio < 0.1       # only compulsory misses


class TestRunIntegration:
    def test_recorded_streams_enable_simulation(self):
        def kernel(k, buf):
            # each thread reads one element twice -> strong reuse
            k.ld_global(buf, k.thread_id())
            k.ld_global(buf, k.thread_id())

        launcher = GridLauncher(record_streams=True)
        buf = launcher.buffer("b", np.zeros(64, np.float32))
        run = launcher.run(kernel, LaunchConfig(1, 64), buf=buf)
        assert len(run.mem.address_batches) > 0
        ratio = l2_miss_ratio_for_run(run)
        assert ratio <= 0.5     # second pass hits

    def test_fallback_without_streams(self):
        from repro.power.activity import L2_MISS_RATIO

        def kernel(k, buf):
            k.ld_global(buf, k.thread_id())

        launcher = GridLauncher()       # streams off
        buf = launcher.buffer("b", np.zeros(64, np.float32))
        run = launcher.run(kernel, LaunchConfig(1, 64), buf=buf)
        assert l2_miss_ratio_for_run(run) == L2_MISS_RATIO

    def test_locality_differs_across_kernels(self):
        """A pointer-chasing tree (heavy node reuse) must hit far more
        than a streaming kernel."""
        from repro.kernels import btree, walsh
        tree = btree.prepare_k1(scale=0.4, seed=0)
        tree.launcher.record_streams = True
        tree_run = tree.run()
        stream = walsh.prepare_k1(scale=0.4, seed=0)
        stream.launcher.record_streams = True
        stream_run = stream.run()
        assert l2_miss_ratio_for_run(tree_run) \
            < l2_miss_ratio_for_run(stream_run)
