"""End-to-end ST2 GPU evaluation: the whole experiment per kernel.

This module strings every substrate together the way the paper's
modified GPGPU-Sim + GPUWattch toolchain does:

1. functional execution (trace + instruction stream),
2. carry speculation with the final ST2 design (Ltid+Prev+ModPC4+Peek),
3. cycle-approximate timing of the baseline and ST2 pipelines,
4. the calibrated power model, with ST2's adder-energy transformation.

``evaluate_kernel``/``evaluate_suite`` are what the Figure 6/7 and the
performance-overhead benchmarks call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.characterize import AdderEnergyModel, characterize_adders
from repro.core.predictors import (SpeculationConfig, SpeculationResult,
                                   run_speculation)
from repro.core.speculation import ST2_DESIGN
from repro.kernels import suite as kernel_suite
from repro.power.activity import activity_from_run
from repro.power.calibration import calibrated_model
from repro.power.model import GPUPowerModel
from repro.sim.pipeline import (TimingResult, compare_baseline_st2)
from repro.st2.energy import (EnergyComparison, baseline_breakdown,
                              st2_breakdown)

_adder_model_cache: dict = {}


def default_adder_model() -> AdderEnergyModel:
    if "model" not in _adder_model_cache:
        _adder_model_cache["model"] = characterize_adders()
    return _adder_model_cache["model"]


@dataclass
class KernelEvaluation:
    """Everything the paper reports about one kernel."""

    name: str
    speculation: SpeculationResult
    timing_baseline: TimingResult
    timing_st2: TimingResult
    energy: EnergyComparison

    @property
    def misprediction_rate(self) -> float:
        """Figure 6."""
        return self.speculation.thread_misprediction_rate

    @property
    def recomputed_per_misprediction(self) -> float:
        return self.speculation.recomputed_per_misprediction

    @property
    def slowdown(self) -> float:
        """Execution-time overhead (Section VI: 0.36 % mean)."""
        return (self.timing_st2.total_cycles
                / self.timing_baseline.total_cycles) - 1.0

    @property
    def system_saving(self) -> float:
        return self.energy.system_saving

    @property
    def chip_saving(self) -> float:
        return self.energy.chip_saving

    @property
    def arithmetic_intensive(self) -> bool:
        """The paper's >20 %-of-system-energy-in-ALU+FPU criterion."""
        return self.energy.alu_fpu_share > 0.20


def evaluate_run(run, config: SpeculationConfig = ST2_DESIGN,
                 model: GPUPowerModel = None,
                 adder_model: AdderEnergyModel = None) -> KernelEvaluation:
    """Evaluate one already-executed kernel run end to end."""
    model = model or calibrated_model()
    adder_model = adder_model or default_adder_model()

    speculation = run_speculation(run.trace, config)
    base_t, st2_t = compare_baseline_st2(run, speculation.mispredicted)
    activity = activity_from_run(run, base_t, name=run.name)

    baseline = baseline_breakdown(model, activity)
    duration_scale = st2_t.total_cycles / max(base_t.total_cycles, 1)
    st2 = st2_breakdown(model, activity, speculation, adder_model,
                        duration_scale=duration_scale)
    return KernelEvaluation(
        name=run.name, speculation=speculation,
        timing_baseline=base_t, timing_st2=st2_t,
        energy=EnergyComparison(name=run.name, baseline=baseline,
                                st2=st2))


def evaluate_kernel(name: str, scale: float = 1.0, seed: int = 0,
                    config: SpeculationConfig = ST2_DESIGN,
                    model: GPUPowerModel = None,
                    adder_model: AdderEnergyModel = None) -> KernelEvaluation:
    """Run one suite kernel by name and evaluate it end to end
    (misprediction, timing, energy) under ``config``."""
    run = kernel_suite.run_kernel(name, scale=scale, seed=seed)
    return evaluate_run(run, config=config, model=model,
                        adder_model=adder_model)


def evaluate_suite(scale: float = 1.0, seed: int = 0,
                   names=None,
                   config: SpeculationConfig = ST2_DESIGN,
                   model: GPUPowerModel = None,
                   adder_model: AdderEnergyModel = None) -> dict:
    """Run the whole Section VI evaluation; name -> KernelEvaluation."""
    model = model or calibrated_model()
    adder_model = adder_model or default_adder_model()
    runs = kernel_suite.run_suite(scale=scale, seed=seed, names=names)
    return {name: evaluate_run(run, config=config, model=model,
                               adder_model=adder_model)
            for name, run in runs.items()}
