"""Public-API surface: everything documented in README must import and
compose the way the examples show."""

from pathlib import Path

import numpy as np
import pytest

import repro

REPO = Path(repro.__file__).resolve().parents[2]
LAZY_PACKAGES = ["repro", "repro.sim", "repro.st2", "repro.power"]


class TestTopLevelApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_readme_snippet_runs(self):
        """The exact flow from README's quickstart."""
        from repro import (GridLauncher, LaunchConfig, ST2_DESIGN,
                           run_speculation)

        def saxpy(k, a, x, y, out, n):
            i = k.global_id()
            with k.where(k.lt(i, n)):
                xi = k.ld_global(x, i)
                yi = k.ld_global(y, i)
                k.st_global(out, i, k.ffma(a, xi, yi))

        launcher = GridLauncher(seed=0)
        x = launcher.buffer("x", np.random.rand(512).astype(np.float32))
        y = launcher.buffer("y", np.random.rand(512).astype(np.float32))
        out = launcher.buffer("out", np.zeros(512, np.float32))
        run = launcher.run(saxpy, LaunchConfig(4, 128), a=2.0, x=x, y=y,
                           out=out, n=512)
        result = run_speculation(run.trace, ST2_DESIGN)
        assert 0.0 <= result.thread_misprediction_rate <= 1.0
        assert np.allclose(out.data, 2.0 * x.data + y.data, rtol=1e-5)


class TestSweepApi:
    """The sweep surface exported at the top level (PR 9)."""

    def test_sweep_names_export(self):
        from repro import ParetoPoint, SweepResult, SweepSpec
        assert SweepSpec is not None
        assert ParetoPoint is not None
        assert SweepResult is not None

    def test_sweep_spec_round_trip(self):
        from repro import SweepSpec
        spec = SweepSpec(name="api-demo", kernels=("qrng_K2",),
                         axes=(("mechanism", ("static1", "operand")),
                               ("peek", (False, True))),
                         scale=0.5, seed=3)
        clone = SweepSpec.from_wire(spec.to_wire())
        assert clone == spec
        assert clone.digest() == spec.digest()
        assert spec.grid_size == 4

    def test_pareto_point_round_trip(self):
        from repro import ParetoPoint
        point = ParetoPoint(
            key="staticOne",
            objectives={"energy_saved": 0.1,
                        "misprediction_rate": 0.2,
                        "perf_overhead": 0.01},
            members=("staticOne",))
        assert ParetoPoint.from_wire(point.to_wire()) == point


class TestSubpackageApi:
    def test_core_exports(self):
        import repro.core as core
        for name in core.__all__:
            assert hasattr(core, name), name

    def test_sim_exports(self):
        import repro.sim as sim
        for name in sim.__all__:
            assert hasattr(sim, name), name

    def test_power_exports(self):
        import repro.power as power
        for name in power.__all__:
            assert hasattr(power, name), name

    def test_st2_exports(self):
        import repro.st2 as st2
        for name in st2.__all__:
            assert hasattr(st2, name), name

    def test_circuits_exports(self):
        import repro.circuits as circuits
        for name in circuits.__all__:
            assert hasattr(circuits, name), name

    def test_analysis_and_isa_exports(self):
        import repro.analysis as analysis
        import repro.isa as isa
        for mod in (analysis, isa):
            for name in mod.__all__:
                assert hasattr(mod, name), name


class TestLazyExports:
    """The PEP 562 surface of the lazily-exporting packages."""

    @pytest.fixture(scope="class")
    def prose(self):
        return ((REPO / "README.md").read_text()
                + (REPO / "DESIGN.md").read_text())

    @pytest.mark.parametrize("modname", LAZY_PACKAGES)
    def test_every_export_importable_and_documented(self, modname,
                                                    prose):
        """Each lazily-exported name resolves to a real object that is
        documented — its own docstring, or a mention in README/DESIGN."""
        import importlib
        mod = importlib.import_module(modname)
        for name in mod.__all__:
            value = getattr(mod, name)
            assert value is not None, f"{modname}.{name}"
            documented = bool(getattr(value, "__doc__", None)) \
                or name in prose
            assert documented, \
                f"{modname}.{name} has no docstring and is not " \
                "mentioned in README.md/DESIGN.md"

    @pytest.mark.parametrize("modname", LAZY_PACKAGES)
    def test_dir_covers_all(self, modname):
        import importlib
        mod = importlib.import_module(modname)
        assert set(mod.__all__) <= set(dir(mod))

    @pytest.mark.parametrize("modname", LAZY_PACKAGES)
    def test_unknown_attribute_raises(self, modname):
        import importlib
        mod = importlib.import_module(modname)
        with pytest.raises(AttributeError, match="no_such_name"):
            mod.no_such_name

    def test_import_is_light(self):
        """``import repro.st2`` must not drag in the power stack (the
        point of lazy exports: cache-hit runner paths stay cheap)."""
        import os
        import subprocess
        import sys
        code = ("import sys; import repro.st2; "
                "sys.exit(1 if 'repro.power.model' in sys.modules "
                "else 0)")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": str(REPO / "src")})
        assert proc.returncode == 0


class TestTensorGemmExtension:
    def test_runs_and_traces(self):
        from repro.kernels import tensor_gemm
        prep = tensor_gemm.prepare(scale=0.5, seed=0)
        run = prep.run()
        assert len(run.trace) > 100
        # HMMA ops present but not adder-class
        from repro.isa.opcodes import Opcode
        counts = run.insts.counts_by_opcode()
        assert Opcode.HMMA in counts
        assert not Opcode.HMMA.is_adder_op

    def test_epilogue_math(self):
        from repro.kernels import tensor_gemm
        prep = tensor_gemm.prepare(scale=0.5, seed=1)
        c = prep.params["c"].data.copy()
        d0 = prep.params["d"].data.copy()
        prep.run()
        d = prep.params["d"].data
        expect = 1.0 * c + 0.8 * d0
        assert np.allclose(d, expect, rtol=1e-5)
