"""One-shot reproduction report: ``python -m repro.report [scale]``.

Runs the complete evaluation pipeline — suite execution, correlation
study, design-space exploration, circuit characterisation, power-model
calibration/validation, and the end-to-end ST2 GPU comparison — and
prints every figure as an ASCII chart with the paper's numbers
alongside. This is the no-arguments way to see the whole reproduction.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.analysis.ascii_charts import hbar_chart, table
from repro.circuits.characterize import (best_slice_width,
                                         characterize_adders,
                                         slice_bitwidth_sweep)
from repro.core.correlation import slice_carry_correlation
from repro.core.speculation import DESIGN_LADDER, FIG3_CONFIGS, explore
from repro.isa.opcodes import MixCategory
from repro.kernels.suite import run_suite
from repro.power.activity import activity_from_run
from repro.power.calibration import calibrate
from repro.power.hardware import SyntheticSilicon
from repro.power.validation import validate
from repro.sim.pipeline import simulate_sm
from repro.st2.architecture import evaluate_suite
from repro.st2.overheads import overhead_report


def _section(title: str) -> None:
    print(f"\n{'=' * 70}\n{title}\n{'=' * 70}")


def main(scale: float = None, seed: int = 0) -> None:
    if scale is None:   # console-script entry: read argv
        scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    t0 = time.time()
    print(f"ST2 GPU reproduction report (scale={scale}, seed={seed})")

    _section("Executing the 23-kernel suite")
    runs = run_suite(scale=scale, seed=seed)
    total_rows = sum(len(r.trace) for r in runs.values())
    print(f"{len(runs)} kernels, {total_rows:,} adder operations, "
          f"{sum(r.insts.thread_instructions() for r in runs.values()):,}"
          f" dynamic thread instructions  [{time.time() - t0:.1f}s]")

    _section("Figure 1 — instruction mix")
    arith = []
    for name, run in runs.items():
        mix = run.insts.mix()
        tot = sum(mix.values())
        arith.append(sum(v for k, v in mix.items()
                         if k is not MixCategory.OTHER) / tot)
    print(hbar_chart("ALU+FPU fraction of dynamic instructions",
                     list(runs), arith, vmax=1.0))
    print(f"\n>20% arithmetic: {sum(a > 0.2 for a in arith)}/23 "
          "(paper: 21/23)")

    _section("Figure 3 — slice carry-in correlation")
    f3 = {c.name: [] for c in FIG3_CONFIGS}
    for name, run in runs.items():
        for k, v in slice_carry_correlation(run.trace,
                                            name).match_rates.items():
            f3[k].append(v)
    paper3 = {"Prev+Gtid": "50%", "Prev+FullPC+Gtid": "83%",
              "Prev+FullPC+Ltid": "89%"}
    for k, v in f3.items():
        print(f"  {k:20s} {np.nanmean(v):6.1%}  (paper {paper3[k]})")

    _section("Figure 5 — carry-speculation design space")
    ladder = {c.name: [] for c in DESIGN_LADDER}
    for run in runs.values():
        for p in explore(run.trace):
            ladder[p.config.name].append(p.misprediction_rate)
    means = {k: float(np.mean(v)) for k, v in ladder.items()}
    print(hbar_chart("avg thread misprediction rate",
                     list(means), list(means.values())))
    st2r = means["Ltid+Prev+ModPC4+Peek"]
    print(f"\nST2 vs VaLHALLA: {1 - st2r / means['VaLHALLA']:.0%} lower"
          " (paper: 65% lower)")

    _section("Section V-B — circuit characterisation")
    points = slice_bitwidth_sweep()
    p8 = next(p for p in points if p.slice_width == 8)
    adder = characterize_adders()
    print(f"best slice width: {best_slice_width(points)} (paper: 8)\n"
          f"8-bit slice voltage: {p8.vdd_fraction:.0%} of nominal "
          f"(paper: 60%)\n"
          f"potential per-adder saving: {p8.potential_saving:.1%} "
          f"(paper: 75-87%)\n"
          f"ST2 adder saving at 9% miss: {adder.saving(0.09, 1.94):.1%}"
          " (paper: ~70%)")

    _section("Section V-C — power-model calibration + validation")
    silicon = SyntheticSilicon(seed=seed)
    cal = calibrate(silicon)
    acts = {n: activity_from_run(r, simulate_sm(r.insts, r.launch),
                                 name=n) for n, r in runs.items()}
    val = validate(cal.model, acts, silicon)
    print(f"training MAPE (123 stressors): {cal.training_mape:.1%}\n"
          f"validation: {val.summary()}\n"
          "(paper: 10.5% +/- 3.8%, r = 0.8)")

    _section("Section VI — ST2 GPU end-to-end")
    evals = evaluate_suite(scale=scale, seed=seed, model=cal.model)
    rows = [(n, f"{e.misprediction_rate:.1%}", f"{e.slowdown:+.2%}",
             f"{e.energy.alu_fpu_share:.1%}", f"{e.system_saving:.1%}",
             f"{e.chip_saving:.1%}") for n, e in evals.items()]
    print(table("per-kernel evaluation",
                ["kernel", "miss", "slowdown", "ALU+FPU share",
                 "system saving", "chip saving"], rows))
    miss = np.mean([e.misprediction_rate for e in evals.values()])
    slow = np.mean([e.slowdown for e in evals.values()])
    sys_s = np.mean([e.system_saving for e in evals.values()])
    chip_s = np.mean([e.chip_saving for e in evals.values()])
    print(f"\naverages: miss {miss:.1%} (paper 9%), slowdown "
          f"{slow:.2%} (paper 0.36%),\n  system saving {sys_s:.1%} "
          f"(paper 19%), chip saving {chip_s:.1%} (paper 21%)")

    _section("Section VI — overheads")
    rep = overhead_report()
    print(f"CRF: {rep.crf_bytes_per_sm} B/SM, "
          f"{rep.crf_bytes_chip / 1024:.0f} kB/chip (paper: 448 B, "
          "~35 kB)\n"
          f"total ST2 storage: {rep.total_storage_bytes / 1024:.0f} kB "
          f"= {rep.storage_fraction:.3%} of on-chip SRAM "
          "(paper: ~50 kB, 0.09%)\n"
          f"level shifters: {rep.shifter_area_fraction:.2%} of chip "
          f"area, {rep.shifter_static_w:.2f} W static "
          "(paper: <0.68%, ~0.6 W)")

    print(f"\nreport complete in {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main(scale=float(sys.argv[1]) if len(sys.argv) > 1 else 1.0)
