"""Differential fuzzing of the ST2 reproduction (``st2-fuzz``).

Seeded property-based kernel generation (:mod:`repro.fuzz.gen` over
the :mod:`repro.fuzz.kast` mini-AST), a three-way oracle
(:mod:`repro.fuzz.oracles`) cross-validating the interpreter and the
vectorized engine, the static carry facts / flow analysis, and the
speculative adder against an independent big-int reference, plus
delta-debugging (:mod:`repro.fuzz.shrink`) and the committed
counterexample corpus (:mod:`repro.fuzz.corpus`).
"""

from repro.fuzz.gen import FuzzProfile, GeneratedKernel, generate_kernel
from repro.fuzz.kast import Program
from repro.fuzz.oracles import (KernelVerdict, OracleFailure,
                                check_kernel)
from repro.fuzz.shrink import ShrinkOutcome, minimize

__all__ = [
    "FuzzProfile", "GeneratedKernel", "KernelVerdict", "OracleFailure",
    "Program", "ShrinkOutcome", "check_kernel", "generate_kernel",
    "minimize",
]
