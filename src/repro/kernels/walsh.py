"""CUDA Samples *fastWalshTransform* — ``walsh_K1`` (fwtBatch2, global
strided butterflies) and ``walsh_K2`` (fwtBatch1, shared-memory stage).

Both stages are pure add/sub butterflies ``(a+b, a-b)`` — the canonical
FPU-add workload.  K1 runs the coarse strided passes in global memory;
K2 runs the fine-grained passes of one 2*BLOCK chunk in shared memory.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128


def fwt_batch2_kernel(k, data, stride, n):
    """walsh_K1: one global butterfly pass at the given stride."""
    t = k.global_id()
    pos = k.iadd(k.imul(k.idiv(t, stride), k.imul(stride, 2)),
                 k.irem(t, stride))
    with k.where(k.lt(pos, n - stride)):
        i1 = k.iadd(pos, stride)
        d0 = k.ld_global(data, pos)
        d1 = k.ld_global(data, i1)
        k.st_global(data, pos, k.fadd(d0, d1))
        k.st_global(data, i1, k.fsub(d0, d1))


def fwt_batch1_kernel(k, data, n_passes):
    """walsh_K2: all fine butterflies of one chunk in shared memory."""
    tx = k.thread_id()
    base = k.block_id * (2 * BLOCK)
    pos = k.iadd(base, tx)       # the chunk-base pointer bump is a real IADD
    s_data = k.shared(2 * BLOCK, np.float32)
    k.st_shared(s_data, tx, k.ld_global(data, pos))
    # +BLOCK folds into the LDG/LDS immediate offset field on hardware
    k.st_shared(s_data, tx + BLOCK,             # st2-lint: disable=L1
                k.ld_global(data, pos + BLOCK))  # st2-lint: disable=L1
    k.syncthreads()

    stride = BLOCK
    for _p in k.range(n_passes):
        lo = k.iadd(k.imul(k.idiv(tx, stride), k.imul(stride, 2)),
                    k.irem(tx, stride))
        hi = k.iadd(lo, stride)
        d0 = k.ld_shared(s_data, lo)
        d1 = k.ld_shared(s_data, hi)
        k.st_shared(s_data, lo, k.fadd(d0, d1))
        k.st_shared(s_data, hi, k.fsub(d0, d1))
        k.syncthreads()
        stride = max(stride // 2, 1)

    k.st_global(data, pos, k.ld_shared(s_data, tx))
    # +BLOCK folds into the LDG/LDS immediate offset field on hardware
    k.st_global(data, pos + BLOCK,              # st2-lint: disable=L1
                k.ld_shared(s_data, tx + BLOCK))  # st2-lint: disable=L1


def _signal(rng, n):
    """A mixed-tone signal: Walsh spectra concentrate, so butterfly
    operands shrink as passes proceed (temporal correlation)."""
    t = np.arange(n)
    sig = (np.sin(t / 17.0) + 0.5 * np.sign(np.sin(t / 5.0))
           + rng.normal(0, 0.1, n))
    return sig.astype(np.float32)


def prepare_k1(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    n = scaled(8, scale, minimum=2) * 2 * BLOCK
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="walsh_K1",
        fn=fwt_batch2_kernel,
        launch=LaunchConfig(n // (2 * BLOCK), BLOCK),
        params=dict(data=launcher.buffer("data", _signal(rng, n)),
                    stride=n // 4, n=n),
        launcher=launcher)


def prepare_k2(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    n = scaled(8, scale, minimum=2) * 2 * BLOCK
    n_passes = int(np.log2(2 * BLOCK))
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="walsh_K2",
        fn=fwt_batch1_kernel,
        launch=LaunchConfig(n // (2 * BLOCK), BLOCK),
        params=dict(data=launcher.buffer("data", _signal(rng, n)),
                    n_passes=n_passes),
        launcher=launcher)
