"""CUDA Samples *quasirandomGenerator* — ``qrng_K1``
(quasirandomGeneratorKernel) and ``qrng_K2`` (inverseCNDKernel).

K1 builds Niederreiter quasirandom points: for every output index it
XOR-accumulates direction-table entries selected by the index bits
(shift/AND/XOR integer storm + the index adds), then scales to [0,1) —
this is the kernel the paper singles out as spending 57 % of system
energy in ALUs/FPUs.

K2 applies Moro's inverse cumulative normal to the samples: a rational
polynomial in FFMA form with log/sqrt on the tails.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128
QRNG_DIMENSIONS = 3
INT_SCALE = np.float32(1.0 / (1 << 31))

# Moro's MOROINV coefficients (central region)
_A = (2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637)
_B = (-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833)


def qrng_kernel(k, tables, output, n, n_bits):
    """qrng_K1: Niederreiter point generation for all dimensions."""
    t = k.global_id()
    with k.where(k.lt(t, n)):
        for dim in k.range(QRNG_DIMENSIONS):
            table_base = k.imul(dim, n_bits)
            acc = np.zeros(k.n_threads, dtype=np.int64)
            pos = k.iadd(t, 1)          # sequence index (1-based)
            for bit in k.range(n_bits):
                take = k.ne(k.iand(k.shr(pos, bit), 1), 0)
                entry = k.ld_const(tables, k.iadd(table_base, bit))
                acc = k.sel(take, k.ixor(acc, entry), acc)
            val = k.fmul(k.cvt_f32(acc), INT_SCALE)
            out_idx = k.imad(dim, n, t)
            k.st_global(output, out_idx, val)


def inverse_cnd_kernel(k, samples, output, n):
    """qrng_K2: Moro's inverse cumulative normal distribution."""
    t = k.global_id()
    with k.where(k.lt(t, n)):
        p = k.ld_global(samples, t)
        x = k.fsub(p, 0.5)
        z = k.fmul(x, x)
        # central region rational polynomial (Horner FFMA chains)
        num = np.full(k.n_threads, np.float32(_A[3]))
        for c in (_A[2], _A[1], _A[0]):
            num = k.ffma(num, z, np.float32(c))
        num = k.fmul(num, x)
        den = np.full(k.n_threads, np.float32(_B[3]))
        for c in (_B[2], _B[1], _B[0]):
            den = k.ffma(den, z, np.float32(c))
        den = k.ffma(den, z, 1.0)
        central = k.fdiv(num, den)
        # tail region: rough log/sqrt based expansion
        tail_p = k.fmin(p, k.fsub(1.0, p))
        lg = k.log(tail_p)
        tail = k.sqrt(k.fmul(-2.0, lg))
        signed_tail = k.sel(k.fgt(p, 0.5), tail, k.fneg(tail))
        in_tail = (np.asarray(p) < 0.08) | (np.asarray(p) > 0.92)
        k.st_global(output, t, k.sel(in_tail, signed_tail, central))


def _direction_tables(rng, n_bits):
    """Niederreiter-like direction numbers: distinct bit patterns per
    dimension with progressively lower-order structure."""
    tables = np.zeros(QRNG_DIMENSIONS * n_bits, dtype=np.int64)
    for dim in range(QRNG_DIMENSIONS):
        v = 1 << 30
        for bit in range(n_bits):
            tables[dim * n_bits + bit] = v ^ int(
                rng.integers(0, 1 << (10 + dim * 3)))
            v >>= 1
    return tables.astype(np.int32)


def prepare_k1(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    n = scaled(512, scale, minimum=BLOCK, multiple=BLOCK)
    n_bits = 20
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="qrng_K1",
        fn=qrng_kernel,
        launch=LaunchConfig(n // BLOCK, BLOCK),
        params=dict(
            tables=launcher.buffer("tables",
                                   _direction_tables(rng, n_bits)),
            output=launcher.buffer(
                "output", np.zeros(QRNG_DIMENSIONS * n, np.float32)),
            n=n, n_bits=n_bits),
        launcher=launcher)


def prepare_k2(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    n = scaled(2048, scale, minimum=BLOCK, multiple=BLOCK)
    # quasirandom input: a scrambled van-der-Corput-like sequence
    samples = ((np.arange(n) * 0.6180339887) % 1.0).astype(np.float32)
    samples = np.clip(samples, 1e-6, 1 - 1e-6)
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="qrng_K2",
        fn=inverse_cnd_kernel,
        launch=LaunchConfig(n // BLOCK, BLOCK),
        params=dict(
            samples=launcher.buffer("samples", samples),
            output=launcher.buffer("output", np.zeros(n, np.float32)),
            n=n),
        launcher=launcher)
