"""metrics.json I/O, metric refs, diffs and baseline checks."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import Obs
from repro.obs.metrics import (baseline_from_metrics, check_baseline,
                               check_baseline_rows, diff_metrics,
                               flatten_metrics, load_baseline,
                               lookup_metric, metrics_path_for,
                               read_metrics, write_metrics)


@pytest.fixture
def snapshot():
    reg = Obs()
    reg.add("sim.functional.trace_rows", 100)
    reg.add("core.predict.ops", 40)
    reg.record_timer("runner.stage.eval", 2.0)
    reg.record_timer("core.predict", 0.5)
    return reg.snapshot()


class TestPathMapping:
    def test_manifest_to_metrics(self):
        assert metrics_path_for("out/st2_manifest.jsonl") \
            == Path("out/st2_manifest.metrics.json")

    def test_idempotent_on_metrics_path(self):
        p = Path("run.metrics.json")
        assert metrics_path_for(p) == p


class TestRoundTrip:
    def test_write_read(self, tmp_path, snapshot):
        meta = {"kernels": ["qrng_K2"], "workers": 2}
        path = write_metrics(tmp_path / "m.metrics.json", snapshot,
                             meta=meta)
        back = read_metrics(path)
        assert back["meta"] == meta
        assert back["counters"] == snapshot["counters"]
        assert back["timers"] == snapshot["timers"]

    def test_creates_parent_dirs(self, tmp_path, snapshot):
        path = write_metrics(tmp_path / "a" / "b" / "m.json", snapshot)
        assert path.is_file()

    def test_version_check(self, tmp_path):
        bad = tmp_path / "old.json"
        bad.write_text(json.dumps({"metrics_version": 99}))
        with pytest.raises(ValueError, match="version"):
            read_metrics(bad)


class TestMetricRefs:
    def test_flatten(self, snapshot):
        flat = flatten_metrics(snapshot)
        assert flat["counters.core.predict.ops"] == 40
        assert flat["timers.core.predict.count"] == 1
        assert flat["timers.runner.stage.eval.total_s"] \
            == pytest.approx(2.0)
        assert list(flat) == sorted(flat)

    def test_lookup(self, snapshot):
        assert lookup_metric(snapshot, "counters.core.predict.ops") == 40
        assert lookup_metric(snapshot, "timers.core.predict.mean_s") \
            == pytest.approx(0.5)

    @pytest.mark.parametrize("ref", [
        "counters.nope", "timers.core.predict.widgets",
        "timers.nope.count", "bogus", "bogus.thing"])
    def test_lookup_misses_raise_keyerror(self, snapshot, ref):
        with pytest.raises(KeyError):
            lookup_metric(snapshot, ref)

    def test_meta_refs_traverse_nested_numbers(self, snapshot):
        metrics = {**snapshot,
                   "meta": {"stage_eval_s": 0.25, "workers": 2,
                            "grid": {"n_units": 8}}}
        assert lookup_metric(metrics, "meta.stage_eval_s") \
            == pytest.approx(0.25)
        assert lookup_metric(metrics, "meta.workers") == 2
        assert lookup_metric(metrics, "meta.grid.n_units") == 8

    @pytest.mark.parametrize("ref", [
        "meta.nope",                 # absent key
        "meta.grid",                 # dict, not a number
        "meta.kernels",              # list, not a number
        "meta.tag",                  # string, not a number
        "meta.flag",                 # bool is not a metric
        "meta.stage_eval_s.deeper",  # descends through a scalar
    ])
    def test_meta_refs_are_numeric_only(self, snapshot, ref):
        metrics = {**snapshot,
                   "meta": {"stage_eval_s": 0.25, "flag": True,
                            "tag": "x", "kernels": ["qrng_K2"],
                            "grid": {"n_units": 8}}}
        with pytest.raises(KeyError):
            lookup_metric(metrics, ref)


class TestDiff:
    def test_aligned_rows(self, snapshot):
        other = Obs()
        other.add("core.predict.ops", 50)
        other.add("new.counter", 1)
        rows = {r["metric"]: r
                for r in diff_metrics(snapshot, other.snapshot())}
        changed = rows["counters.core.predict.ops"]
        assert (changed["old"], changed["new"]) == (40, 50)
        assert changed["delta"] == 10
        assert changed["rel"] == pytest.approx(0.25)
        one_sided = rows["counters.new.counter"]
        assert one_sided["old"] is None and one_sided["delta"] is None

    def test_identical_files_all_zero(self, snapshot):
        assert all(r["delta"] == 0
                   for r in diff_metrics(snapshot, snapshot))


class TestBaseline:
    def test_generate_check_round_trip(self, tmp_path, snapshot):
        """A baseline seeded from a run must accept that same run."""
        baseline = baseline_from_metrics(snapshot, rel_tol=0.05)
        assert check_baseline(snapshot, baseline) == []

    def test_counter_drift_out_of_band(self, snapshot):
        baseline = baseline_from_metrics(snapshot, rel_tol=0.05)
        drifted = Obs()
        drifted.add("sim.functional.trace_rows", 120)   # +20% > 5%
        drifted.add("core.predict.ops", 40)
        problems = check_baseline(drifted.snapshot(), baseline)
        assert any("trace_rows" in p for p in problems)

    def test_missing_metric_reported(self, snapshot):
        baseline = {"bench_version": 1, "metrics": [
            {"metric": "counters.not.there", "value": 1}]}
        problems = check_baseline(snapshot, baseline)
        assert problems == ["counters.not.there: missing from metrics"]

    def test_max_min_bounds(self, snapshot):
        baseline = {"bench_version": 1, "metrics": [
            {"metric": "timers.runner.stage.eval.total_s", "max": 1.0},
            {"metric": "counters.core.predict.ops", "min": 100}]}
        problems = check_baseline(snapshot, baseline)
        assert len(problems) == 2

    def test_only_runner_timers_pinned(self, snapshot):
        baseline = baseline_from_metrics(snapshot)
        refs = [e["metric"] for e in baseline["metrics"]]
        assert "timers.runner.stage.eval.total_s" in refs
        assert not any(r.startswith("timers.core") for r in refs)

    def test_load_rejects_bad_shapes(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"bench_version": 99, "metrics": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)
        path.write_text(json.dumps({"bench_version": 1}))
        with pytest.raises(ValueError, match="metrics"):
            load_baseline(path)
        path.write_text(json.dumps({"bench_version": 1,
                                    "metrics": [{"value": 3}]}))
        with pytest.raises(ValueError, match="metric"):
            load_baseline(path)


class TestBaselineRows:
    """The structured per-entry report behind ``check --json`` — one
    row per pinned metric, in baseline order, carrying the bound that
    applied."""

    BASELINE = {"bench_version": 1, "metrics": [
        {"metric": "counters.core.predict.ops", "value": 40,
         "rel_tol": 0.05},
        {"metric": "timers.runner.stage.eval.total_s", "max": 1.0},
        {"metric": "counters.core.predict.ops", "min": 100},
        {"metric": "counters.not.there", "value": 1},
    ]}

    def test_rows_in_baseline_order(self, snapshot):
        rows = check_baseline_rows(snapshot, self.BASELINE)
        assert [r["metric"] for r in rows] == \
            [e["metric"] for e in self.BASELINE["metrics"]]

    def test_value_pin_row(self, snapshot):
        row = check_baseline_rows(snapshot, self.BASELINE)[0]
        assert row["ok"] and row["problems"] == []
        assert row["value"] == 40
        assert row["expect"] == 40
        assert row["band"] == pytest.approx(2.0)     # 5% of 40
        assert "max" not in row and "min" not in row

    def test_max_pin_row_violation(self, snapshot):
        row = check_baseline_rows(snapshot, self.BASELINE)[1]
        assert not row["ok"]
        assert row["value"] == pytest.approx(2.0)
        assert row["max"] == 1.0
        assert "expect" not in row
        assert any("exceeds max" in p for p in row["problems"])

    def test_min_pin_row_violation(self, snapshot):
        row = check_baseline_rows(snapshot, self.BASELINE)[2]
        assert not row["ok"]
        assert row["min"] == 100
        assert any("below min" in p for p in row["problems"])

    def test_missing_metric_row(self, snapshot):
        row = check_baseline_rows(snapshot, self.BASELINE)[3]
        assert row["value"] is None
        assert not row["ok"]
        assert row["problems"] == \
            ["counters.not.there: missing from metrics"]

    def test_flat_check_is_the_rows_problems(self, snapshot):
        rows = check_baseline_rows(snapshot, self.BASELINE)
        assert check_baseline(snapshot, self.BASELINE) == \
            [p for r in rows for p in r["problems"]]

    def test_meta_ref_checkable(self, snapshot):
        metrics = {**snapshot, "meta": {"stage_eval_s": 0.09}}
        baseline = {"bench_version": 1, "metrics": [
            {"metric": "meta.stage_eval_s", "max": 0.2}]}
        (row,) = check_baseline_rows(metrics, baseline)
        assert row["ok"] and row["value"] == pytest.approx(0.09)
