"""Extension kernels: secondary kernels of the suite workloads."""

import numpy as np
import pytest

from repro.core.predictors import run_speculation
from repro.core.speculation import ST2_DESIGN
from repro.kernels import dct8x8, histogram, mriq, sradv1
from repro.kernels.suite import (EXTENDED_NAMES, EXTENDED_SUITE,
                                 run_kernel)

SCALE = 0.2


class TestRegistry:
    def test_extension_kernels_registered(self):
        assert len(EXTENDED_SUITE) == 10
        assert "tensorGemm" in EXTENDED_NAMES
        assert "reduction" in EXTENDED_NAMES
        assert "affineChain" in EXTENDED_NAMES

    def test_run_kernel_reaches_extensions(self):
        run = run_kernel("mri-q_K2", scale=SCALE, use_cache=False)
        assert len(run.trace) > 0

    def test_extensions_work_with_st2_machinery(self):
        run = run_kernel("histo_K2", scale=SCALE, use_cache=False)
        res = run_speculation(run.trace, ST2_DESIGN)
        assert 0.0 <= res.thread_misprediction_rate <= 1.0


class TestSrad2:
    def test_update_moves_image_toward_smoothness(self):
        prep = sradv1.prepare_k2(scale=SCALE, seed=0)
        before = prep.params["image"].data.copy()
        prep.run()
        after = prep.params["image"].data
        assert not np.array_equal(before, after)
        # diffusion smooths: total variation must not increase much
        rows, cols = prep.params["rows"], prep.params["cols"]
        tv = lambda img: np.abs(
            np.diff(img.reshape(rows, cols), axis=1)).sum()
        assert tv(after) < tv(before) * 1.05


class TestDct2D:
    def test_column_pass_completes_2d_dct(self):
        prep = dct8x8.prepare_k2(scale=SCALE, seed=0)
        prep.run()
        out = prep.params["out"].data
        w = prep.params["blocks_per_row"] * 8
        # Parseval over each 8x8 tile: 2-D DCT preserves tile energy
        coeffs = prep.params["coeffs"].data.reshape(-1, w)
        out2 = out.reshape(-1, w)
        for by in range(coeffs.shape[0] // 8):
            for bx in range(w // 8):
                tile_in = coeffs[by * 8:(by + 1) * 8,
                                 bx * 8:(bx + 1) * 8]
                tile_out = out2[by * 8:(by + 1) * 8,
                                bx * 8:(bx + 1) * 8]
                assert np.allclose((tile_in ** 2).sum(),
                                   (tile_out ** 2).sum(), rtol=1e-3)


class TestHistogramMerge:
    def test_merged_totals_exact(self):
        prep = histogram.prepare_merge(scale=SCALE, seed=0)
        partial = prep.params["partial_hist"].data.copy()
        prep.run()
        merged = prep.params["hist"].data
        expect = partial.reshape(-1, histogram.BINS).sum(axis=0)
        assert np.array_equal(merged, expect)


class TestReduction:
    def test_block_sums_match_reference(self):
        from repro.kernels import reduction
        prep = reduction.prepare(scale=0.3, seed=0)
        data = prep.params["data"].data.copy()
        n = prep.params["n"]
        ipt = prep.params["items_per_thread"]
        total_threads = prep.launch.total_threads
        prep.run()
        partial = prep.params["partial"].data
        for b in range(prep.launch.grid_blocks):
            tids = np.arange(b * 128, (b + 1) * 128)
            idxs = np.concatenate(
                [tids + i * total_threads for i in range(ipt)])
            idxs = idxs[idxs < n]
            expect = data[idxs].astype(np.float64).sum()
            assert partial[b] == pytest.approx(expect, rel=1e-4)

    def test_warp_reduction_traces_fpu_adds(self):
        from repro.isa.opcodes import MixCategory
        from repro.kernels import reduction
        run = reduction.prepare(scale=0.2, seed=1).run()
        mix = run.insts.mix()
        assert mix[MixCategory.FPU_ADD] > 0


class TestJacobiDP:
    def test_stencil_math(self):
        from repro.kernels import dp_stencil
        prep = dp_stencil.prepare(scale=SCALE, seed=0)
        rows, cols = prep.params["rows"], prep.params["cols"]
        g = prep.params["grid_in"].data.reshape(rows, cols).copy()
        prep.run()
        out = prep.params["grid_out"].data.reshape(rows, cols)
        expect = 0.25 * (g[:-2, 1:-1] + g[2:, 1:-1]
                         + g[1:-1, :-2] + g[1:-1, 2:])
        assert np.allclose(out[1:-1, 1:-1], expect)
        # boundaries untouched
        assert np.array_equal(out[0], g[0])

    def test_uses_the_dpu_mantissa_adder(self):
        from repro.kernels import dp_stencil
        run = dp_stencil.prepare(scale=SCALE, seed=0).run()
        assert 52 in np.unique(run.trace.width)
        # 52-bit ops predict 6 carries (7 slices)
        from repro.core.predictors import trace_n_predictions
        n_preds = trace_n_predictions(run.trace)
        assert 6 in np.unique(n_preds)

    def test_st2_predicts_smooth_fp64_fields_well(self):
        from repro.kernels import dp_stencil
        run = dp_stencil.prepare(scale=0.5, seed=0).run()
        res = run_speculation(run.trace, ST2_DESIGN)
        assert res.thread_misprediction_rate < 0.5


class TestHotspot:
    def test_transient_step(self):
        from repro.kernels import hotspot
        prep = hotspot.prepare(scale=SCALE, seed=0)
        tin = prep.params["temp_in"].data.copy()
        prep.run()
        rows, cols = prep.params["rows"], prep.params["cols"]
        t = tin.reshape(rows, cols).astype(np.float64)
        p = prep.params["power"].data.reshape(rows, cols)
        vert = (t[:-2, 1:-1] + t[2:, 1:-1] - 2 * t[1:-1, 1:-1]) * 0.1
        horiz = (t[1:-1, :-2] + t[1:-1, 2:] - 2 * t[1:-1, 1:-1]) * 0.1
        sink = (300.0 - t[1:-1, 1:-1]) * 0.05
        expect = t[1:-1, 1:-1] + 0.5 * (vert + horiz
                                        + p[1:-1, 1:-1] + sink)
        out = prep.params["temp_out"].data.reshape(rows, cols)
        assert np.allclose(out[1:-1, 1:-1], expect, rtol=1e-4)

    def test_smooth_fields_predict_well(self):
        from repro.kernels import hotspot
        run = hotspot.prepare(scale=0.4, seed=0).run()
        res = run_speculation(run.trace, ST2_DESIGN)
        assert res.thread_misprediction_rate < 0.45


class TestNeedle:
    def test_dp_matches_host_reference(self):
        from repro.kernels import needle
        prep = needle.prepare(scale=SCALE, seed=3)
        score0 = prep.params["score"].data.copy()
        ref = prep.params["reference"].data.copy()
        n = prep.params["n"]
        prep.run()
        got = prep.params["score"].data.reshape(n + 1, n + 1)
        expect = needle.nw_reference(score0, ref, n)
        assert np.array_equal(got, expect)

    def test_wavefront_has_loop_structure(self):
        from repro.kernels import needle
        run = needle.prepare(scale=SCALE, seed=0).run()
        pcs, counts = np.unique(run.trace.pc, return_counts=True)
        assert counts.max() > 50     # diagonal loop re-executes PCs


class TestPhiMag:
    def test_magnitudes(self):
        prep = mriq.prepare_phimag(scale=SCALE, seed=0)
        prep.run()
        r = prep.params["phi_r"].data
        i = prep.params["phi_i"].data
        mag = prep.params["phi_mag"].data
        assert np.allclose(mag, r * r + i * i, rtol=1e-5)
