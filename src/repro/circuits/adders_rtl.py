"""Gate-level adder datapaths: ripple, parallel-prefix, and the ST2
sliced datapath.

* :func:`ripple_carry_adder` — the minimal-area design, one full adder
  per bit (long carry chain).
* :func:`kogge_stone_adder` — the speed-optimal parallel-prefix design;
  our stand-in for the DesignWare reference adder the paper synthesises
  with default balanced settings.
* :func:`sliced_adder` — the ST2 datapath: independent prefix sub-adders
  per 8-bit slice, each with its own carry-in input (driven by the
  speculation unit), plus the per-slice XOR comparator that detects
  carry mispredictions.

All builders return a :class:`~repro.circuits.netlist.Netlist` whose
inputs are ``a[width] | b[width] | cin...`` and whose outputs are the
sum bits (plus carry/error outputs).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.netlist import Netlist


def _full_adder(net: Netlist, a: int, b: int, cin: int) -> tuple:
    """Returns (sum, cout) nodes using the standard 5-gate mapping."""
    axb = net.gate("XOR", a, b)
    s = net.gate("XOR", axb, cin)
    g = net.gate("AND", a, b)
    p = net.gate("AND", axb, cin)
    cout = net.gate("OR", g, p)
    return s, cout


def ripple_carry_adder(width: int, with_cin: bool = True) -> Netlist:
    """Chain of full adders — minimal gates, O(width) delay."""
    net = Netlist(f"rca{width}")
    a = net.input(width)
    b = net.input(width)
    carry = net.input() if with_cin else net.gate("XOR", a[0], a[0])
    sums = []
    for i in range(width):
        s, carry = _full_adder(net, a[i], b[i], carry)
        sums.append(s)
    net.mark_output(*sums, carry)
    return net


def kogge_stone_adder(width: int, with_cin: bool = True) -> Netlist:
    """Parallel-prefix adder — O(log width) delay, the fast reference."""
    net = Netlist(f"ks{width}")
    a = net.input(width)
    b = net.input(width)
    cin = net.input() if with_cin else None

    p = [net.gate("XOR", a[i], b[i]) for i in range(width)]
    g = [net.gate("AND", a[i], b[i]) for i in range(width)]
    if cin is not None:
        # fold the carry-in into bit 0's generate
        g[0] = net.gate("OR", g[0], net.gate("AND", p[0], cin))

    # Kogge-Stone prefix tree over (g, p)
    gp, pp = list(g), list(p)
    dist = 1
    while dist < width:
        new_g, new_p = list(gp), list(pp)
        for i in range(dist, width):
            new_g[i] = net.gate(
                "OR", gp[i], net.gate("AND", pp[i], gp[i - dist]))
            new_p[i] = net.gate("AND", pp[i], pp[i - dist])
        gp, pp = new_g, new_p
        dist *= 2

    # carry into bit i is gp[i-1]; sum_i = p_i ^ carry_i
    sums = [p[0] if cin is None else net.gate("XOR", p[0], cin)]
    for i in range(1, width):
        sums.append(net.gate("XOR", p[i], gp[i - 1]))
    net.mark_output(*sums, gp[width - 1])
    return net


def brent_kung_adder(width: int, with_cin: bool = True) -> Netlist:
    """Area-balanced parallel-prefix adder (Brent-Kung tree).

    Our stand-in for the DesignWare reference adder synthesised with the
    *default balanced* settings the paper uses: fewer prefix nodes than
    Kogge-Stone, but roughly 2*log2(w) prefix levels — slower and, with
    its deep unbalanced paths, glitch-prone.
    """
    net = Netlist(f"bk{width}")
    a = net.input(width)
    b = net.input(width)
    cin = net.input() if with_cin else None

    p = [net.gate("XOR", a[i], b[i]) for i in range(width)]
    g = [net.gate("AND", a[i], b[i]) for i in range(width)]
    if cin is not None:
        g[0] = net.gate("OR", g[0], net.gate("AND", p[0], cin))

    gp, pp = list(g), list(p)

    def combine(hi, lo):
        new_g = net.gate("OR", gp[hi], net.gate("AND", pp[hi], gp[lo]))
        new_p = net.gate("AND", pp[hi], pp[lo])
        gp[hi], pp[hi] = new_g, new_p

    # Build the tree of the next power-of-two width, skipping combines
    # whose target lies beyond `width` (their sources always lie within
    # range whenever the target does, so skipping is safe).
    padded = 1
    while padded < width:
        padded *= 2
    # up-sweep (reduce)
    dist = 1
    while dist < padded:
        for i in range(2 * dist - 1, padded, 2 * dist):
            if i < width:
                combine(i, i - dist)
        dist *= 2
    # down-sweep (distribute)
    dist = padded // 4
    while dist >= 1:
        for i in range(3 * dist - 1, padded, 2 * dist):
            if i < width:
                combine(i, i - dist)
        dist //= 2

    sums = [p[0] if cin is None else net.gate("XOR", p[0], cin)]
    for i in range(1, width):
        sums.append(net.gate("XOR", p[i], gp[i - 1]))
    net.mark_output(*sums, gp[width - 1])
    return net


def sliced_adder(width: int, slice_width: int = 8) -> Netlist:
    """The ST2 datapath: per-slice prefix adders with predicted carries.

    Inputs: ``a[width] | b[width] | cin | cpred[n_slices-1]``.
    Outputs: per-slice sums, per-slice carry-outs, and the per-slice
    error signals ``E[i] = cpred[i-1] XOR cout[i-1]`` that trigger the
    second-cycle recompute.
    """
    net = Netlist(f"st2_{width}x{slice_width}")
    a = net.input(width)
    b = net.input(width)
    cin = net.input()
    bounds = []
    lo = 0
    while lo < width:
        bounds.append((lo, min(lo + slice_width, width)))
        lo = min(lo + slice_width, width)
    cpred = net.input(len(bounds) - 1) if len(bounds) > 1 else []
    if isinstance(cpred, int):
        cpred = [cpred]

    slice_couts = []
    all_sums = []
    for idx, (s_lo, s_hi) in enumerate(bounds):
        w = s_hi - s_lo
        carry = cin if idx == 0 else cpred[idx - 1]
        # per-slice Kogge-Stone
        p = [net.gate("XOR", a[s_lo + i], b[s_lo + i]) for i in range(w)]
        g = [net.gate("AND", a[s_lo + i], b[s_lo + i]) for i in range(w)]
        g[0] = net.gate("OR", g[0], net.gate("AND", p[0], carry))
        gp, pp = list(g), list(p)
        dist = 1
        while dist < w:
            ng, npp = list(gp), list(pp)
            for i in range(dist, w):
                ng[i] = net.gate(
                    "OR", gp[i], net.gate("AND", pp[i], gp[i - dist]))
                npp[i] = net.gate("AND", pp[i], pp[i - dist])
            gp, pp = ng, npp
            dist *= 2
        sums = [net.gate("XOR", p[0], carry)]
        for i in range(1, w):
            sums.append(net.gate("XOR", p[i], gp[i - 1]))
        all_sums.extend(sums)
        slice_couts.append(gp[w - 1])

    # misprediction detectors: E[i] = cpred[i-1] ^ cout[i-1]
    errors = [net.gate("XOR", cpred[i], slice_couts[i])
              for i in range(len(bounds) - 1)]
    net.mark_output(*all_sums, *slice_couts, *errors)
    return net


def random_add_stimulus(rng, width: int, n_vectors: int,
                        extra_inputs: int = 0) -> np.ndarray:
    """Random operand stream: bits for a, b, cin(=0) and extras(=0)."""
    bits = rng.integers(0, 2, (n_vectors, 2 * width)).astype(bool)
    zeros = np.zeros((n_vectors, 1 + extra_inputs), dtype=bool)
    return np.hstack([bits, zeros])


def adder_outputs_to_int(outputs: np.ndarray, width: int) -> np.ndarray:
    """Decode the sum bits of an adder output matrix to integers."""
    weights = (1 << np.arange(width, dtype=np.uint64))
    return (outputs[:, :width].astype(np.uint64) * weights).sum(axis=1)
