"""CUDA Samples *mergeSort* — ``msort_K1`` (mergeSortSharedKernel) and
``msort_K2`` (mergeElementaryIntervalsKernel).

K1 sorts CHUNK-sized tiles in shared memory with the sample's
odd-even-style compare-exchange network (integer MIN/MAX through the
adder).

K2 merges pairs of sorted tiles: every thread binary-searches the rank
of its element in the partner tile (subtract-compare ladder) and
scatters to ``rank_own + rank_other`` — the paper's biggest ST2 winner
(up to 40 % system-energy savings), its integer adds being extremely
predictable because ranks grow monotonically.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128
CHUNK = 2 * BLOCK


def merge_sort_shared_kernel(k, keys, n):
    """msort_K1: batcher odd-even merge sort of one tile."""
    tx = k.thread_id()
    base = k.block_id * CHUNK
    pos = k.iadd(base, tx)       # the tile-base pointer bump is a real IADD
    s = k.shared(CHUNK, np.int32)
    k.st_shared(s, tx, k.ld_global(keys, pos))
    # +BLOCK folds into the LDG/LDS immediate offset field on hardware
    k.st_shared(s, tx + BLOCK, k.ld_global(keys, pos + BLOCK))  # st2-lint: disable=L1
    k.syncthreads()

    size = 2
    while size <= CHUNK:
        stride = size // 2
        while stride > 0:
            lo = k.isub(k.imul(2, tx), k.iand(tx, stride - 1))
            if stride == size // 2:
                hi = k.isub(k.iadd(lo, k.imul(2, stride)), 1)
                hi = k.isub(hi, k.imul(2, k.iand(tx, stride - 1)))
            else:
                hi = k.iadd(lo, stride)
            a = k.ld_shared(s, lo)
            b = k.ld_shared(s, hi)
            k.st_shared(s, lo, k.imin(a, b))
            k.st_shared(s, hi, k.imax(a, b))
            k.syncthreads()
            stride //= 2
        size *= 2

    k.st_global(keys, pos, k.ld_shared(s, tx))
    # +BLOCK folds into the LDG/LDS immediate offset field on hardware
    k.st_global(keys, pos + BLOCK, k.ld_shared(s, tx + BLOCK))  # st2-lint: disable=L1


def merge_intervals_kernel(k, src, dst, tile, n):
    """msort_K2: merge adjacent sorted tiles by rank computation."""
    t = k.global_id()
    with k.where(k.lt(t, n)):
        pair = k.idiv(t, k.imul(tile, 2))
        offset = k.irem(t, k.imul(tile, 2))
        in_second = k.ge(offset, tile)
        own_base = k.imad(pair, 2 * tile,
                          k.sel(in_second, tile, 0))
        other_base = k.imad(pair, 2 * tile,
                            k.sel(in_second, 0, tile))
        own_idx = k.irem(offset, tile)
        key = k.ld_global(src, k.iadd(own_base, own_idx))

        # binary search of rank in the partner tile
        lo = np.zeros(k.n_threads, dtype=np.int64)
        hi = np.full(k.n_threads, tile, dtype=np.int64)
        steps = int(tile).bit_length()   # rank space is [0, tile]
        for _s in k.range(steps):
            searching = lo < hi
            mid = k.shr(k.iadd(lo, hi), 1)
            probe = k.ld_global(src, k.iadd(other_base, mid))
            # merge-path tie-breaking: first-tile elements take the
            # lower bound (strictly-less count), second-tile elements
            # the upper bound — so equal keys interleave stably
            go_right = k.sel(in_second, k.ge(key, probe),
                             k.gt(key, probe)) & searching
            lo = k.sel(go_right, k.iadd(mid, 1), lo)
            hi = k.sel(go_right | ~searching, hi, mid)

        dest = k.iadd(k.imul(pair, 2 * tile), k.iadd(own_idx, lo))
        k.st_global(dst, dest, key)


def _keys(rng, n):
    return rng.integers(0, 1 << 20, n).astype(np.int32)


def prepare_k1(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    n = scaled(6, scale, minimum=2) * CHUNK
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="msort_K1",
        fn=merge_sort_shared_kernel,
        launch=LaunchConfig(n // CHUNK, BLOCK),
        params=dict(keys=launcher.buffer("keys", _keys(rng, n)), n=n),
        launcher=launcher)


def prepare_k2(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    tile = CHUNK
    n = scaled(8, scale, minimum=2) * 2 * tile
    keys = _keys(rng, n).reshape(-1, tile)
    keys.sort(axis=1)                      # tiles arrive pre-sorted
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="msort_K2",
        fn=merge_intervals_kernel,
        launch=LaunchConfig(n // BLOCK, BLOCK),
        params=dict(src=launcher.buffer("src", keys.reshape(-1)),
                    dst=launcher.buffer("dst", np.zeros(n, np.int32)),
                    tile=tile, n=n),
        launcher=launcher)
