"""IR-lowering fixture: nested ``k.inline`` scopes.

The first adder runs under two static scopes (its PC label composes
them as ``outer/inner``); the second runs under a *dynamic* scope (a
parameter), which makes its runtime label unknowable — the site must
export no facts.
"""


def inline_kernel(k, out, tag):
    t = k.thread_id()
    with k.inline("outer"):
        with k.inline("inner"):
            a = k.iadd(t, 4)
    with k.inline(tag):
        b = k.iadd(t, 8)
    k.st_global(out, t, k.iadd(a, b))
