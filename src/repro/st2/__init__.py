"""The integrated ST2 GPU architecture: end-to-end evaluation, energy
breakdowns, overhead accounting and design-point ablations."""

from repro.st2.architecture import (KernelEvaluation, evaluate_kernel,
                                    evaluate_run, evaluate_suite)
from repro.st2.energy import EnergyBreakdown, EnergyComparison
from repro.st2.overheads import OverheadReport, overhead_report

__all__ = ["EnergyBreakdown", "EnergyComparison", "KernelEvaluation",
           "OverheadReport", "evaluate_kernel", "evaluate_run",
           "evaluate_suite", "overhead_report"]
