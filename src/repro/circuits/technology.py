"""Technology model — the stand-in for the Synopsys SAED 90 nm flow.

The paper's circuit study needs three things from its EDA flow:

1. gate delays at a given supply voltage (to find the nominal clock
   period and the minimum voltage at which a slice still fits in it);
2. per-toggle switching energy (scaling quadratically with voltage);
3. leakage power (scaling roughly linearly with voltage).

We model delay with the alpha-power law
``t_d = K * Vdd / (Vdd - Vth)**alpha`` [Sakurai & Newton], switching
energy as ``E = 0.5 * C * Vdd**2`` per output toggle, and leakage as
``P = I0 * Vdd`` — standard first-order device physics, calibrated to
90 nm-ish constants.  Only *relative* energies across adder designs
matter to the paper's conclusions (Section V-B states the same), so the
absolute calibration is unimportant as long as it is consistent.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """First-order 90 nm-like CMOS constants."""

    name: str = "saed90-like"
    vdd_nominal: float = 1.2          # volts
    vth: float = 0.35                 # threshold voltage
    alpha: float = 1.3               # velocity-saturation exponent
    delay_k: float = 28.0            # ps scaling constant per gate level
    cap_per_gate_input_ff: float = 1.8   # switched capacitance per input
    leakage_na_per_gate: float = 12.0    # nA per gate at nominal Vdd
    min_vdd: float = 0.7             # library characterisation floor:
    #   standard-cell timing below ~0.7 V would need a near-threshold
    #   library; slices cannot scale past this regardless of slack

    def gate_delay_ps(self, fanin: int = 2, vdd: float = None) -> float:
        """Propagation delay of one gate at the given supply."""
        vdd = self.vdd_nominal if vdd is None else vdd
        if vdd <= self.vth:
            raise ValueError(f"Vdd {vdd} below threshold {self.vth}")
        base = self.delay_k * vdd / (vdd - self.vth) ** self.alpha
        return base * (0.7 + 0.3 * fanin)

    def toggle_energy_fj(self, fanin: int = 2, vdd: float = None) -> float:
        """Switching energy of one output toggle, in femtojoules."""
        vdd = self.vdd_nominal if vdd is None else vdd
        cap_ff = self.cap_per_gate_input_ff * fanin
        return 0.5 * cap_ff * vdd * vdd

    def leakage_nw(self, n_gates: int, vdd: float = None) -> float:
        """Static power of ``n_gates`` gates, in nanowatts."""
        vdd = self.vdd_nominal if vdd is None else vdd
        return self.leakage_na_per_gate * n_gates * vdd

    def delay_scale(self, vdd: float) -> float:
        """Delay at ``vdd`` relative to nominal (alpha-power law)."""
        return (self.gate_delay_ps(2, vdd)
                / self.gate_delay_ps(2, self.vdd_nominal))

    def energy_scale(self, vdd: float) -> float:
        """Dynamic energy at ``vdd`` relative to nominal (quadratic)."""
        return (vdd / self.vdd_nominal) ** 2


SAED90 = Technology()
