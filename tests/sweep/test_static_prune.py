"""The static-bounds pruning stage: it skips units *before* execution
on grids the plain completion bound cannot touch, and never changes
the Pareto frontier (static vs --no-static-bounds vs exhaustive)."""

import pytest

from repro import obs
from repro.api import SweepSpec
from repro.sweep import SweepOptions, frontiers_equal, run_sweep

#: the CI-pinned grid: affineChain's carries are all provably zero,
#: so static1 classes are statically dominated before execution
CI_AXES = (("mechanism", ("static0", "static1")),
           ("peek", (False, True)),
           ("thread_key", ("gtid", "ltid")))


def ci_spec(name, **overrides):
    base = dict(name=name, kernels=("qrng_K1", "affineChain"),
                axes=CI_AXES, scale=0.25, seed=0, engine="vec",
                aux=False)
    base.update(overrides)
    return SweepSpec(**base)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("static-prune-cache"))


def options(cache_dir, **overrides):
    base = dict(use_cache=True, cache_dir=cache_dir, workers=2,
                registry=obs.Obs())
    base.update(overrides)
    return SweepOptions(**base)


class TestStaticPrune:
    def test_skips_units_before_execution(self, cache_dir, tmp_path):
        opts = options(cache_dir)
        result = run_sweep(ci_spec("static-on"),
                           tmp_path / "s.jsonl", opts)
        assert result.complete
        counters = opts.registry.snapshot()["counters"]
        assert counters["sweep.prune.static"] >= 1
        assert counters["sweep.prune.static.units_skipped"] >= 1
        static_prunes = [info for info in result.pruned.values()
                        if info.get("via") == "static_bounds"]
        assert static_prunes
        for info in static_prunes:
            assert info["reason"] == "dominated"
            assert info["units_skipped"] >= 1
            assert "energy_saved" in info["bound"]

    def test_plain_bound_alone_does_not_prune_here(self, cache_dir,
                                                   tmp_path):
        """The grid is chosen so the completion bound cannot act: the
        static stage is what prunes (the counter is honest)."""
        opts = options(cache_dir, static_bounds=False)
        result = run_sweep(ci_spec("static-off"),
                           tmp_path / "n.jsonl", opts)
        assert result.complete
        counters = opts.registry.snapshot()["counters"]
        assert counters.get("sweep.prune.static", 0) == 0
        assert counters.get("sweep.prune.dominated", 0) == 0

    @pytest.mark.parametrize("seed", [0, 1])
    def test_frontier_invariant(self, cache_dir, tmp_path, seed):
        """Bit-identical frontiers: static pruning on, off, and full
        exhaustive, on seeded grids."""
        spec = ci_spec(f"inv-{seed}", seed=seed)
        runs = {}
        for label, extra in (
                ("static", {}),
                ("nostatic", {"static_bounds": False}),
                ("exhaustive", {"prune": False})):
            runs[label] = run_sweep(
                spec, tmp_path / f"{label}-{seed}.jsonl",
                options(cache_dir, **extra))
        assert all(r.complete for r in runs.values())
        assert frontiers_equal(list(runs["static"].frontier),
                               list(runs["nostatic"].frontier))
        assert frontiers_equal(list(runs["static"].frontier),
                               list(runs["exhaustive"].frontier))
        # and the static run really did less work
        assert runs["static"].executed_units \
            <= runs["nostatic"].executed_units \
            <= runs["exhaustive"].executed_units
