"""The content-addressed, memory-mapped trace store."""

import json

import numpy as np
import pytest

from repro.kernels.suite import KERNEL_NAMES, run_suite
from repro.sim.trace_io import _ADD_COLUMNS, _INST_COLUMNS
from repro.sim.trace_store import (StoredRun, TraceStore, default_store_dir,
                                   trace_key)

SCALE = 0.12


@pytest.fixture(scope="module")
def suite_runs():
    return run_suite(scale=SCALE, seed=0)


@pytest.fixture(scope="module")
def store(suite_runs, tmp_path_factory):
    store = TraceStore(tmp_path_factory.mktemp("traces"))
    for name, run in suite_runs.items():
        key = trace_key(name, SCALE, 0, "v-test")
        assert store.put(key, run, code_version="v-test",
                         scale=SCALE, seed=0)
    return store


class TestRoundTripWholeSuite:
    """Every kernel's memmap-loaded entry must be bit-identical to the
    fresh in-memory capture — all columns, both streams, pc labels."""

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_bit_identical(self, name, suite_runs, store):
        run = suite_runs[name]
        stored = store.get(trace_key(name, SCALE, 0, "v-test"))
        assert isinstance(stored, StoredRun)
        for col in _ADD_COLUMNS:
            live, mapped = getattr(run.trace, col), \
                getattr(stored.trace, col)
            assert live.dtype == mapped.dtype, col
            assert np.array_equal(live, mapped), col
        for col in _INST_COLUMNS:
            assert np.array_equal(getattr(run.insts, col),
                                  getattr(stored.insts, col)), col
        assert stored.trace.pc_labels == run.trace.pc_labels
        assert stored.n_static_pcs == run.n_static_pcs
        assert stored.name == run.name
        assert stored.launch == run.launch
        for field in ("global_loads", "global_stores", "shared_loads",
                      "shared_stores", "global_load_transactions",
                      "global_store_transactions", "const_loads"):
            assert getattr(stored.mem, field) \
                == getattr(run.mem, field), field

    def test_entries_are_memmaps(self, store, suite_runs):
        stored = store.get(trace_key("pathfinder", SCALE, 0, "v-test"))
        assert isinstance(stored.trace.op_a, np.memmap)
        assert not stored.trace.op_a.flags.writeable

    def test_evaluation_identical_from_store(self, store, suite_runs):
        """A full end-to-end evaluation from the memmap must match the
        live run bit for bit."""
        from repro.core.predictors import run_speculation
        from repro.core.speculation import ST2_DESIGN
        run = suite_runs["binomial"]
        stored = store.get(trace_key("binomial", SCALE, 0, "v-test"))
        live = run_speculation(run.trace, ST2_DESIGN)
        mapped = run_speculation(stored.trace, ST2_DESIGN)
        assert live.thread_misprediction_rate \
            == mapped.thread_misprediction_rate
        assert np.array_equal(live.mispredicted, mapped.mispredicted)


class TestStoreSemantics:
    def test_keys_distinguish_identity(self):
        base = trace_key("k", 1.0, 0, "v1")
        assert trace_key("k2", 1.0, 0, "v1") != base
        assert trace_key("k", 0.5, 0, "v1") != base
        assert trace_key("k", 1.0, 1, "v1") != base
        assert trace_key("k", 1.0, 0, "v2") != base
        assert trace_key("k", 1.0, 0, "v1") == base

    def test_put_is_idempotent(self, store, suite_runs):
        key = trace_key("binomial", SCALE, 0, "v-test")
        assert not store.put(key, suite_runs["binomial"])
        assert len(store) == len(KERNEL_NAMES)

    def test_missing_key(self, store):
        assert not store.has("0" * 40)
        with pytest.raises(OSError):
            store.get("0" * 40)

    def test_header_contents(self, store):
        header = store.header(trace_key("sgemm", SCALE, 0, "v-test"))
        assert header["kernel"] == "sgemm"
        assert header["code_version"] == "v-test"
        assert header["scale"] == SCALE
        assert header["n_rows"] > 0
        assert set(header["digests"]) \
            == {f"add_{c}" for c in _ADD_COLUMNS} \
            | {f"inst_{c}" for c in _INST_COLUMNS}

    def test_default_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "x"))
        assert default_store_dir() == tmp_path / "x"


class TestGetMemo:
    """The read-side memo: repeated ``get`` of a hot key returns the
    shared handle, with obs emissions identical to a real open so
    grid metrics stay independent of unit→worker scheduling."""

    @pytest.fixture()
    def memo_store(self, suite_runs, tmp_path):
        store = TraceStore(tmp_path / "m")
        for name in ("binomial", "pathfinder", "qrng_K2",
                     "sortNets_K2", "sgemm"):
            store.put(trace_key(name, SCALE, 0, "v-m"),
                      suite_runs[name], code_version="v-m",
                      scale=SCALE, seed=0)
        return store

    def get_with_obs(self, store, key):
        from repro import obs
        with obs.scoped() as reg:
            stored = store.get(key)
        return stored, reg.snapshot()

    def test_hit_returns_shared_handle(self, memo_store):
        key = trace_key("binomial", SCALE, 0, "v-m")
        first = memo_store.get(key)
        assert memo_store.get(key) is first

    def test_hit_emits_identical_obs(self, memo_store):
        key = trace_key("binomial", SCALE, 0, "v-m")
        _, cold = self.get_with_obs(memo_store, key)
        _, warm = self.get_with_obs(memo_store, key)
        assert warm["counters"] == cold["counters"]
        assert warm["counters"]["trace_store.open"] == 1
        assert warm["counters"]["trace_store.bytes_mapped"] > 0
        assert warm["timers"]["trace_store.get"]["count"] \
            == cold["timers"]["trace_store.get"]["count"] == 1

    def test_memo_is_bounded(self, memo_store):
        from repro.sim.trace_store import GET_MEMO_SIZE
        for name in ("binomial", "pathfinder", "qrng_K2",
                     "sortNets_K2", "sgemm"):
            memo_store.get(trace_key(name, SCALE, 0, "v-m"))
        assert len(memo_store._get_memo) == GET_MEMO_SIZE

    def test_remove_invalidates_memo(self, memo_store):
        key = trace_key("qrng_K2", SCALE, 0, "v-m")
        memo_store.get(key)
        memo_store.remove(key)
        assert key not in memo_store._get_memo
        with pytest.raises(OSError):
            memo_store.get(key)


class TestColumnGeometry:
    """Columns map directly via the geometry recorded in the header;
    entries that predate the ``columns`` record fall back to
    ``np.load`` — byte-identically."""

    def test_header_records_geometry(self, store):
        header = store.header(trace_key("sgemm", SCALE, 0, "v-test"))
        columns = header["columns"]
        assert set(columns) == set(header["digests"])
        geo = columns["add_op_a"]
        assert geo["dtype"] == np.dtype(np.uint64).str
        assert geo["shape"][0] == header["n_rows"]
        assert geo["offset"] > 0

    def test_legacy_entry_without_geometry(self, suite_runs,
                                           tmp_path):
        store = TraceStore(tmp_path / "g")
        key = trace_key("binomial", SCALE, 0, "v-g")
        store.put(key, suite_runs["binomial"], code_version="v-g",
                  scale=SCALE, seed=0)
        direct = store.get(key)

        header_path = store.header_path(key)
        header = json.loads(header_path.read_text())
        del header["columns"]
        header_path.write_text(json.dumps(header))
        fallback = TraceStore(tmp_path / "g").get(key)

        run = suite_runs["binomial"]
        for col in _ADD_COLUMNS:
            assert np.array_equal(getattr(fallback.trace, col),
                                  getattr(run.trace, col)), col
            assert np.array_equal(getattr(fallback.trace, col),
                                  getattr(direct.trace, col)), col
        for col in _INST_COLUMNS:
            assert np.array_equal(getattr(fallback.insts, col),
                                  getattr(run.insts, col)), col


class TestVerifyAndGc:
    @pytest.fixture()
    def small_store(self, suite_runs, tmp_path):
        store = TraceStore(tmp_path / "s")
        for name in ("binomial", "pathfinder", "qrng_K2"):
            store.put(trace_key(name, SCALE, 0, "v-old"),
                      suite_runs[name], code_version="v-old",
                      scale=SCALE, seed=0)
        return store

    def test_verify_sound(self, small_store):
        for key in small_store.keys():
            assert small_store.verify(key) == []

    def test_verify_detects_bitflip(self, small_store):
        key = small_store.keys()[0]
        path = small_store.path(key) / "add_op_a.npy"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert any("sha256 mismatch" in p
                   for p in small_store.verify(key))

    def test_verify_detects_truncation(self, small_store):
        key = small_store.keys()[0]
        header_path = small_store.header_path(key)
        header = json.loads(header_path.read_text())
        header["n_rows"] += 7
        header_path.write_text(json.dumps(header))
        assert any("rows" in p for p in small_store.verify(key))

    def test_gc_stale_versions(self, small_store, suite_runs):
        fresh = trace_key("binomial", SCALE, 0, "v-new")
        small_store.put(fresh, suite_runs["binomial"],
                        code_version="v-new", scale=SCALE, seed=0)
        removed = small_store.gc(current_version="v-new")
        assert len(removed) == 3
        assert small_store.keys() == [fresh]

    def test_gc_byte_budget_evicts_oldest(self, small_store):
        import os
        keys = small_store.keys()
        # age the first entry far into the past
        oldest = keys[0]
        os.utime(small_store.header_path(oldest), (1, 1))
        budget = sum(small_store.nbytes(k) for k in keys) \
            - small_store.nbytes(oldest)
        removed = small_store.gc(max_bytes=budget)
        assert removed == [oldest]

    def test_gc_dry_run_removes_nothing(self, small_store):
        removed = small_store.gc(current_version="other", dry_run=True)
        assert len(removed) == 3
        assert len(small_store) == 3
