"""The vectorized evaluation engine vs the interpreter, end to end.

Three layers of equivalence, strongest first:

* **full-suite bit-identity** — every kernel's ``execute_unit`` result
  under ``engine="vec"`` equals the interpreter result exactly
  (``results_equal``: all metrics, the energy stacks, the static-peek
  ablation row);
* **array-level parity** — per-lane mispredict/recompute arrays and
  their per-PC aggregation match the reference;
* **obs counter parity** — a grid run under either engine produces an
  identical counters snapshot (the contract the ``vec-equivalence`` CI
  job enforces).

Plus the dispatch guard: :func:`repro.sim.vec.supported` verdicts and
the seeded random-draw sweep over (kernel, config, scale).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import evaluate_trace_batch, predict_trace_batch
from repro.core.predictors import run_speculation
from repro.core.speculation import (CASA, DESIGN_LADDER, PREV,
                                    ST2_DESIGN, VALHALLA)
from repro.kernels.suite import KERNEL_NAMES, run_kernel
from repro.runner import RunOptions, build_units, run_units
from repro.runner.units import (ModelBundle, UnitSpec, execute_unit,
                                results_equal)
from repro.sim import vec
from repro.sim.trace_store import TraceStore
from repro.sim.vec.plan import clear_plans, plan_for

SCALE = 0.1


@pytest.fixture(scope="module")
def models():
    return ModelBundle().ensure()


@pytest.fixture(autouse=True)
def fresh_plans():
    clear_plans()
    yield
    clear_plans()


class TestFullSuiteBitIdentity:
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_unit_results_identical(self, name, models):
        spec = UnitSpec(kernel=name, scale=SCALE, seed=0,
                        config=ST2_DESIGN, aux=False)
        interp = execute_unit(spec, models=models, engine="interp")
        vec_r = execute_unit(spec, models=models, engine="vec")
        assert interp.data["engine"] == "interp"
        assert vec_r.data["engine"] == "vec"
        assert results_equal(interp, vec_r), name

    @pytest.mark.parametrize("config", [PREV, VALHALLA, CASA],
                             ids=lambda c: c.name)
    def test_other_mechanisms_identical(self, config, models):
        spec = UnitSpec(kernel="qrng_K2", scale=SCALE, seed=0,
                        config=config, aux=False)
        assert results_equal(
            execute_unit(spec, models=models, engine="interp"),
            execute_unit(spec, models=models, engine="vec"))


class TestArrayLevelParity:
    @pytest.mark.parametrize("name", ["qrng_K1", "sortNets_K2",
                                      "pathfinder"])
    def test_per_pc_recompute_totals(self, name):
        """The padded evaluation must agree with the reference not
        just in total but per program counter — the resolution the
        paper's per-PC analyses read."""
        run = run_kernel(name, scale=SCALE, seed=0)
        ref = run_speculation(run.trace, ST2_DESIGN)
        plan = plan_for(run)
        pred = predict_trace_batch(run.trace, ST2_DESIGN, plan.pack)
        mis, rec, wrong = evaluate_trace_batch(plan.pack, pred.bits)
        assert int(mis.sum()) == int(ref.mispredicted.sum())
        np.testing.assert_array_equal(
            np.bincount(run.trace.pc, weights=rec),
            np.bincount(run.trace.pc, weights=ref.recomputed))
        np.testing.assert_array_equal(
            np.bincount(run.trace.pc, weights=mis),
            np.bincount(run.trace.pc, weights=ref.mispredicted))
        np.testing.assert_array_equal(wrong, ref.wrong_bits)


class TestSeededRandomDraws:
    """Property-style sweep: random (kernel, config, scale) draws from
    a fixed seed must be engine-independent.  Failures print the draw,
    which reproduces deterministically."""

    DRAWS = 6

    @pytest.mark.parametrize("draw", range(DRAWS))
    def test_random_unit_bit_identical(self, draw, models):
        rng = np.random.default_rng(1234 + draw)
        kernel = KERNEL_NAMES[int(rng.integers(len(KERNEL_NAMES)))]
        config = DESIGN_LADDER[int(rng.integers(len(DESIGN_LADDER)))]
        scale = float(rng.choice([0.06, 0.1, 0.14]))
        seed = int(rng.integers(3))
        spec = UnitSpec(kernel=kernel, scale=scale, seed=seed,
                        config=config, aux=False)
        interp = execute_unit(spec, models=models, engine="interp")
        vec_r = execute_unit(spec, models=models, engine="vec")
        assert results_equal(interp, vec_r), \
            (kernel, config.name, scale, seed)


class TestObsCounterParity:
    KERNELS = ["qrng_K1", "qrng_K2"]

    def grid_counters(self, tmp_path, engine, workers=1):
        units = build_units(self.KERNELS, configs=(ST2_DESIGN, PREV),
                            scale=SCALE, aux=False)
        opts = RunOptions(
            workers=workers, use_cache=False, engine=engine,
            trace_store=TraceStore(tmp_path / f"ts-{engine}-{workers}"))
        run_units(units, opts)
        counters = opts.obs.snapshot()["counters"]
        return {k: v for k, v in counters.items()
                if not k.startswith("runner.engine.")}

    def test_counters_exactly_equal(self, tmp_path):
        interp = self.grid_counters(tmp_path, "interp")
        vec_c = self.grid_counters(tmp_path, "vec")
        assert interp == vec_c, {
            k: (interp.get(k), vec_c.get(k))
            for k in interp.keys() | vec_c.keys()
            if interp.get(k) != vec_c.get(k)}

    def test_counters_worker_independent(self, tmp_path):
        serial = self.grid_counters(tmp_path, "vec", workers=1)
        parallel = self.grid_counters(tmp_path, "vec", workers=2)
        assert serial == parallel


class TestSupported:
    def test_suite_runs_supported(self):
        run = run_kernel("qrng_K2", scale=SCALE, seed=0)
        assert vec.supported(run) is None

    def test_verdict_memoised_by_key(self):
        run = run_kernel("qrng_K2", scale=SCALE, seed=0)
        key = ("qrng_K2", SCALE, 0)
        assert vec.supported(run, key=key) is None
        from repro.sim.vec.plan import _SUPPORTED
        assert _SUPPORTED[key] is None

    def test_bad_width_rejected(self):
        run = run_kernel("qrng_K2", scale=SCALE, seed=0)
        orig = run.trace.width
        bad = orig.copy()
        bad[0] = 0
        run.trace.width = bad
        try:
            reason = vec.supported(run)
        finally:
            run.trace.width = orig      # run_kernel memoises the run
        assert reason is not None and "width" in reason

    def test_forced_vec_raises_on_unsupported(self, models,
                                              monkeypatch):
        monkeypatch.setattr("repro.sim.vec.supported",
                            lambda run, key=None: "synthetic reason")
        spec = UnitSpec(kernel="qrng_K2", scale=SCALE, seed=0,
                        config=ST2_DESIGN, aux=False)
        with pytest.raises(vec.VecUnsupportedError,
                           match="synthetic reason"):
            execute_unit(spec, models=models, engine="vec")
