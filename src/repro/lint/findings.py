"""Finding records and the L1–L10 rule registry."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: rule id -> one-line rationale (mirrored in README's rule table).
RULES = {
    "L1": "untraced arithmetic: numpy +/- on device vectors bypasses "
          "the DSL emit path and drops AddTrace rows",
    "L2": "PC aliasing: a DSL-emitting helper called from several "
          "sites of one function without distinct k.inline scopes",
    "L3": "shared-memory store→load across thread-dependent "
          "indices with no intervening syncthreads",
    "L4": "syncthreads under a divergent k.where mask (hardware "
          "deadlock)",
    "L5": "nondeterminism (unseeded RNG / wall-clock) in a module the "
          "runner cache hashes",
    "L6": "provably-constant slice carry: abstract interpretation pins "
          "slice-boundary carries of an integer adder site "
          "(informational; exported by `st2-lint facts`)",
    "L7": "infeasible-path-aware barrier divergence: syncthreads under "
          "a k.where mask whose divergence is actually reachable "
          "(flow-sensitive upgrade of L4)",
    "L8": "range-proven dead speculation: every boundary carry of an "
          "adder site is static, so ST2 speculation can never "
          "mispredict there (informational)",
    "L9": "speculation provably never profitable: the static bounds "
          "tier proves the kernel has adder sites but can never "
          "execute an adder row, so no config class can save energy "
          "(informational; exported by `st2-lint bounds`)",
    "L10": "speculation provably always profitable: some config class "
           "has statically zero mispredictions, zero slowdown and a "
           "non-negative energy saving on at least one guaranteed "
           "adder row (informational)",
    "E0": "file could not be parsed",
}

#: informational rules: reported on request, never fail the run and
#: never enter baselines.
INFO_RULES = frozenset({"L6", "L8", "L9", "L10"})


@dataclass(frozen=True)
class Finding:
    """One diagnostic, anchored to a source line."""

    path: str
    line: int
    rule: str
    message: str
    line_text: str = ""
    suppressed: bool = field(default=False, compare=False)

    def format(self) -> str:
        note = "  [suppressed]" if self.suppressed else ""
        return f"{self.path}:{self.line}: {self.rule}: {self.message}{note}"

    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + file + line *text*
        (not line number, which shifts on unrelated edits)."""
        blob = f"{self.rule}|{_tail(self.path)}|{self.line_text.strip()}"
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _tail(path: str, parts: int = 3) -> str:
    """Last path components, so fingerprints survive repo relocation."""
    return "/".join(str(path).replace("\\", "/").split("/")[-parts:])
