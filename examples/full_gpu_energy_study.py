#!/usr/bin/env python
"""The full Section VI experiment on a few kernels: calibrated power
model, baseline-vs-ST2 energy breakdown, timing overhead — the
machinery behind Figures 6 and 7.

Run:  python examples/full_gpu_energy_study.py
"""

import numpy as np

from repro.analysis.ascii_charts import stacked_pair, table
from repro.power.components import Component
from repro.st2.architecture import evaluate_suite
from repro.st2.overheads import overhead_report

KERNELS = ("pathfinder", "sad_K1", "msort_K2", "qrng_K1", "kmeans_K1",
           "dwt2d_K1")


def main() -> None:
    evals = evaluate_suite(scale=1.0, names=KERNELS)

    # -- Figure 7 style stacked energy ------------------------------------
    comps = [c.value for c in Component] + ["static"]
    base_stacks, st2_stacks = [], []
    for e in evals.values():
        b, s = e.energy.normalized_stacks()
        base_stacks.append(b)
        st2_stacks.append(s)
    print(stacked_pair("normalized system energy: baseline vs ST2",
                       list(evals), base_stacks, st2_stacks, comps))

    # -- summary table ------------------------------------------------------
    rows = [(name,
             f"{e.energy.alu_fpu_share:.1%}",
             f"{e.misprediction_rate:.1%}",
             f"{e.slowdown:+.3%}",
             f"{e.system_saving:.1%}",
             f"{e.chip_saving:.1%}")
            for name, e in evals.items()]
    print(table("ST2 GPU evaluation summary",
                ["kernel", "ALU+FPU share", "misprediction",
                 "slowdown", "system saving", "chip saving"], rows))

    sys_avg = np.mean([e.system_saving for e in evals.values()])
    chip_avg = np.mean([e.chip_saving for e in evals.values()])
    print(f"\naverages over {len(evals)} kernels: "
          f"{sys_avg:.1%} system / {chip_avg:.1%} chip energy saved"
          "\n(paper, full suite: 19% system / 21% chip)")

    # -- overheads ------------------------------------------------------------
    rep = overhead_report()
    print(f"\nST2 storage: {rep.total_storage_bytes / 1024:.0f} kB "
          f"({rep.storage_fraction:.3%} of on-chip SRAM); level "
          f"shifters: {rep.shifter_area_fraction:.2%} of chip area, "
          f"{rep.shifter_static_w:.2f} W static")


if __name__ == "__main__":
    main()
