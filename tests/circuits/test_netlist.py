"""Netlist construction, simulation and characterisation."""

import numpy as np
import pytest

from repro.circuits.netlist import Netlist
from repro.circuits.technology import SAED90


def _xor2():
    net = Netlist("xor2")
    a = net.input()
    b = net.input()
    net.mark_output(net.gate("XOR", a, b))
    return net


class TestConstruction:
    def test_gate_returns_fresh_node(self):
        net = Netlist()
        a = net.input()
        g1 = net.gate("NOT", a)
        g2 = net.gate("NOT", g1)
        assert len({a, g1, g2}) == 3
        assert net.n_gates == 2

    def test_unknown_gate_kind(self):
        net = Netlist()
        a = net.input()
        with pytest.raises(ValueError):
            net.gate("MAJ3", a, a, a)

    def test_multi_input_allocation(self):
        net = Netlist()
        ids = net.input(4)
        assert ids == [0, 1, 2, 3]


class TestEvaluate:
    @pytest.mark.parametrize("kind,table", [
        ("AND", [0, 0, 0, 1]),
        ("OR", [0, 1, 1, 1]),
        ("XOR", [0, 1, 1, 0]),
        ("NAND", [1, 1, 1, 0]),
        ("NOR", [1, 0, 0, 0]),
        ("XNOR", [1, 0, 0, 1]),
    ])
    def test_truth_tables(self, kind, table):
        net = Netlist()
        a = net.input()
        b = net.input()
        net.mark_output(net.gate(kind, a, b))
        stim = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=bool)
        out = net.outputs(stim)[:, 0].astype(int)
        assert list(out) == table

    def test_not_and_buf(self):
        net = Netlist()
        a = net.input()
        net.mark_output(net.gate("NOT", a), net.gate("BUF", a))
        out = net.outputs(np.array([[0], [1]], dtype=bool)).astype(int)
        assert out.tolist() == [[1, 0], [0, 1]]

    def test_stimulus_width_checked(self):
        net = _xor2()
        with pytest.raises(ValueError):
            net.evaluate(np.zeros((4, 3), dtype=bool))


class TestCharacterisation:
    def test_critical_path_grows_with_depth(self):
        shallow = _xor2()
        deep = Netlist()
        a = deep.input()
        b = deep.input()
        x = deep.gate("XOR", a, b)
        for _ in range(10):
            x = deep.gate("XOR", x, b)
        deep.mark_output(x)
        assert deep.critical_path_ps() > shallow.critical_path_ps()

    def test_delay_rises_as_voltage_drops(self):
        net = _xor2()
        assert net.critical_path_ps(vdd=0.8) > net.critical_path_ps(vdd=1.2)

    def test_logic_depth(self):
        net = Netlist()
        a = net.input()
        x = net.gate("NOT", a)
        y = net.gate("NOT", x)
        net.mark_output(y)
        assert net.logic_depth() == 2

    def test_toggle_counts(self):
        net = _xor2()
        stim = np.array([[0, 0], [1, 0], [1, 0], [0, 0]], dtype=bool)
        toggles = net.toggle_counts(stim)
        assert toggles[0] == 2      # output flips at steps 0->1 and 2->3

    def test_energy_scales_quadratically_with_vdd(self):
        net = _xor2()
        stim = np.array([[0, 0], [1, 0]] * 10, dtype=bool)
        e_nom = net.switching_energy_fj(stim, vdd=1.2)
        e_low = net.switching_energy_fj(stim, vdd=0.6)
        assert e_low == pytest.approx(e_nom * 0.25, rel=1e-6)

    def test_glitch_factor_monotone_in_depth(self):
        shallow = _xor2()
        deep = Netlist()
        a = deep.input()
        x = deep.gate("NOT", a)
        for _ in range(20):
            x = deep.gate("NOT", x)
        deep.mark_output(x)
        assert deep.glitch_factor() > shallow.glitch_factor()


class TestTechnology:
    def test_delay_diverges_near_threshold(self):
        t = SAED90
        assert t.gate_delay_ps(2, 0.4) > 5 * t.gate_delay_ps(2, 1.2)

    def test_below_threshold_rejected(self):
        with pytest.raises(ValueError):
            SAED90.gate_delay_ps(2, 0.3)

    def test_energy_scale(self):
        assert SAED90.energy_scale(0.6) == pytest.approx(0.25)

    def test_leakage_linear_in_gates(self):
        assert SAED90.leakage_nw(200) == pytest.approx(
            2 * SAED90.leakage_nw(100))
