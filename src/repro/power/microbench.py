"""The 123 calibration micro-benchmarks (paper Section V-C).

Following the GPUWattch methodology, each stressor isolates one
component at a swept intensity while keeping a small, known background
activity (instruction fetch, register traffic).  Stressors are
expressed directly as :class:`ActivityVector`\\ s with known event
counts — the microbenchmark kernels of the paper are tiny loops whose
counts are known statically, so this is the same information content
without simulation cost.

The stressor set:

* 9 components x 12 intensity points = 108 component stressors;
* 15 occupancy stressors sweeping the number of active SMs (these
  expose ``P_idleSM`` and ``P_const`` to the solver);

123 micro-benchmarks in total, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.power.activity import ActivityVector
from repro.power.components import Component
from repro.sim.config import TITAN_V

#: how a stressor's component events split into hardware subtypes —
#: the calibration only ever sees these blends, while real kernels have
#: their own (that difference is the validation error's main source).
STRESSOR_SUBTYPES = {
    Component.ALU_FPU: {"alu_add": 0.55, "alu_other": 0.30,
                        "fpu_add": 0.12, "fpu_other": 0.03},
    Component.INT_MULDIV: {"int_muldiv": 1.0},
    Component.FP_MULDIV: {"fp_muldiv": 1.0},
    Component.SFU: {"sfu": 1.0},
    Component.REGFILE: {},
    Component.CACHES_MC: {"ld_sectors": 0.75, "st_sectors": 0.25},
    Component.NOC: {"ld_sectors": 0.5, "st_sectors": 0.5},
    Component.OTHERS: {"warp_insts": 0.95, "shared": 0.05},
    Component.DRAM: {"ld_sectors": 0.8, "st_sectors": 0.2},
}

#: peak sustainable event rate per component (events/s, whole chip):
#: 80 SMs x unit counts x ~1.2 GHz for compute, bandwidth-derived for
#: the memory hierarchy.  Stressors sweep a fraction of peak, so their
#: dynamic power spans a realistic tens-to-~150 W range.
_PEAK_EVENTS = {
    Component.ALU_FPU: 4.0e12,
    Component.INT_MULDIV: 1.5e12,
    Component.FP_MULDIV: 1.5e12,
    Component.SFU: 3.8e11,
    Component.REGFILE: 1.2e13,
    Component.CACHES_MC: 1.6e11,
    Component.NOC: 3.0e11,
    Component.OTHERS: 3.8e11,
    Component.DRAM: 2.1e10,
}
_BACKGROUND_WARP_INSTS = 4.0e10
_DURATION_S = 0.25


def _stressor(component: Component, intensity: float, variant: int = 0,
              n_active_sms: int = 80) -> ActivityVector:
    """One stressor run.

    ``variant`` perturbs the *coupling ratios* (register accesses per
    op, NoC flits per sector, DRAM miss ratio ...) the way different
    micro-kernel bodies would — without this, register traffic would be
    perfectly collinear with compute ops and the least-squares system
    would be rank-deficient.
    """
    events = _PEAK_EVENTS[component] * intensity * _DURATION_S
    counts = {c: 0.0 for c in Component}
    counts[component] = events
    fine = {k: frac * events
            for k, frac in STRESSOR_SUBTYPES[component].items()}

    # background front-end + register traffic every kernel has
    bg_insts = _BACKGROUND_WARP_INSTS * _DURATION_S
    counts[Component.OTHERS] += bg_insts
    fine["warp_insts"] = fine.get("warp_insts", 0.0) + bg_insts

    # register accesses per compute op: 1..3 depending on how much the
    # stressor body reuses operands (breaks REGFILE/compute collinearity)
    reg_per_op = 1.0 + (variant % 3)
    if component in (Component.ALU_FPU, Component.INT_MULDIV,
                     Component.FP_MULDIV, Component.SFU):
        counts[Component.REGFILE] += reg_per_op * events
    else:
        counts[Component.REGFILE] += 32 * bg_insts

    # memory stressors imply hierarchy traffic with variant-dependent
    # locality (decouples CACHES_MC / NOC / DRAM columns)
    miss = 0.15 + 0.1 * (variant % 6)
    flits = 1.0 + 0.5 * (variant % 4)
    if component is Component.CACHES_MC:
        counts[Component.NOC] += flits * events
        counts[Component.DRAM] += miss * events
    elif component is Component.DRAM:
        counts[Component.CACHES_MC] += (0.5 + 0.25 * (variant % 3)) \
            * events
        counts[Component.NOC] += flits * events
    elif component is Component.NOC:
        counts[Component.CACHES_MC] += (0.2 + 0.2 * (variant % 4)) \
            * events

    return ActivityVector(
        name=f"stress_{component.name.lower()}_x{intensity:g}",
        counts=counts, fine=fine, duration_s=_DURATION_S,
        n_active_sms=n_active_sms, gpu=TITAN_V)


def _occupancy_stressor(n_active_sms: int) -> ActivityVector:
    light = _stressor(Component.ALU_FPU, 0.5, variant=1,
                      n_active_sms=n_active_sms)
    # scale dynamic work with active SMs so idle power is identifiable
    factor = n_active_sms / TITAN_V.n_sms
    vec = light.scaled(factor)
    vec.n_active_sms = n_active_sms
    vec.name = f"stress_occupancy_{n_active_sms}sm"
    return vec


def build_microbenchmarks() -> list:
    """The full 123-stressor calibration suite."""
    intensities = (0.08, 0.15, 0.25, 0.33, 0.42, 0.5, 0.58, 0.67, 0.75,
                   0.83, 0.92, 1.0)
    suite = [
        _stressor(component, intensity, variant)
        for component in Component
        for variant, intensity in enumerate(intensities)
    ]
    occupancies = np.linspace(4, 80, 15).astype(int)
    suite.extend(_occupancy_stressor(int(n)) for n in occupancies)
    assert len(suite) == 123, f"expected 123 stressors, got {len(suite)}"
    return suite
