"""Delta debugging over the mini-AST: drops, unwraps, simplifies —
and never returns an invalid or non-failing program."""

from repro.fuzz.gen import generate_kernel
from repro.fuzz.kast import (Call, Loop, Op, Program, Where, all_paths,
                             get_at, program_ok)
from repro.fuzz.shrink import minimize


def _has_sync(body) -> bool:
    for path in all_paths(body):
        stmt = get_at(body, path)
        if isinstance(stmt, Call) and stmt.method == "syncthreads":
            return True
    return False


class TestMinimize:
    def test_reduces_to_the_failing_statement(self):
        kernel = generate_kernel(21, 0)
        program = Program(kernel.program.body
                          + (Call("syncthreads", ()),))
        outcome = minimize(program,
                           lambda p: _has_sync(p.body))
        assert outcome.size < program.size()
        assert outcome.size <= 2
        assert _has_sync(outcome.program.body)
        assert program_ok(outcome.program)

    def test_unwraps_enclosing_blocks(self):
        program = Program((
            Op("t0", "thread_id", ()),
            Op("p0", "lt", ("t0", 5)),
            Where("p0", (
                Loop("i1", 3, (
                    Op("x1", "iadd", ("t0", 1)),
                )),
            )),
        ))

        def has_iadd(p):
            return any(isinstance(get_at(p.body, path), Op)
                       and get_at(p.body, path).method == "iadd"
                       for path in all_paths(p.body))

        outcome = minimize(program, has_iadd)
        # the Where/Loop wrappers are irrelevant — both unwrap away
        kinds = [type(get_at(outcome.program.body, p)).__name__
                 for p in all_paths(outcome.program.body)]
        assert "Where" not in kinds and "Loop" not in kinds
        assert has_iadd(outcome.program)
        assert program_ok(outcome.program)

    def test_never_drops_a_needed_definition(self):
        program = Program((
            Op("t0", "thread_id", ()),
            Op("x1", "iadd", ("t0", 7)),
            Call("st_global", ("iout", "t0", "x1")),
        ))

        def uses_x1(p):
            return any(isinstance(s := get_at(p.body, q), Call)
                       and "x1" in s.args
                       for q in all_paths(p.body))

        outcome = minimize(program, uses_x1)
        assert program_ok(outcome.program)
        assert uses_x1(outcome.program)
        # t0 and x1 producers must both survive (scope check)
        assert outcome.size == 3

    def test_simplifies_constants_toward_zero(self):
        program = Program((
            Op("t0", "thread_id", ()),
            Op("x1", "iadd", ("t0", 987654)),
        ))

        def has_iadd(p):
            return any(isinstance(get_at(p.body, q), Op)
                       and get_at(p.body, q).method == "iadd"
                       for q in all_paths(p.body))

        outcome = minimize(program, has_iadd)
        op = next(get_at(outcome.program.body, q)
                  for q in all_paths(outcome.program.body)
                  if isinstance(get_at(outcome.program.body, q), Op)
                  and get_at(outcome.program.body, q).method == "iadd")
        assert all(a in (0, 1, "t0") for a in op.args)

    def test_respects_the_evaluation_budget(self):
        kernel = generate_kernel(21, 1)
        calls = []

        def predicate(p):
            calls.append(1)
            return True

        minimize(kernel.program, predicate, max_evals=25)
        assert len(calls) <= 25

    def test_raising_predicate_counts_as_different_failure(self):
        program = Program((
            Op("t0", "thread_id", ()),
            Op("x1", "iadd", ("t0", 7)),
        ))

        def explosive(p):
            if p.size() < 2:
                raise RuntimeError("different crash")
            return True

        outcome = minimize(program, explosive)
        assert outcome.size == 2
        assert program_ok(outcome.program)
