#!/usr/bin/env python
"""Quickstart: run a kernel you wrote through the whole ST2 stack.

This example shows the core workflow in ~60 lines:

1. write a CUDA-like kernel against the DSL,
2. execute it functionally to capture its addition trace,
3. run the ST2 carry-speculation design over the trace,
4. see what the speculative adders would save.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (DESIGN_LADDER, ST2_DESIGN, GridLauncher, LaunchConfig,
                   run_speculation)
from repro.circuits.characterize import characterize_adders


def saxpy(k, a, x, y, out, n):
    """y[i] = a * x[i] + y[i] — the 'hello world' of GPU kernels."""
    i = k.global_id()
    with k.where(k.lt(i, n)):
        xi = k.ld_global(x, i)
        yi = k.ld_global(y, i)
        k.st_global(out, i, k.ffma(a, xi, yi))


def main() -> None:
    # -- 1. build inputs and launch the kernel functionally ------------
    n = 4096
    launcher = GridLauncher(seed=0)
    rng = np.random.default_rng(0)
    x = launcher.buffer("x", rng.normal(1, 0.2, n).astype(np.float32))
    y = launcher.buffer("y", rng.normal(0, 0.1, n).astype(np.float32))
    out = launcher.buffer("out", np.zeros(n, np.float32))

    run = launcher.run(saxpy, LaunchConfig(n // 128, 128),
                       a=np.float32(2.0), x=x, y=y, out=out, n=n)
    assert np.allclose(out.data, 2.0 * x.data + y.data)

    print(f"kernel executed: {len(run.trace):,} adder operations "
          f"({run.n_static_pcs} static addition PCs)")

    # -- 2. sweep the carry-speculation design space -------------------
    print("\nthread misprediction rate per mechanism:")
    for config in DESIGN_LADDER:
        result = run_speculation(run.trace, config)
        marker = "  <- ST2 design" if config is ST2_DESIGN else ""
        print(f"  {config.name:26s} "
              f"{result.thread_misprediction_rate:6.1%}{marker}")

    # -- 3. what the ST2 adders save at this workload's miss rate ------
    st2 = run_speculation(run.trace, ST2_DESIGN)
    adder = characterize_adders()
    saving = adder.saving(st2.thread_misprediction_rate,
                          st2.recomputed_per_misprediction)
    print(f"\nST2 on this kernel: {st2.thread_misprediction_rate:.1%} "
          f"misprediction, {st2.recomputed_per_misprediction:.2f} "
          "slices recomputed per miss")
    print(f"adder-power saving vs the reference adder: {saving:.1%}"
          "  (paper headline: ~70%)")


if __name__ == "__main__":
    main()
