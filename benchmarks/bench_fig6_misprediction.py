"""Figure 6 — per-kernel thread misprediction rate of the ST2 design.

Paper claims: 9 % average across the 23 kernels; a single misprediction
causes 1.94 slices to recompute on average (at most 2.73 per kernel).
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import hbar_chart


def _collect(suite_evaluations):
    return {name: (e.misprediction_rate, e.recomputed_per_misprediction)
            for name, e in suite_evaluations.items()}


def test_fig6_misprediction_rates(benchmark, suite_evaluations,
                                  artifact_dir):
    stats = benchmark.pedantic(_collect, args=(suite_evaluations,),
                               rounds=1, iterations=1)

    names = list(stats)
    rates = [stats[n][0] for n in names]
    txt = hbar_chart(
        "Figure 6: ST2 thread misprediction rate per kernel",
        names, rates)
    avg = float(np.mean(rates))
    recs = [stats[n][1] for n in names if stats[n][0] > 0]
    txt += (f"\n\naverage misprediction: {avg:.1%}   (paper: 9%)"
            f"\nslices recomputed per misprediction: avg "
            f"{np.mean(recs):.2f}, max {np.max(recs):.2f}"
            "   (paper: 1.94 avg, up to 2.73)")
    save_artifact(artifact_dir, "fig6_misprediction.txt", txt)

    assert avg < 0.20, "suite-average misprediction must stay low"
    assert 1.0 < np.mean(recs) < 3.5
    assert max(rates) < 0.45
    # several kernels are near-perfectly predictable (paper shows the
    # same long tail of near-zero bars)
    assert sum(r < 0.02 for r in rates) >= 4
