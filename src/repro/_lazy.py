"""PEP 562 lazy-export machinery shared by the ``repro`` packages.

A package lists its public names in ``_LAZY_EXPORTS`` — mapping each
exported name to the ``(module, attribute)`` that defines it — and
installs the module-level hooks with one line::

    __getattr__, __dir__ = lazy_attrs(__name__, globals(), _LAZY_EXPORTS)

The first attribute access imports the defining module and caches the
value in the package's globals, so ``import repro`` (and ``import
repro.sim`` etc.) stays cheap: nothing under the package is imported
until a name is actually used.
"""

from __future__ import annotations

import importlib


def lazy_attrs(module_name: str, module_globals: dict,
               exports: dict) -> tuple:
    """Build the ``(__getattr__, __dir__)`` pair for a lazy package."""

    def __getattr__(name: str):
        try:
            target, attr = exports[name]
        except KeyError:
            raise AttributeError(
                f"module {module_name!r} has no attribute "
                f"{name!r}") from None
        value = getattr(importlib.import_module(target), attr)
        module_globals[name] = value    # cache for subsequent lookups
        return value

    def __dir__() -> list:
        return sorted(set(module_globals) | set(exports))

    return __getattr__, __dir__
