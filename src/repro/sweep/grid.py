"""Sweep-spec expansion: the axis grid, normalisation and provable
equivalence classes.

Two reductions happen here, both *provable from the predictor code*
(:mod:`repro.core.predictors`), never heuristic:

* **Normalisation** — ``pc_bits`` only participates in the history
  index under ``mod``/``xor`` PC indexing (``history_keys`` reads it
  nowhere else), so under ``none``/``full`` it is pinned to 0.  Axis
  combinations that differ only in a dead ``pc_bits`` collapse to one
  config (counted as duplicates).  This is unconditional: the dropped
  combinations are not distinct design points at all.
* **Equivalence classes** — the ``static0``/``static1``/``operand``
  mechanisms are stateless and ``valhalla`` keys its history on the
  trace's gtid internally, so none of them reads ``pc_index`` /
  ``pc_bits`` / ``thread_key`` / ``sm_scoped``: every combination of
  those fields is *result-identical* for a given (mechanism, peek).
  Pruned sweeps execute one representative per class; exhaustive
  sweeps (``--no-prune``) execute every member and verify the claimed
  identity bit-for-bit before merging.

Every config carries its canonical compositional name
(:func:`repro.core.speculation.config_name`), which round-trips
through :func:`~repro.core.speculation.parse_config_name` — that is
what lets the serve backend ship sweep configs as plain name strings
and still resolve identical unit cache keys server-side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.api import SweepSpec
from repro.core.predictors import SpeculationConfig
from repro.core.speculation import config_name

#: Config fields that are dead (never read) for these mechanisms —
#: the provable-equivalence rule.  ``peek`` is live for every
#: mechanism (the Peek overlay applies before any dynamic prediction).
HISTORY_FIELDS = ("pc_index", "pc_bits", "thread_key", "sm_scoped")
HISTORY_FREE_MECHANISMS = ("static0", "static1", "operand", "valhalla")


def normalize_fields(fields: Dict[str, Any]) -> Dict[str, Any]:
    """Pin dead ``pc_bits`` to 0 (``none``/``full`` PC indexing)."""
    out = dict(fields)
    if out["pc_index"] in ("none", "full"):
        out["pc_bits"] = 0
    return out


def canonical_fields(fields: Dict[str, Any]) -> Dict[str, Any]:
    """The representative field dict of a config's equivalence class."""
    out = normalize_fields(fields)
    if out["mechanism"] in HISTORY_FREE_MECHANISMS:
        out.update(pc_index="none", pc_bits=0, thread_key="",
                   sm_scoped=False)
    return out


def _config(fields: Dict[str, Any]) -> SpeculationConfig:
    return SpeculationConfig(name=config_name(**fields), **fields)


@dataclass(frozen=True)
class ConfigGroup:
    """One equivalence class of the grid.

    ``members`` are every grid config in the class (deterministic grid
    order); ``runner`` is the representative a pruned sweep executes
    (the first member); ``canon`` names the class — the key its
    Pareto point carries in both pruned and exhaustive mode.
    """

    canon: str
    canon_fields_: Tuple[Tuple[str, Any], ...]
    members: Tuple[SpeculationConfig, ...]

    @property
    def runner(self) -> SpeculationConfig:
        return self.members[0]

    @property
    def canon_fields(self) -> Dict[str, Any]:
        return dict(self.canon_fields_)


@dataclass(frozen=True)
class SweepPlan:
    """The executable expansion of one :class:`~repro.api.SweepSpec`."""

    spec: SweepSpec
    kernels: Tuple[str, ...]
    groups: Tuple[ConfigGroup, ...]
    invalid_combos: int
    duplicate_configs: int

    @property
    def n_configs(self) -> int:
        return sum(len(g.members) for g in self.groups)

    @property
    def equivalent_members(self) -> int:
        """Grid configs a pruned sweep skips as provably equivalent."""
        return sum(len(g.members) - 1 for g in self.groups)


def expand_plan(spec: SweepSpec) -> SweepPlan:
    """Expand a spec into kernels × equivalence-classed configs.

    Raises ``KeyError`` on unknown kernel names (mirroring
    ``st2-run``); invalid axis combinations (``mod``/``xor`` with
    ``pc_bits < 1``) are dropped and counted.
    """
    from repro.kernels.suite import resolve_kernels

    kernels = tuple(resolve_kernels(list(spec.kernels)))
    invalid = 0
    duplicates = 0
    by_name: Dict[str, SpeculationConfig] = {}
    classes: Dict[str, List[SpeculationConfig]] = {}
    class_fields: Dict[str, Dict[str, Any]] = {}
    for raw in spec.field_grid():
        fields = normalize_fields(raw)
        try:
            cfg = _config(fields)
        except ValueError:
            invalid += 1
            continue
        if cfg.name in by_name:
            duplicates += 1
            continue
        by_name[cfg.name] = cfg
        canon = canonical_fields(fields)
        key = config_name(**canon)
        classes.setdefault(key, []).append(cfg)
        class_fields.setdefault(key, canon)
    groups = tuple(
        ConfigGroup(canon=key,
                    canon_fields_=tuple(sorted(
                        class_fields[key].items())),
                    members=tuple(members))
        for key, members in classes.items())
    return SweepPlan(spec=spec, kernels=kernels, groups=groups,
                     invalid_combos=invalid,
                     duplicate_configs=duplicates)


__all__ = ["HISTORY_FIELDS", "HISTORY_FREE_MECHANISMS", "ConfigGroup",
           "SweepPlan", "canonical_fields", "expand_plan",
           "normalize_fields"]
