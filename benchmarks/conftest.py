"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures.  The
23-kernel traces, the calibrated power model and the circuit-level adder
characterisation are session-scoped: they are exactly the shared inputs
the paper's experiments reuse.

``REPRO_BENCH_SCALE`` (default 1.0) scales workload sizes; the rendered
figures and measured-vs-paper records are written to
``benchmarks/out/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def suite_runs():
    from repro.kernels.suite import run_suite
    return run_suite(scale=BENCH_SCALE, seed=0)


@pytest.fixture(scope="session")
def power_model():
    from repro.power.calibration import calibrated_model
    return calibrated_model(seed=0)


@pytest.fixture(scope="session")
def adder_model():
    from repro.st2.architecture import default_adder_model
    return default_adder_model()


@pytest.fixture(scope="session")
def suite_evaluations(suite_runs, power_model, adder_model):
    from repro.st2.architecture import evaluate_run
    return {name: evaluate_run(run, model=power_model,
                               adder_model=adder_model)
            for name, run in suite_runs.items()}


@pytest.fixture(scope="session")
def runner_results() -> dict:
    """The 23-kernel ST2 evaluation driven through the parallel cached
    runner (``repro.runner``) — kernel name -> typed
    :class:`~repro.st2.results.RunResult`.

    ``REPRO_BENCH_WORKERS`` overrides the pool size (0 = auto);
    ``REPRO_BENCH_NO_CACHE=1`` bypasses the disk cache, forcing a
    fresh in-process computation of every unit;
    ``REPRO_BENCH_TRACE_STORE=DIR`` routes the functional executions
    through the shared memory-mapped trace store (two-stage pipeline).
    """
    from repro.runner import (RunOptions, build_units, default_workers,
                              run_suite_units)
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) \
        or default_workers()
    options = RunOptions(
        workers=workers,
        use_cache=not os.environ.get("REPRO_BENCH_NO_CACHE"))
    store_dir = os.environ.get("REPRO_BENCH_TRACE_STORE")
    if store_dir:
        from repro.sim.trace_store import TraceStore
        options.trace_store = TraceStore(store_dir)
    units = build_units("all", scale=BENCH_SCALE, seed=0)
    keyed = run_suite_units(units, options)
    return {kernel: result for (kernel, _cfg), result in keyed.items()}


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_artifact(artifact_dir: Path, name: str, text: str) -> None:
    (artifact_dir / name).write_text(text + "\n")
    print("\n" + text)
