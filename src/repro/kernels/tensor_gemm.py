"""CUDA Samples *cudaTensorCoreGemm* — extension workload.

The paper lists this workload in Section V-A but it appears on none of
the evaluation figures (the 23-kernel axes); we provide it as an
extension.  Tensor cores themselves contain no ST2 adders (the design
explicitly targets ALUs/FPUs/DPUs only), but the kernel's *epilogue* —
scaling and accumulating the FP32 tile results, plus the tile address
arithmetic — runs on regular FPUs/ALUs and is what an ST2 GPU would
speculate on.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

WMMA = 16            # tensor-core tile edge
BLOCK = 256          # 8 warps, one WMMA tile each


def tensor_gemm_kernel(k, a, b, c, d, m, n, kk, alpha, beta,
                       tiles_per_row):
    """compute_gemm: HMMA tile loop + FP32 epilogue per element."""
    warp = k.thread_id() // 32
    lane = k.thread_id() % 32
    tile = k.imad(k.block_id, 8, warp)
    n_tiles = (m // WMMA) * tiles_per_row
    with k.where(k.lt(tile, n_tiles)):
        tile_row = k.idiv(tile, tiles_per_row)
        tile_col = k.irem(tile, tiles_per_row)

        # MMA main loop: one HMMA op per K-tile per warp (no ST2 adders)
        for _t in k.range(kk // WMMA):
            k.tensor_mma()

        # epilogue: each lane owns 8 elements of the 16x16 tile
        for e in k.range(8):
            elem = k.imad(lane, 8, e)
            row = k.imad(tile_row, WMMA, k.idiv(elem, WMMA))
            col = k.imad(tile_col, WMMA, k.irem(elem, WMMA))
            idx = k.imad(row, n, col)
            acc = k.ld_global(c, idx)        # the MMA accumulator value
            old = k.ld_global(d, idx)
            out = k.ffma(alpha, acc, k.fmul(beta, old))
            k.st_global(d, idx, out)


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    tiles_per_row = scaled(4, scale, minimum=2)
    tiles_per_col = scaled(4, scale, minimum=2)
    m, n = tiles_per_col * WMMA, tiles_per_row * WMMA
    kk = scaled(8, scale, minimum=2) * WMMA

    c = rng.normal(0, 1, m * n).astype(np.float32)   # MMA results
    d = rng.normal(0, 0.2, m * n).astype(np.float32)

    n_tiles = tiles_per_row * tiles_per_col
    grid = max(1, (n_tiles + 7) // 8)
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="tensorGemm",
        fn=tensor_gemm_kernel,
        launch=LaunchConfig(grid, BLOCK),
        params=dict(
            a=launcher.buffer("A", np.zeros(4, np.float32)),
            b=launcher.buffer("B", np.zeros(4, np.float32)),
            c=launcher.buffer("C", c),
            d=launcher.buffer("D", d),
            m=m, n=n, kk=kk, alpha=np.float32(1.0),
            beta=np.float32(0.8), tiles_per_row=tiles_per_row),
        launcher=launcher)
