"""Front-end tying the L1–L10 rules together over files and trees.

A *kernel function* is any function whose first parameter is named
``k`` — the repo-wide convention for the :class:`BlockContext`
argument (enforced by the suite registry).  Per-function rules (L1,
L3, L4) run on those; L2 runs per module; L5 runs only on modules the
runner's result cache hashes, because that is where nondeterminism
poisons cached numbers.

L6–L8 are flow-sensitive: they lower each kernel function to the
:mod:`repro.lint.ir` CFG and abstractly interpret it
(:mod:`repro.lint.absint`).  When L7 is active, barriers the engine
proves uniformly-masked (or unreachable) also *retract* their
syntactic L4 findings — running ``--rules L4`` alone keeps the purely
syntactic behaviour.

L9–L10 ride on the bounds tier (:mod:`repro.lint.bounds`): sound
per-kernel speculation-outcome bounds composed from the same abstract
interpretation, flagging kernels where speculation is provably never
(L9) or always (L10) profitable.  Informational only.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.findings import Finding
from repro.lint.rules import (check_l1, check_l2, check_l3_l4,
                              check_l5)
from repro.lint.suppress import line_suppresses
from repro.lint.taint import Taint

ALL_RULES = ("L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8",
             "L9", "L10")
FLOW_RULES = ("L6", "L7", "L8")
BOUNDS_RULES = ("L9", "L10")


def _is_kernel_fn(fn: ast.FunctionDef) -> bool:
    args = fn.args.args
    return bool(args) and args[0].arg == "k"


def _module_is_hashed(path) -> bool:
    """Is this file inside a package the result cache digests?

    Imported lazily: the analyzer must stay importable even when the
    runner (and through it the kernel suite) is not.
    """
    try:
        from repro.runner.cache import result_affecting_packages
        packages = result_affecting_packages()
    except Exception:
        return False
    parts = Path(path).resolve().parts
    for i, part in enumerate(parts[:-1]):
        if part == "repro" and parts[i + 1] in packages:
            return True
    return False


def lint_source(src: str, path: str = "<string>", rules=None,
                hashed=None):
    """Lint one module's source text.

    ``rules`` restricts to a subset of rule ids; ``hashed`` overrides
    the on-disk is-this-module-cache-hashed determination (used by
    tests and for stdin input).  Returns findings sorted by location,
    with suppressed ones included but flagged.
    """
    active = set(ALL_RULES if rules is None else rules)
    try:
        tree = ast.parse(src, filename=str(path))
    except SyntaxError as exc:
        return [Finding(str(path), exc.lineno or 1, "E0",
                        f"file could not be parsed: {exc.msg}")]

    raw = []
    if "L2" in active:
        raw.extend(check_l2(tree, str(path)))
    if "L5" in active:
        if hashed is None:
            hashed = _module_is_hashed(path)
        if hashed:
            raw.extend(check_l5(tree, str(path)))

    per_fn = active & {"L1", "L3", "L4"}
    if per_fn:
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) \
                    and _is_kernel_fn(node):
                taint = Taint(node)
                if "L1" in per_fn:
                    raw.extend(check_l1(node, taint, str(path)))
                if per_fn & {"L3", "L4"}:
                    raw.extend(check_l3_l4(
                        node, taint, str(path),
                        rules=tuple(per_fn & {"L3", "L4"})))

    flow = active & set(FLOW_RULES)
    if flow:
        # imported lazily: the flow layer pulls in the IR + abstract
        # interpreter, which syntactic-only runs never need
        from repro.lint.rules_flow import check_flow
        flow_raw, l4_clean = check_flow(tree, str(path), flow)
        raw.extend(flow_raw)
        if "L7" in active and l4_clean:
            raw = [f for f in raw
                   if not (f.rule == "L4" and f.line in l4_clean)]

    bounds = active & set(BOUNDS_RULES)
    if bounds:
        # imported lazily: the bounds tier additionally pulls in the
        # circuit/power constants for its profitability statements
        from repro.lint.rules_bounds import check_bounds
        raw.extend(check_bounds(tree, str(path), bounds))

    lines = src.splitlines()
    seen, findings = set(), []
    for f in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
        ident = (f.path, f.line, f.rule)
        if ident in seen or f.rule not in active and f.rule != "E0":
            continue
        seen.add(ident)
        text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        findings.append(Finding(
            f.path, f.line, f.rule, f.message, line_text=text,
            suppressed=line_suppresses(text, f.rule)))
    return findings


def lint_paths(paths, rules=None):
    """Lint files and directories (directories recurse over ``*.py``)."""
    files = []
    for item in paths:
        p = Path(item)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    findings = []
    for file in files:
        try:
            src = file.read_text()
        except OSError as exc:
            findings.append(Finding(str(file), 1, "E0",
                                    f"file could not be read: {exc}"))
            continue
        findings.extend(lint_source(src, path=str(file), rules=rules))
    # global deterministic order: directory traversal sorts Path
    # objects (component-wise), which disagrees with plain string
    # order across filesystems and path shapes — sort the flat list so
    # CLI output and baselines are byte-identical everywhere
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
