"""Structured export of experiment results (CSV / JSON).

The ASCII artifacts in ``benchmarks/out/`` are for humans; downstream
analysis (plotting the figures with matplotlib, meta-studies) wants the
raw numbers. These helpers serialise the main result objects without
any dependency beyond the standard library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.power.components import Component


def write_csv(path, headers, rows) -> None:
    """Plain CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def export_evaluations_csv(path, evaluations: dict) -> None:
    """Per-kernel ST2 evaluation (the Figure 6/7 numbers) as CSV."""
    rows = []
    for name, e in evaluations.items():
        rows.append((
            name,
            f"{e.misprediction_rate:.6f}",
            f"{e.recomputed_per_misprediction:.4f}",
            f"{e.slowdown:.6f}",
            f"{e.energy.alu_fpu_share:.6f}",
            f"{e.system_saving:.6f}",
            f"{e.chip_saving:.6f}",
            int(e.arithmetic_intensive),
        ))
    write_csv(path,
              ["kernel", "misprediction_rate",
               "recomputed_per_misprediction", "slowdown",
               "alu_fpu_share", "system_saving", "chip_saving",
               "arithmetic_intensive"], rows)


def export_energy_stacks_json(path, evaluations: dict) -> None:
    """Figure 7's normalised component stacks as JSON."""
    out = {}
    for name, e in evaluations.items():
        base, st2 = e.energy.normalized_stacks()
        out[name] = {"baseline": base, "st2": st2}
    Path(path).write_text(json.dumps(out, indent=2, sort_keys=True))


def export_ladder_csv(path, ladder_rates: dict) -> None:
    """Figure 5's design-space ladder (config -> rate[s]) as CSV."""
    rows = []
    for config_name, rates in ladder_rates.items():
        if isinstance(rates, (int, float)):
            rates = [rates]
        rows.append((config_name,
                     *(f"{r:.6f}" for r in rates)))
    n_cols = max(len(r) - 1 for r in rows)
    headers = ["config"] + [f"rate_{i}" for i in range(n_cols)]
    write_csv(path, headers, rows)


def export_breakdown_csv(path, breakdown) -> None:
    """One EnergyBreakdown's per-component joules as CSV."""
    rows = [(c.value, f"{breakdown.components[c]:.9e}")
            for c in Component]
    rows.append(("constant", f"{breakdown.constant_j:.9e}"))
    rows.append(("idle_sm", f"{breakdown.idle_j:.9e}"))
    write_csv(path, ["component", "energy_j"], rows)
