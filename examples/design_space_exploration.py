#!/usr/bin/env python
"""Figure 5 walkthrough: exploring the carry-speculation design space
on a subset of the suite, plus a custom mechanism of your own.

Shows how to (a) sweep the paper's ladder, (b) define a new
SpeculationConfig and see where it lands, and (c) inspect the
contention-free CRF behaviour of the final design.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.analysis.ascii_charts import hbar_chart
from repro.core.predictors import SpeculationConfig, run_speculation
from repro.core.speculation import DESIGN_LADDER, ST2_DESIGN
from repro.kernels.suite import run_suite

KERNELS = ("pathfinder", "sad_K1", "msort_K1", "dwt2d_K1", "sgemm")


def main() -> None:
    runs = run_suite(scale=0.5, names=KERNELS)

    # -- the paper's ladder ------------------------------------------------
    averages = {}
    for config in DESIGN_LADDER:
        rates = [run_speculation(r.trace, config)
                 .thread_misprediction_rate for r in runs.values()]
        averages[config.name] = float(np.mean(rates))
    print(hbar_chart(
        f"Figure 5 ladder (avg over {len(KERNELS)} kernels)",
        list(averages), list(averages.values())))

    # -- roll your own mechanism -------------------------------------------
    # e.g.: what if we spent 6 PC bits and scoped tables per SM (a
    # physically larger CRF)?
    custom = SpeculationConfig("Ltid+Prev+ModPC6+Peek+SMscope", "prev",
                               peek=True, pc_index="mod", pc_bits=6,
                               thread_key="ltid", sm_scoped=True)
    rates = [run_speculation(r.trace, custom).thread_misprediction_rate
             for r in runs.values()]
    print(f"\ncustom {custom.name}: {np.mean(rates):.1%} "
          f"(ST2 baseline: {averages[ST2_DESIGN.name]:.1%})")
    print(f"custom CRF entries: {custom.table_entries()} vs "
          f"ST2's {ST2_DESIGN.table_entries()} "
          "(diminishing returns, as the paper found for k > 4)")

    # -- per-kernel detail for the final design -----------------------------
    print("\nper-kernel ST2 behaviour:")
    for name, run in runs.items():
        res = run_speculation(run.trace, ST2_DESIGN)
        print(f"  {name:12s} miss={res.thread_misprediction_rate:6.1%}"
              f"  recompute/miss={res.recomputed_per_misprediction:.2f}"
              f"  wrong bits/op={res.wrong_bits.mean():.3f}")


if __name__ == "__main__":
    main()
