"""Paper-claims registry consistency."""

import pytest

from repro.st2.paper_numbers import PAPER_CLAIMS, claim, value


class TestRegistry:
    def test_lookup(self):
        assert value("miss_st2") == 0.09
        assert claim("crf_bytes_per_sm").unit == "bytes"
        with pytest.raises(KeyError):
            claim("not_a_claim")

    def test_every_claim_has_source(self):
        for c in PAPER_CLAIMS.values():
            assert c.source.startswith(("§", "Abstract")), c.key

    def test_fractions_are_fractions(self):
        for c in PAPER_CLAIMS.values():
            if c.unit == "fraction":
                assert 0.0 <= c.value <= 1.0, c.key

    def test_internal_consistency(self):
        """Claims that constrain each other must agree."""
        # ST2's 65%-below-VaLHALLA and the two absolute rates
        implied = value("miss_st2") / value("miss_valhalla")
        assert 1 - implied == pytest.approx(
            value("st2_vs_valhalla_reduction"), abs=0.02)
        # 91% accuracy == 9% misprediction
        assert value("prediction_accuracy") \
            == pytest.approx(1 - value("miss_st2"), abs=1e-9)
        # storage: CRF + DFF = total
        assert value("crf_kb_chip") + value("dff_kb_chip") \
            == value("total_storage_kb")
        # chip > system savings (DRAM excluded from the former)
        assert value("chip_energy_saving") > value("system_energy_saving")

    def test_hardware_storage_matches_registry(self):
        """The overhead accounting must reproduce the registry claims
        exactly where the arithmetic is deterministic."""
        from repro.st2.overheads import overhead_report
        rep = overhead_report()
        assert rep.crf_bytes_per_sm == value("crf_bytes_per_sm")
        assert rep.crf_bytes_chip // 1024 == value("crf_kb_chip")
        assert round(rep.total_storage_bytes / 1024) \
            == value("total_storage_kb")

    def test_geometry_matches_registry(self):
        from repro.core.slices import (FP32_MANTISSA, FP64_MANTISSA,
                                       INT64)
        assert INT64.state_bits() == value("dff_bits_alu_adder")
        assert FP32_MANTISSA.state_bits() == value("dff_bits_fp32_adder")
        assert FP64_MANTISSA.state_bits() == value("dff_bits_fp64_adder")

    def test_microbench_count_matches(self):
        from repro.power.microbench import build_microbenchmarks
        assert len(build_microbenchmarks()) == value("n_microbenchmarks")

    def test_suite_size_matches(self):
        from repro.kernels.suite import SUITE
        assert len(SUITE) == value("n_kernels")
