"""Adder geometry."""

import pytest

from repro.core.slices import (CRF_BITS_PER_THREAD, FP32_MANTISSA,
                               FP64_MANTISSA, INT32, INT64, AdderGeometry,
                               geometry_for)


class TestGeometries:
    def test_paper_slice_counts(self):
        """Section IV-C: 3 slices for FP32 mantissa, 7 for FP64."""
        assert INT64.n_slices == 8
        assert INT32.n_slices == 4
        assert FP32_MANTISSA.n_slices == 3
        assert FP64_MANTISSA.n_slices == 7

    def test_prediction_counts(self):
        assert INT64.n_predictions == 7       # Cpred[6:0]
        assert FP32_MANTISSA.n_predictions == 2

    def test_state_bits_match_paper(self):
        """Section VI: 14 bits per ALU adder, 4 per FP32, 12 per FP64."""
        assert INT64.state_bits() == 14
        assert FP32_MANTISSA.state_bits() == 4
        assert FP64_MANTISSA.state_bits() == 12

    def test_crf_entry_width(self):
        assert CRF_BITS_PER_THREAD == 7       # 32 threads -> 224 bits

    def test_partial_last_slice(self):
        assert FP32_MANTISSA.slice_widths == [8, 8, 7]
        assert FP64_MANTISSA.slice_widths[-1] == 4

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            AdderGeometry(0)
        with pytest.raises(ValueError):
            AdderGeometry(65)
        with pytest.raises(ValueError):
            AdderGeometry(32, slice_width=0)

    def test_geometry_for_returns_canonical(self):
        assert geometry_for(64) is INT64
        assert geometry_for(23) is FP32_MANTISSA
        custom = geometry_for(17)
        assert custom.n_slices == 3
