"""The sweep engine: resumable execution of a design-space grid with
incremental Pareto tracking and provably-sound early pruning.

Execution is config-major over the plan's equivalence classes
(:mod:`repro.sweep.grid`): each scheduled config evaluates its kernels
in waves, updating the Pareto frontier as configs complete.  Two
backends run the waves — ``local`` drives
:func:`repro.runner.pool.run_units` in-process; ``serve`` submits jobs
to an ``st2-serve`` daemon over the batch API and pages results back
(:meth:`repro.serve.client.ServeClient.iter_results`).  Both produce
``results_equal`` unit payloads with identical cache keys, so their
frontiers match float-for-float.

**Pruning** (default on; ``--no-prune`` for exhaustive mode) has two
tiers, both logged to obs counters and both frontier-preserving:

* *equivalence* — only the representative of each provably
  result-identical config class executes (``sweep.prune.equivalent``);
* *domination* — between waves, a partially-evaluated config's
  *optimistic completion bound* is tested against the frontier.  The
  bound assumes every remaining kernel contributes the best value the
  physics allows: misprediction rate and slowdown at least 0 (ST2 only
  ever adds recompute stalls), energy saving at most the kernel's
  baseline ALU+FPU energy share (the only component ST2 shrinks) times
  the adder model's zero-misprediction datapath-saving ceiling — the
  share learned from the first completed evaluation of that kernel,
  the ceiling a pure circuit-characterisation constant.  If a
  frontier point dominates the bound it dominates every completion,
  so the config is dropped (``sweep.prune.dominated``) without ever
  appearing on the frontier — in pruned *or* exhaustive runs.

When the plain completion bound fails, a second, *static* stage
(default on; ``--no-static-bounds`` disables it) intersects it with
the sound per-kernel speculation-outcome bounds of
:mod:`repro.lint.bounds`: every remaining kernel's saving ceiling
shrinks by the statically proven recompute floor of this config
class, and its misprediction floor joins the bound — so a config
class that provably mispredicts can be discarded *before its first
unit executes*.  Static prunes are recorded with ``"via":
"static_bounds"`` and the ``sweep.prune.static`` /
``sweep.prune.static.units_skipped`` counters.  Kernels whose static
report is trivial (bailed analysis) or unresolvable claim nothing
and fall back to the dynamic ceiling alone.

**Resume**: every finished unit is appended (flushed) to a JSONL
manifest stamped with the spec digest.  A restarted sweep replays
those units — tolerating a torn final line from a mid-write kill —
and executes only what is missing (``sweep.units.reused`` vs
``sweep.units.executed``; the kill/resume CI job pins re-executions
at zero).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, List, Mapping, Optional,
                    Tuple)

from repro import obs
from repro.api import SweepSpec
from repro.runner.manifest import (ManifestWriter,
                                   read_manifest_tolerant)
from repro.sweep.grid import ConfigGroup, SweepPlan, expand_plan
from repro.sweep.pareto import (OBJECTIVES, ParetoError,
                                ParetoFrontier, ParetoPoint)

#: Slack applied to optimistic bounds so float summation-order noise
#: can only make pruning *more* conservative, never less.
BOUND_SLACK = 1e-9


class SavedCeiling:
    """Provable per-kernel upper bounds on achievable system saving.

    Every bound follows from :func:`repro.st2.energy.st2_breakdown`:
    the ALU+FPU component is the only one ST2 shrinks, its shrink is
    ``A_k * s(miss, rec) - OV_k`` with ``A_k`` (the kernel's adder-
    datapath share of baseline system energy) and ``OV_k`` (per-op
    DFF/shifter overhead share) config-independent, and the stretched
    static energy only ever reduces the saving further.  Two bounds,
    both sound, combined by ``min``:

    * *share bound* — ``alu_fpu_share * frac_max * s_max``: the
      adder datapath is at most ``max(ADDER_FRACTION)`` of ALU+FPU
      energy, and ``s_max = saving(miss=0)`` is the adder model's
      ceiling (the recompute term vanishes; ``saving`` is strictly
      decreasing in ``miss * rec``).
    * *stack bound* — from one completed unit's energy stacks:
      the observed ALU+FPU shrink is ``A_k * s_obs - OV_k``, and
      ``OV_k <= rho * A_k`` with ``rho`` = per-op overhead over the
      smallest per-op adder-datapath energy (model constants), so
      ``A_k <= observed / (s_obs - rho)`` and no config can save more
      than ``A_k * s_max``.  Skipped when the st2 component clamped
      at zero (the observation would under-state ``A_k``).
    """

    def __init__(self) -> None:
        from repro.power.components import Component
        from repro.power.model import MODEL_ALU_SUBTYPE_PJ
        from repro.runner.units import ModelBundle
        from repro.st2.energy import _ADD_SUBTYPES, ADDER_FRACTION

        models = ModelBundle().ensure()
        self.adder = models.adder_model
        self.s_max = self.adder.saving(0.0, 0.0)
        self.frac_max = max(ADDER_FRACTION.values())
        overhead_fj = self.adder.dff_fj + self.adder.level_shifter_fj
        scale = models.power_model.scales[Component.ALU_FPU]
        min_adder_fj = min(
            MODEL_ALU_SUBTYPE_PJ[sub] * 1e3 * scale
            * ADDER_FRACTION[sub] for sub in _ADD_SUBTYPES)
        self.rho = overhead_fj / min_adder_fj \
            if min_adder_fj > 0 else 0.0

    def unit_bound(self, unit: Mapping[str, Any]) -> Optional[float]:
        """The tightest sound saving ceiling one completed unit of a
        kernel proves for *every* config on that kernel."""
        metrics = unit.get("metrics", {})
        bounds = []
        share = metrics.get("alu_fpu_share")
        if isinstance(share, (int, float)):
            bounds.append(float(share) * self.frac_max * self.s_max)
        stacks = unit.get("energy_stacks") or {}
        base = (stacks.get("baseline") or {}).get("ALU+FPU")
        st2 = (stacks.get("st2") or {}).get("ALU+FPU")
        miss = metrics.get("misprediction_rate")
        rec = metrics.get("recomputed_per_misprediction")
        if all(isinstance(v, (int, float))
               for v in (base, st2, miss, rec)) and st2 > 0:
            s_obs = self.adder.saving(float(miss), float(rec))
            if s_obs - self.rho > 0:
                bounds.append((float(base) - float(st2))
                              * self.s_max / (s_obs - self.rho))
        return min(bounds) if bounds else None


class StaticBoundsIndex:
    """Per-kernel static speculation-outcome bounds for pruning.

    Wraps :func:`repro.lint.bounds.bounds_for_kernel` together with
    the sweep's model bundle, so the energy constants in the static
    intersection match the models the units actually evaluate under.
    Kernels whose report is trivial (bailed analysis) or whose kernel
    function cannot be resolved claim nothing (``None``).
    """

    def __init__(self) -> None:
        from repro.lint.bounds import bound_constants
        from repro.runner.units import ModelBundle

        models = ModelBundle().ensure()
        self.constants = bound_constants(models.power_model,
                                         models.adder_model)

    def class_bounds(self, kernel: str, config: Any) -> Optional[Any]:
        from repro.lint.bounds import bounds_for_kernel

        report = bounds_for_kernel(kernel)
        if report is None or report.trivial:
            return None
        return report.bounds_for_config(config)


#: Version of the ``sweep.json`` result document.
SWEEP_RESULT_VERSION = 1

#: Upper cap on units per serve-backend wave (stays inside the default
#: per-client quota so batches admit atomically).
DEFAULT_WAVE_UNITS = 256


class SweepError(Exception):
    """A sweep-level failure: backend execution error, or a manifest
    that belongs to a different spec."""


class ResumeMismatch(SweepError):
    """The existing manifest was written by a different sweep spec."""


def unit_objectives(unit: Mapping[str, Any]) -> Dict[str, float]:
    """The three sweep objectives of one unit result dict."""
    metrics = unit["metrics"]
    return {
        "energy_saved": float(metrics["system_saving"]),
        "misprediction_rate": float(metrics["misprediction_rate"]),
        "perf_overhead": float(metrics["slowdown"]),
    }


def aggregate_objectives(
        per_kernel: Mapping[str, Mapping[str, float]]
) -> Dict[str, float]:
    """Mean over kernels, summed in sorted-kernel order so every
    backend and prune mode produces bit-identical floats."""
    kernels = sorted(per_kernel)
    n = len(kernels)
    return {name: sum(per_kernel[k][name] for k in kernels) / n
            for name in OBJECTIVES}


def optimistic_bound(per_kernel: Mapping[str, Mapping[str, float]],
                     kernels: Iterable[str],
                     saved_max: Mapping[str, float]
                     ) -> Optional[Dict[str, float]]:
    """Best final objectives a partially-evaluated config can reach.

    ``None`` when no sound bound exists yet (some remaining kernel has
    never been evaluated, so its ALU+FPU share is unknown).
    """
    kernels = list(kernels)
    remaining = [k for k in kernels if k not in per_kernel]
    if any(k not in saved_max for k in remaining):
        return None
    n = len(kernels)
    done = [per_kernel[k] for k in kernels if k in per_kernel]
    saved = (sum(p["energy_saved"] for p in done)
             + sum(saved_max[k] for k in remaining)) / n
    mis = sum(p["misprediction_rate"] for p in done) / n
    over = sum(p["perf_overhead"] for p in done) / n
    return {
        "energy_saved": saved + BOUND_SLACK,
        "misprediction_rate": max(0.0, mis - BOUND_SLACK),
        "perf_overhead": max(0.0, over - BOUND_SLACK),
    }


@dataclass
class SweepOptions:
    """How a sweep executes (never what it computes)."""

    prune: bool = True
    static_bounds: bool = True      # static pruning stage (if prune)
    backend: str = "local"          # local | serve
    server: Optional[str] = None    # serve backend address
    workers: Optional[int] = None
    use_cache: bool = True
    cache_dir: Optional[str] = None
    trace_store: Optional[str] = None
    max_units: Optional[int] = None  # execution budget (resume later)
    wave_units: int = DEFAULT_WAVE_UNITS
    prune_chunk: Optional[int] = None  # kernels per wave when pruning
    client: str = "st2-sweep"
    timeout: float = 600.0
    progress: Any = None            # callable(message: str) or None
    registry: Any = None            # repro.obs.Obs (fresh if None)


@dataclass(frozen=True)
class SweepResult:
    """The outcome of one sweep invocation — the ``sweep.json`` body."""

    spec: SweepSpec
    kernels: Tuple[str, ...]
    frontier: Tuple[ParetoPoint, ...]
    points: Tuple[ParetoPoint, ...]
    pruned: Mapping[str, Mapping[str, Any]]
    backend: str
    prune: bool
    complete: bool
    executed_units: int
    reused_units: int
    skipped_units: int
    invalid_combos: int
    duplicate_configs: int
    manifest: str
    wall_time_s: float = 0.0
    meta: Mapping[str, Any] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "sweep_result_version": SWEEP_RESULT_VERSION,
            "spec": self.spec.to_wire(),
            "kernels": list(self.kernels),
            "frontier": [p.to_wire() for p in self.frontier],
            "points": [p.to_wire() for p in self.points],
            "pruned": {k: dict(v) for k, v in self.pruned.items()},
            "backend": self.backend,
            "prune": self.prune,
            "complete": self.complete,
            "executed_units": self.executed_units,
            "reused_units": self.reused_units,
            "skipped_units": self.skipped_units,
            "invalid_combos": self.invalid_combos,
            "duplicate_configs": self.duplicate_configs,
            "manifest": self.manifest,
            "wall_time_s": self.wall_time_s,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "SweepResult":
        version = doc.get("sweep_result_version", 1)
        if not isinstance(version, int) \
                or version > SWEEP_RESULT_VERSION:
            raise SweepError(
                f"sweep_result: version {version!r} is newer than "
                f"this reader (<= {SWEEP_RESULT_VERSION})")
        return cls(
            spec=SweepSpec.from_wire(doc["spec"]),
            kernels=tuple(doc.get("kernels", ())),
            frontier=tuple(ParetoPoint.from_wire(p)
                           for p in doc.get("frontier", [])),
            points=tuple(ParetoPoint.from_wire(p)
                         for p in doc.get("points", [])),
            pruned={k: dict(v)
                    for k, v in doc.get("pruned", {}).items()},
            backend=str(doc.get("backend", "local")),
            prune=bool(doc.get("prune", True)),
            complete=bool(doc.get("complete", True)),
            executed_units=int(doc.get("executed_units", 0)),
            reused_units=int(doc.get("reused_units", 0)),
            skipped_units=int(doc.get("skipped_units", 0)),
            invalid_combos=int(doc.get("invalid_combos", 0)),
            duplicate_configs=int(doc.get("duplicate_configs", 0)),
            manifest=str(doc.get("manifest", "")),
            wall_time_s=float(doc.get("wall_time_s", 0.0)),
            meta=dict(doc.get("meta", {})))


# ----------------------------------------------------------------------
# execution backends
# ----------------------------------------------------------------------

class LocalBackend:
    """Waves run through the in-process runner pool — the same
    :func:`~repro.runner.pool.run_units` path as ``st2-run``."""

    name = "local"

    def __init__(self, spec: SweepSpec, options: SweepOptions):
        from repro.runner.cache import ResultCache
        from repro.runner.options import RunOptions
        from repro.runner.pool import default_workers

        store = None
        if options.trace_store is not None:
            from repro.sim.trace_store import TraceStore
            store = TraceStore(options.trace_store or None)
        self.run_options = RunOptions(
            workers=options.workers if options.workers is not None
            else default_workers(),
            cache=ResultCache(options.cache_dir),
            use_cache=options.use_cache,
            trace_store=store,
            obs=options.registry,
            engine=spec.engine)

    def run(self, units: List[Any]) -> List[Dict[str, Any]]:
        from repro.runner.pool import run_units

        return [r.to_dict() for r in run_units(units,
                                               self.run_options)]

    def close(self) -> None:
        pass


class ServeBackend:
    """Waves become job submissions against an ``st2-serve`` daemon:
    one :class:`~repro.api.JobSpec` per config (configs travel as
    canonical names), multi-config waves via ``POST /v1/jobs:batch``,
    results paged back with
    :meth:`~repro.serve.client.ServeClient.iter_results`."""

    name = "serve"

    def __init__(self, spec: SweepSpec, options: SweepOptions):
        from repro.serve.client import ServeClient

        if not options.server:
            raise SweepError("serve backend needs a server address")
        self.spec = spec
        self.timeout = options.timeout
        self.client = ServeClient(options.server,
                                  client=options.client,
                                  timeout=options.timeout)

    def run(self, units: List[Any]) -> List[Dict[str, Any]]:
        from repro.serve.client import ServeError

        grouped: Dict[str, List[str]] = {}
        for unit in units:
            grouped.setdefault(unit.config.name,
                               []).append(unit.kernel)
        specs = [self.spec.job_spec(configs=(config,),
                                    kernels=tuple(kernels))
                 for config, kernels in grouped.items()]
        try:
            if len(specs) == 1:
                statuses = [self.client.submit_retry(
                    specs[0], deadline_s=self.timeout)]
            else:
                statuses = self.client.submit_batch_retry(
                    specs, deadline_s=self.timeout)
            by_cell: Dict[Tuple[str, str], Dict[str, Any]] = {}
            for status in statuses:
                final = self.client.wait(status.job_id,
                                         timeout=self.timeout)
                if final.state != "done":
                    raise SweepError(
                        f"served job {status.job_id} failed: "
                        f"{final.error}")
                for unit in self.client.iter_results(status.job_id):
                    by_cell[(unit["kernel"], unit["config"])] = unit
        except ServeError as exc:
            raise SweepError(f"serve backend: {exc}") from exc
        out = []
        for unit in units:
            cell = by_cell.get((unit.kernel, unit.config.name))
            if cell is None:
                raise SweepError(
                    f"serve backend returned no result for "
                    f"{unit.label}")
            out.append(cell)
        return out

    def close(self) -> None:
        self.client.close()


def _make_backend(spec: SweepSpec, options: SweepOptions):
    if options.backend == "local":
        return LocalBackend(spec, options)
    if options.backend == "serve":
        return ServeBackend(spec, options)
    raise SweepError(f"unknown sweep backend {options.backend!r} "
                     f"(local or serve)")


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

class _SweepRun:
    """Mutable state of one sweep invocation."""

    def __init__(self, plan: SweepPlan, options: SweepOptions,
                 manifest_path: str):
        self.plan = plan
        self.spec = plan.spec
        self.options = options
        self.manifest_path = str(manifest_path)
        self.registry = options.registry if options.registry \
            is not None else obs.Obs()
        options.registry = self.registry
        self.frontier = ParetoFrontier()
        self.canon_points: Dict[str, ParetoPoint] = {}
        self.pruned: Dict[str, Dict[str, Any]] = {}
        self.saved_max: Dict[str, float] = {}
        self.done: Dict[Tuple[str, str], Dict[str, Any]] = {}
        self.executed = 0
        self.reused = 0
        self.skipped = 0
        self.complete = True
        self.writer: Optional[ManifestWriter] = None
        self._ceiling: Optional[SavedCeiling] = None
        self._static: Optional[StaticBoundsIndex] = None

    # -- helpers -------------------------------------------------------

    def say(self, message: str) -> None:
        if self.options.progress is not None:
            self.options.progress(message)

    def count(self, name: str, n: int = 1) -> None:
        self.registry.add(name, n)

    def budget_left(self) -> Optional[int]:
        if self.options.max_units is None:
            return None
        return max(0, self.options.max_units - self.executed)

    def ceiling(self) -> "SavedCeiling":
        if self._ceiling is None:
            self._ceiling = SavedCeiling()
        return self._ceiling

    def static_index(self) -> "StaticBoundsIndex":
        if self._static is None:
            self._static = StaticBoundsIndex()
        return self._static

    def record_unit(self, unit: Dict[str, Any]) -> None:
        cell = (unit["config"], unit["kernel"])
        self.done[cell] = unit
        if not self.options.prune:
            return
        bound = self.ceiling().unit_bound(unit)
        if bound is not None:
            kernel = unit["kernel"]
            known = self.saved_max.get(kernel)
            self.saved_max[kernel] = bound if known is None \
                else min(known, bound)      # every unit's bound is
            #                                 sound; keep the tightest

    # -- resume --------------------------------------------------------

    def load_resume(self) -> None:
        header, units, bad = read_manifest_tolerant(self.manifest_path)
        if header is None:
            return
        if header.get("kind") != "sweep":
            raise ResumeMismatch(
                f"{self.manifest_path} is not a sweep manifest; "
                f"move it aside or pick another --manifest path")
        digest = self.spec.digest()
        if header.get("sweep_digest") != digest:
            raise ResumeMismatch(
                f"{self.manifest_path} was written by sweep "
                f"{header.get('sweep_digest')!r}, this spec is "
                f"{digest!r}; move it aside or pick another "
                f"--manifest path")
        if bad:
            self.count("sweep.resume.torn_lines", bad)
        fresh = 0
        for unit in units:
            cell = (unit.get("config"), unit.get("kernel"))
            if cell[0] is None or cell[1] is None \
                    or cell in self.done:
                continue
            self.record_unit(unit)
            fresh += 1
        if fresh:
            self.reused = fresh
            self.count("sweep.units.reused", fresh)
            self.say(f"resumed {fresh} finished units from "
                     f"{self.manifest_path}")

    def open_manifest(self) -> None:
        planned = (len(self.plan.groups) if self.options.prune
                   else self.plan.n_configs) * len(self.plan.kernels)
        meta = {
            "kind": "sweep",
            "sweep_digest": self.spec.digest(),
            "sweep": self.spec.name,
            "spec": self.spec.to_wire(),
            "prune": self.options.prune,
            "backend": self.options.backend,
        }
        self.writer = ManifestWriter(self.manifest_path, meta=meta,
                                     n_units=planned)
        for unit in self.done.values():     # compact replay of resume
            self.writer.add(unit)

    # -- execution -----------------------------------------------------

    def execute(self, backend: Any, units: List[Any]) -> None:
        """Run one wave, manifest every result as it lands."""
        t0 = time.perf_counter()
        results = backend.run(units)
        self.registry.record_timer("sweep.wave.wall",
                                   time.perf_counter() - t0)
        for unit in results:
            assert self.writer is not None
            self.writer.add(unit)
            self.record_unit(unit)
        self.executed += len(results)
        self.count("sweep.units.executed", len(results))

    def pending_units(self, config: Any) -> List[Any]:
        from repro.runner.units import UnitSpec

        return [UnitSpec(kernel=k, scale=self.spec.scale,
                         seed=self.spec.seed, config=config,
                         aux=self.spec.aux)
                for k in self.plan.kernels
                if (config.name, k) not in self.done]

    def config_per_kernel(self, config: Any
                          ) -> Dict[str, Dict[str, float]]:
        out = {}
        for k in self.plan.kernels:
            unit = self.done.get((config.name, k))
            if unit is not None:
                out[k] = unit_objectives(unit)
        return out

    def finish_config(self, group: ConfigGroup, config: Any) -> None:
        """A config evaluated every kernel: merge into its class point
        and offer the class to the frontier (first completion only)."""
        per_kernel = self.config_per_kernel(config)
        objectives = aggregate_objectives(per_kernel)
        existing = self.canon_points.get(group.canon)
        if existing is not None:
            if dict(existing.objectives) != objectives:
                raise ParetoError(
                    f"equivalence violated: {config.name!r} disagrees "
                    f"with class {group.canon!r} — "
                    f"{objectives} vs {dict(existing.objectives)}")
            self.count("sweep.frontier.merged_equivalent")
            return
        members = tuple(m.name for m in group.members)
        point = ParetoPoint(key=group.canon, objectives=objectives,
                            fields=group.canon_fields,
                            members=members, per_kernel=per_kernel)
        self.canon_points[group.canon] = point
        if self.frontier.add(point):
            self.count("sweep.frontier.admitted")
        else:
            self.count("sweep.frontier.dominated_points")

    def prune_equivalents(self, group: ConfigGroup) -> None:
        for member in group.members[1:]:
            self.pruned[member.name] = {
                "reason": "equivalent", "canon": group.canon}
            self.count("sweep.prune.equivalent")
            self.skipped += len(self.plan.kernels)
            self.count("sweep.prune.units_skipped",
                       len(self.plan.kernels))

    def static_bound(self, config: Any
                     ) -> Optional[Dict[str, float]]:
        """The optimistic completion bound intersected with the
        static bounds tier: every remaining kernel's saving ceiling
        shrinks by this config class's statically proven recompute
        floor, and its statically proven misprediction floor joins
        the bound.  Works *pre-execution* — a kernel with a
        non-trivial static report needs no completed unit to bound.
        """
        per_kernel = self.config_per_kernel(config)
        kernels = list(self.plan.kernels)
        remaining = [k for k in kernels if k not in per_kernel]
        index = self.static_index()
        consts = index.constants
        saved_sum = 0.0
        mis_floor = 0.0
        for kernel in remaining:
            cls = index.class_bounds(kernel, config)
            share = self.saved_max.get(kernel)
            if cls is None:
                if share is None:
                    return None     # nothing sound to say yet
                saved_sum += share
                continue
            mrec_lo = cls.mrec.lo if cls.mrec.lo is not None else 0.0
            # the report's own absolute ceiling
            # (frac_max * max(0, s_max - mrec_lo * delta); 0 when the
            # kernel provably emits no adder rows)
            ceil = cls.saved.hi if cls.saved.hi is not None else 1.0
            if share is not None and consts.s_max > 0:
                # dynamic share ceiling, shrunk by the static
                # recompute floor: achievable <= A_k * s(mrec_lo)
                # = (A_k * s_max) * s(mrec_lo)/s_max <= share * ratio
                ratio = max(0.0, consts.s_max
                            - mrec_lo * consts.delta) / consts.s_max
                ceil = min(ceil, share * ratio, share)
            saved_sum += ceil
            mis_floor += cls.mis.lo if cls.mis.lo is not None else 0.0
        n = len(kernels)
        done = [per_kernel[k] for k in kernels if k in per_kernel]
        saved = (sum(p["energy_saved"] for p in done) + saved_sum) / n
        mis = (sum(p["misprediction_rate"] for p in done)
               + mis_floor) / n
        over = sum(p["perf_overhead"] for p in done) / n
        return {
            "energy_saved": saved + BOUND_SLACK,
            "misprediction_rate": max(0.0, mis - BOUND_SLACK),
            "perf_overhead": max(0.0, over - BOUND_SLACK),
        }

    def try_domination_prune(self, group: ConfigGroup, config: Any,
                             n_remaining: int) -> bool:
        bound = optimistic_bound(self.config_per_kernel(config),
                                 self.plan.kernels, self.saved_max)
        by = self.frontier.dominated_by(bound) \
            if bound is not None else None
        via = "completion"
        if by is None and self.options.static_bounds:
            static = self.static_bound(config)
            if static is not None:
                by = self.frontier.dominated_by(static)
                if by is not None:
                    bound, via = static, "static_bounds"
                    self.count("sweep.prune.static")
                    self.count("sweep.prune.static.units_skipped",
                               n_remaining)
        if by is None:
            return False
        self.pruned[config.name] = {
            "reason": "dominated", "canon": group.canon,
            "dominated_by": by.key, "bound": bound, "via": via,
            "units_skipped": n_remaining}
        self.count("sweep.prune.dominated")
        self.count("sweep.prune.units_skipped", n_remaining)
        self.skipped += n_remaining
        self.say(f"pruned {config.name} "
                 f"(dominated by {by.key}, {via} bound)")
        return True


def run_sweep(spec: SweepSpec, manifest_path: str,
              options: Optional[SweepOptions] = None) -> SweepResult:
    """Execute one sweep end to end; see the module docstring."""
    options = options if options is not None else SweepOptions()
    plan = expand_plan(spec)
    if not plan.groups:
        raise SweepError("sweep grid is empty: every axis combination "
                         "is invalid")
    run = _SweepRun(plan, options, manifest_path)
    t0 = time.perf_counter()
    run.count("sweep.expand.configs", plan.n_configs)
    run.count("sweep.expand.invalid", plan.invalid_combos)
    run.count("sweep.expand.duplicates", plan.duplicate_configs)
    run.load_resume()
    run.open_manifest()
    backend = _make_backend(spec, options)
    try:
        if options.prune:
            _run_pruned(run, backend)
        else:
            _run_exhaustive(run, backend)
    finally:
        backend.close()
        assert run.writer is not None
        run.writer.close()
    wall = time.perf_counter() - t0
    run.registry.record_timer("sweep.wall", wall)
    return SweepResult(
        spec=spec, kernels=plan.kernels,
        frontier=run.frontier.points(),
        points=tuple(run.canon_points[k]
                     for k in sorted(run.canon_points)),
        pruned=run.pruned, backend=options.backend,
        prune=options.prune, complete=run.complete,
        executed_units=run.executed, reused_units=run.reused,
        skipped_units=run.skipped,
        invalid_combos=plan.invalid_combos,
        duplicate_configs=plan.duplicate_configs,
        manifest=run.manifest_path, wall_time_s=wall,
        meta={"frontier_size": len(run.frontier),
              "n_groups": len(plan.groups),
              "n_configs": plan.n_configs})


def _chunk_size(run: _SweepRun) -> int:
    if run.options.prune_chunk is not None:
        return max(1, run.options.prune_chunk)
    if run.options.workers is not None:
        return max(1, run.options.workers)
    from repro.runner.pool import default_workers
    return max(1, default_workers())


def _run_pruned(run: _SweepRun, backend: Any) -> None:
    """Config-major execution: one representative per equivalence
    class, domination-checked between waves."""
    chunk = _chunk_size(run)
    for group in run.plan.groups:
        run.prune_equivalents(group)
        config = group.runner
        pending = run.pending_units(config)
        while pending:
            if run.try_domination_prune(group, config, len(pending)):
                pending = []
                break
            budget = run.budget_left()
            if budget == 0:
                run.complete = False
                run.say("unit budget exhausted; stopping "
                        "(resume from the manifest)")
                return
            take = len(pending) if budget is None \
                else min(len(pending), budget)
            wave, pending = pending[:min(take, chunk)], \
                pending[min(take, chunk):]
            run.execute(backend, wave)
        if config.name not in run.pruned \
                and not run.pending_units(config):
            run.finish_config(group, config)


def _run_exhaustive(run: _SweepRun, backend: Any) -> None:
    """Every grid member executes; multi-config waves exercise the
    serve batch path.  Equivalent members must agree bit-for-bit
    before merging into their class point (the soundness check that
    backs the pruning rules)."""
    wave: List[Any] = []
    ordered = [(group, member) for group in run.plan.groups
               for member in group.members]
    for group, member in ordered:
        for unit in run.pending_units(member):
            budget = run.budget_left()
            if budget is not None \
                    and len(wave) + run.executed >= \
                    run.options.max_units:
                run.complete = False
                break
            wave.append(unit)
            if len(wave) >= run.options.wave_units:
                run.execute(backend, wave)
                wave = []
        if not run.complete:
            break
    if wave:
        run.execute(backend, wave)
    if not run.complete:
        run.say("unit budget exhausted; stopping "
                "(resume from the manifest)")
        return
    for group, member in ordered:
        if not run.pending_units(member):
            run.finish_config(group, member)


__all__ = ["BOUND_SLACK", "LocalBackend", "ResumeMismatch",
           "SavedCeiling", "ServeBackend", "StaticBoundsIndex",
           "SweepError", "SweepOptions", "SweepResult",
           "aggregate_objectives", "optimistic_bound", "run_sweep",
           "unit_objectives"]
