"""``st2-sweep`` / ``python -m repro.sweep`` — declarative design-space
sweeps with Pareto tracking, pruning and resume.

Examples::

    st2-sweep example > sweep.yaml          # ready-to-edit spec
    st2-sweep expand sweep.yaml             # what would run, no work
    st2-sweep run sweep.yaml --out sweep.json
    st2-sweep run sweep.yaml --no-prune     # exhaustive mode
    st2-sweep run sweep.yaml --via-serve 127.0.0.1:8787
    st2-sweep report sweep.json             # markdown frontier report

``run`` is resumable: every finished unit lands in the JSONL manifest
(``--manifest``, default ``<out>.manifest.jsonl``) as it completes, so
a killed sweep restarted with the same spec re-executes nothing
(``--max-units`` bounds one invocation's executions for exactly that
workflow).  The observability snapshot rides next to the manifest as
``<manifest>.metrics.json`` — ``st2-stats`` reads it.

Exit codes follow the shared contract (:mod:`repro.cli_common`):
0 success (including a budget-bounded partial sweep), 1 sweep
execution failures, 2 usage/input errors (bad spec files and
resume-digest mismatches included).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import cli_common, obs

PROG = "st2-sweep"


def build_parser():
    parser = cli_common.build_parser(
        PROG,
        "Declarative (kernel x SpeculationConfig) design-space sweeps "
        "over the ST2 runner: grid expansion, Pareto-frontier "
        "tracking, provably-sound pruning, kill/resume.")
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser(
        "run", help="execute a sweep spec (resumable)")
    run.add_argument("spec", help="sweep spec file (.yaml/.yml/.json)")
    run.add_argument("--out", default="sweep.json",
                     help="frontier report document "
                          "(default sweep.json)")
    run.add_argument("--manifest", default=None,
                     help="JSONL unit manifest — the resume record "
                          "(default <out>.manifest.jsonl)")
    run.add_argument("--no-prune", action="store_true",
                     help="exhaustive mode: execute every grid config "
                          "(equivalence classes are verified "
                          "bit-for-bit instead of skipped; the "
                          "frontier is invariant either way)")
    run.add_argument("--no-static-bounds", action="store_true",
                     help="disable the static bounds pruning stage "
                          "(repro.lint.bounds pre-execution "
                          "intersection; the frontier is invariant "
                          "either way)")
    run.add_argument("--explain-prunes", action="store_true",
                     help="print one line per pruned config with the "
                          "bound and the frontier point that "
                          "dominated it")
    run.add_argument("--via-serve", metavar="ADDR", default=None,
                     help="execute through an st2-serve daemon at "
                          "ADDR (batch submission + paginated "
                          "results) instead of the in-process runner")
    run.add_argument("--workers", type=int, default=None,
                     help="local-backend worker processes; also the "
                          "per-wave unit count pruning checks at "
                          "(default: min(4, cores))")
    run.add_argument("--max-units", type=int, default=None,
                     help="stop after executing this many units "
                          "(the manifest resumes the rest later)")
    run.add_argument("--no-cache", action="store_true",
                     help="bypass the unit result disk cache")
    run.add_argument("--cache-dir", default=None,
                     help="cache root (default: $REPRO_CACHE_DIR "
                          "or ~/.cache/repro)")
    run.add_argument("--trace-store", nargs="?", const="",
                     default=None, metavar="DIR",
                     help="two-stage pipeline through a memory-mapped "
                          "trace store (bare flag: the default store "
                          "dir)")
    run.add_argument("--timeout", type=float, default=600.0,
                     help="serve-backend per-wave deadline in seconds "
                          "(default 600)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress progress lines")
    cli_common.add_json_flag(run)

    report = sub.add_parser(
        "report", help="render a sweep.json as markdown")
    report.add_argument("result", help="sweep.json produced by 'run'")
    cli_common.add_json_flag(report)

    expand = sub.add_parser(
        "expand", help="show what a spec would execute, without "
                       "running anything")
    expand.add_argument("spec",
                        help="sweep spec file (.yaml/.yml/.json)")
    cli_common.add_json_flag(expand)

    example = sub.add_parser(
        "example", help="print a ready-to-edit example spec")
    example.add_argument("--format", choices=("yaml", "json"),
                         default="yaml", help="spec syntax "
                         "(default yaml)")
    cli_common.add_json_flag(example)
    return parser


def _load_spec(path):
    from repro.sweep.specio import SpecIOError, load_spec
    try:
        return load_spec(path), None
    except SpecIOError as exc:
        return None, str(exc)


def _cmd_run(args) -> int:
    import json

    from repro.sweep.engine import (ResumeMismatch, SweepError,
                                    SweepOptions, run_sweep)

    spec, error = _load_spec(args.spec)
    if error:
        return cli_common.fail(PROG, error)
    manifest = args.manifest if args.manifest is not None \
        else f"{args.out}.manifest.jsonl"
    quiet = args.quiet or args.json
    options = SweepOptions(
        prune=not args.no_prune,
        static_bounds=not args.no_static_bounds,
        backend="serve" if args.via_serve else "local",
        server=args.via_serve,
        workers=args.workers,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        trace_store=args.trace_store,
        max_units=args.max_units,
        timeout=args.timeout,
        progress=None if quiet else
        lambda message: print(f"[{PROG}] {message}", flush=True))
    try:
        result = run_sweep(spec, manifest, options)
    except ResumeMismatch as exc:
        return cli_common.fail(PROG, str(exc))
    except KeyError as exc:
        return cli_common.fail(PROG, exc.args[0])
    except SweepError as exc:
        return cli_common.fail(PROG, str(exc),
                               code=cli_common.EXIT_PROBLEMS)

    doc = result.to_wire()
    out = Path(args.out)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    registry = options.registry
    metrics_path = obs.write_metrics(
        obs.metrics_path_for(manifest), registry.snapshot(),
        meta={"sweep": spec.name, "sweep_digest": spec.digest(),
              "backend": result.backend, "prune": result.prune,
              "complete": result.complete})

    if args.json:
        cli_common.emit_json({"out": str(out),
                              "manifest": result.manifest,
                              "metrics": str(metrics_path),
                              "result": doc})
        return cli_common.EXIT_OK
    snapshot = registry.snapshot().get("counters", {})
    print(f"\nsweep {spec.name}: "
          f"{len(result.frontier)}-point frontier over "
          f"{len(result.points)} completed config classes "
          f"({result.backend} backend, "
          f"pruning {'on' if result.prune else 'off'})")
    for point in result.frontier:
        objs = ", ".join(f"{k}={v:.4f}"
                         for k, v in sorted(point.objectives.items()))
        print(f"  {point.key:<40} {objs}")
    print(f"units: {result.executed_units} executed, "
          f"{result.reused_units} reused, "
          f"{result.skipped_units} pruned away "
          f"(counters: {snapshot.get('sweep.prune.equivalent', 0)} "
          f"equivalent, {snapshot.get('sweep.prune.dominated', 0)} "
          f"dominated configs, "
          f"{snapshot.get('sweep.prune.static', 0)} via static "
          f"bounds)")
    if args.explain_prunes:
        for name in sorted(result.pruned):
            info = result.pruned[name]
            if info.get("reason") == "equivalent":
                print(f"  pruned {name}: provably equivalent to "
                      f"{info.get('canon')}")
                continue
            bound = info.get("bound") or {}
            objs = ", ".join(
                f"{key}{'<=' if key == 'energy_saved' else '>='}"
                f"{value:.4f}"
                for key, value in sorted(bound.items()))
            print(f"  pruned {name}: dominated by "
                  f"{info.get('dominated_by')} "
                  f"[{info.get('via', 'completion')} bound: {objs}; "
                  f"{info.get('units_skipped', 0)} unit(s) skipped]")
    if not result.complete:
        print(f"INCOMPLETE: unit budget reached; rerun the same "
              f"command to resume from {result.manifest}")
    print(f"report:   {out}")
    print(f"manifest: {result.manifest}")
    print(f"metrics:  {metrics_path}")
    return cli_common.EXIT_OK


def _cmd_report(args) -> int:
    import json

    from repro.sweep.engine import SweepError, SweepResult
    from repro.sweep.report import axis_sensitivity, render_report

    try:
        doc = json.loads(Path(args.result).read_text())
    except OSError as exc:
        return cli_common.fail(PROG, f"cannot read {args.result}: "
                               f"{exc}")
    except ValueError as exc:
        return cli_common.fail(PROG, f"{args.result}: invalid JSON: "
                               f"{exc}")
    try:
        result = SweepResult.from_wire(doc)
    except (SweepError, KeyError, TypeError, ValueError) as exc:
        return cli_common.fail(PROG, f"{args.result}: {exc}")
    if args.json:
        cli_common.emit_json({
            "frontier": [p.to_wire() for p in result.frontier],
            "sensitivity": {
                axis: {repr(value): means
                       for value, means in per_value.items()}
                for axis, per_value
                in axis_sensitivity(result).items()},
            "markdown": render_report(result)})
        return cli_common.EXIT_OK
    print(render_report(result), end="")
    return cli_common.EXIT_OK


def _cmd_expand(args) -> int:
    from repro.sweep.grid import expand_plan

    spec, error = _load_spec(args.spec)
    if error:
        return cli_common.fail(PROG, error)
    try:
        plan = expand_plan(spec)
    except KeyError as exc:
        return cli_common.fail(PROG, exc.args[0])
    groups = [{"canon": g.canon,
               "members": [m.name for m in g.members]}
              for g in plan.groups]
    if args.json:
        cli_common.emit_json({
            "spec": spec.to_wire(),
            "digest": spec.digest(),
            "kernels": list(plan.kernels),
            "grid_size": spec.grid_size,
            "invalid_combos": plan.invalid_combos,
            "duplicate_configs": plan.duplicate_configs,
            "n_configs": plan.n_configs,
            "n_groups": len(plan.groups),
            "units_pruned": len(plan.groups) * len(plan.kernels),
            "units_exhaustive": plan.n_configs * len(plan.kernels),
            "groups": groups})
        return cli_common.EXIT_OK
    print(f"sweep {spec.name} (digest {spec.digest()})")
    print(f"kernels ({len(plan.kernels)}): "
          + ", ".join(plan.kernels))
    print(f"grid: {spec.grid_size} combinations, "
          f"{plan.invalid_combos} invalid, "
          f"{plan.duplicate_configs} duplicate -> "
          f"{plan.n_configs} configs in {len(plan.groups)} "
          f"equivalence classes")
    print(f"units: {len(plan.groups) * len(plan.kernels)} pruned / "
          f"{plan.n_configs * len(plan.kernels)} exhaustive")
    for group in plan.groups:
        extra = "" if len(group.members) == 1 else \
            "  (= " + ", ".join(m.name for m in group.members[1:]) \
            + ")"
        print(f"  {group.canon}{extra}")
    return cli_common.EXIT_OK


def _cmd_example(args) -> int:
    from repro.sweep.specio import EXAMPLE_WIRE, example_text

    if args.json:
        cli_common.emit_json(EXAMPLE_WIRE)
        return cli_common.EXIT_OK
    print(example_text(args.format), end="")
    return cli_common.EXIT_OK


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command is None:
        return cli_common.fail(
            PROG, "a command is required: run, report, expand "
                  "or example")
    handler = {"run": _cmd_run, "report": _cmd_report,
               "expand": _cmd_expand, "example": _cmd_example}
    return handler[args.command](args)


def console_main() -> int:
    return cli_common.run_cli(main)


if __name__ == "__main__":
    sys.exit(console_main())
