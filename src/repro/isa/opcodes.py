"""PTX-like opcode taxonomy.

Each opcode carries the attributes the study needs:

* which functional unit executes it (TITAN V has per-SM pools of ALUs,
  FPUs, DPUs, SFUs, load/store units — Section II-A);
* whether it exercises an *adder* (and which adder geometry), i.e. whether
  ST2 applies to it — integer add/sub/min/max on the ALU adder, FP32
  add/sub/FMA on the 23-bit mantissa adder, FP64 on the 52-bit one.
  Multipliers, dividers and exponent logic are explicitly excluded
  (Section IV-C);
* the instruction-mix category used by the paper's Figure 1
  (ALU Add / ALU Other / FPU Add / FPU Other / Other);
* a nominal pipeline latency for the cycle-approximate timing model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FunctionalUnit(enum.Enum):
    """Execution resource pools of a Volta SM."""

    ALU = "alu"
    FPU = "fpu"
    DPU = "dpu"
    SFU = "sfu"
    INT_MUL = "int_mul"   # shares ALU issue ports but modelled separately
    FP_MUL = "fp_mul"
    LDST = "ldst"
    CONTROL = "control"
    TENSOR = "tensor"


class MixCategory(enum.Enum):
    """Figure 1 dynamic-instruction categories."""

    ALU_ADD = "ALU Add"
    ALU_OTHER = "ALU Other"
    FPU_ADD = "FPU Add"
    FPU_OTHER = "FPU Other"
    OTHER = "Other"


@dataclass(frozen=True)
class OpcodeInfo:
    name: str
    unit: FunctionalUnit
    mix: MixCategory
    #: adder width when the op exercises a sliced adder, else 0.
    adder_width: int
    latency: int


class Opcode(enum.Enum):
    """The mini-ISA executed by the functional simulator."""

    # -- integer ALU, adder class -------------------------------------
    IADD = OpcodeInfo("iadd", FunctionalUnit.ALU, MixCategory.ALU_ADD, 32, 4)
    ISUB = OpcodeInfo("isub", FunctionalUnit.ALU, MixCategory.ALU_ADD, 32, 4)
    IMIN = OpcodeInfo("imin", FunctionalUnit.ALU, MixCategory.ALU_ADD, 32, 4)
    IMAX = OpcodeInfo("imax", FunctionalUnit.ALU, MixCategory.ALU_ADD, 32, 4)
    #: 64-bit address arithmetic (base + byte offset) emitted by memory ops.
    LEA = OpcodeInfo("lea", FunctionalUnit.ALU, MixCategory.ALU_ADD, 64, 4)

    # -- integer ALU, non-adder ---------------------------------------
    IAND = OpcodeInfo("iand", FunctionalUnit.ALU, MixCategory.ALU_OTHER, 0, 4)
    IOR = OpcodeInfo("ior", FunctionalUnit.ALU, MixCategory.ALU_OTHER, 0, 4)
    IXOR = OpcodeInfo("ixor", FunctionalUnit.ALU, MixCategory.ALU_OTHER, 0, 4)
    SHL = OpcodeInfo("shl", FunctionalUnit.ALU, MixCategory.ALU_OTHER, 0, 4)
    SHR = OpcodeInfo("shr", FunctionalUnit.ALU, MixCategory.ALU_OTHER, 0, 4)
    SETP = OpcodeInfo("setp", FunctionalUnit.ALU, MixCategory.ALU_OTHER, 0, 4)
    SEL = OpcodeInfo("sel", FunctionalUnit.ALU, MixCategory.ALU_OTHER, 0, 4)
    MOV = OpcodeInfo("mov", FunctionalUnit.ALU, MixCategory.ALU_OTHER, 0, 2)
    CVT = OpcodeInfo("cvt", FunctionalUnit.ALU, MixCategory.ALU_OTHER, 0, 4)

    # -- integer multiply / divide (separate power component) ----------
    IMUL = OpcodeInfo("imul", FunctionalUnit.INT_MUL, MixCategory.ALU_OTHER, 0, 5)
    IMAD = OpcodeInfo("imad", FunctionalUnit.INT_MUL, MixCategory.ALU_OTHER, 0, 5)
    IDIV = OpcodeInfo("idiv", FunctionalUnit.INT_MUL, MixCategory.ALU_OTHER, 0, 20)
    IREM = OpcodeInfo("irem", FunctionalUnit.INT_MUL, MixCategory.ALU_OTHER, 0, 20)

    # -- FP32, adder class (23-bit mantissa adder) ----------------------
    FADD = OpcodeInfo("fadd", FunctionalUnit.FPU, MixCategory.FPU_ADD, 23, 4)
    FSUB = OpcodeInfo("fsub", FunctionalUnit.FPU, MixCategory.FPU_ADD, 23, 4)
    FFMA = OpcodeInfo("ffma", FunctionalUnit.FPU, MixCategory.FPU_ADD, 23, 4)
    FMIN = OpcodeInfo("fmin", FunctionalUnit.FPU, MixCategory.FPU_ADD, 23, 4)
    FMAX = OpcodeInfo("fmax", FunctionalUnit.FPU, MixCategory.FPU_ADD, 23, 4)

    # -- FP32, non-adder -------------------------------------------------
    FMUL = OpcodeInfo("fmul", FunctionalUnit.FP_MUL, MixCategory.FPU_OTHER, 0, 4)
    FDIV = OpcodeInfo("fdiv", FunctionalUnit.FP_MUL, MixCategory.FPU_OTHER, 0, 30)
    FNEG = OpcodeInfo("fneg", FunctionalUnit.FPU, MixCategory.FPU_OTHER, 0, 4)
    FABS = OpcodeInfo("fabs", FunctionalUnit.FPU, MixCategory.FPU_OTHER, 0, 4)
    FSETP = OpcodeInfo("fsetp", FunctionalUnit.FPU, MixCategory.FPU_OTHER, 0, 4)

    # -- FP64 (DPU), adder class (52-bit mantissa adder) ----------------
    DADD = OpcodeInfo("dadd", FunctionalUnit.DPU, MixCategory.FPU_ADD, 52, 8)
    DSUB = OpcodeInfo("dsub", FunctionalUnit.DPU, MixCategory.FPU_ADD, 52, 8)
    DFMA = OpcodeInfo("dfma", FunctionalUnit.DPU, MixCategory.FPU_ADD, 52, 8)
    DMUL = OpcodeInfo("dmul", FunctionalUnit.FP_MUL, MixCategory.FPU_OTHER, 0, 8)

    # -- special function unit ------------------------------------------
    SIN = OpcodeInfo("sin", FunctionalUnit.SFU, MixCategory.OTHER, 0, 16)
    COS = OpcodeInfo("cos", FunctionalUnit.SFU, MixCategory.OTHER, 0, 16)
    EXP = OpcodeInfo("exp", FunctionalUnit.SFU, MixCategory.OTHER, 0, 16)
    LOG = OpcodeInfo("log", FunctionalUnit.SFU, MixCategory.OTHER, 0, 16)
    SQRT = OpcodeInfo("sqrt", FunctionalUnit.SFU, MixCategory.OTHER, 0, 16)
    RSQRT = OpcodeInfo("rsqrt", FunctionalUnit.SFU, MixCategory.OTHER, 0, 16)
    RCP = OpcodeInfo("rcp", FunctionalUnit.SFU, MixCategory.OTHER, 0, 16)

    # -- memory ----------------------------------------------------------
    LDG = OpcodeInfo("ld.global", FunctionalUnit.LDST, MixCategory.OTHER, 0, 300)
    STG = OpcodeInfo("st.global", FunctionalUnit.LDST, MixCategory.OTHER, 0, 300)
    LDS = OpcodeInfo("ld.shared", FunctionalUnit.LDST, MixCategory.OTHER, 0, 24)
    STS = OpcodeInfo("st.shared", FunctionalUnit.LDST, MixCategory.OTHER, 0, 24)
    LDC = OpcodeInfo("ld.const", FunctionalUnit.LDST, MixCategory.OTHER, 0, 24)

    # -- control ----------------------------------------------------------
    BRA = OpcodeInfo("bra", FunctionalUnit.CONTROL, MixCategory.OTHER, 0, 2)
    BAR = OpcodeInfo("bar.sync", FunctionalUnit.CONTROL, MixCategory.OTHER, 0, 2)
    RET = OpcodeInfo("ret", FunctionalUnit.CONTROL, MixCategory.OTHER, 0, 2)

    # -- tensor core (cudaTensorCoreGemm extension) -----------------------
    HMMA = OpcodeInfo("hmma", FunctionalUnit.TENSOR, MixCategory.OTHER, 0, 16)

    @property
    def info(self) -> OpcodeInfo:
        return self.value

    @property
    def unit(self) -> FunctionalUnit:
        return self.value.unit

    @property
    def mix(self) -> MixCategory:
        return self.value.mix

    @property
    def is_adder_op(self) -> bool:
        """True when the op exercises a sliced adder (ST2 applies)."""
        return self.value.adder_width > 0

    @property
    def adder_width(self) -> int:
        return self.value.adder_width

    @property
    def latency(self) -> int:
        return self.value.latency


#: Opcodes whose adder the ST2 design replaces, by geometry.
ADDER_OPCODES = tuple(op for op in Opcode if op.is_adder_op)
