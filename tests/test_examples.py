"""The shipped examples must stay runnable.

Fast examples execute end-to-end; the slower studies are compile- and
import-checked (their machinery is covered by the benchmarks).
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES.glob("*.py"))
FAST = ("quickstart.py", "pathfinder_case_study.py")


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in ALL_EXAMPLES}
        assert {"quickstart.py", "pathfinder_case_study.py",
                "design_space_exploration.py",
                "full_gpu_energy_study.py",
                "approximate_vs_exact.py"} <= names

    @pytest.mark.parametrize("path", ALL_EXAMPLES,
                             ids=[p.name for p in ALL_EXAMPLES])
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("name", FAST)
    def test_fast_examples_run(self, name):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / name)],
            capture_output=True, text=True, timeout=240)
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert proc.stdout.strip()

    def test_examples_have_docstrings_and_main(self):
        for path in ALL_EXAMPLES:
            src = path.read_text()
            assert '"""' in src.split("\n", 2)[2] or \
                src.lstrip().startswith(('#!', '"""')), path.name
            assert "__main__" in src, path.name
