"""The shared CLI contract: every repro CLI exits 0/1/2 the same way
and speaks ``--json`` on its informational commands."""

from __future__ import annotations

import json

import pytest

from repro import cli_common
from repro.cli_common import EXIT_OK, EXIT_USAGE

# (name, main, cheap-success argv, --json argv) for every console tool;
# mains are resolved lazily so one import error doesn't mask the rest
CLIS = {
    "st2-run": ("repro.runner.cli", ["--list"], ["--list", "--json"]),
    "st2-trace": ("repro.runner.trace_cli", None, None),
    "st2-lint": ("repro.lint.cli",
                 ["--list-rules"], ["--list-rules", "--json"]),
    "st2-lint-bounds": ("repro.lint.cli",
                        ["bounds", "tests/lint/data/golden_kernel.py"],
                        ["bounds", "tests/lint/data/golden_kernel.py",
                         "--json"]),
    "st2-stats": ("repro.obs.cli", None, None),
    "st2-fuzz": ("repro.fuzz.cli",
                 ["gen", "--seed", "1", "--count", "1"],
                 ["gen", "--seed", "1", "--count", "1", "--json"]),
    "st2-serve": ("repro.serve.cli",
                  ["--show-config"], ["--show-config", "--json"]),
    "st2-client": ("repro.serve.client_cli",
                   ["spec", "--kernels", "qrng_K2"],
                   ["spec", "--kernels", "qrng_K2", "--json"]),
    "st2-sweep": ("repro.sweep.cli",
                  ["example"], ["example", "--json"]),
}


def _main(name):
    import importlib
    return importlib.import_module(CLIS[name][0]).main


@pytest.mark.parametrize("name", sorted(CLIS))
def test_unknown_flag_exits_usage(name, capsys):
    """Argparse usage errors exit 2 on every tool."""
    with pytest.raises(SystemExit) as exc:
        _main(name)(["--no-such-flag"])
    assert exc.value.code == EXIT_USAGE
    assert "usage" in capsys.readouterr().err.lower()


@pytest.mark.parametrize("name",
                         [n for n, c in CLIS.items() if c[1]])
def test_cheap_success_exits_ok(name, capsys):
    assert _main(name)(CLIS[name][1]) == EXIT_OK
    assert capsys.readouterr().out


@pytest.mark.parametrize("name",
                         [n for n, c in CLIS.items() if c[2]])
def test_json_flag_emits_one_document(name, capsys):
    assert _main(name)(CLIS[name][2]) == EXIT_OK
    out, err = capsys.readouterr()
    json.loads(out)         # exactly one valid JSON document
    assert err == ""


def test_subcommand_tools_require_a_command():
    """st2-trace / st2-stats / st2-fuzz / st2-client demand a
    subcommand."""
    for name in ("st2-trace", "st2-stats", "st2-fuzz", "st2-client"):
        with pytest.raises(SystemExit) as exc:
            _main(name)([])
        assert exc.value.code == EXIT_USAGE


def test_sweep_requires_a_command(capsys):
    """st2-sweep reports the missing subcommand itself (exit 2 with a
    prog-prefixed message, not an argparse SystemExit)."""
    assert _main("st2-sweep")([]) == EXIT_USAGE
    assert "command is required" in capsys.readouterr().err


class TestHelpers:
    def test_fail_writes_prog_prefixed_stderr(self, capsys):
        code = cli_common.fail("st2-x", "boom")
        assert code == EXIT_USAGE
        out, err = capsys.readouterr()
        assert err == "st2-x: boom\n"
        assert out == ""

    def test_emit_json_is_parseable_and_sorted(self, capsys):
        cli_common.emit_json({"b": 1, "a": [1, 2]})
        text = capsys.readouterr().out
        assert json.loads(text) == {"a": [1, 2], "b": 1}
        assert text.index('"a"') < text.index('"b"')

    def test_run_cli_maps_keyboard_interrupt(self):
        def angry():
            raise KeyboardInterrupt
        assert cli_common.run_cli(angry) == 130

    def test_run_cli_passes_return_through(self):
        assert cli_common.run_cli(lambda: 7) == 7
