"""Extension workload: Rodinia *nw* (Needleman-Wunsch alignment).

Wavefront dynamic programming over the alignment score matrix: each
anti-diagonal is processed in parallel; a cell takes ``max`` of its
three predecessors plus the substitution score / gap penalty —
IADD/IMAX chains over monotonically growing scores (strong temporal
correlation, like pathfinder but with a 2-D dependence structure).

Modelled as the cooperative single-launch variant: the block loops over
diagonals with a barrier between them (the per-diagonal-launch original
has identical arithmetic structure).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128
GAP_PENALTY = 3


def nw_kernel(k, score, reference, n):
    """Wavefront over all anti-diagonals of the (n+1)^2 DP matrix."""
    tx = k.thread_id()
    for d in k.range(2, 2 * n + 1):
        lo = max(1, d - n)
        i = k.iadd(tx, lo)
        # host-side mirror of the recorded k.isub(d, i) below, used only
        # to build the validity mask — not a device instruction
        j_host = d - np.asarray(i)  # st2-lint: disable=L1
        valid = (np.asarray(i) <= min(d - 1, n)) & (j_host >= 1) \
            & (j_host <= n)
        with k.where(valid):
            j = k.isub(d, i)
            cell = k.imad(i, n + 1, j)
            up = k.isub(cell, n + 1)
            left = k.isub(cell, 1)
            upleft = k.isub(up, 1)

            match = k.ld_global(
                reference, k.imad(k.isub(i, 1), n, k.isub(j, 1)))
            diag_score = k.iadd(k.ld_global(score, upleft), match)
            up_score = k.isub(k.ld_global(score, up), GAP_PENALTY)
            left_score = k.isub(k.ld_global(score, left), GAP_PENALTY)
            best = k.imax(diag_score, k.imax(up_score, left_score))
            k.st_global(score, cell, best)
        k.syncthreads()


def nw_reference(score0, ref, n):
    """Host-side DP for validation."""
    s = score0.reshape(n + 1, n + 1).astype(np.int64).copy()
    r = ref.reshape(n, n)
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            s[i, j] = max(s[i - 1, j - 1] + r[i - 1, j - 1],
                          s[i - 1, j] - GAP_PENALTY,
                          s[i, j - 1] - GAP_PENALTY)
    return s


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    """Random substitution scores, gap-penalised borders (as in nw)."""
    rng = np.random.default_rng(seed)
    n = min(scaled(48, scale, minimum=12), BLOCK)
    reference = rng.integers(-1, 10, (n, n)).astype(np.int32)
    score = np.zeros((n + 1, n + 1), dtype=np.int32)
    score[0, :] = -GAP_PENALTY * np.arange(n + 1)
    score[:, 0] = -GAP_PENALTY * np.arange(n + 1)

    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="needle",
        fn=nw_kernel,
        launch=LaunchConfig(1, BLOCK),
        params=dict(
            score=launcher.buffer("score", score.reshape(-1)),
            reference=launcher.buffer("reference",
                                      reference.reshape(-1)),
            n=n),
        launcher=launcher)
