"""Parallel, cache-aware execution of runner work units.

The schedule is: resolve every unit's cache key up front, serve hits
from disk in the parent, then fan the misses out over a
``multiprocessing`` pool (``workers > 1``) or run them inline
(``workers <= 1`` — same code path as a pool worker, which is what the
parallel-equals-serial guarantee rests on).  Results always come back
in work-list order; the parent alone writes cache entries, so no two
processes ever race on a cache file.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from repro.runner.cache import ResultCache, code_version, unit_key
from repro.runner.units import ModelBundle, UnitSpec, execute_unit

_WORKER_MODELS = ModelBundle()


def default_workers() -> int:
    """A safe parallelism default: the pool pays off quickly but the
    23-kernel suite cannot keep dozens of cores busy."""
    return max(1, min(4, os.cpu_count() or 1))


def _init_worker() -> None:
    """Pool initializer: build the calibrated power model and the
    circuit-characterised adder model once per worker process."""
    _WORKER_MODELS.ensure()


def _run_one(item) -> tuple:
    index, spec = item
    return index, execute_unit(spec, models=_WORKER_MODELS)


def _pool_context():
    """Prefer fork (cheap, Linux CI); fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_units(specs, workers: int = 1, cache: ResultCache = None,
              use_cache: bool = True, progress=None) -> list:
    """Execute ``specs`` and return their result dicts, in order.

    Each returned dict is the :func:`~repro.runner.units.execute_unit`
    payload plus two runtime fields: ``key`` (the cache key) and
    ``cached`` (whether this invocation served it from disk).

    ``use_cache=False`` bypasses the disk cache entirely — no reads,
    no writes.  ``progress`` is an optional ``callable(spec, result)``
    invoked as each unit completes (cache hits included).
    """
    specs = list(specs)
    for spec in specs:
        if not isinstance(spec, UnitSpec):
            raise TypeError(f"expected UnitSpec, got {type(spec)!r}")
    cache = cache if cache is not None else ResultCache()
    version = code_version()
    keys = [unit_key(spec, version) for spec in specs]
    results = [None] * len(specs)

    pending = []
    for i, (spec, key) in enumerate(zip(specs, keys)):
        hit = cache.load(key) if use_cache else None
        if hit is not None:
            hit = dict(hit)
            hit.update(key=key, cached=True)
            results[i] = hit
            if progress is not None:
                progress(spec, hit)
        else:
            pending.append((i, spec))

    def finish(i, result):
        result.update(key=keys[i], cached=False)
        if use_cache:
            cache.store(keys[i], result)
        results[i] = result
        if progress is not None:
            progress(specs[i], result)

    if pending:
        if workers > 1:
            ctx = _pool_context()
            with ctx.Pool(min(workers, len(pending)),
                          initializer=_init_worker) as pool:
                for i, result in pool.imap_unordered(_run_one, pending):
                    finish(i, result)
        else:
            for item in pending:
                finish(*_run_one(item))
    return results


def run_suite_units(specs, workers: int = 1, **kwargs) -> dict:
    """Like :func:`run_units` but keyed ``{(kernel, config): result}``
    — the shape the benchmark fixtures want."""
    results = run_units(specs, workers=workers, **kwargs)
    return {(spec.kernel, spec.config.name): result
            for spec, result in zip(specs, results)}


class RunTimer:
    """Wall-clock + hit/miss accounting for one runner invocation."""

    def __init__(self):
        self.t0 = time.perf_counter()
        self.hits = 0
        self.misses = 0

    def observe(self, spec, result) -> None:
        if result.get("cached"):
            self.hits += 1
        else:
            self.misses += 1

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self.t0

    def summary(self) -> dict:
        return {"wall_time_s": self.elapsed_s,
                "cache_hits": self.hits, "cache_misses": self.misses}
