"""Opcode taxonomy invariants."""

from repro.isa.opcodes import (ADDER_OPCODES, FunctionalUnit, MixCategory,
                               Opcode)


class TestAdderClassification:
    def test_integer_adds_use_32bit_adder(self):
        for op in (Opcode.IADD, Opcode.ISUB, Opcode.IMIN, Opcode.IMAX):
            assert op.is_adder_op
            assert op.adder_width == 32
            assert op.mix is MixCategory.ALU_ADD

    def test_address_adds_are_64bit(self):
        assert Opcode.LEA.adder_width == 64

    def test_fp_mantissa_widths(self):
        assert Opcode.FADD.adder_width == 23
        assert Opcode.FFMA.adder_width == 23
        assert Opcode.DADD.adder_width == 52
        assert Opcode.DFMA.adder_width == 52

    def test_multipliers_excluded(self):
        """Section IV-C: no speculation in multipliers or dividers."""
        for op in (Opcode.IMUL, Opcode.IMAD, Opcode.FMUL, Opcode.FDIV,
                   Opcode.DMUL, Opcode.IDIV):
            assert not op.is_adder_op

    def test_adder_opcode_set(self):
        assert Opcode.IADD in ADDER_OPCODES
        assert Opcode.IXOR not in ADDER_OPCODES


class TestUnitsAndMix:
    def test_muldiv_separate_units(self):
        """Fig 7 separates int/fp Mul/Div from ALU+FPU."""
        assert Opcode.IMUL.unit is FunctionalUnit.INT_MUL
        assert Opcode.FMUL.unit is FunctionalUnit.FP_MUL

    def test_memory_ops_are_other_category(self):
        assert Opcode.LDG.mix is MixCategory.OTHER
        assert Opcode.BAR.mix is MixCategory.OTHER

    def test_every_opcode_has_positive_latency(self):
        for op in Opcode:
            assert op.latency > 0

    def test_memory_slowest(self):
        assert Opcode.LDG.latency > Opcode.IADD.latency
