"""The kernel DSL: semantics, recording, divergence, memory."""

import numpy as np

from repro.core import bitops
from repro.isa.opcodes import MixCategory, Opcode
from repro.sim.config import LaunchConfig
from repro.sim.functional import GridLauncher
from repro.sim.trace import opcode_from_id


def run_one_block(fn, threads=64, **params):
    launcher = GridLauncher()
    return launcher, launcher.run(fn, LaunchConfig(1, threads), **params)


class TestIdentity:
    def test_thread_and_global_ids(self):
        captured = {}

        def kernel(k):
            captured["tid"] = k.thread_id()
            captured["gtid"] = k.global_id()
            captured["ltid"] = k.ltid

        launcher = GridLauncher()
        launcher.run(kernel, LaunchConfig(3, 64))
        # last block (id 2) leaves its ids in captured
        assert captured["gtid"][0] == 2 * 64
        assert list(captured["tid"][:3]) == [0, 1, 2]
        assert captured["ltid"][32] == 0  # second warp starts at lane 0


class TestIntegerOps:
    def test_iadd_records_operands_and_result(self):
        def kernel(k):
            k.iadd(k.thread_id(), 100)

        __, run = run_one_block(kernel, threads=32)
        t = run.trace
        assert len(t) == 32
        assert np.array_equal(t.op_a, np.arange(32).astype(np.uint64))
        assert (t.op_b == 100).all()
        assert (t.width == 32).all()
        assert np.array_equal(t.value, np.arange(100, 132).astype(float))

    def test_isub_records_inverted_operand(self):
        def kernel(k):
            k.isub(50, 8)

        __, run = run_one_block(kernel, threads=32)
        t = run.trace
        assert (t.op_b == bitops.invert(8, 32)).all()
        assert (t.cin == 1).all()
        assert (t.value == 42).all()

    def test_imin_value_and_adder_usage(self):
        def kernel(k):
            k.imin(k.thread_id(), 10)

        __, run = run_one_block(kernel, threads=32)
        t = run.trace
        assert np.array_equal(t.value,
                              np.minimum(np.arange(32), 10).astype(float))
        assert (t.cin == 1).all()       # compares through the adder

    def test_non_adder_ops_not_traced(self):
        def kernel(k):
            k.ixor(k.thread_id(), 3)
            k.imul(k.thread_id(), 3)
            k.shl(1, 4)

        __, run = run_one_block(kernel, threads=32)
        assert len(run.trace) == 0
        assert len(run.insts) == 3

    def test_idiv_by_zero_guarded(self):
        def kernel(k):
            out = k.idiv(k.thread_id(), 0)
            assert np.isfinite(out).all()

        run_one_block(kernel, threads=32)


class TestFloatOps:
    def test_fadd_mantissa_domain(self):
        def kernel(k):
            k.fadd(1.5, 2.25)

        __, run = run_one_block(kernel, threads=32)
        t = run.trace
        assert (t.width == 23).all()
        assert np.allclose(t.value, 3.75)

    def test_ffma_value(self):
        def kernel(k):
            k.ffma(2.0, 3.0, 1.0)

        __, run = run_one_block(kernel, threads=32)
        assert np.allclose(run.trace.value, 7.0)

    def test_dadd_uses_52bit_adder(self):
        def kernel(k):
            k.dadd(1.0, 2.0)

        __, run = run_one_block(kernel, threads=32)
        assert (run.trace.width == 52).all()

    def test_effective_subtract_sets_cin(self):
        def kernel(k):
            k.fadd(4.0, -1.0)

        __, run = run_one_block(kernel, threads=32)
        assert (run.trace.cin == 1).all()


class TestDivergence:
    def test_where_masks_trace_recording(self):
        def kernel(k):
            i = k.thread_id()
            with k.where(i < 10):
                k.iadd(i, 1)

        __, run = run_one_block(kernel, threads=64)
        assert len(run.trace) == 10

    def test_nested_where_intersects(self):
        def kernel(k):
            i = k.thread_id()
            with k.where(i < 20):
                with k.where(i >= 10):
                    k.iadd(i, 1)

        __, run = run_one_block(kernel, threads=64)
        assert len(run.trace) == 10
        assert run.trace.gtid.min() == 10

    def test_masked_store_only_writes_active_lanes(self):
        def kernel(k, out):
            i = k.thread_id()
            with k.where(i < 4):
                k.st_global(out, i, 7)

        launcher = GridLauncher()
        out = launcher.buffer("out", np.zeros(64, np.int32))
        launcher.run(kernel, LaunchConfig(1, 64), out=out)
        assert list(out.data[:6]) == [7, 7, 7, 7, 0, 0]

    def test_empty_mask_records_nothing(self):
        def kernel(k):
            with k.where(np.zeros(k.n_threads, bool)):
                k.iadd(1, 1)

        __, run = run_one_block(kernel)
        assert len(run.trace) == 0


class TestLoops:
    def test_range_emits_iterator_adds(self):
        def kernel(k):
            for i in k.range(5):
                pass

        __, run = run_one_block(kernel, threads=32)
        # 5 iterator increments, one per iteration, at one PC
        t = run.trace
        assert len(t) == 5 * 32
        assert len(np.unique(t.pc)) == 1
        assert list(np.unique(t.value)) == [1, 2, 3, 4, 5]

    def test_range_step(self):
        def kernel(k):
            for i in k.range(0, 8, 2):
                pass

        __, run = run_one_block(kernel, threads=32)
        assert sorted(set(run.trace.value)) == [2, 4, 6, 8]


class TestMemory:
    def test_ld_global_emits_lea_and_values(self):
        def kernel(k, buf):
            v = k.ld_global(buf, k.thread_id())
            assert np.array_equal(v, buf.data[:k.n_threads])

        launcher = GridLauncher()
        buf = launcher.buffer("buf", np.arange(64, dtype=np.float32))
        run = launcher.run(kernel, LaunchConfig(1, 64), buf=buf)
        leas = run.trace.opcode
        assert all(opcode_from_id(int(o)) is Opcode.LDG
                   or opcode_from_id(int(o)) is Opcode.LEA
                   for o in leas)
        assert (run.trace.width == 64).all()

    def test_lea_operands_are_base_and_byte_offset(self):
        def kernel(k, buf):
            k.ld_global(buf, k.thread_id())

        launcher = GridLauncher()
        buf = launcher.buffer("buf", np.zeros(64, np.float32))
        run = launcher.run(kernel, LaunchConfig(1, 64), buf=buf)
        t = run.trace
        assert (t.op_a == buf.base).all()
        assert np.array_equal(t.op_b,
                              (np.arange(64) * 4).astype(np.uint64))

    def test_out_of_range_index_clipped(self):
        def kernel(k, buf):
            k.ld_global(buf, k.thread_id() + 1000)

        launcher = GridLauncher()
        buf = launcher.buffer("buf", np.arange(8, dtype=np.int32))
        launcher.run(kernel, LaunchConfig(1, 32), buf=buf)

    def test_shared_memory_roundtrip(self):
        def kernel(k):
            s = k.shared(64, np.int64)
            k.st_shared(s, k.thread_id(), k.thread_id() * 2)
            k.syncthreads()
            got = k.ld_shared(s, k.thread_id())
            assert np.array_equal(got, np.arange(k.n_threads) * 2)

        run_one_block(kernel, threads=64)

    def test_global_store_coalescing_counted(self):
        def kernel(k, buf):
            k.st_global(buf, k.thread_id(), 1)

        launcher = GridLauncher()
        buf = launcher.buffer("buf", np.zeros(64, np.int32))
        run = launcher.run(kernel, LaunchConfig(1, 64), buf=buf)
        assert run.mem.global_stores == 64
        # 64 x int32 = 256B = 8 sectors, buffer base 256B-aligned
        assert run.mem.global_store_transactions == 8


class TestInstructionMix:
    def test_mix_counts_thread_level(self):
        def kernel(k):
            k.iadd(1, 1)       # 32 ALU Add
            k.ixor(1, 1)       # 32 ALU Other
            k.fadd(1.0, 1.0)   # 32 FPU Add
            k.sqrt(2.0)        # 32 Other (SFU)

        __, run = run_one_block(kernel, threads=32)
        mix = run.insts.mix()
        assert mix[MixCategory.ALU_ADD] == 32
        assert mix[MixCategory.ALU_OTHER] == 32
        assert mix[MixCategory.FPU_ADD] == 32
        assert mix[MixCategory.OTHER] == 32

    def test_cvt_ops(self):
        def kernel(k):
            f = k.cvt_f32(k.thread_id())
            i = k.cvt_i32(f)
            assert np.array_equal(i, np.arange(k.n_threads))

        run_one_block(kernel)


class TestInlineScopes:
    def test_inline_gives_helper_calls_distinct_pcs(self):
        def helper(k, x):
            return k.iadd(x, 1)

        def aliased(k):
            t = k.thread_id()
            helper(k, t)
            helper(k, t)

        def scoped(k):
            t = k.thread_id()
            with k.inline("lo"):
                helper(k, t)
            with k.inline("hi"):
                helper(k, t)

        __, run_a = run_one_block(aliased, threads=32)
        __, run_s = run_one_block(scoped, threads=32)
        # aliased: both calls intern the helper's one frame location;
        # scoped: the inline tags split it into two static PCs
        assert run_s.n_static_pcs == run_a.n_static_pcs + 1

    def test_scopes_nest_and_compose(self):
        def helper(k, x):
            return k.iadd(x, 1)

        def kernel(k):
            t = k.thread_id()
            with k.inline("outer"):
                helper(k, t)
                with k.inline("inner"):
                    helper(k, t)

        __, run = run_one_block(kernel, threads=32)
        labels = set(run.pc_table.labels)
        assert any("outer" in lbl and "inner" not in lbl
                   for lbl in labels)
        assert any("outer/inner" in lbl for lbl in labels)

    def test_scope_pops_on_exit(self):
        def kernel(k):
            t = k.thread_id()
            with k.inline("scoped"):
                k.iadd(t, 1)
            k.iadd(t, 2)

        __, run = run_one_block(kernel, threads=32)
        labels = run.pc_table.labels
        assert sum("scoped" in lbl for lbl in labels) == 1
