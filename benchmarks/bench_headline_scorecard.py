"""The reproduction scorecard: every headline claim, one table.

Pulls each published number from the structured registry
(:mod:`repro.st2.paper_numbers`), measures its counterpart, and grades
the match:

* ``exact``  — deterministic arithmetic that must match to the digit;
* ``band``   — matched within the documented tolerance;
* ``shape``  — the ordering/direction holds, magnitude differs (with
  the delta recorded in EXPERIMENTS.md).

This is the machine-checked version of EXPERIMENTS.md.
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import table
from repro.circuits.characterize import (best_slice_width,
                                         slice_bitwidth_sweep)
from repro.core.correlation import slice_carry_correlation
from repro.core.speculation import VALHALLA, explore
from repro.core.predictors import run_speculation
from repro.st2.overheads import overhead_report
from repro.st2.paper_numbers import value


def _measure(suite_runs, suite_evaluations, adder_model):
    m = {}
    # misprediction + savings + performance
    evals = suite_evaluations.values()
    m["miss_st2"] = float(np.mean([e.misprediction_rate
                                   for e in evals]))
    m["recompute_per_miss_avg"] = float(np.mean(
        [e.recomputed_per_misprediction for e in suite_evaluations.values()
         if e.misprediction_rate > 0]))
    m["avg_slowdown"] = float(np.mean(
        [e.slowdown for e in suite_evaluations.values()]))
    m["worst_slowdown"] = max(e.slowdown
                              for e in suite_evaluations.values())
    m["system_energy_saving"] = float(np.mean(
        [e.system_saving for e in suite_evaluations.values()]))
    m["chip_energy_saving"] = float(np.mean(
        [e.chip_saving for e in suite_evaluations.values()]))
    m["alu_fpu_system_share"] = float(np.mean(
        [e.energy.alu_fpu_share for e in suite_evaluations.values()]))
    # VaLHALLA comparison
    val_rates = [run_speculation(r.trace, VALHALLA)
                 .thread_misprediction_rate
                 for r in suite_runs.values()]
    m["miss_valhalla"] = float(np.mean(val_rates))
    m["st2_vs_valhalla_reduction"] = 1 - m["miss_st2"] \
        / m["miss_valhalla"]
    # correlation
    rates = {k: [] for k in ("Prev+Gtid", "Prev+FullPC+Gtid",
                             "Prev+FullPC+Ltid")}
    for name, run in suite_runs.items():
        for k, v in slice_carry_correlation(run.trace,
                                            name).match_rates.items():
            rates[k].append(v)
    m["corr_prev_gtid"] = float(np.nanmean(rates["Prev+Gtid"]))
    m["corr_prev_fullpc_gtid"] = float(
        np.nanmean(rates["Prev+FullPC+Gtid"]))
    m["corr_prev_fullpc_ltid"] = float(
        np.nanmean(rates["Prev+FullPC+Ltid"]))
    # circuits
    points = slice_bitwidth_sweep()
    p8 = next(p for p in points if p.slice_width == 8)
    m["slice_width"] = best_slice_width(points)
    m["slice_vdd_fraction"] = p8.vdd_fraction
    m["adder_power_saving"] = adder_model.saving(
        m["miss_st2"], m["recompute_per_miss_avg"])
    # overheads (deterministic)
    rep = overhead_report()
    m["crf_bytes_per_sm"] = rep.crf_bytes_per_sm
    m["total_storage_kb"] = round(rep.total_storage_bytes / 1024)
    m["dff_bits_alu_adder"] = 14
    return m


GRADING = (
    # key, grade, tolerance (relative unless 'abs')
    ("crf_bytes_per_sm", "exact", 0),
    ("total_storage_kb", "exact", 0),
    ("dff_bits_alu_adder", "exact", 0),
    ("slice_width", "exact", 0),
    ("slice_vdd_fraction", "band", 0.15),
    ("adder_power_saving", "band", 0.10),
    ("corr_prev_fullpc_gtid", "band", 0.10),
    ("corr_prev_fullpc_ltid", "band", 0.10),
    ("avg_slowdown", "band-abs", 0.005),
    ("worst_slowdown", "band-abs", 0.02),
    ("recompute_per_miss_avg", "band", 0.25),
    ("miss_st2", "shape", 0.60),
    ("miss_valhalla", "shape", 0.40),
    ("st2_vs_valhalla_reduction", "shape", 0.30),
    ("alu_fpu_system_share", "band", 0.15),
    ("system_energy_saving", "shape", 0.45),
    ("chip_energy_saving", "shape", 0.35),
    ("corr_prev_gtid", "shape", 0.80),
)


def test_headline_scorecard(benchmark, suite_runs, suite_evaluations,
                            adder_model, artifact_dir):
    measured = benchmark.pedantic(
        _measure, args=(suite_runs, suite_evaluations, adder_model),
        rounds=1, iterations=1)

    rows = []
    failures = []
    for key, grade, tol in GRADING:
        paper = value(key)
        got = measured[key]
        if grade == "exact":
            ok = got == paper
        elif grade == "band-abs":
            ok = abs(got - paper) <= tol
        else:   # relative band / shape
            ok = abs(got - paper) <= tol * abs(paper)
        rows.append((key, paper, f"{got:.4g}", grade,
                     "PASS" if ok else "FAIL"))
        if not ok:
            failures.append(key)

    txt = table("reproduction scorecard (machine-checked EXPERIMENTS.md)",
                ["claim", "paper", "measured", "grade", "status"], rows)
    txt += (f"\n\n{len(rows) - len(failures)}/{len(rows)} claims within"
            " their documented tolerance bands")
    save_artifact(artifact_dir, "headline_scorecard.txt", txt)

    assert not failures, f"claims out of tolerance: {failures}"
