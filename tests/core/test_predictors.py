"""Speculation-mechanism semantics, incl. oracle cross-checks."""

import numpy as np
import pytest

from repro.core import bitops
from repro.core.history import ReferencePredictor
from repro.core.predictors import (MAX_PREDICTIONS, Prediction,
                                   SpeculationConfig, carry_match_rate,
                                   evaluate_trace, history_keys,
                                   predict_trace, previous_same_key,
                                   run_speculation, trace_n_predictions,
                                   trace_peek, trace_slice_carries)
from tests.conftest import make_trace, random_trace


class TestConfigValidation:
    def test_bad_mechanism(self):
        with pytest.raises(ValueError):
            SpeculationConfig("x", "magic")

    def test_mod_requires_bits(self):
        with pytest.raises(ValueError):
            SpeculationConfig("x", "prev", pc_index="mod", pc_bits=0)

    def test_bad_thread_key(self):
        with pytest.raises(ValueError):
            SpeculationConfig("x", "prev", thread_key="warp")

    def test_table_entries(self):
        cfg = SpeculationConfig("x", "prev", pc_index="mod", pc_bits=4,
                                thread_key="ltid")
        assert cfg.table_entries() == 16 * 32
        gtid = SpeculationConfig("x", "prev", pc_index="mod", pc_bits=4,
                                 thread_key="gtid")
        assert gtid.table_entries(2048) == 16 * 2048


class TestPreviousSameKey:
    def test_basic_chain(self):
        keys = np.array([7, 3, 7, 7, 3], dtype=np.int64)
        prev = previous_same_key(keys, np.ones(5, bool))
        assert list(prev) == [-1, -1, 0, 2, 1]

    def test_validity_mask_skips_rows(self):
        keys = np.array([1, 1, 1], dtype=np.int64)
        prev = previous_same_key(keys, np.array([True, False, True]))
        assert list(prev) == [-1, -1, 0]

    def test_empty(self):
        prev = previous_same_key(np.array([], dtype=np.int64),
                                 np.array([], dtype=bool))
        assert len(prev) == 0


class TestTraceDerived:
    def test_n_predictions_by_width(self):
        t = make_trace([0] * 4, [0] * 4, [0] * 4, [1] * 4, [1] * 4,
                       width=[64, 32, 23, 52])
        assert list(trace_n_predictions(t)) == [7, 3, 2, 6]

    def test_slice_carries_padded(self):
        t = make_trace([0], [0], [0], [0xFF], [0x01], width=[32])
        carries = trace_slice_carries(t)
        assert carries.shape == (1, 8)
        assert list(carries[0]) == [0, 1, 0, 0, 0, 0, 0, 0]

    def test_peek_known_cases(self):
        # slice0 MSB (bit 7) both zero -> carry into slice 1 known 0
        t = make_trace([0, 0, 0], [0, 0, 0], [0, 0, 0],
                       [0x00, 0x80, 0x80], [0x00, 0x80, 0x00], width=16)
        known, value = trace_peek(t)
        assert known[0, 0] and value[0, 0] == 0      # both MSbs 0
        assert known[1, 0] and value[1, 0] == 1      # both MSbs 1
        assert not known[2, 0]                       # mixed -> dynamic

    def test_peek_is_always_correct(self, rng):
        """The Peek static rule must never contradict the true carry."""
        t = random_trace(rng, n=2000)
        known, value = trace_peek(t)
        carries = trace_slice_carries(t)[:, 1:]
        n_preds = trace_n_predictions(t)
        in_range = np.arange(MAX_PREDICTIONS)[None, :] < n_preds[:, None]
        sel = known & in_range
        assert np.array_equal(value[sel], carries[sel])


class TestHistoryKeys:
    def test_modpc_collapses_pcs(self):
        t = make_trace([0, 16, 1], [0, 0, 0], [0, 0, 0], [1, 1, 1],
                       [1, 1, 1])
        cfg = SpeculationConfig("x", "prev", pc_index="mod", pc_bits=4)
        keys = history_keys(t, cfg)
        assert keys[0] == keys[1] != keys[2]

    def test_ltid_shares_across_warps(self):
        t = make_trace([0, 0], [5, 37], [5, 5], [1, 1], [1, 1])
        cfg = SpeculationConfig("x", "prev", thread_key="ltid")
        keys = history_keys(t, cfg)
        assert keys[0] == keys[1]
        gcfg = SpeculationConfig("x", "prev", thread_key="gtid")
        gkeys = history_keys(t, gcfg)
        assert gkeys[0] != gkeys[1]

    def test_sm_scoping_separates(self):
        t = make_trace([0, 0], [0, 0], [0, 0], [1, 1], [1, 1], sm=[0, 1])
        shared = history_keys(t, SpeculationConfig("x", "prev"))
        scoped = history_keys(t, SpeculationConfig("x", "prev",
                                                   sm_scoped=True))
        assert shared[0] == shared[1]
        assert scoped[0] != scoped[1]


class TestStaticMechanisms:
    def test_static_zero_perfect_on_carryless(self):
        t = make_trace([0] * 8, range(8), range(8), [1] * 8, [1] * 8,
                       width=64)
        r = run_speculation(t, SpeculationConfig("z", "static0"))
        assert r.thread_misprediction_rate == 0.0

    def test_static_one_all_wrong_on_carryless(self):
        t = make_trace([0] * 8, range(8), range(8), [1] * 8, [1] * 8,
                       width=64)
        r = run_speculation(t, SpeculationConfig("o", "static1"))
        assert r.thread_misprediction_rate == 1.0


class TestPrevMechanism:
    def test_prediction_is_previous_carries(self):
        # two ops, same key; second op's prediction = first op's carries
        a = [0xFF, 0x01]
        b = [0x01, 0x01]
        t = make_trace([0, 0], [0, 0], [0, 0], a, b, width=16)
        pred = predict_trace(t, SpeculationConfig("p", "prev"))
        carries0 = trace_slice_carries(t)[0]
        assert pred.bits[0, 0] == 0            # cold table predicts 0
        assert pred.bits[1, 0] == carries0[1]  # 0xFF+0x01 generated carry
        assert pred.has_prev[1, 0] and not pred.has_prev[0, 0]

    def test_pc_disambiguation_prevents_aliasing(self):
        # alternating PCs with opposite carry behaviour
        a = [0xFF, 0x00] * 20
        b = [0x01, 0x00] * 20
        pcs = [0, 1] * 20
        t = make_trace(pcs, [0] * 40, [0] * 40, a, b, width=16)
        aliased = run_speculation(t, SpeculationConfig("a", "prev"))
        split = run_speculation(
            t, SpeculationConfig("s", "prev", pc_index="full"))
        assert split.thread_misprediction_rate \
            < aliased.thread_misprediction_rate

    def test_narrow_op_does_not_clobber_high_bits(self):
        """A 23-bit op between two 64-bit ops must leave predictions of
        slices it does not have untouched."""
        a64 = int(bitops.to_unsigned(-1, 64))  # carries at every boundary
        ops = np.array([a64, 0, a64], dtype=np.uint64)
        t = make_trace([0, 0, 0], [0, 0, 0], [0, 0, 0],
                       ops, [1, 0, 1], width=[64, 23, 64])
        pred = predict_trace(t, SpeculationConfig("p", "prev"))
        # third op's low 2 prediction bits were updated by the 23-bit op
        # (carry-free), its high 5 still come from op 0 (all carries)
        assert list(pred.bits[2]) == [0, 0, 1, 1, 1, 1, 1]


class TestOracleCrossCheck:
    """Vectorised predictions must equal the sequential reference."""

    @pytest.mark.parametrize("cfg", [
        SpeculationConfig("shared", "prev"),
        SpeculationConfig("peek", "prev", peek=True),
        SpeculationConfig("mod4", "prev", pc_index="mod", pc_bits=4),
        SpeculationConfig("full-gtid", "prev", pc_index="full",
                          thread_key="gtid"),
        SpeculationConfig("ltid", "prev", pc_index="mod", pc_bits=4,
                          thread_key="ltid", peek=True),
        SpeculationConfig("xor", "prev", pc_index="xor", pc_bits=4),
        SpeculationConfig("sm", "prev", pc_index="mod", pc_bits=2,
                          sm_scoped=True),
    ])
    def test_matches_reference(self, cfg, rng):
        t = random_trace(rng, n=400, n_pcs=20, n_threads=96)
        fast = predict_trace(t, cfg).bits
        slow = ReferencePredictor(cfg).predict_trace(t)
        n_preds = trace_n_predictions(t)
        in_range = np.arange(MAX_PREDICTIONS)[None, :] < n_preds[:, None]
        assert np.array_equal(fast[in_range], slow[in_range])


class TestEvaluate:
    def test_wrong_bits_counts_raw_errors(self, rng):
        t = random_trace(rng, n=200)
        pred = predict_trace(t, SpeculationConfig("z", "static0"))
        res = evaluate_trace(t, pred)
        carries = trace_slice_carries(t)[:, 1:]
        n_preds = trace_n_predictions(t)
        in_range = np.arange(MAX_PREDICTIONS)[None, :] < n_preds[:, None]
        expect = (carries != 0)[in_range].sum()
        assert res.wrong_bits.sum() == expect

    def test_recompute_bounded_by_slices(self, rng):
        t = random_trace(rng, n=500)
        res = run_speculation(t, SpeculationConfig("o", "static1"))
        assert (res.recomputed <= 7).all()
        assert (res.recomputed >= res.mispredicted.astype(int)).all()

    def test_misprediction_rate_zero_with_oracle_predictions(self, rng):
        t = random_trace(rng, n=300)
        carries = trace_slice_carries(t)
        pred = Prediction(
            config=SpeculationConfig("oracle", "prev"),
            bits=carries[:, 1:], has_prev=np.ones((300, 7), bool),
            peek_known=np.zeros((300, 7), bool))
        res = evaluate_trace(t, pred)
        assert res.thread_misprediction_rate == 0.0


class TestCarryMatchRate:
    def test_fullpc_beats_no_pc_on_structured_stream(self):
        # PC0 counts up slowly (no carries), PC1 oscillates sign
        n = 200
        pcs = np.tile([0, 1], n // 2)
        a = np.where(pcs == 0, np.arange(n) % 50,
                     bitops.to_unsigned(-np.arange(n) % 1000, 64))
        t = make_trace(pcs, [0] * n, [0] * n, a, [1] * n, width=64)
        no_pc = carry_match_rate(t, SpeculationConfig(
            "g", "prev", thread_key="gtid"))
        with_pc = carry_match_rate(t, SpeculationConfig(
            "fg", "prev", pc_index="full", thread_key="gtid"))
        assert with_pc >= no_pc

    def test_perfectly_repeating_stream_matches_fully(self):
        t = make_trace([0] * 50, [0] * 50, [0] * 50, [0xFF] * 50,
                       [0x01] * 50, width=16)
        rate = carry_match_rate(t, SpeculationConfig(
            "x", "prev", pc_index="full", thread_key="gtid"))
        assert rate == 1.0
