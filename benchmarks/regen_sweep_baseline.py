#!/usr/bin/env python
"""Regenerate ``BENCH_sweep.json`` from a fresh pinned sweep.

The baseline pins the deterministic sweep the ``sweep-smoke`` CI job
replays (``benchmarks/sweep_ci.yaml`` under ``--no-cache``, so every
functional counter — adder/predictor totals, expansion bookkeeping,
equivalence/domination prune decisions, frontier admissions — is
machine-independent).  This script:

1. runs the pinned spec through the local sweep backend into a
   temporary output/manifest pair,
2. seeds a baseline from the measured metrics
   (:func:`repro.obs.metrics.baseline_from_metrics` — counters pinned
   at 5 % relative tolerance, runner timers bounded at 25× measured),
3. self-checks against the previous baseline: when the pinned spec is
   unchanged (same ``sweep_digest`` in the old file's ``grid`` meta),
   every counter the old file pinned must come out **identical**.  The
   sweep's prune decisions are part of the pinned surface — if
   ``sweep.prune.units_skipped`` or ``sweep.frontier.admitted`` moved,
   the pruning logic changed behaviour, which is a bug to explain, not
   drift to absorb.  A changed digest means the spec itself was
   intentionally edited, so the counter self-check is skipped (the
   new counters define the new surface).

Usage::

    python benchmarks/regen_sweep_baseline.py            # rewrite
    python benchmarks/regen_sweep_baseline.py --dry-run  # verify only
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.obs.metrics import (baseline_from_metrics, load_baseline,
                               read_metrics)
from repro.sweep import cli as sweep_cli

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_sweep.json"
SPEC = REPO_ROOT / "benchmarks" / "sweep_ci.yaml"


def run_pinned_sweep(workdir: Path) -> dict:
    """Run the pinned sweep cold and return its metrics file."""
    out = workdir / "sweep.json"
    rc = sweep_cli.main([
        "run", str(SPEC), "--out", str(out), "--workers", "2",
        "--no-cache", "--quiet",
    ])
    if rc != 0:
        raise SystemExit(f"pinned sweep failed with exit code {rc}")
    result = json.loads(out.read_text())
    if not result["complete"]:
        raise SystemExit("pinned sweep did not complete")
    return read_metrics(workdir / "sweep.json.manifest.metrics.json")


def build_baseline(metrics: dict) -> dict:
    description = (
        "pinned design-space sweep baseline: st2-sweep run "
        "benchmarks/sweep_ci.yaml --workers 2 --no-cache (8-combo "
        "grid -> 4 equivalence classes over qrng_K1 x affineChain, "
        "vec engine; the static1 classes are pruned pre-execution by "
        "the static bounds stage); counters pin the functional "
        "totals AND the prune/frontier decisions — including "
        "sweep.prune.static.units_skipped >= 1 — regenerate with "
        "benchmarks/regen_sweep_baseline.py")
    return baseline_from_metrics(metrics, rel_tol=0.05,
                                 time_factor=25.0,
                                 description=description)


def check_counters_unchanged(new: dict, old: dict) -> list:
    """Every counter the old baseline pinned must be pinned at the
    same value in the new one."""
    pinned = {e["metric"]: e for e in new["metrics"]}
    problems = []
    for entry in old["metrics"]:
        ref = entry["metric"]
        if not ref.startswith("counters.") or "value" not in entry:
            continue
        fresh = pinned.get(ref)
        if fresh is None:
            problems.append(f"{ref}: pinned before, gone now")
        elif fresh.get("value") != entry["value"]:
            problems.append(f"{ref}: {entry['value']} -> "
                            f"{fresh.get('value')}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="regenerate BENCH_sweep.json from the pinned "
                    "sweep spec")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="baseline file to write "
                             f"(default {DEFAULT_OUT})")
    parser.add_argument("--dry-run", action="store_true",
                        help="run + self-check but do not write")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        metrics = run_pinned_sweep(Path(tmp))
    payload = build_baseline(metrics)

    if args.out.exists():
        old = load_baseline(args.out)
        old_digest = old.get("grid", {}).get("sweep_digest")
        new_digest = payload.get("grid", {}).get("sweep_digest")
        if old_digest != new_digest:
            print(f"spec changed ({old_digest} -> {new_digest}): "
                  "counter self-check skipped, new counters define "
                  "the pinned surface")
        else:
            problems = check_counters_unchanged(payload, old)
            if problems:
                print("regen_sweep_baseline: pinned counters moved "
                      "(sweep determinism or pruning behaviour "
                      "changed?):", file=sys.stderr)
                for problem in problems:
                    print(f"  {problem}", file=sys.stderr)
                return 1
            print(f"self-check ok: every counter pinned in "
                  f"{args.out} is unchanged")

    counters = metrics.get("counters", {})
    print(f"pinning {len(payload['metrics'])} metric(s); "
          f"{counters.get('sweep.units.executed', 0)} units executed, "
          f"{counters.get('sweep.prune.units_skipped', 0)} pruned "
          f"away, {counters.get('sweep.frontier.admitted', 0)} "
          "frontier admissions")
    if args.dry_run:
        print("dry run: baseline not written")
        return 0
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
