"""Carry Register File model and write-port arbitration."""

import numpy as np
import pytest

from repro.core.history import CarryRegisterFile, ReferencePredictor
from repro.core.predictors import SpeculationConfig


class TestCRFGeometry:
    def test_paper_dimensions(self):
        crf = CarryRegisterFile()
        assert crf.entry_bits == 224        # 32 lanes x 7 bits
        assert crf.storage_bytes() == 448   # 16 entries

    def test_read_indexes_by_low_pc_bits(self):
        crf = CarryRegisterFile()
        bits = np.ones((3, 7), dtype=np.uint8)
        crf.writeback(pc=5, lanes=np.array([0, 1, 2]), bits=bits)
        # pc 21 aliases pc 5 (mod 16)
        assert np.array_equal(crf.read(21)[0:3, :], bits)
        assert not crf.read(6).any()

    def test_writeback_touches_only_given_lanes(self):
        crf = CarryRegisterFile()
        crf.writeback(pc=0, lanes=np.array([3]),
                      bits=np.ones((1, 7), np.uint8))
        entry = crf.read(0)
        assert entry[3].all()
        assert not entry[[0, 1, 2, 4]].any()

    def test_narrow_update_leaves_high_bits(self):
        crf = CarryRegisterFile()
        crf.writeback(0, np.array([0]), np.ones((1, 7), np.uint8))
        crf.writeback(0, np.array([0]), np.zeros((1, 2), np.uint8))
        entry = crf.read(0)
        assert list(entry[0]) == [0, 0, 1, 1, 1, 1, 1]


class TestArbitration:
    def test_distinct_entries_all_proceed(self):
        crf = CarryRegisterFile()
        updates = [(0, np.array([0]), np.ones((1, 7), np.uint8)),
                   (1, np.array([0]), np.ones((1, 7), np.uint8))]
        crf.writeback_cycle(updates)
        assert crf.conflicts_dropped == 0
        assert crf.read(0)[0].all() and crf.read(1)[0].all()

    def test_same_entry_conflict_drops_losers(self):
        crf = CarryRegisterFile(seed=4)
        updates = [(0, np.array([0]), np.ones((1, 7), np.uint8)),
                   (16, np.array([1]), np.ones((1, 7), np.uint8))]
        crf.writeback_cycle(updates)       # pc 0 and 16 share entry 0
        assert crf.conflicts_dropped == 1
        entry = crf.read(0)
        # exactly one of the two lanes was written
        assert entry[0].all() != entry[1].all()

    def test_dropped_updates_counted_across_cycles(self):
        crf = CarryRegisterFile(seed=0)
        for _ in range(10):
            crf.writeback_cycle(
                [(0, np.array([0]), np.ones((1, 7), np.uint8)),
                 (0, np.array([1]), np.ones((1, 7), np.uint8)),
                 (0, np.array([2]), np.ones((1, 7), np.uint8))])
        assert crf.conflicts_dropped == 20


class TestReferencePredictor:
    def test_rejects_non_prev(self):
        with pytest.raises(ValueError):
            ReferencePredictor(SpeculationConfig("s", "static0"))

    def test_cold_table_predicts_zero(self):
        ref = ReferencePredictor(SpeculationConfig("p", "prev"))
        bits = ref.predict_row(0, 0, 0, 0, 7)
        assert not bits.any()

    def test_update_then_predict(self):
        ref = ReferencePredictor(SpeculationConfig("p", "prev"))
        ref.update_row(0, 0, 0, 0, np.array([1, 0, 1], np.uint8))
        assert list(ref.predict_row(0, 0, 0, 0, 3)) == [1, 0, 1]

    def test_xor_index_folds_pc(self):
        cfg = SpeculationConfig("x", "prev", pc_index="xor", pc_bits=4)
        ref = ReferencePredictor(cfg)
        # pc=0x21 folds to 0x2^0x1=3; pc=3 folds to 3 -> same entry
        ref.update_row(0x21, 0, 0, 0, np.array([1], np.uint8))
        assert ref.predict_row(0x03, 0, 0, 0, 1)[0] == 1
