"""``repro.sweep`` — declarative design-space sweeps over the runner.

A :class:`~repro.api.SweepSpec` (YAML/JSON file or wire document)
places axes over :class:`~repro.core.predictors.SpeculationConfig`
fields and crosses them with a kernel list; this package expands the
grid into provable equivalence classes (:mod:`~repro.sweep.grid`),
executes it resumably over the local runner pool or an ``st2-serve``
daemon (:mod:`~repro.sweep.engine`), tracks the Pareto frontier over
(energy saved, misprediction rate, perf overhead) with sound early
pruning (:mod:`~repro.sweep.pareto`), and renders ``sweep.json`` into
markdown reports (:mod:`~repro.sweep.report`).  The ``st2-sweep`` CLI
(:mod:`~repro.sweep.cli`) fronts all of it.  See ``docs/sweeping.md``.
"""

from repro.sweep.engine import (ResumeMismatch, SweepError,
                                SweepOptions, SweepResult, run_sweep)
from repro.sweep.grid import SweepPlan, expand_plan
from repro.sweep.pareto import (OBJECTIVES, ParetoFrontier, ParetoPoint,
                                dominates, frontiers_equal)

__all__ = ["OBJECTIVES", "ParetoFrontier", "ParetoPoint",
           "ResumeMismatch", "SweepError", "SweepOptions", "SweepPlan",
           "SweepResult", "dominates", "expand_plan",
           "frontiers_equal", "run_sweep"]
