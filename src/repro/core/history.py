"""History-table reference implementation and the hardware CRF model.

:class:`ReferencePredictor` is a deliberately simple, dict-based,
row-at-a-time implementation of the ``prev`` speculation mechanism with
identical semantics to the vectorised
:func:`repro.core.predictors.predict_trace`.  It exists as a correctness
oracle (the tests cross-check the two on random traces) and as the
model that can additionally simulate *write-port contention*.

:class:`CarryRegisterFile` models the physical per-SM CRF of Section
IV-C: 16 entries x 224 bits (7 carry bits for each of 32 lanes), read
with ``PC[3:0]`` during register read, written back at write-back.  When
several warps in the same SM reach write-back in the same cycle and
target the same entry, the design resolves the conflict by *random
arbitration* — losing warps simply drop their update (predictions are
hints; dropping one never affects correctness).
"""

from __future__ import annotations

import numpy as np

from repro.core.predictors import (MAX_PREDICTIONS, SpeculationConfig,
                                   trace_n_predictions, trace_peek,
                                   trace_slice_carries)


class ReferencePredictor:
    """Sequential oracle for the ``prev`` mechanism (tests only)."""

    def __init__(self, config: SpeculationConfig):
        if config.mechanism != "prev":
            raise ValueError("ReferencePredictor models the prev mechanism")
        self.config = config
        self._table: dict = {}

    def _key(self, pc: int, gtid: int, ltid: int, sm: int):
        cfg = self.config
        if cfg.pc_index == "none":
            pc_part = 0
        elif cfg.pc_index == "full":
            pc_part = pc
        elif cfg.pc_index == "mod":
            pc_part = pc % (1 << cfg.pc_bits)
        else:  # xor fold
            pc_part, v, m = 0, pc, (1 << cfg.pc_bits) - 1
            while v:
                pc_part ^= v & m
                v >>= cfg.pc_bits
        thread_part = {"": 0, "gtid": gtid, "ltid": ltid}[cfg.thread_key]
        sm_part = sm if cfg.sm_scoped else 0
        return (pc_part, thread_part, sm_part)

    def predict_row(self, pc: int, gtid: int, ltid: int, sm: int,
                    n_preds: int) -> np.ndarray:
        entry = self._table.get(self._key(pc, gtid, ltid, sm))
        bits = np.zeros(MAX_PREDICTIONS, dtype=np.uint8)
        if entry is not None:
            bits[:] = entry
        return bits[:n_preds]

    def update_row(self, pc: int, gtid: int, ltid: int, sm: int,
                   carries: np.ndarray) -> None:
        """Store a row's true slice carries (bits it produced only)."""
        key = self._key(pc, gtid, ltid, sm)
        entry = self._table.setdefault(
            key, np.zeros(MAX_PREDICTIONS, dtype=np.uint8))
        entry[:len(carries)] = carries

    def predict_trace(self, trace) -> np.ndarray:
        """Group-at-a-time predictions over a trace (slow; tests only).

        All lanes of one warp instruction (same ``seq`` and ``warp``)
        read the table before any of them writes back, matching the
        hardware register-read / write-back staging.
        """
        n_preds = trace_n_predictions(trace)
        carries = trace_slice_carries(trace)
        groups = (trace.seq.astype(np.int64) << 24) \
            + trace.warp.astype(np.int64)
        out = np.zeros((len(trace), MAX_PREDICTIONS), dtype=np.uint8)
        i = 0
        n = len(trace)
        while i < n:
            j = i
            while j < n and groups[j] == groups[i]:
                j += 1
            for r in range(i, j):
                kk = int(n_preds[r])
                out[r, :kk] = self.predict_row(
                    int(trace.pc[r]), int(trace.gtid[r]),
                    int(trace.ltid[r]), int(trace.sm[r]), kk)
            for r in range(i, j):
                kk = int(n_preds[r])
                self.update_row(int(trace.pc[r]), int(trace.gtid[r]),
                                int(trace.ltid[r]), int(trace.sm[r]),
                                carries[r, 1:kk + 1])
            i = j
        if self.config.peek:
            known, value = trace_peek(trace)
            out = np.where(known, value, out)
        return out


class CarryRegisterFile:
    """The per-SM 16 x 224-bit Carry Register File (Section IV-C)."""

    def __init__(self, n_entries: int = 16, n_lanes: int = 32,
                 bits_per_lane: int = MAX_PREDICTIONS, seed: int = 0):
        self.n_entries = n_entries
        self.n_lanes = n_lanes
        self.bits_per_lane = bits_per_lane
        self._bits = np.zeros((n_entries, n_lanes, bits_per_lane),
                              dtype=np.uint8)
        self._rng = np.random.default_rng(seed)
        self.reads = 0
        self.writes = 0
        self.conflicts_dropped = 0

    @property
    def entry_bits(self) -> int:
        return self.n_lanes * self.bits_per_lane

    def storage_bytes(self) -> int:
        return self.n_entries * self.entry_bits // 8

    def read(self, pc: int) -> np.ndarray:
        """Register-read-stage fetch: all 224 bits of entry ``PC[3:0]``."""
        self.reads += 1
        return self._bits[pc % self.n_entries].copy()

    def writeback(self, pc: int, lanes: np.ndarray,
                  bits: np.ndarray) -> None:
        """Write-back-stage update of the given lanes' prediction bits."""
        self.writes += 1
        entry = self._bits[pc % self.n_entries]
        bits = np.asarray(bits, dtype=np.uint8)
        entry[np.asarray(lanes), :bits.shape[1]] = bits

    def writeback_cycle(self, updates: list) -> None:
        """One write-back cycle with random port arbitration.

        ``updates`` is a list of ``(pc, lanes, bits)`` from warps reaching
        write-back in the same cycle.  Updates targeting distinct entries
        proceed in parallel; among updates to the *same* entry one random
        winner is applied and the rest are dropped (the paper's random
        arbitration, Section IV-B: contention is rare because only warps
        in the same SM cluster at the same write-back cycle can conflict).
        """
        by_entry: dict = {}
        for pc, lanes, bits in updates:
            by_entry.setdefault(pc % self.n_entries, []).append(
                (pc, lanes, bits))
        for contenders in by_entry.values():
            winner = (contenders[0] if len(contenders) == 1 else
                      contenders[self._rng.integers(len(contenders))])
            self.conflicts_dropped += len(contenders) - 1
            self.writeback(*winner)
