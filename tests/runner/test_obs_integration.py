"""Observability through the runner: scoping, worker accumulation,
metrics.json emission, and reconciliation against the manifest."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core.speculation import PREV, ST2_DESIGN
from repro.runner import RunOptions, build_units, run_units
from repro.sim.trace_store import TraceStore

KERNELS = ["qrng_K2", "sortNets_K2"]
CONFIGS = (ST2_DESIGN, PREV)


def two_stage(tmp_path, workers) -> RunOptions:
    # --no-cache + fresh store: every unit functionally executes
    # exactly once, making the functional counters deterministic
    return RunOptions(workers=workers, use_cache=False,
                      trace_store=TraceStore(tmp_path / "traces"))


@pytest.fixture(scope="module")
def units():
    return build_units(KERNELS, configs=CONFIGS, aux=False)


def run_with_obs(tmp_path, units, workers):
    opts = two_stage(tmp_path, workers)
    results = run_units(units, opts)
    return results, opts.obs.snapshot()


class TestRunnerObs:
    def test_invocation_registry_populated(self, tmp_path, units):
        _, snap = run_with_obs(tmp_path, units, workers=1)
        c = snap["counters"]
        assert c["runner.units"] == len(units)
        assert c["runner.units.executed"] == len(units)
        assert c["runner.traces.captured"] == len(KERNELS)
        assert c["sim.functional.trace_rows"] > 0
        assert c["core.predict.ops"] > 0
        assert c["sim.timing.warp_insts"] > 0
        assert c["core.adder.ops"] > 0
        t = snap["timers"]
        assert t["runner.unit"]["count"] == len(units)
        assert t["runner.stage.capture"]["count"] == 1
        assert t["runner.stage.eval"]["count"] == 1

    def test_serial_and_parallel_counters_identical(self, tmp_path,
                                                    units):
        """Worker snapshots must accumulate to exactly the serial
        counters — nothing lost or double-counted in the pool."""
        _, serial = run_with_obs(tmp_path / "s", units, workers=1)
        _, pooled = run_with_obs(tmp_path / "p", units, workers=2)
        functional = {k: v for k, v in serial["counters"].items()
                      if not k.startswith(("runner.", "trace_store.",
                                           "result_cache."))}
        assert functional
        for name, value in functional.items():
            assert pooled["counters"].get(name) == value, name

    def test_results_do_not_carry_transient_snapshots(self, tmp_path,
                                                      units):
        """The worker→parent 'obs' rider must be stripped before the
        result is cached or manifested."""
        results, _ = run_with_obs(tmp_path, units, workers=2)
        assert all("obs" not in r.data for r in results)

    def test_caller_supplied_registry_is_used(self, tmp_path, units):
        mine = obs.Obs()
        opts = two_stage(tmp_path, workers=1)
        opts.obs = mine
        run_units(units[:1], opts)
        assert opts.obs is mine
        assert mine.counter("runner.units") == 1


class TestMetricsEmission:
    def test_cli_writes_reconciling_metrics(self, tmp_path, capsys):
        """st2-run must drop metrics.json next to the manifest, with
        unit wall-time totals reconciling against the manifest rows."""
        from repro.runner.cli import main
        manifest = tmp_path / "st2_manifest.jsonl"
        assert main(["--kernels", ",".join(KERNELS),
                     "--configs", "st2,prev",
                     "--workers", "2", "--no-cache",
                     "--trace-store", str(tmp_path / "traces"),
                     "--out", str(manifest), "--quiet"]) == 0
        metrics = obs.read_metrics(obs.metrics_path_for(manifest))
        rows = [json.loads(line)
                for line in manifest.read_text().splitlines()]
        unit_walls = [r["wall_time_s"] for r in rows
                      if r.get("type") == "unit"]
        assert len(unit_walls) == len(KERNELS) * 2
        timer = metrics["timers"]["runner.unit.wall"]
        assert timer["count"] == len(unit_walls)
        assert timer["total_s"] == pytest.approx(sum(unit_walls),
                                                 rel=1e-6)
        assert metrics["meta"]["kernels"] == KERNELS
