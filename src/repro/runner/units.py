"""Work units: the (kernel × SpeculationConfig) grid the runner executes.

A :class:`UnitSpec` pins down *everything* that determines a unit's
numbers — kernel name, workload scale, RNG seed and the full
:class:`~repro.core.predictors.SpeculationConfig` — so results are
reproducible regardless of execution order or worker count.  Seeds are
fixed per unit at plan time (:func:`build_units`), never drawn from
shared RNG state, which is what makes parallel and serial schedules
produce bit-identical results.

:func:`execute_unit` runs one unit end to end (trace → speculation →
timing → energy) and flattens the outcome into the JSON-serialisable
dict that the disk cache and the JSONL manifest both store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.predictors import SpeculationConfig
from repro.core.speculation import ST2_DESIGN
from repro.kernels import suite as kernel_suite
from repro.sim.trace_io import trace_nbytes
from repro.st2.results import RunResult

#: Bump when the shape of the result dict changes; part of the cache key.
#: v2: trace-store provenance (``trace_cache_hit``) and per-stage
#: timings (``capture_time_s`` / ``eval_time_s``) joined the payload.
#: v3: ``metrics.static_peek`` — the static carry-fact ablation row.
#: v4: ``engine`` — which evaluation engine produced the numbers.
RESULT_SCHEMA = 4

#: Fields every valid result dict must carry (cache validation).
RESULT_FIELDS = ("kernel", "scale", "seed", "config", "config_fields",
                 "engine", "wall_time_s", "capture_time_s",
                 "eval_time_s", "trace_cache_hit", "trace_rows",
                 "trace_bytes", "n_static_pcs", "metrics",
                 "energy_stacks")

#: Evaluation engines :func:`execute_unit` dispatches between.
#: ``interp`` is the reference per-width interpreter
#: (:func:`repro.st2.architecture.evaluate_run` + the static-peek
#: ablation); ``vec`` is the batched replay engine
#: (:mod:`repro.sim.vec`), bit-identical where supported; ``auto``
#: picks ``vec`` when :func:`repro.sim.vec.supported` allows it and
#: falls back to ``interp`` otherwise.
ENGINES = ("interp", "vec", "auto")


@dataclass(frozen=True)
class UnitSpec:
    """One (kernel, scale, seed, config) experiment cell."""

    kernel: str
    scale: float = 1.0
    seed: int = 0
    config: SpeculationConfig = ST2_DESIGN
    aux: bool = True        # also measure VaLHALLA + Fig.3 correlation

    @property
    def label(self) -> str:
        return f"{self.kernel}[{self.config.name}]"

    def identity(self) -> dict:
        """The JSON payload that (with the code version) keys the cache."""
        return {
            "kernel": self.kernel,
            "scale": self.scale,
            "seed": self.seed,
            "config": dataclasses.asdict(self.config),
            "aux": self.aux,
            "schema": RESULT_SCHEMA,
        }


def resolve_configs(spec) -> tuple:
    """Resolve a CLI ``--configs`` value into SpeculationConfigs.

    Accepts a comma-separated string or an iterable of names; each name
    is an alias (``st2``, ``valhalla``, ``prev``, ``casa``, ``ladder``,
    ``fig3``) or an exact ladder name such as ``Ltid+Prev+ModPC4+Peek``.
    """
    from repro.core import speculation as spec_mod

    aliases = {
        "st2": (spec_mod.ST2_DESIGN,),
        "valhalla": (spec_mod.VALHALLA,),
        "prev": (spec_mod.PREV,),
        "casa": (spec_mod.CASA,),
        "ladder": tuple(spec_mod.DESIGN_LADDER),
        "fig3": tuple(spec_mod.FIG3_CONFIGS),
    }
    if isinstance(spec, str):
        spec = [s for s in spec.split(",") if s]
    configs = []
    for name in spec:
        if name.lower() in aliases:
            configs.extend(aliases[name.lower()])
        else:
            configs.append(spec_mod.config_by_name(name))
    seen = set()
    unique = []
    for cfg in configs:
        if cfg.name not in seen:
            seen.add(cfg.name)
            unique.append(cfg)
    return tuple(unique)


def derive_unit_seed(base_seed: int, kernel: str) -> int:
    """A per-kernel seed that is a pure function of (base_seed, kernel).

    Used by ``--per-kernel-seeds``; stable across processes and Python
    versions (unlike ``hash``).
    """
    digest = hashlib.sha256(
        f"{base_seed}:{kernel}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def build_units(kernels, configs=(ST2_DESIGN,), scale: float = 1.0,
                seed: int = 0, aux: bool = True,
                per_kernel_seeds: bool = False) -> list:
    """Expand the (kernel × config) grid into ordered :class:`UnitSpec`s.

    Every unit's seed is fixed here, before any execution happens, so
    the work list is identical no matter how it is later scheduled.
    """
    kernels = kernel_suite.resolve_kernels(kernels)
    units = []
    for kernel in kernels:
        unit_seed = (derive_unit_seed(seed, kernel)
                     if per_kernel_seeds else seed)
        for config in configs:
            units.append(UnitSpec(kernel=kernel, scale=scale,
                                  seed=unit_seed, config=config, aux=aux))
    return units


@dataclass
class ModelBundle:
    """The session-scoped models every unit shares (built once per
    process / pool worker; deterministic for a given seed)."""

    power_model: object = None
    adder_model: object = None
    seed: int = 0
    _built: bool = field(default=False, repr=False)

    def ensure(self) -> "ModelBundle":
        if not self._built:
            from repro.power.calibration import calibrated_model
            from repro.st2.architecture import default_adder_model
            self.power_model = calibrated_model(seed=self.seed)
            self.adder_model = default_adder_model()
            self._built = True
        return self


def _aux_metrics(run) -> dict:
    """The extra per-kernel measurements the headline scorecard needs:
    the VaLHALLA comparison point and the Figure 3 correlation rates."""
    from repro.core.correlation import slice_carry_correlation
    from repro.core.predictors import run_speculation
    from repro.core.speculation import VALHALLA

    valhalla = run_speculation(run.trace, VALHALLA)
    correlation = slice_carry_correlation(run.trace, run.name)
    return {
        "valhalla_misprediction_rate":
            valhalla.thread_misprediction_rate,
        "correlation": {k: float(v)
                        for k, v in correlation.match_rates.items()},
    }


def _fact_bits(facts) -> int:
    """Pinned carry-boundary count of a fact table (CarryFact objects
    or their ``st2-lint facts --json`` dict form)."""
    total = 0
    for fact in (facts or {}).values():
        total += len(fact["carries"] if isinstance(fact, dict)
                     else fact.carries)
    return total


def evaluation_payload(run, config: SpeculationConfig,
                       models: ModelBundle = None,
                       engine: str = "interp", facts=None,
                       plan_key=None) -> dict:
    """The numeric core of one (run × config) evaluation.

    Returns ``{"engine", "metrics", "energy_stacks"}`` — exactly the
    payload slice of :func:`execute_unit`'s result dict, computed on
    an **arbitrary** :class:`~repro.sim.functional.KernelRun` with an
    explicit static-fact table.  This is the entry point the
    differential fuzzer's engine oracle drives: the same code path
    that produces production numbers, minus the suite registry (fuzz
    kernels are not registered) and the trace-store bookkeeping.

    ``engine`` must be ``"interp"`` or ``"vec"`` (already resolved —
    see :func:`_resolve_engine` for the ``auto`` policy).  Both
    engines add identical obs counter totals, including the per-unit
    ``absint.facts`` count, which keeps grid snapshots independent of
    how units are distributed over workers.
    """
    from repro.st2.architecture import evaluate_run

    models = (models or ModelBundle()).ensure()
    facts = facts or {}
    obs.add("absint.facts", _fact_bits(facts))
    if engine == "vec":
        from repro.sim import vec

        ev, static_peek = vec.evaluate_unit(
            run, config, facts, models.power_model, models.adder_model,
            plan_key=plan_key)
    elif engine == "interp":
        from repro.st2.ablations import static_peek_ablation

        ev = evaluate_run(run, config=config, model=models.power_model,
                          adder_model=models.adder_model)
        point = static_peek_ablation(run.trace, facts, config=config)
        static_peek = {
            "fact_labels": point.fact_labels,
            "fact_bits": point.fact_bits,
            "static_bits": point.static_bits,
            "new_static_bits": point.new_static_bits,
            "dynamic_events_base": point.dynamic_events_base,
            "dynamic_events_static": point.dynamic_events_static,
            "events_reduced": point.events_reduced,
            "misprediction_rate_base": point.misprediction_rate_base,
            "misprediction_rate_static": point.misprediction_rate_static,
        }
    else:
        raise ValueError(
            f"evaluation_payload needs a resolved engine "
            f"('interp' or 'vec'), got {engine!r}")
    base_stack, st2_stack = ev.energy.normalized_stacks()
    return {
        "engine": engine,
        "metrics": {
            "misprediction_rate": float(ev.misprediction_rate),
            "recomputed_per_misprediction":
                float(ev.recomputed_per_misprediction),
            "slowdown": float(ev.slowdown),
            "baseline_cycles": int(ev.timing_baseline.total_cycles),
            "st2_cycles": int(ev.timing_st2.total_cycles),
            "system_saving": float(ev.system_saving),
            "chip_saving": float(ev.chip_saving),
            "alu_fpu_share": float(ev.energy.alu_fpu_share),
            "arithmetic_intensive": bool(ev.arithmetic_intensive),
            "static_peek": static_peek,
        },
        "energy_stacks": {"baseline": base_stack, "st2": st2_stack},
    }


def unit_trace_key(spec: UnitSpec, version: str = None) -> str:
    """The trace-store key of this unit's functional execution — shared
    by every config evaluated against the same (kernel, scale, seed)."""
    from repro.runner.cache import code_version
    from repro.sim.trace_store import trace_key

    return trace_key(spec.kernel, spec.scale, spec.seed,
                     version if version is not None else code_version())


def _obtain_run(spec: UnitSpec, store, store_key, use_mem_cache):
    """Get the unit's KernelRun: from the trace store (capturing on a
    cold miss), or — single-stage mode — from the functional simulator
    via the in-process memo.  Returns ``(run, hit, capture_s)``."""
    t0 = time.perf_counter()
    if store is not None:
        key = store_key or unit_trace_key(spec)
        hit = store.has(key)
        if not hit:
            from repro.runner.cache import code_version
            live = kernel_suite.run_kernel(spec.kernel, scale=spec.scale,
                                           seed=spec.seed, use_cache=False)
            store.put(key, live, code_version=code_version(),
                      scale=spec.scale, seed=spec.seed)
        return store.get(key), hit, \
            0.0 if hit else time.perf_counter() - t0
    hit = use_mem_cache and (spec.kernel, spec.scale, spec.seed) \
        in kernel_suite._run_cache
    run = kernel_suite.run_kernel(spec.kernel, scale=spec.scale,
                                  seed=spec.seed,
                                  use_cache=use_mem_cache)
    return run, hit, 0.0 if hit else time.perf_counter() - t0


def _resolve_engine(engine: str, run, plan_key=None) -> str:
    """Pick the engine that will evaluate ``run``.

    ``interp`` and ``vec`` are honoured as requested (``vec`` raises
    :class:`~repro.sim.vec.VecUnsupportedError` when the run cannot
    take the vectorized path); ``auto`` prefers ``vec`` and falls back
    to the interpreter, counting the fallback so grid-level metrics
    surface it.  ``plan_key`` memoises the support verdict per trace.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose one of {ENGINES}")
    if engine == "interp":
        return "interp"
    from repro.sim import vec

    reason = vec.supported(run, key=plan_key)
    if reason is None:
        return "vec"
    if engine == "vec":
        raise vec.VecUnsupportedError(
            f"{run.name}: engine 'vec' requested but {reason} "
            f"(use --engine auto to fall back to the interpreter)")
    obs.add("runner.engine.fallback")
    return "interp"


def execute_unit(spec: UnitSpec, models: ModelBundle = None,
                 use_mem_cache: bool = True, store=None,
                 store_key: str = None, engine: str = "auto") -> RunResult:
    """Run one unit end to end; returns its typed
    :class:`~repro.st2.results.RunResult`.

    The underlying payload (``result.to_dict()``) contains only
    JSON-native values (plus NaN, which the stdlib ``json``
    round-trips), so it can be disk-cached and written to the manifest
    verbatim.

    With ``store`` (a :class:`~repro.sim.trace_store.TraceStore`), the
    functional execution is decoupled: the trace is opened read-only
    from the store (memory-mapped, shared across processes) and only
    captured — once, for every config that shares it — on a cold miss.

    ``engine`` selects the evaluation engine (see :data:`ENGINES`);
    the result's ``engine`` field records which one actually ran.
    Both engines produce bit-identical payloads and obs counters, so
    the choice never changes the numbers — only the wall time.
    """
    from repro.lint.facts import facts_for_kernel

    models = (models or ModelBundle()).ensure()
    t0 = time.perf_counter()
    run, trace_hit, capture_s = _obtain_run(spec, store, store_key,
                                            use_mem_cache)
    t_eval = time.perf_counter()
    plan_key = (spec.kernel, spec.scale, spec.seed)
    engine_used = _resolve_engine(engine, run, plan_key=plan_key)
    payload = evaluation_payload(run, spec.config, models=models,
                                 engine=engine_used,
                                 facts=facts_for_kernel(spec.kernel),
                                 plan_key=plan_key)
    result = {
        "kernel": spec.kernel,
        "scale": spec.scale,
        "seed": spec.seed,
        "config": spec.config.name,
        "config_fields": dataclasses.asdict(spec.config),
        "engine": engine_used,
        "wall_time_s": 0.0,     # patched below, after measuring
        "capture_time_s": capture_s,
        "eval_time_s": 0.0,     # patched below, after measuring
        "trace_cache_hit": bool(trace_hit),
        "trace_rows": int(len(run.trace)),
        "trace_bytes": int(trace_nbytes(run.trace, run.insts)),
        "n_static_pcs": int(run.n_static_pcs),
        "metrics": payload["metrics"],
        "energy_stacks": payload["energy_stacks"],
    }
    if spec.aux:
        result["aux"] = _aux_metrics(run)
    result["eval_time_s"] = time.perf_counter() - t_eval
    result["wall_time_s"] = time.perf_counter() - t0
    obs.record_timer("runner.unit.capture", result["capture_time_s"])
    obs.record_timer("runner.unit.eval", result["eval_time_s"])
    obs.record_timer("runner.unit.wall", result["wall_time_s"])
    return RunResult(result)


#: Result keys that describe *this invocation's* execution, not the
#: experiment's numbers — excluded from numerical-identity comparison.
#: ``engine`` belongs here because both engines are bit-identical: a
#: result computed by ``vec`` must compare equal to one computed by
#: ``interp`` (the vec-equivalence CI job rests on exactly this).
RUNTIME_FIELDS = ("wall_time_s", "capture_time_s", "eval_time_s",
                  "trace_cache_hit", "cached", "key", "engine")


def comparable(result) -> dict:
    """Strip the runtime-only fields (wall time, trace/cache
    bookkeeping) so two results can be compared for numerical
    identity.  Accepts a raw dict or a :class:`RunResult`."""
    if hasattr(result, "to_dict"):
        result = result.to_dict()
    out = {k: v for k, v in result.items() if k not in RUNTIME_FIELDS}
    return out


def results_equal(a, b) -> bool:
    """Exact numerical equality of two unit results (NaN == NaN)."""
    def eq(x, y):
        if isinstance(x, dict) and isinstance(y, dict):
            return (x.keys() == y.keys()
                    and all(eq(x[k], y[k]) for k in x))
        if isinstance(x, float) and isinstance(y, float):
            return x == y or (np.isnan(x) and np.isnan(y))
        return x == y
    return eq(comparable(a), comparable(b))
