"""Section IV/V headline — ST2 adder power vs reference and CSLA.

Paper: ST2 adders save ~70 % of the nominal adder power while
guaranteeing correct results; unlike CSLA they compute second carry
cases only for suspect slices.
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import table
from repro.circuits.characterize import characterize_adders
from repro.core.speculation import ST2_DESIGN
from repro.core.predictors import run_speculation


def _suite_weighted_saving(suite_runs, model):
    rows = []
    for name, run in suite_runs.items():
        spec = run_speculation(run.trace, ST2_DESIGN)
        saving = model.saving(spec.thread_misprediction_rate,
                              spec.recomputed_per_misprediction)
        rows.append((name, spec.thread_misprediction_rate, saving))
    return rows


def test_adder_energy(benchmark, suite_runs, artifact_dir):
    model = characterize_adders()
    rows = benchmark.pedantic(_suite_weighted_saving,
                              args=(suite_runs, model), rounds=1,
                              iterations=1)

    txt = table(
        "per-adder energy at each kernel's misprediction rate",
        ["kernel", "misprediction", "adder-power saving"],
        [(n, f"{m:.1%}", f"{s:.1%}") for n, m, s in rows])
    avg = float(np.mean([r[2] for r in rows]))
    csla_saving = 1 - model.csla_energy_fj() / model.reference_fj
    txt += (f"\n\nreference adder: {model.reference_fj:.0f} fJ/op at "
            f"nominal Vdd\nST2 at 9% misprediction: "
            f"{model.st2_adder_fj(0.09, 1.94):.0f} fJ/op "
            f"({model.saving(0.09, 1.94):.1%} saving; paper: ~70%)"
            f"\nsuite-weighted average saving: {avg:.1%}"
            f"\nCSLA at the same voltage: {model.csla_energy_fj():.0f} "
            f"fJ/op ({csla_saving:.1%} saving) — ST2 beats CSLA by "
            "recomputing only suspect slices"
            f"\nscaled slice voltage: {model.vdd:.2f} V")
    save_artifact(artifact_dir, "adder_energy.txt", txt)

    assert 0.60 < model.saving(0.09, 1.94) < 0.80
    assert avg > 0.60
    # ST2 cheaper than CSLA at every kernel's miss rate
    for name, miss, saving in rows:
        st2 = model.st2_energy_fj(miss, 3.0)
        assert st2 < model.csla_energy_fj() * 1.05, name
    # savings degrade gracefully with misprediction, never collapse
    worst = min(r[2] for r in rows)
    assert worst > 0.55
