"""The L1–L5 static rules (AST checks over kernel modules).

Each ``check_*`` yields raw :class:`~repro.lint.findings.Finding`
objects; the analyzer attaches source text, applies suppressions and
deduplicates.  The rules are heuristics tuned to this repo's DSL
idioms; their contracts are pinned by fixture tests in
``tests/lint/``.
"""

from __future__ import annotations

import ast
from collections import defaultdict

from repro.lint.findings import Finding
from repro.lint.taint import Taint

# ----------------------------------------------------------------------
# L1 — untraced arithmetic
# ----------------------------------------------------------------------

#: numpy calls that are adder-class arithmetic (would have emitted
#: AddTrace rows through the DSL).  Clamps (minimum/maximum) used for
#: bounds safety are deliberately absent: they are functional-model
#: artifacts, not ports of real instructions.
_NUMPY_ADDER_CALLS = frozenset({"add", "subtract", "sum", "cumsum"})


def _call_name(node: ast.Call) -> tuple:
    """('np', 'add') for ``np.add(...)``, ('', 'f') for ``f(...)``."""
    func = node.func
    if isinstance(func, ast.Name):
        return "", func.id
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    return None, None


def check_l1(fn: ast.FunctionDef, taint: Taint, path: str):
    """Raw ``+``/``-`` (or numpy adder calls) on device vectors."""
    findings = []

    def flag(node, what):
        findings.append(Finding(
            path, node.lineno, "L1",
            f"{what} on a device vector bypasses the DSL emit path "
            f"(no AddTrace rows → adder energy and misprediction "
            f"statistics undercount); use k.iadd/k.isub/k.fadd/… "
            f"instead"))

    for node in ast.walk(fn):
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)):
            if taint.expr_tainted(node.left) \
                    or taint.expr_tainted(node.right):
                op = "+" if isinstance(node.op, ast.Add) else "-"
                flag(node, f"raw `{op}`")
        elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)):
            if taint.expr_tainted(node.target) \
                    or taint.expr_tainted(node.value):
                op = "+=" if isinstance(node.op, ast.Add) else "-="
                flag(node, f"raw `{op}`")
        elif isinstance(node, ast.Call):
            owner, name = _call_name(node)
            if owner and name in _NUMPY_ADDER_CALLS and any(
                    taint.expr_tainted(a) for a in node.args):
                flag(node, f"`{owner}.{name}`")
    return findings


# ----------------------------------------------------------------------
# L2 — PC aliasing through shared helpers
# ----------------------------------------------------------------------

#: Context methods that intern a PC (adder emits, the implicit address
#: LEA of global accesses, and the loop increment).  Shared-memory
#: accesses and bare instruction emits carry no PC and cannot alias.
PC_EMITTING_METHODS = frozenset({
    "iadd", "isub", "imin", "imax",
    "fadd", "fsub", "ffma", "fmin", "fmax",
    "dadd", "dsub", "dfma",
    "ld_global", "st_global", "atomic_add", "range",
    "warp_reduce_fadd", "warp_reduce_iadd",
})


def _ctx_name(fn: ast.FunctionDef) -> str:
    return fn.args.args[0].arg if fn.args.args else "k"


def _emits_pcs(fn: ast.FunctionDef, funcs: dict, seen=frozenset()) -> bool:
    """Does ``fn`` (transitively) intern kernel PCs?"""
    ctx = _ctx_name(fn)
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == ctx
                and func.attr in PC_EMITTING_METHODS):
            return True
        if (isinstance(func, ast.Name) and func.id in funcs
                and func.id not in seen
                and _emits_pcs(funcs[func.id], funcs,
                               seen | {func.id})):
            return True
    return False


def _inline_tag(with_node: ast.With, ctx: str):
    """The string tag of a ``with k.inline("tag"):`` block, or None."""
    for item in with_node.items:
        call = item.context_expr
        if (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == ctx
                and call.func.attr == "inline"
                and call.args):
            arg = call.args[0]
            if isinstance(arg, ast.Constant):
                return str(arg.value)
            return f"<dynamic@{call.lineno}>"
    return None


def check_l2(tree: ast.Module, path: str):
    """A PC-emitting helper called from ≥2 sites of one function with
    the same (or no) ``k.inline`` scope: every call site interns the
    same PCs, conflating operand streams the predictor should keep
    apart."""
    funcs = {n.name: n for n in ast.walk(tree)
             if isinstance(n, ast.FunctionDef)}
    emitting = {name for name, fn in funcs.items()
                if _emits_pcs(fn, funcs)}
    findings = []

    for caller in funcs.values():
        ctx = _ctx_name(caller)
        sites = defaultdict(list)        # (callee, scopes) -> [nodes]

        def walk(node, scopes):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.FunctionDef):
                    continue             # nested defs analysed separately
                child_scopes = scopes
                if isinstance(child, ast.With):
                    tag = _inline_tag(child, ctx)
                    if tag is not None:
                        child_scopes = scopes + (tag,)
                if (isinstance(child, ast.Call)
                        and isinstance(child.func, ast.Name)
                        and child.func.id in emitting
                        and child.func.id != caller.name):
                    sites[(child.func.id, child_scopes)].append(child)
                walk(child, child_scopes)

        walk(caller, ())
        for (callee, scopes), nodes in sites.items():
            if len(nodes) < 2:
                continue
            where = f"inside inline scope {'/'.join(scopes)!r} " \
                if scopes else ""
            for node in nodes:
                findings.append(Finding(
                    path, node.lineno, "L2",
                    f"helper `{callee}` emits PC-interned ops and is "
                    f"called {len(nodes)}× {where}in "
                    f"`{caller.name}` — all sites alias to one static "
                    f"PC, inflating ModPCk accuracy; wrap each call in "
                    f"a distinct `with {ctx}.inline(...):` scope"))
    return findings


# ----------------------------------------------------------------------
# L3 / L4 — shared-memory ordering and barrier divergence
# ----------------------------------------------------------------------

def _src(node: ast.AST) -> str:
    return ast.dump(node) if node is None else ast.unparse(node)


def _ctx_method_call(node: ast.AST, ctx: str):
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == ctx):
        return node.func.attr
    return None


def _is_where(with_node: ast.With, ctx: str) -> bool:
    for item in with_node.items:
        call = item.context_expr
        if (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Name)
                and call.func.value.id == ctx
                and call.func.attr == "where"):
            return True
    return False


def check_l3_l4(fn: ast.FunctionDef, taint: Taint, path: str,
                rules=("L3", "L4")):
    """Linear walk of the kernel body tracking shared-memory stores,
    loads and barriers.

    L3: a ``ld_shared`` whose index expression matches *no* pending
    unsynchronised store index on the same buffer reads cells another
    thread may just have written — cross-thread communication needs a
    ``syncthreads`` in between.  (Same-expression store→load is the
    per-thread scratch idiom and is fine.)  Loop bodies are walked
    twice to catch wrap-around hazards; a barrier anywhere in the body
    clears pending stores across iterations.

    L4: ``syncthreads`` lexically under ``with k.where(...)`` — if the
    mask ever diverges, inactive threads never reach the barrier.
    """
    ctx = taint.ctx
    findings = []
    pending = defaultdict(dict)       # buf src -> {idx src: store line}

    def handle_call(method, node, depth):
        if method == "syncthreads":
            if depth > 0 and "L4" in rules:
                findings.append(Finding(
                    path, node.lineno, "L4",
                    f"syncthreads under a divergent `{ctx}.where` "
                    f"mask — threads masked off never reach the "
                    f"barrier (deadlock on hardware); hoist the "
                    f"barrier out of the divergent region"))
            pending.clear()
            return
        if method not in ("st_shared", "atomic_add_shared",
                          "ld_shared"):
            return
        if len(node.args) < 2:
            return
        buf, idx = _src(node.args[0]), _src(node.args[1])
        if method == "ld_shared":
            stores = pending.get(buf)
            if ("L3" in rules and stores and idx not in stores
                    and (taint.expr_tainted(node.args[1])
                         or any(taint.expr_tainted(a)
                                for a in node.args[1:2]))):
                prev_idx, prev_line = next(iter(stores.items()))
                findings.append(Finding(
                    path, node.lineno, "L3",
                    f"shared buffer `{buf}` stored with index "
                    f"`{prev_idx}` (line {prev_line}) is read with "
                    f"index `{idx}` before any syncthreads — "
                    f"cross-thread visibility is undefined without a "
                    f"barrier"))
        else:
            pending[buf][idx] = node.lineno

    def walk_stmts(stmts, depth):
        for stmt in stmts:
            if isinstance(stmt, (ast.For, ast.While)):
                walk_stmts(stmt.body, depth)      # pass 1
                walk_stmts(stmt.body, depth)      # pass 2: loop wrap
                walk_stmts(stmt.orelse, depth)
            elif isinstance(stmt, ast.If):
                walk_stmts(stmt.body, depth)
                walk_stmts(stmt.orelse, depth)
            elif isinstance(stmt, ast.With):
                inner = depth + 1 if _is_where(stmt, ctx) else depth
                walk_stmts(stmt.body, inner)
            elif isinstance(stmt, (ast.FunctionDef, ast.ClassDef)):
                continue
            else:
                calls = [n for n in ast.walk(stmt)
                         if _ctx_method_call(n, ctx)]
                # evaluation order: argument loads happen before the
                # enclosing store takes effect
                loads = [c for c in calls
                         if c.func.attr == "ld_shared"]
                rest = [c for c in calls if c not in loads]
                for call in loads + rest:
                    handle_call(call.func.attr, call, depth)

    walk_stmts(fn.body, 0)
    return findings


# ----------------------------------------------------------------------
# L5 — nondeterminism in cache-hashed modules
# ----------------------------------------------------------------------

_TIME_FNS = frozenset({"time", "time_ns", "monotonic", "monotonic_ns",
                       "perf_counter", "perf_counter_ns", "clock",
                       "process_time"})
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})
_OTHER_BAD = {("os", "urandom"): "os.urandom",
              ("uuid", "uuid4"): "uuid.uuid4",
              ("uuid", "uuid1"): "uuid.uuid1",
              ("secrets", "token_bytes"): "secrets",
              ("secrets", "token_hex"): "secrets",
              ("secrets", "randbelow"): "secrets"}


def check_l5(tree: ast.Module, path: str):
    """Unseeded RNG / wall-clock reads in a module whose source the
    runner's content-addressed result cache hashes: the *numbers*
    become nondeterministic while the cache key stays fixed, so stale
    and fresh results are indistinguishable."""
    numpy_names, random_names = set(), set()
    nprandom_names = set()               # `from numpy import random as r`
    time_names, datetime_names = set(), set()
    from_imports = {}                    # local name -> "module.attr"

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                if alias.name in ("numpy", "numpy.random"):
                    numpy_names.add(alias.asname or "numpy")
                elif alias.name == "random":
                    random_names.add(local)
                elif alias.name == "time":
                    time_names.add(local)
                elif alias.name == "datetime":
                    datetime_names.add(local)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                local = alias.asname or alias.name
                if node.module == "random":
                    from_imports[local] = f"random.{alias.name}"
                elif node.module == "time" and alias.name in _TIME_FNS:
                    from_imports[local] = f"time.{alias.name}"
                elif node.module == "datetime" \
                        and alias.name == "datetime":
                    datetime_names.add(local)
                elif node.module == "numpy" and alias.name == "random":
                    nprandom_names.add(local)

    findings = []

    def flag(node, what, why):
        findings.append(Finding(
            path, node.lineno, "L5",
            f"{what} in a cache-hashed module: {why} — results change "
            f"while the content-addressed cache key does not, "
            f"silently serving stale numbers"))

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # np.random.<fn>(...) or (from numpy import random) random.<fn>
        if (isinstance(func, ast.Attribute)
                and ((isinstance(func.value, ast.Attribute)
                      and isinstance(func.value.value, ast.Name)
                      and func.value.value.id in numpy_names
                      and func.value.attr == "random")
                     or (isinstance(func.value, ast.Name)
                         and func.value.id in nprandom_names))):
            if func.attr == "default_rng":
                if not node.args and not node.keywords:
                    flag(node, "`default_rng()` without a seed",
                         "every call draws from OS entropy")
            elif func.attr != "Generator":
                flag(node, f"legacy global RNG `np.random.{func.attr}`",
                     "shares hidden mutable state across the process")
        elif (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            owner, attr = func.value.id, func.attr
            if owner in random_names:
                flag(node, f"stdlib `random.{attr}`",
                     "uses the unseeded process-global generator")
            elif owner in time_names and attr in _TIME_FNS:
                flag(node, f"wall-clock read `time.{attr}()`",
                     "the value differs on every run")
            elif owner in datetime_names and attr in _DATETIME_FNS:
                flag(node, f"`datetime.{attr}()`",
                     "the value differs on every run")
            elif (owner, attr) in _OTHER_BAD:
                flag(node, f"`{_OTHER_BAD[(owner, attr)]}`",
                     "draws from OS entropy")
        elif isinstance(func, ast.Name) and func.id in from_imports:
            flag(node, f"`{from_imports[func.id]}`",
                 "nondeterministic between runs")
    return findings
