"""Trace persistence round-trips."""

import numpy as np
import pytest

from repro.core.predictors import run_speculation
from repro.core.speculation import ST2_DESIGN
from repro.kernels import pathfinder
from repro.sim.trace_io import load_trace, save_kernel_run, save_trace


@pytest.fixture(scope="module")
def run():
    return pathfinder.prepare(scale=0.2, seed=0).run()


class TestRoundTrip:
    def test_trace_columns_identical(self, run, tmp_path):
        p = tmp_path / "t.npz"
        save_trace(p, run.trace, run.insts, {"note": "test"})
        trace, insts, meta = load_trace(p)
        for col in ("pc", "gtid", "ltid", "op_a", "op_b", "cin",
                    "width", "seq", "value"):
            assert np.array_equal(getattr(trace, col),
                                  getattr(run.trace, col)), col
        assert np.array_equal(insts.opcode, run.insts.opcode)
        assert meta == {"note": "test"}

    def test_pc_labels_preserved(self, run, tmp_path):
        p = tmp_path / "t.npz"
        save_trace(p, run.trace)
        trace, insts, __ = load_trace(p)
        assert trace.pc_labels == run.trace.pc_labels
        assert insts is None

    def test_loaded_trace_analyses_identically(self, run, tmp_path):
        """The entire speculation study must be reproducible from the
        persisted trace alone."""
        p = tmp_path / "t.npz"
        save_trace(p, run.trace)
        trace, __, __ = load_trace(p)
        fresh = run_speculation(run.trace, ST2_DESIGN)
        loaded = run_speculation(trace, ST2_DESIGN)
        assert fresh.thread_misprediction_rate \
            == loaded.thread_misprediction_rate
        assert np.array_equal(fresh.mispredicted, loaded.mispredicted)

    def test_kernel_run_metadata(self, run, tmp_path):
        p = tmp_path / "r.npz"
        save_kernel_run(p, run, {"scale": 0.2})
        __, __, meta = load_trace(p)
        assert meta["kernel"] == "pathfinder"
        assert meta["scale"] == 0.2
        assert meta["block_threads"] == 128

    def test_version_checked(self, run, tmp_path):
        import json
        p = tmp_path / "t.npz"
        save_trace(p, run.trace)
        # corrupt the header version
        data = dict(np.load(p))
        header = json.loads(bytes(data["header"]).decode())
        header["format_version"] = 99
        data["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8)
        np.savez_compressed(p, **data)
        with pytest.raises(ValueError):
            load_trace(p)
