"""Execution options for one runner invocation.

:func:`~repro.runner.pool.run_units` grew a keyword surface (workers,
cache handles, progress hooks, and now the trace-store knobs) that the
Python API and the ``st2-run`` CLI both had to mirror.
:class:`RunOptions` is the single shared carrier — and since the serve
migration, the *only* way to configure an invocation: construct it
directly from Python, or from parsed CLI arguments via
:meth:`from_args`.  The deprecated ``run_units(..., workers=, cache=,
use_cache=, progress=)`` keywords have been removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runner.cache import ResultCache


@dataclass
class RunOptions:
    """Everything that controls *how* a work list is executed (never
    *what* it computes — that lives in the UnitSpecs).

    ``trace_store`` switches the runner to the two-stage pipeline:
    stage 1 captures each distinct (kernel, scale, seed) trace into the
    store once, stage 2 fans evaluation units out over read-only
    memmapped traces.  ``None`` keeps the single-stage behaviour.

    ``stats`` is populated by ``run_units`` with invocation-level
    accounting (stage wall-times, traces captured vs served warm) so
    callers — the CLI manifest in particular — can report it.

    ``obs`` is the invocation's observability registry
    (:class:`repro.obs.Obs`).  Leave it ``None`` to let ``run_units``
    create one; pass a registry to accumulate several invocations into
    one.  After the call it holds every counter/timer of the run —
    its snapshot is what ``st2-run`` writes as ``metrics.json``.
    """

    workers: int = 1
    cache: ResultCache = None
    use_cache: bool = True
    progress: object = None         # callable(spec, result) or None
    timer: object = None            # RunTimer-like .observe(spec, result)
    trace_store: object = None      # TraceStore or None (single-stage)
    stats: dict = field(default_factory=dict)
    obs: object = None              # repro.obs.Obs or None (fresh)
    engine: str = "auto"            # interp | vec | auto (see ENGINES)

    def __post_init__(self) -> None:
        from repro.runner.units import ENGINES
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"choose one of {ENGINES}")

    def resolved_cache(self) -> ResultCache:
        return self.cache if self.cache is not None else ResultCache()

    def notify(self, spec, result) -> None:
        """Invoke the timer and progress hooks for one finished unit."""
        if self.timer is not None:
            self.timer.observe(spec, result)
        if self.progress is not None:
            self.progress(spec, result)

    @classmethod
    def from_args(cls, args, progress=None, timer=None) -> "RunOptions":
        """Build options from ``st2-run`` parsed arguments.

        Understands ``--workers``, ``--cache-dir``, ``--no-cache``,
        ``--engine`` and ``--trace-store [DIR]`` (absent →
        single-stage; bare flag → default store dir; with a path →
        that directory).
        """
        from repro.runner.pool import default_workers

        workers = args.workers if getattr(args, "workers", None) \
            is not None else default_workers()
        cache = ResultCache(getattr(args, "cache_dir", None))
        store = None
        spec = getattr(args, "trace_store", None)
        if spec is not None:
            from repro.sim.trace_store import TraceStore
            store = TraceStore(spec or None)
        return cls(workers=workers, cache=cache,
                   use_cache=not getattr(args, "no_cache", False),
                   progress=progress, timer=timer, trace_store=store,
                   engine=getattr(args, "engine", None) or "auto")
