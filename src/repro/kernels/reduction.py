"""Extension workload: the canonical CUDA parallel reduction.

Not in the paper's suite, but the idiom (grid-stride accumulation, then
a shuffle-based warp reduction, then a shared-memory combine) dominates
real GPU code and exercises ST2 on the *shrinking-operand* pattern: as
partial sums accumulate, the aligned mantissa operands shrink and the
carry predictions become progressively easier — a clean showcase of
temporal correlation.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128


def reduce_kernel(k, data, partial, n, items_per_thread):
    """Grid-stride sum + warp shuffle reduction + shared combine."""
    t = k.global_id()
    stride = k.launch.total_threads

    acc = np.zeros(k.n_threads, dtype=np.float32)
    for i in k.range(items_per_thread):
        idx = k.imad(i, stride, t)
        with k.where(k.lt(idx, n)):
            acc = k.fadd(acc, k.ld_global(data, idx))

    acc = k.warp_reduce_fadd(acc)

    warp_sums = k.shared(k.n_threads // 32, np.float32)
    lane_zero = k.eq(k.ltid, 0)
    with k.where(lane_zero):
        k.st_shared(warp_sums, k.thread_id() // 32, acc)
    k.syncthreads()

    with k.where(k.lt(k.thread_id(), k.n_threads // 32)):
        block_acc = k.ld_shared(warp_sums, k.thread_id())
        # small serial combine across the block's warps (few values)
        total = block_acc
        for w in k.range(1, k.n_threads // 32):
            nxt = k.ld_shared(warp_sums, w)
            total = k.sel(k.eq(k.thread_id(), 0),
                          k.fadd(total, nxt), total)
        with k.where(k.eq(k.thread_id(), 0)):
            k.st_global(partial, k.block_id, total)


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    grid = scaled(8, scale, minimum=2)
    items_per_thread = scaled(8, scale, minimum=2)
    n = grid * BLOCK * items_per_thread
    data = rng.normal(0.5, 0.2, n).astype(np.float32)

    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="reduction",
        fn=reduce_kernel,
        launch=LaunchConfig(grid, BLOCK),
        params=dict(
            data=launcher.buffer("data", data),
            partial=launcher.buffer("partial",
                                    np.zeros(grid, np.float32)),
            n=n, items_per_thread=items_per_thread),
        launcher=launcher)
