"""Fuzz the whole stack: random DSL kernels through trace capture,
speculation, timing and energy, checking end-to-end invariants.

The generator composes random arithmetic/memory/control constructs the
way real kernels do; whatever it produces, the pipeline must hold its
contracts (trace consistency, correctness of the adders, energy
positivity, bounded timing behaviour).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predictors import (run_speculation, trace_n_predictions,
                                   trace_slice_carries)
from repro.core.speculation import ST2_DESIGN
from repro.sim.config import LaunchConfig
from repro.sim.functional import GridLauncher
from repro.sim.pipeline import compare_baseline_st2


def _build_kernel(ops, loop_body, loop_trips):
    """A kernel from a random op list; returns fn(k, buf, out)."""

    def kernel(k, buf, out):
        i = k.global_id()
        x = i.copy()
        f = k.cvt_f32(i)
        for op in ops:
            if op == "iadd":
                x = k.iadd(x, 3)
            elif op == "isub":
                x = k.isub(x, i)
            elif op == "imin":
                x = k.imin(x, 1000)
            elif op == "fadd":
                f = k.fadd(f, 1.5)
            elif op == "ffma":
                f = k.ffma(f, 0.5, 2.0)
            elif op == "dadd":
                k.dadd(k.cvt_f32(x).astype(np.float64), 0.25)
            elif op == "load":
                x = k.iadd(x, k.ld_global(buf, k.irem(i, 64)))
            elif op == "xor":
                x = k.ixor(x, 0x5A5A)
            elif op == "div":
                with k.where(k.lt(i, 40)):
                    x = k.iadd(x, 7)
            elif op == "shfl":
                x = k.warp_reduce_iadd(x)
        for _t in k.range(loop_trips):
            for op in loop_body:
                if op == "iadd":
                    x = k.iadd(x, 1)
                elif op == "fadd":
                    f = k.fadd(f, 0.125)
                elif op == "load":
                    f = k.fadd(f, k.ld_global(buf, k.irem(x, 64)))
        k.st_global(out, k.irem(i, 64), x)

    return kernel


OPS = st.sampled_from(["iadd", "isub", "imin", "fadd", "ffma", "dadd",
                       "load", "xor", "div", "shfl"])


class TestFuzzedKernels:
    @given(ops=st.lists(OPS, min_size=1, max_size=8),
           loop_body=st.lists(st.sampled_from(["iadd", "fadd", "load"]),
                              max_size=3),
           loop_trips=st.integers(0, 6),
           blocks=st.integers(1, 3),
           seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_full_stack_invariants(self, ops, loop_body, loop_trips,
                                   blocks, seed):
        launcher = GridLauncher(seed=seed)
        rng = np.random.default_rng(seed)
        buf = launcher.buffer("buf", rng.integers(0, 100, 64)
                              .astype(np.int64))
        out = launcher.buffer("out", np.zeros(64, np.int64))
        kernel = _build_kernel(ops, loop_body, loop_trips)
        run = launcher.run(kernel, LaunchConfig(blocks, 64),
                           buf=buf, out=out)

        # trace consistency
        trace = run.trace
        assert len(trace) >= 64 * blocks     # the final store's LEA
        n_preds = trace_n_predictions(trace)
        assert ((n_preds >= 2) & (n_preds <= 7)).all()
        assert set(np.unique(trace.width)) <= {23, 32, 52, 64}
        # operands stay within their declared widths
        for w in np.unique(trace.width):
            lim = np.uint64((1 << int(w)) - 1) if w < 64 \
                else np.uint64(0xFFFFFFFFFFFFFFFF)
            sel = trace.width == w
            assert (trace.op_a[sel] <= lim).all()
            assert (trace.op_b[sel] <= lim).all()

        # the carry ground truth is internally consistent
        carries = trace_slice_carries(trace)
        assert np.array_equal(carries[:, 0].astype(np.uint8), trace.cin)

        # speculation invariants
        res = run_speculation(trace, ST2_DESIGN)
        assert 0.0 <= res.thread_misprediction_rate <= 1.0
        assert (res.recomputed <= 7).all()
        assert (res.recomputed[~res.mispredicted] == 0).all()

        # paired timing: ST2 never beats baseline, overhead bounded
        base, st2 = compare_baseline_st2(run, res.mispredicted)
        assert st2.total_cycles >= base.total_cycles
        assert st2.total_cycles <= base.total_cycles * 1.5

    @given(seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_energy_invariants(self, seed):
        from repro.power.activity import activity_from_run
        from repro.power.model import GPUPowerModel
        from repro.sim.pipeline import simulate_sm

        launcher = GridLauncher(seed=seed)
        rng = np.random.default_rng(seed)
        buf = launcher.buffer("buf", rng.integers(0, 100, 64)
                              .astype(np.int64))
        out = launcher.buffer("out", np.zeros(64, np.int64))
        kernel = _build_kernel(["iadd", "fadd", "load"], ["iadd"], 3)
        run = launcher.run(kernel, LaunchConfig(2, 64), buf=buf,
                           out=out)
        timing = simulate_sm(run.insts, run.launch)
        activity = activity_from_run(run, timing)
        model = GPUPowerModel()
        total = model.total_power_w(activity)
        assert total > 0
        comps = model.component_energy_j(activity)
        assert all(v >= 0 for v in comps.values())
        assert model.total_energy_j(activity) >= sum(comps.values())
