"""The named design-space ladder of Figure 5 and its exploration runner.

``DESIGN_LADDER`` lists, left to right, the configurations the paper
sweeps: static predictions, VaLHALLA (with and without the Peek
retrofit), the shared previous-carry table, progressively more PC index
bits (ModPCk), full thread disambiguation (Gtid — shown to be *worse*,
because it forfeits constructive cross-thread interference), the ST2
choice (Ltid), and the XOR-hash variant shown to add nothing.

``ST2_DESIGN`` is the paper's final pick: ``Ltid+Prev+ModPC4+Peek``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.predictors import SpeculationConfig, run_speculation

STATIC_ONE = SpeculationConfig("staticOne", "static1")
STATIC_ZERO = SpeculationConfig("staticZero", "static0")
CASA = SpeculationConfig("CASA", "operand")
VALHALLA = SpeculationConfig("VaLHALLA", "valhalla")
VALHALLA_PEEK = SpeculationConfig("VaLHALLA+Peek", "valhalla", peek=True)
PREV = SpeculationConfig("Prev", "prev")
PREV_PEEK = SpeculationConfig("Prev+Peek", "prev", peek=True)


def prev_modpc(bits: int, peek: bool = True,
               thread_key: str = "") -> SpeculationConfig:
    """A Prev+ModPCk(+Peek) configuration, optionally thread-indexed."""
    prefix = {"": "", "gtid": "Gtid+", "ltid": "Ltid+"}[thread_key]
    suffix = "+Peek" if peek else ""
    return SpeculationConfig(
        f"{prefix}Prev+ModPC{bits}{suffix}", "prev", peek=peek,
        pc_index="mod", pc_bits=bits, thread_key=thread_key)


GTID_PREV_MODPC4_PEEK = prev_modpc(4, thread_key="gtid")
LTID_PREV_MODPC4_PEEK = prev_modpc(4, thread_key="ltid")
XOR_LTID = SpeculationConfig("Ltid+Prev+XorPC4+Peek", "prev", peek=True,
                             pc_index="xor", pc_bits=4, thread_key="ltid")

#: The ST2 GPU design point (Section IV-B conclusion).
ST2_DESIGN = LTID_PREV_MODPC4_PEEK

#: Figure 5's x-axis, left to right.
DESIGN_LADDER = (
    STATIC_ONE,
    STATIC_ZERO,
    VALHALLA,
    VALHALLA_PEEK,
    PREV_PEEK,
    prev_modpc(1),
    prev_modpc(2),
    prev_modpc(4),
    prev_modpc(8),
    GTID_PREV_MODPC4_PEEK,
    LTID_PREV_MODPC4_PEEK,
    XOR_LTID,
)

#: Figure 3's three correlation configurations.
FIG3_CONFIGS = (
    SpeculationConfig("Prev+Gtid", "prev", thread_key="gtid"),
    SpeculationConfig("Prev+FullPC+Gtid", "prev", pc_index="full",
                      thread_key="gtid"),
    SpeculationConfig("Prev+FullPC+Ltid", "prev", pc_index="full",
                      thread_key="ltid"),
)


def config_by_name(name: str) -> SpeculationConfig:
    """Look up a ladder configuration by its display name."""
    for cfg in DESIGN_LADDER + FIG3_CONFIGS + (CASA, PREV):
        if cfg.name == name:
            return cfg
    raise KeyError(f"unknown speculation config {name!r}")


@dataclass
class DesignSpacePoint:
    """One bar of Figure 5 for one kernel."""

    config: SpeculationConfig
    misprediction_rate: float
    recomputed_per_misprediction: float


def explore(trace, configs=DESIGN_LADDER) -> list:
    """Run the design-space exploration over one kernel trace."""
    points = []
    for cfg in configs:
        result = run_speculation(trace, cfg)
        points.append(DesignSpacePoint(
            config=cfg,
            misprediction_rate=result.thread_misprediction_rate,
            recomputed_per_misprediction=(
                result.recomputed_per_misprediction)))
    return points
