"""Kernel packaging: prepared launches and the suite registry machinery.

Each workload module exposes one or more ``prepare_*`` functions that
build device buffers with realistically-shaped inputs and return a
:class:`PreparedKernel`.  A :class:`KernelSpec` names a kernel the way
the paper's figures do (e.g. ``bprop_K2``) and knows how to prepare it
at a given problem scale.

``scale`` is a linear problem-size multiplier: 1.0 is the default used
by the benchmark harness, tests use ~0.1 for speed.  Scaling changes
trace length but not the *structure* (loop nests, PCs, data flow) the
carry study depends on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher, KernelRun


@dataclass
class PreparedKernel:
    """A kernel function bound to its launch geometry and inputs."""

    name: str
    fn: object
    launch: LaunchConfig
    params: dict
    launcher: GridLauncher

    def run(self) -> KernelRun:
        return self.launcher.run(self.fn, self.launch, name=self.name,
                                 **self.params)


@dataclass(frozen=True)
class KernelSpec:
    """One named kernel of the 23-kernel evaluation suite."""

    name: str          # figure label, e.g. "bprop_K2"
    workload: str      # source application, e.g. "backprop"
    suite: str         # "Rodinia" | "CUDA Samples" | "Parboil"
    prepare: object    # (scale, seed, gpu) -> PreparedKernel
    description: str = ""

    def run(self, scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> KernelRun:
        return self.prepare(scale=scale, seed=seed, gpu=gpu).run()


def scaled(value: int, scale: float, minimum: int = 1,
           multiple: int = 1) -> int:
    """Scale an integer dimension, keeping it a positive multiple."""
    v = max(int(round(value * scale)), minimum)
    if multiple > 1:
        v = max(((v + multiple - 1) // multiple) * multiple, multiple)
    return v


def blocks_for(n_items: int, block_threads: int) -> int:
    """Grid size covering ``n_items`` with one thread per item."""
    return max(1, math.ceil(n_items / block_threads))
