"""The sharded multiprocessing worker pool behind ``st2-serve``.

Work is routed by **trace-key hash**: every evaluation unit of one
distinct (kernel, scale, seed) functional execution lands on the same
worker process, whose task queue is FIFO.  Two properties fall out:

* **capture-exactly-once** — the first unit of a trace captures it
  (into the shared trace store when configured, or the worker's
  in-process memo otherwise); every later unit of the same trace finds
  it warm.  No two workers ever execute the same kernel functionally,
  cluster-wide, without any cross-process locking.
* **locality** (the WaSP scheduling argument) — a worker keeps serving
  traces it has already mapped, so its trace-store handles, evaluation
  plans and page-cache working set stay hot.

The pool is deliberately independent of asyncio: ``submit`` is
synchronous and thread-safe, results come back on a drainer thread via
the ``on_result`` callback.  :mod:`repro.serve.app` bridges that
callback into its event loop with ``call_soon_threadsafe``.

Workers reuse the exact entry points of the offline runner pool
(:func:`repro.runner.pool._init_worker` /
:func:`repro.runner.pool._run_one`), which is what makes served
results bit-identical to ``st2-run``'s.
"""

from __future__ import annotations

import multiprocessing
import threading
import traceback

from repro import obs


def shard_of(trace_key: str, shards: int) -> int:
    """Deterministic shard of one trace key (hex content hash)."""
    return int(trace_key[:12], 16) % shards if shards > 1 else 0


def _worker_main(shard: int, task_q, result_q, store_root,
                 result_keys: bool = True) -> None:
    """One worker process: build models once, then serve eval tasks
    until the ``None`` sentinel.  Every task answer is
    ``(task_id, "ok", result_dict)`` or ``(task_id, "error", trace)``;
    the result dict carries the unit's obs snapshot under the
    transient ``"obs"`` key exactly like the offline pool's workers.
    """
    from repro.runner.pool import _init_worker, _run_one

    _init_worker(store_root, need_models=True)
    result_q.put((None, "ready", shard))
    while True:
        item = task_q.get()
        if item is None:
            break
        task_id, spec, store_key, engine = item
        try:
            _, result = _run_one((0, spec, store_key, engine))
            result_q.put((task_id, "ok", result.to_dict()))
        except Exception:
            result_q.put((task_id, "error", traceback.format_exc()))


class ShardedPool:
    """``shards`` worker processes, one FIFO task queue each, one
    shared result queue drained by a callback thread.

    ``on_result(task_id, ok, payload)`` runs on the drainer thread —
    the caller is responsible for hopping back onto its own loop.
    """

    def __init__(self, shards: int, store_root=None, on_result=None):
        if shards < 1:
            raise ValueError("pool needs at least one shard")
        self.shards = shards
        self.store_root = store_root
        self.on_result = on_result
        ctx_name = "fork" if "fork" in \
            multiprocessing.get_all_start_methods() else "spawn"
        self._ctx = multiprocessing.get_context(ctx_name)
        self._task_qs = [self._ctx.Queue() for _ in range(shards)]
        self._result_q = self._ctx.Queue()
        self._procs = []
        self._drainer = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def start(self, wait_ready: bool = True) -> "ShardedPool":
        """Fork the workers and start the result drainer.  With
        ``wait_ready`` the call blocks until every worker has built
        its models — submissions then never queue behind start-up."""
        self._procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(i, self._task_qs[i], self._result_q,
                      self.store_root),
                daemon=True)
            for i in range(self.shards)]
        for proc in self._procs:
            proc.start()
        ready = 0
        pending = []
        while wait_ready and ready < self.shards:
            task_id, status, payload = self._result_q.get()
            if task_id is None and status == "ready":
                ready += 1
            else:                   # a result raced the ready marks
                pending.append((task_id, status, payload))
        self._drainer = threading.Thread(
            target=self._drain, args=(pending, not wait_ready),
            name="serve-pool-drain", daemon=True)
        self._drainer.start()
        return self

    def close(self, join: bool = True) -> None:
        """Send every worker its sentinel; with ``join``, wait for
        queued tasks to finish and the drainer to observe the
        shutdown marker (so no result is dropped)."""
        if self._closed:
            return
        self._closed = True
        for q in self._task_qs:
            q.put(None)
        if join:
            for proc in self._procs:
                proc.join()
            self._result_q.put((None, "closed", None))
            if self._drainer is not None:
                self._drainer.join()
        else:
            self._result_q.put((None, "closed", None))

    def terminate(self) -> None:
        """Hard stop (drain timeouts, tests): kill workers outright."""
        self._closed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        self._result_q.put((None, "closed", None))
        if self._drainer is not None:
            self._drainer.join(timeout=5)

    # -- work ----------------------------------------------------------

    def submit(self, task_id, spec, trace_key: str,
               store_key=None, engine: str = "auto") -> int:
        """Queue one evaluation unit on its trace's shard; returns the
        shard index chosen."""
        if self._closed:
            raise RuntimeError("pool is closed")
        shard = shard_of(trace_key, self.shards)
        obs.add(f"serve.pool.shard.{shard}.tasks")
        self._task_qs[shard].put((task_id, spec, store_key, engine))
        return shard

    def _drain(self, pending, expect_ready: bool) -> None:
        for item in pending:
            self._dispatch(item)
        while True:
            task_id, status, payload = self._result_q.get()
            if task_id is None:
                if status == "closed":
                    return
                if status == "ready" and expect_ready:
                    continue
                continue
            self._dispatch((task_id, status, payload))

    def _dispatch(self, item) -> None:
        task_id, status, payload = item
        if self.on_result is not None:
            self.on_result(task_id, status == "ok", payload)
