"""Activity vectors: what a kernel *did*, per power-model component.

An :class:`ActivityVector` carries the coarse per-component event counts
the linear power model consumes, a finer per-event-subtype breakdown
(used only by the synthetic silicon, whose true energies differ by
subtype — the model mismatch the calibration study quantifies), the
kernel duration and the number of active SMs.

:func:`activity_from_run` derives all of it from a functional
:class:`~repro.sim.functional.KernelRun` plus its timing result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import FunctionalUnit
from repro.power.components import Component
from repro.sim.config import GPUConfig, TITAN_V

#: fraction of L2 sector accesses that miss to DRAM (fixed first-order
#: cache model; per-kernel locality enters through transaction counts)
L2_MISS_RATIO = 0.45


@dataclass
class ActivityVector:
    """Event counts per component for one kernel execution."""

    name: str
    counts: dict                       # Component -> event count
    fine: dict = field(default_factory=dict)   # subtype -> count
    duration_s: float = 1e-3
    n_active_sms: int = 80
    gpu: GPUConfig = TITAN_V

    @property
    def n_idle_sms(self) -> int:
        return max(self.gpu.n_sms - self.n_active_sms, 0)

    def rate(self, component: Component) -> float:
        """Events per second for a component."""
        return self.counts.get(component, 0.0) / self.duration_s

    def scaled(self, factor: float) -> "ActivityVector":
        """Uniformly scale all event counts (intensity sweeps)."""
        return ActivityVector(
            name=f"{self.name}x{factor:g}",
            counts={c: v * factor for c, v in self.counts.items()},
            fine={k: v * factor for k, v in self.fine.items()},
            duration_s=self.duration_s,
            n_active_sms=self.n_active_sms, gpu=self.gpu)


def activity_from_run(run, timing, gpu: GPUConfig = TITAN_V,
                      name: str = "", full_chip: bool = True,
                      l2_miss_ratio: float = None) -> ActivityVector:
    """Derive the activity vector of a kernel run.

    ``timing`` is the :class:`~repro.sim.pipeline.TimingResult` whose
    makespan defines the kernel duration.

    With ``full_chip`` (the default), the simulated launch — which is a
    scaled-down replica of the paper's full-size workload — is treated
    as representative of every SM: event counts are scaled so that all
    ``gpu.n_sms`` SMs run the same resident-block load over the same
    makespan, matching the evaluation condition of the paper (largest
    available input per workload, chip fully occupied).

    ``l2_miss_ratio`` overrides the fixed first-order default with a
    measured value (e.g. from :func:`repro.sim.cache.l2_miss_ratio_for_run`).
    """
    by_op = run.insts.counts_by_opcode()

    fine = {
        "alu_add": 0.0, "alu_other": 0.0, "fpu_add": 0.0,
        "fpu_other": 0.0, "dpu_add": 0.0, "int_muldiv": 0.0,
        "fp_muldiv": 0.0, "sfu": 0.0, "ld_sectors": 0.0,
        "st_sectors": 0.0, "shared": 0.0, "warp_insts": 0.0,
    }
    counts = {c: 0.0 for c in Component}

    for op, n in by_op.items():
        unit = op.unit
        if unit in (FunctionalUnit.ALU, FunctionalUnit.FPU,
                    FunctionalUnit.DPU):
            counts[Component.ALU_FPU] += n
            if op.is_adder_op:
                if unit is FunctionalUnit.ALU:
                    fine["alu_add"] += n
                elif unit is FunctionalUnit.FPU:
                    fine["fpu_add"] += n
                else:
                    fine["dpu_add"] += n
            elif unit is FunctionalUnit.ALU:
                fine["alu_other"] += n
            else:
                fine["fpu_other"] += n
        elif unit is FunctionalUnit.INT_MUL:
            counts[Component.INT_MULDIV] += n
            fine["int_muldiv"] += n
        elif unit is FunctionalUnit.FP_MUL:
            counts[Component.FP_MULDIV] += n
            fine["fp_muldiv"] += n
        elif unit is FunctionalUnit.SFU:
            counts[Component.SFU] += n
            fine["sfu"] += n

    # register file: 2 operand reads + 1 write per thread-level
    # arithmetic op, 1 read/write per memory op lane
    arith_ops = (counts[Component.ALU_FPU] + counts[Component.INT_MULDIV]
                 + counts[Component.FP_MULDIV] + counts[Component.SFU])
    mem_lanes = run.mem.global_loads + run.mem.global_stores \
        + run.mem.shared_loads + run.mem.shared_stores
    counts[Component.REGFILE] = 3 * arith_ops + 2 * mem_lanes

    # memory hierarchy: L2 sectors from the coalescing model
    ld_tx = run.mem.global_load_transactions
    st_tx = run.mem.global_store_transactions
    miss = L2_MISS_RATIO if l2_miss_ratio is None else l2_miss_ratio
    counts[Component.CACHES_MC] = ld_tx + st_tx
    counts[Component.NOC] = 2 * (ld_tx + st_tx)
    counts[Component.DRAM] = miss * (ld_tx + st_tx)
    fine["ld_sectors"] = ld_tx
    fine["st_sectors"] = st_tx

    # front end / shared memory / scheduling
    warp_insts = len(run.insts)
    shared = run.mem.shared_loads + run.mem.shared_stores
    counts[Component.OTHERS] = warp_insts + 0.1 * shared
    fine["warp_insts"] = warp_insts
    fine["shared"] = shared

    duration = max(timing.duration_s(gpu), 1e-7)
    if full_chip:
        resident = max(1, min(gpu.max_blocks_per_sm,
                              gpu.max_threads_per_sm
                              // run.launch.block_threads))
        parallel = resident * gpu.n_sms
        scale = parallel * timing.waves / run.launch.grid_blocks
        counts = {c: v * scale for c, v in counts.items()}
        fine = {k: v * scale for k, v in fine.items()}
        n_active = gpu.n_sms
    else:
        n_active = min(run.launch.grid_blocks, gpu.n_sms)
    return ActivityVector(name=name or run.name, counts=counts,
                          fine=fine, duration_s=duration,
                          n_active_sms=n_active, gpu=gpu)
