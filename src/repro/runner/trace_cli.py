"""``st2-trace`` — inspect and manage the memory-mapped trace store.

Subcommands::

    st2-trace ls                          # list entries (key, identity, size)
    st2-trace capture --kernels smoke     # stage-1 only: warm the store
    st2-trace verify                      # integrity-check entries (exit 1 on damage)
    st2-trace gc --stale --max-bytes 2e9  # drop dead / oldest entries

The store lives at ``$REPRO_TRACE_DIR`` (default
``~/.cache/repro/traces``) or wherever ``--store`` points; it is the
same store ``st2-run --trace-store`` reads, so ``capture`` followed by
a sweep is the capture-once/evaluate-many workflow from EXPERIMENTS.md.

Exit codes follow the shared contract (:mod:`repro.cli_common`):
0 success, 1 damaged entries found, 2 usage/input errors.  ``ls`` and
``verify`` accept ``--json``.
"""

from __future__ import annotations

import sys

from repro import cli_common
from repro.runner.cache import code_version
from repro.sim.trace_store import TraceStore, trace_key


def build_parser():
    parser = cli_common.build_parser(
        "st2-trace",
        "Manage the content-addressed, memory-mapped kernel trace "
        "store.")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="store root (default: $REPRO_TRACE_DIR "
                             "or ~/.cache/repro/traces)")
    sub = parser.add_subparsers(dest="command", required=True)

    ls = sub.add_parser("ls", help="list store entries")
    cli_common.add_json_flag(ls)

    cap = sub.add_parser("capture",
                         help="functionally execute kernels and "
                              "publish their traces (skipping warm "
                              "entries)")
    cap.add_argument("--kernels", default="all",
                     help="comma-separated kernel names or a group")
    cap.add_argument("--scale", type=float, default=1.0)
    cap.add_argument("--seed", type=int, default=0)
    cap.add_argument("--per-kernel-seeds", action="store_true",
                     help="derive each kernel's seed from (seed, kernel)")
    cap.add_argument("--workers", type=int, default=None,
                     help="capture processes (default: min(4, cores))")

    ver = sub.add_parser("verify",
                         help="integrity-check entries; exit 1 if any "
                              "entry is damaged")
    ver.add_argument("keys", nargs="*",
                     help="keys to check (default: every entry)")
    cli_common.add_json_flag(ver)

    gc = sub.add_parser("gc", help="remove dead store entries")
    gc.add_argument("--stale", action="store_true",
                    help="drop entries captured under a different "
                         "code version (unreachable by any future run)")
    gc.add_argument("--max-bytes", type=float, default=None,
                    help="evict oldest entries until the store fits "
                         "this many bytes")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be removed, remove nothing")
    return parser


def _cmd_ls(store: TraceStore, args) -> int:
    entries = store.entries()
    version = code_version()
    if args.json:
        cli_common.emit_json([
            {"key": key, "kernel": header["kernel"],
             "scale": header.get("scale"), "seed": header.get("seed"),
             "rows": header["n_rows"], "bytes": store.nbytes(key),
             "current": header.get("code_version") == version}
            for key, header in entries])
        return cli_common.EXIT_OK
    if not entries:
        print(f"trace store {store.root}: empty")
        return cli_common.EXIT_OK
    total = 0
    print(f"{'key':<12} {'kernel':<14} {'scale':>6} {'seed':>6} "
          f"{'rows':>10} {'MB':>8}  version")
    for key, header in entries:
        nbytes = store.nbytes(key)
        total += nbytes
        state = "current" if header.get("code_version") == version \
            else "stale"
        print(f"{key[:12]:<12} {header['kernel']:<14} "
              f"{header.get('scale')!s:>6} {header.get('seed')!s:>6} "
              f"{header['n_rows']:>10,} {nbytes / 1e6:>8.1f}  {state}")
    print(f"{len(entries)} entries, {total / 1e6:.1f} MB in "
          f"{store.root}")
    return cli_common.EXIT_OK


def _cmd_capture(store: TraceStore, args) -> int:
    from repro.kernels.suite import resolve_kernels
    from repro.runner.pool import (_capture_one, _map_parallel,
                                   default_workers)
    from repro.runner.units import derive_unit_seed

    try:
        kernels = resolve_kernels(args.kernels)
    except KeyError as exc:
        return cli_common.fail("st2-trace", exc.args[0])
    version = code_version()
    items = []
    for kernel in kernels:
        seed = derive_unit_seed(args.seed, kernel) \
            if args.per_kernel_seeds else args.seed
        key = trace_key(kernel, args.scale, seed, version)
        items.append((key, kernel, args.scale, seed, version))

    workers = args.workers if args.workers is not None \
        else default_workers()
    captured = skipped = 0
    for key, created, wall_s, _snap in _map_parallel(
            _capture_one, items, workers, str(store.root),
            need_models=False):
        header = store.header(key)
        if created:
            captured += 1
            print(f"captured {header['kernel']:<14} "
                  f"{header['n_rows']:>10,} rows in {wall_s:.2f}s "
                  f"-> {key[:12]}")
        else:
            skipped += 1
            print(f"warm     {header['kernel']:<14} "
                  f"{header['n_rows']:>10,} rows  {key[:12]}")
    print(f"{captured} captured, {skipped} already warm, "
          f"store: {store.root}")
    return cli_common.EXIT_OK


def _cmd_verify(store: TraceStore, args) -> int:
    keys = list(args.keys) or store.keys()
    report = []
    bad = 0
    for key in keys:
        if not store.has(key):
            report.append({"key": key, "problems": ["missing"]})
            bad += 1
            continue
        problems = store.verify(key)
        if problems:
            bad += 1
        report.append({"key": key, "problems": problems})
    if args.json:
        cli_common.emit_json({"checked": len(keys), "damaged": bad,
                              "entries": report})
        return cli_common.EXIT_PROBLEMS if bad else cli_common.EXIT_OK
    for entry in report:
        key = entry["key"]
        if entry["problems"] == ["missing"]:
            print(f"{key}: missing")
        elif entry["problems"]:
            for problem in entry["problems"]:
                print(f"{key[:12]}: {problem}")
        else:
            print(f"{key[:12]}: ok "
                  f"({store.header(key)['kernel']})")
    if bad:
        print(f"{bad}/{len(keys)} entries damaged", file=sys.stderr)
        return cli_common.EXIT_PROBLEMS
    print(f"{len(keys)} entries sound")
    return cli_common.EXIT_OK


def _cmd_gc(store: TraceStore, args) -> int:
    if not args.stale and args.max_bytes is None:
        return cli_common.fail(
            "st2-trace gc",
            "nothing to do (pass --stale and/or --max-bytes)")
    removed = store.gc(
        current_version=code_version() if args.stale else None,
        max_bytes=int(args.max_bytes) if args.max_bytes is not None
        else None,
        dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    for key in removed:
        print(f"{verb} {key}")
    remain = len(store) - (len(removed) if args.dry_run else 0)
    print(f"{verb} {len(removed)} entries, {remain} remain")
    return cli_common.EXIT_OK


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    store = TraceStore(args.store)
    if args.command == "ls":
        return _cmd_ls(store, args)
    if args.command == "capture":
        return _cmd_capture(store, args)
    if args.command == "verify":
        return _cmd_verify(store, args)
    if args.command == "gc":
        return _cmd_gc(store, args)
    return cli_common.EXIT_USAGE


def console_main() -> int:
    return cli_common.run_cli(main)


if __name__ == "__main__":
    sys.exit(console_main())
