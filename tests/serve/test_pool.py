"""Shard routing and the worker-pool round trip."""

from __future__ import annotations

import queue

import pytest

from repro.runner.units import build_units, resolve_configs, \
    unit_trace_key
from repro.serve.pool import ShardedPool, shard_of


class TestShardOf:
    def test_deterministic_and_in_range(self):
        keys = [f"{i:040x}" for i in range(64)]
        for shards in (1, 2, 3, 8):
            for key in keys:
                shard = shard_of(key, shards)
                assert 0 <= shard < shards
                assert shard == shard_of(key, shards)

    def test_single_shard_takes_everything(self):
        assert shard_of("ffffffffffff", 1) == 0

    def test_spreads_across_shards(self):
        import hashlib
        keys = [hashlib.sha256(str(i).encode()).hexdigest()
                for i in range(64)]
        hit = {shard_of(k, 4) for k in keys}
        assert hit == {0, 1, 2, 3}

    def test_same_trace_same_shard(self):
        """Units of one functional execution (same kernel/scale/seed,
        different config) share a trace key, hence a shard — the
        capture-exactly-once invariant."""
        units = build_units(["qrng_K2"],
                            configs=resolve_configs(["ladder"]),
                            scale=0.25, aux=False)
        assert len(units) > 1
        shards = {shard_of(unit_trace_key(u, "v0"), 4) for u in units}
        assert len(shards) == 1

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedPool(0)


class TestPoolRoundTrip:
    def test_submit_executes_and_reports(self):
        """One real worker: submit two units of the same trace,
        results come back on the drainer callback with the obs
        snapshot attached."""
        results = queue.Queue()
        pool = ShardedPool(
            1, on_result=lambda tid, ok, payload:
            results.put((tid, ok, payload)))
        pool.start()
        try:
            units = build_units(["qrng_K2"],
                                configs=resolve_configs(["st2"]),
                                scale=0.25, aux=False)
            for i, unit in enumerate(units):
                pool.submit(f"task-{i}", unit,
                            unit_trace_key(unit, "v0"))
            seen = {}
            for _ in units:
                tid, ok, payload = results.get(timeout=120)
                assert ok, payload
                seen[tid] = payload
        finally:
            pool.close()
        assert set(seen) == {f"task-{i}" for i in range(len(units))}
        payload = seen["task-0"]
        assert payload["kernel"] == "qrng_K2"
        assert "metrics" in payload
        assert "obs" in payload     # transient snapshot for the parent
        assert payload["obs"]["counters"]
