"""Parboil *sgemm* — tiled single-precision matrix multiply.

The classic shared-memory tile scheme: each thread owns one element of
the C tile, loads A/B tile elements into shared memory, and runs an FFMA
chain over the K dimension.  FFMA accumulation is the dominant FPU-add
source (matching sgemm's tall FPU-Add bar in Figure 1).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

TILE = 16
BLOCK = TILE * TILE


def sgemm_kernel(k, a, b, c, m, n, kk, alpha, beta, tiles_per_row):
    """C = alpha * A @ B + beta * C, one thread per C element."""
    tx = k.thread_id() % TILE
    ty = k.thread_id() // TILE
    bx = k.block_id % tiles_per_row
    by = k.block_id // tiles_per_row
    row = k.imad(by, TILE, ty)
    col = k.imad(bx, TILE, tx)

    a_tile = k.shared(BLOCK, np.float32)
    b_tile = k.shared(BLOCK, np.float32)
    sidx = k.imad(ty, TILE, tx)

    acc = np.zeros(k.n_threads, dtype=np.float32)
    for t in k.range(kk // TILE):
        a_col = k.imad(t, TILE, tx)
        b_row = k.imad(t, TILE, ty)
        k.st_shared(a_tile, sidx,
                    k.ld_global(a, k.imad(row, kk, a_col)))
        k.st_shared(b_tile, sidx,
                    k.ld_global(b, k.imad(b_row, n, col)))
        k.syncthreads()
        # fully-unrolled inner product with strength-reduced indices,
        # like the compiled inner loop (no per-iteration bookkeeping)
        a_off = k.imul(ty, TILE)
        b_off = tx
        for _i in range(TILE):
            av = k.ld_shared(a_tile, a_off)
            bv = k.ld_shared(b_tile, b_off)
            acc = k.ffma(av, bv, acc)
            a_off = k.iadd(a_off, 1)
            b_off = k.iadd(b_off, TILE)
        k.syncthreads()

    cidx = k.imad(row, n, col)
    old = k.ld_global(c, cidx)
    out = k.ffma(alpha, acc, k.fmul(beta, old))
    k.st_global(c, cidx, out)


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    m = scaled(2, scale, minimum=1) * TILE
    n = scaled(4, scale, minimum=2) * TILE
    kk = scaled(4, scale, minimum=2) * TILE

    a = rng.normal(0.5, 0.4, (m, kk)).astype(np.float32)
    b = rng.normal(0.5, 0.4, (kk, n)).astype(np.float32)
    c = rng.normal(0, 0.1, (m, n)).astype(np.float32)

    tiles_per_row = n // TILE
    grid = (m // TILE) * tiles_per_row
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="sgemm",
        fn=sgemm_kernel,
        launch=LaunchConfig(grid, BLOCK),
        params=dict(
            a=launcher.buffer("A", a.reshape(-1)),
            b=launcher.buffer("B", b.reshape(-1)),
            c=launcher.buffer("C", c.reshape(-1)),
            m=m, n=n, kk=kk, alpha=np.float32(1.0),
            beta=np.float32(0.5), tiles_per_row=tiles_per_row),
        launcher=launcher)
