"""Ablations around the ST2 design point (DESIGN.md design-choice
studies).

These quantify the paper's qualitative arguments:

* deeper history buys nothing (the paper stops at Prev = depth 1);
* CRF write-port contention with random arbitration costs little even
  under worst-case retirement adjacency (Section IV-B's argument);
* wider slices mispredict less but waste voltage headroom — together
  with the circuit sweep this pins the 8-bit choice from both sides.
"""


from _bench_utils import save_artifact
from repro.analysis.ascii_charts import table
from repro.st2.ablations import (contention_sweep, history_depth_sweep,
                                 slice_width_speculation_sweep)

KERNELS = ("pathfinder", "dwt2d_K1", "kmeans_K1", "msort_K1", "sad_K1")


def _run_all(suite_runs):
    depth, width, contention = {}, {}, {}
    for name in KERNELS:
        trace = suite_runs[name].trace
        depth[name] = history_depth_sweep(trace)
        width[name] = slice_width_speculation_sweep(trace)
        contention[name] = contention_sweep(trace)
    return depth, width, contention


def test_ablations(benchmark, suite_runs, artifact_dir):
    depth, width, contention = benchmark.pedantic(
        _run_all, args=(suite_runs,), rounds=1, iterations=1)

    depth_rows = []
    for name in KERNELS:
        depth_rows.append(
            (name, *[f"{p.misprediction_rate:.1%}"
                     for p in depth[name]]))
    txt = table("history-depth ablation (misprediction rate)",
                ["kernel", "depth 1 (ST2)", "depth 2", "depth 3",
                 "depth 4"], depth_rows)

    width_rows = []
    for name in KERNELS:
        width_rows.append(
            (name, *[f"{p.misprediction_rate:.1%}"
                     for p in width[name]]))
    txt += "\n\n" + table(
        "slice-width ablation (misprediction rate; energy favours "
        "narrow, prediction favours wide — 8b balances)",
        ["kernel", "4-bit slices", "8-bit (ST2)", "16-bit"], width_rows)

    cont_rows = [(name,
                  f"{contention[name].ideal_rate:.1%}",
                  f"{contention[name].contended_rate:.1%}",
                  f"{contention[name].rate_penalty:+.1%}",
                  f"{contention[name].updates_dropped_fraction:.0%}")
                 for name in KERNELS]
    txt += "\n\n" + table(
        "CRF write-contention ablation (random arbitration, worst-case "
        "retirement adjacency)",
        ["kernel", "ideal", "contended", "penalty", "updates dropped"],
        cont_rows)
    save_artifact(artifact_dir, "ablations.txt", txt)

    # depth-1 is within noise of the best depth (paper's choice)
    for name in KERNELS:
        rates = [p.misprediction_rate for p in depth[name]]
        assert rates[0] <= min(rates) + 0.02, name
    # wider slices always mispredict less (fewer boundaries)
    for name in KERNELS:
        r = [p.misprediction_rate for p in width[name]]
        assert r[0] >= r[1] >= r[2] - 0.01, name
    # contention penalty stays small even with most updates dropped
    for name in KERNELS:
        assert contention[name].rate_penalty < 0.05, name
        assert contention[name].contended_rate < 0.45, name
