"""The typed RunResult view (dict-style shim removed)."""

from __future__ import annotations

import math

import pytest

from repro.st2.results import RunMetrics, RunResult, as_run_result

RAW = {
    "kernel": "qrng_K2",
    "scale": 1.0,
    "seed": 0,
    "config": "Ltid+Prev+ModPC4+Peek",
    "config_fields": {"history": "Prev"},
    "wall_time_s": 0.5,
    "capture_time_s": 0.1,
    "eval_time_s": 0.4,
    "trace_cache_hit": False,
    "trace_rows": 1234,
    "trace_bytes": 98720,
    "n_static_pcs": 17,
    "metrics": {
        "misprediction_rate": 0.009,
        "recomputed_per_misprediction": 1.6,
        "slowdown": 0.003,
        "baseline_cycles": 1000,
        "st2_cycles": 1003,
        "system_saving": 0.19,
        "chip_saving": 0.21,
        "alu_fpu_share": 0.27,
        "arithmetic_intensive": True,
    },
    "energy_stacks": {"baseline": {"alu": 0.2}, "st2": {"alu": 0.1}},
}


@pytest.fixture
def result():
    return RunResult(dict(RAW))


class TestTypedAccess:
    def test_identity_and_label(self, result):
        assert result.kernel == "qrng_K2"
        assert result.config == "Ltid+Prev+ModPC4+Peek"
        assert result.label == "qrng_K2[Ltid+Prev+ModPC4+Peek]"

    def test_timings_and_trace_shape(self, result):
        assert result.wall_time_s == 0.5
        assert result.capture_time_s == 0.1
        assert result.eval_time_s == 0.4
        assert result.trace_cache_hit is False
        assert result.trace_rows == 1234

    def test_metrics_view_is_typed(self, result):
        met = result.metrics
        assert isinstance(met, RunMetrics)
        assert met.slowdown == 0.003
        assert met.arithmetic_intensive is True
        # convenience pass-throughs agree with the nested view
        assert result.slowdown == met.slowdown
        assert result.misprediction_rate == met.misprediction_rate

    def test_optional_fields_default(self, result):
        assert result.cached is False      # runner sets it on hits
        assert result.key == ""
        assert result.aux == {}

    def test_metrics_from_dict_ignores_unknown_keys(self):
        met = RunMetrics.from_dict({"slowdown": 0.1, "bogus": 3})
        assert met.slowdown == 0.1
        assert math.isnan(met.misprediction_rate)


class TestSerialisation:
    def test_to_dict_is_the_raw_payload(self):
        raw = dict(RAW)
        assert RunResult(raw).to_dict() is raw

    def test_wrapping_is_idempotent(self, result):
        rewrapped = RunResult(result)
        assert rewrapped.to_dict() is result.to_dict()
        assert as_run_result(result) is result
        assert as_run_result(dict(RAW)).kernel == "qrng_K2"

    def test_repr_elides_payload(self, result):
        assert "trace_bytes" not in repr(result)


class TestShimRemoved:
    """The dict-style deprecation shim is gone: RunResult is not a
    mapping, and pretending otherwise fails loudly instead of
    warning."""

    def test_getitem_rejected(self, result):
        with pytest.raises(TypeError):
            result["kernel"]

    def test_contains_rejected(self, result):
        with pytest.raises(TypeError):
            "kernel" in result

    def test_get_rejected(self, result):
        with pytest.raises(AttributeError):
            result.get("missing", 42)

    def test_iteration_and_views_rejected(self, result):
        with pytest.raises(TypeError):
            iter(result)
        for name in ("keys", "values", "items"):
            with pytest.raises(AttributeError):
                getattr(result, name)

    def test_star_star_expansion_rejected(self, result):
        with pytest.raises(TypeError):
            dict(**result)
        assert {**result.to_dict()} == RAW      # the supported spelling

    def test_typed_access_is_silent(self, result, recwarn):
        result.kernel
        result.metrics.slowdown
        result.to_dict()
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]


class TestRunnerCompat:
    def test_results_equal_accepts_views(self, result):
        from repro.runner.units import results_equal
        assert results_equal(result, RunResult(dict(RAW)))
        changed = dict(RAW, metrics=dict(RAW["metrics"], slowdown=0.9))
        assert not results_equal(result, RunResult(changed))
