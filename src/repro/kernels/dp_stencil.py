"""Extension workload: a double-precision Jacobi stencil.

None of the paper's 23 figure kernels is FP64-heavy, but ST2 GPU
explicitly covers the DPUs' 52-bit mantissa adders (7 slices, 12 state
DFF bits — Sections IV-C and VI). This kernel exercises that path: a
classic 5-point Jacobi relaxation in double precision, the core of the
HPC codes the paper's introduction motivates.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128


def jacobi_kernel(k, grid_in, grid_out, rows, cols):
    """One FP64 Jacobi sweep: out = 0.25*(N+S+E+W) via DADD/DFMA."""
    idx = k.global_id()
    n_pix = rows * cols
    row = k.idiv(idx, cols)
    col = k.irem(idx, cols)
    interior = (np.asarray(row) > 0) & (np.asarray(row) < rows - 1) \
        & (np.asarray(col) > 0) & (np.asarray(col) < cols - 1) \
        & (np.asarray(idx) < n_pix)
    with k.where(interior):
        north = k.ld_global(grid_in, k.isub(idx, cols))
        south = k.ld_global(grid_in, k.iadd(idx, cols))
        west = k.ld_global(grid_in, k.isub(idx, 1))
        east = k.ld_global(grid_in, k.iadd(idx, 1))
        total = k.dadd(k.dadd(north, south), k.dadd(west, east))
        k.st_global(grid_out, idx, k.dmul(total, 0.25))


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    """A smooth potential field with fixed hot/cold boundaries."""
    rng = np.random.default_rng(seed)
    rows = scaled(48, scale, minimum=8)
    cols = scaled(64, scale, minimum=16)
    yy, xx = np.indices((rows, cols))
    field = (100.0 * np.exp(-((xx - cols / 2) ** 2
                              + (yy - rows / 2) ** 2)
                            / (rows * cols / 8))
             + rng.normal(0, 0.5, (rows, cols)))
    grid = field.astype(np.float64).reshape(-1)

    n_pix = rows * cols
    launcher = GridLauncher(gpu=gpu, seed=seed)
    blocks = max(1, (n_pix + BLOCK - 1) // BLOCK)
    return PreparedKernel(
        name="jacobiDP",
        fn=jacobi_kernel,
        launch=LaunchConfig(blocks, BLOCK),
        params=dict(
            grid_in=launcher.buffer("grid_in", grid),
            grid_out=launcher.buffer("grid_out", grid.copy()),
            rows=rows, cols=cols),
        launcher=launcher)
