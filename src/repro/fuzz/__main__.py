"""``python -m repro.fuzz`` — the ``st2-fuzz`` console tool."""

from repro.fuzz.cli import console_main

if __name__ == "__main__":
    console_main()
