"""Statistics helpers and ASCII chart rendering."""

import numpy as np
import pytest

from repro.analysis.ascii_charts import (grouped_bars, hbar_chart, scatter,
                                         stacked_pair, table)
from repro.analysis.stats import (geometric_mean, mean_ci95, nanmean,
                                  pearson_r)


class TestStats:
    def test_mean_ci95(self):
        mean, ci = mean_ci95([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert ci == pytest.approx(1.96 * 1.0 / np.sqrt(3))

    def test_mean_ci95_skips_nan(self):
        mean, __ = mean_ci95([1.0, np.nan, 3.0])
        assert mean == pytest.approx(2.0)

    def test_mean_ci95_degenerate(self):
        assert mean_ci95([5.0]) == (5.0, 0.0)
        assert np.isnan(mean_ci95([])[0])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_pearson_r_perfect(self):
        assert pearson_r([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            pearson_r([1], [2])

    def test_nanmean(self):
        assert nanmean([1.0, np.nan, 3.0]) == pytest.approx(2.0)


class TestCharts:
    def test_hbar_renders_all_rows(self):
        out = hbar_chart("T", ["a", "bb"], [0.5, 1.0])
        assert "a" in out and "bb" in out
        assert out.count("|") == 4
        assert "100.0%" in out

    def test_hbar_handles_nan(self):
        out = hbar_chart("T", ["x"], [float("nan")])
        assert "n/a" in out

    def test_grouped_bars(self):
        out = grouped_bars("G", ["k1"], {"s1": [0.5], "s2": [1.0]})
        assert "s1" in out and "s2" in out

    def test_stacked_pair_legend(self):
        base = [{"A": 0.6, "B": 0.4}]
        st2 = [{"A": 0.3, "B": 0.4}]
        out = stacked_pair("F7", ["k"], base, st2, ["A", "B"])
        assert "legend" in out
        assert "base" in out and "ST2" in out

    def test_scatter_contains_points_and_guide(self):
        out = scatter("V", [1, 2, 3], [1.1, 2.2, 2.9])
        assert "o" in out and "." in out

    def test_table_alignment(self):
        out = table("T", ["name", "val"], [("x", 1.5)],
                    ["{}", "{:.2f}"])
        assert "1.50" in out
        assert "name" in out
