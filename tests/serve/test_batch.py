"""Batch submission (``POST /v1/jobs:batch``) and cursor pagination
(``GET /v1/jobs``, ``GET /v1/jobs/<id>/result``) over real HTTP —
the PR 9 additions; the single-job routes are covered by
test_server.py and must behave exactly as before."""

from __future__ import annotations

import pytest

from repro.api import JobSpec
from repro.serve.client import ServeClient, ServeError
from tests.serve.conftest import GRID_CONFIGS, GRID_KERNELS, GRID_SCALE


def one_config_spec(config, client="batch"):
    return JobSpec(kernels=GRID_KERNELS, configs=(config,),
                   scale=GRID_SCALE, seed=0, aux=False, client=client)


@pytest.fixture(scope="module")
def batch(server):
    """One batch of single-config jobs, submitted atomically and run
    to completion — shared by the pagination tests."""
    with ServeClient(server.address, client="batch") as sc:
        statuses = sc.submit_batch(
            [one_config_spec(c) for c in GRID_CONFIGS])
        finals = [sc.wait(s.job_id, timeout=120) for s in statuses]
        return statuses, finals


class TestBatchSubmit:
    def test_all_admitted_in_order(self, batch):
        statuses, finals = batch
        assert len(statuses) == len(GRID_CONFIGS)
        assert len({s.job_id for s in statuses}) == len(statuses)
        assert all(f.state == "done" for f in finals)
        # submission order is preserved: listing seq grows with index
        assert [f.units_total for f in finals] \
            == [len(GRID_KERNELS)] * len(GRID_CONFIGS)

    def test_batch_counter_ticks(self, server):
        with ServeClient(server.address) as sc:
            counters = sc.stats().get("counters", {})
        assert counters.get("serve.jobs.batches", 0) >= 1

    def test_results_match_single_submission(self, server, batch):
        """A batch-submitted job's result is indistinguishable from a
        singly-submitted one (same cache keys, so fully coalesced or
        cached)."""
        statuses, _ = batch
        with ServeClient(server.address, client="batch") as sc:
            single = sc.submit(one_config_spec(GRID_CONFIGS[0]))
            sc.wait(single.job_id, timeout=120)
            a = sc.result(statuses[0].job_id)
            b = sc.result(single.job_id)
        key = lambda u: (u["kernel"], u["config"])  # noqa: E731
        assert sorted(map(key, a.units)) == sorted(map(key, b.units))

    def test_malformed_entry_is_400_with_position(self, server):
        with ServeClient(server.address, client="batch") as sc:
            good = one_config_spec(GRID_CONFIGS[0]).to_wire()
            with pytest.raises(ServeError) as exc:
                sc._request("POST", "/v1/jobs:batch", payload={
                    "schema_version": 1,
                    "jobs": [good, {"kernels": ["warp_drive"]}]})
        assert exc.value.status == 400
        assert "batch job [1]" in str(exc.value)

    def test_empty_batch_is_400(self, server):
        with ServeClient(server.address) as sc:
            with pytest.raises(ServeError) as exc:
                sc._request("POST", "/v1/jobs:batch",
                            payload={"schema_version": 1, "jobs": []})
        assert exc.value.status == 400

    def test_future_schema_is_400(self, server):
        with ServeClient(server.address) as sc:
            with pytest.raises(ServeError) as exc:
                sc._request("POST", "/v1/jobs:batch", payload={
                    "schema_version": 99,
                    "jobs": [one_config_spec(
                        GRID_CONFIGS[0]).to_wire()]})
        assert exc.value.status == 400


class TestBatchAtomicity:
    def test_oversized_batch_admits_nothing(self, reject_server):
        """client_quota=4 on the reject server: a batch of two 3-unit
        jobs must be rejected whole — no partial admission."""
        with ServeClient(reject_server.address, client="atomic") as sc:
            before = sc.stats()["state"]["jobs"]
            spec = JobSpec(kernels=("qrng_K2", "sortNets_K2",
                                    "binomial"),
                           configs=("st2",), scale=GRID_SCALE,
                           aux=False)
            with pytest.raises(ServeError) as exc:
                sc.submit_batch([spec, spec])
            assert exc.value.status == 429
            assert exc.value.code == "quota_exhausted"
            assert sc.stats()["state"]["jobs"] == before


class TestJobListingPagination:
    def test_pages_cover_the_listing_exactly(self, server, batch):
        with ServeClient(server.address) as sc:
            everything = sc.jobs()
            paged = list(sc.iter_jobs(page_size=2))
        assert [s.job_id for s in paged] \
            == [s.job_id for s in everything]

    def test_limit_slices_and_hands_back_a_cursor(self, server,
                                                  batch):
        with ServeClient(server.address) as sc:
            page, cursor = sc.jobs_page(limit=1)
            assert len(page) == 1
            assert cursor is not None
            rest, _ = sc.jobs_page(cursor=cursor, limit=1000)
        assert page[0].job_id not in {s.job_id for s in rest}

    def test_unpaginated_listing_has_no_cursor_riders(self, server,
                                                      batch):
        """The pre-PR9 shape survives: no limit means the whole
        listing and a null cursor."""
        with ServeClient(server.address) as sc:
            doc = sc._request("GET", "/v1/jobs")
        assert doc["next_cursor"] is None
        assert len(doc["jobs"]) >= len(GRID_CONFIGS)

    def test_client_filter_composes_with_pagination(self, server,
                                                    batch):
        with ServeClient(server.address) as sc:
            mine = list(sc.iter_jobs(client="batch", page_size=1))
        assert mine
        assert all(s.client == "batch" for s in mine)

    def test_bad_cursor_is_400(self, server):
        with ServeClient(server.address) as sc:
            with pytest.raises(ServeError) as exc:
                sc._request("GET", "/v1/jobs?cursor=zap")
        assert exc.value.status == 400
        with ServeClient(server.address) as sc:
            with pytest.raises(ServeError) as exc:
                sc._request("GET", "/v1/jobs?limit=0")
        assert exc.value.status == 400


class TestResultPagination:
    def test_pages_reassemble_the_full_result(self, server, batch):
        statuses, _ = batch
        job_id = statuses[0].job_id
        with ServeClient(server.address) as sc:
            full = sc.result(job_id)
            units = list(sc.iter_results(job_id, page_size=1))
        assert [u["kernel"] for u in units] \
            == [u["kernel"] for u in full.units]

    def test_page_carries_totals(self, server, batch):
        statuses, _ = batch
        job_id = statuses[0].job_id
        with ServeClient(server.address) as sc:
            doc = sc._request(
                "GET", f"/v1/jobs/{job_id}/result?limit=1")
        assert len(doc["units"]) == 1
        assert doc["units_total"] == len(GRID_KERNELS)
        assert doc["next_cursor"] is not None

    def test_unpaginated_result_unchanged(self, server, batch):
        statuses, _ = batch
        with ServeClient(server.address) as sc:
            doc = sc._request(
                "GET", f"/v1/jobs/{statuses[0].job_id}/result")
        assert "next_cursor" not in doc
        assert "units_total" not in doc
        assert len(doc["units"]) == len(GRID_KERNELS)

    def test_bad_result_cursor_is_400(self, server, batch):
        statuses, _ = batch
        with ServeClient(server.address) as sc:
            with pytest.raises(ServeError) as exc:
                sc._request(
                    "GET",
                    f"/v1/jobs/{statuses[0].job_id}/result?limit=-1")
        assert exc.value.status == 400
