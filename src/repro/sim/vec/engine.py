"""The vectorized (trace × config) evaluation engine.

:func:`evaluate_unit` produces the same
:class:`~repro.st2.architecture.KernelEvaluation` and the same
static-peek ablation row as the interpreter path
(``evaluate_run`` + ``static_peek_ablation``), from one batched pass:

* the prediction is computed **once** per (trace, config) — the
  interpreter computes it three times (main run, ablation base,
  ablation static) — and the static-fact overlay is a masked copy;
* the ST2-adder outcome comes from the padded generate/propagate
  tables of the trace plan instead of a per-width adder loop;
* the timing pair replays a pre-resolved schedule
  (:mod:`repro.sim.vec.timing`).

**Counter parity.**  The engine emits exactly the ``repro.obs``
counter totals the interpreter would: prediction and adder counters
are scaled by the number of times the interpreter repeats the
identical computation (3× — and the adder misprediction counters add
two dynamic evaluations plus one static one), so a grid run under
either engine produces an identical ``counters`` snapshot.  That
equality is asserted by the ``vec-equivalence`` CI job.

:func:`supported` is the dispatch guard: it names the reason a run
cannot take the vectorized path (the ``auto`` engine then falls back
to the interpreter), or returns ``None`` when it can.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.batch import (evaluate_trace_batch, predict_trace_batch)
from repro.core.predictors import (SpeculationConfig, SpeculationResult)
from repro.sim.vec.plan import (PLAN_CACHE_SIZE, PlanKey, TracePlan,
                                _SUPPORTED, plan_for)
from repro.sim.vec.timing import plan_miss_frac, run_pair

#: interpreter repetitions of the identical prediction/evaluation per
#: unit: the main run plus the static-peek ablation's base and static
#: passes (the static pass re-runs prediction before overlaying facts)
_INTERP_REPEATS = 3

#: field limits of the warp-instruction key packing
#: ``(block << 44) + (seq << 20) + warp`` used by the timing model
_MAX_WARP = 1 << 20
_MAX_SEQ = 1 << 24
_MAX_BLOCK = 1 << 19


class VecUnsupportedError(ValueError):
    """A run cannot take the vectorized path but ``--engine vec``
    demanded it."""


def supported(run: Any,
              key: Optional[PlanKey] = None) -> Optional[str]:
    """Why ``run`` cannot take the vectorized path (None when it can).

    The guards mirror the packed-integer assumptions of the batched
    kernels: adder widths within the canonical 1–64-bit geometry
    range, opcode ids that resolve, and block/seq/warp ids that fit
    the warp-instruction key fields.

    ``key`` is the unit's ``(kernel, scale, seed)`` plan key; with one,
    the verdict is memoised so a grid scans each trace once instead of
    once per config.
    """
    if key is not None and key in _SUPPORTED:
        return _SUPPORTED[key]
    reason = _scan(run)
    if key is not None:
        _SUPPORTED[key] = reason
        while len(_SUPPORTED) > PLAN_CACHE_SIZE:
            _SUPPORTED.pop(next(iter(_SUPPORTED)))
    return reason


def _scan(run: Any) -> Optional[str]:
    """The column scans behind :func:`supported`."""
    from repro.sim.trace import _OPCODES

    trace = run.trace
    if len(trace) == 0:
        return "empty adder trace"
    width = np.asarray(trace.width)
    lo, hi = int(width.min()), int(width.max())
    if lo < 1 or hi > 64:
        return f"adder width {lo if lo < 1 else hi} outside [1, 64]"
    opc = np.asarray(run.insts.opcode)
    if len(opc) and (int(opc.min()) < 0
                     or int(opc.max()) >= len(_OPCODES)):
        return "unresolvable opcode id in instruction stream"
    for name, arrs, limit in (
            ("warp", (trace.warp, run.insts.warp), _MAX_WARP),
            ("seq", (trace.seq, run.insts.seq), _MAX_SEQ),
            ("block", (trace.block, run.insts.block), _MAX_BLOCK)):
        for arr in arrs:
            a = np.asarray(arr)
            if len(a) and (int(a.min()) < 0 or int(a.max()) >= limit):
                return (f"{name} id outside the packed key range "
                        f"[0, {limit})")
    return None


def evaluate_unit(run: Any, config: SpeculationConfig, facts: Any,
                  model: Any, adder_model: Any,
                  plan_key: Optional[PlanKey] = None
                  ) -> Tuple[Any, Dict[str, Any]]:
    """One (trace × config) unit, vectorized end to end.

    Returns ``(KernelEvaluation, static_peek_metrics)`` — numerically
    identical to ``evaluate_run(...)`` plus the
    ``static_peek_ablation`` row, with matching obs counter totals.
    """
    from repro.power.activity import activity_from_run
    from repro.st2.architecture import KernelEvaluation
    from repro.st2.energy import (EnergyComparison, baseline_breakdown,
                                  st2_breakdown)

    plan: TracePlan = plan_for(run, plan_key)
    pack = plan.pack
    n = pack.n_rows
    trace = run.trace

    with obs.timer("core.predict"):
        pred = predict_trace_batch(trace, config, pack)
    static_known, static_value = plan.static_peek(trace, facts)

    with obs.timer("core.evaluate"):
        mis, rec, wrong = evaluate_trace_batch(pack, pred.bits)
        # the static pass re-evaluates only rows the fact overlay
        # actually changes on a *valid* boundary: a bit that differs
        # only past a row's last boundary cannot reach any output
        # (every consumer is masked with pred_valid, and validity is a
        # per-row prefix, so assumed carries feeding valid slices are
        # themselves valid)
        changed = (static_known & (static_value != pred.bits)
                   & pack.pred_valid).any(axis=1)
        rows = np.nonzero(changed)[0]
        mis_s, rec_s, wrong_s = mis, rec, wrong
        if rows.size:
            static_bits = np.where(static_known[rows],
                                   static_value[rows], pred.bits[rows])
            sub_m, sub_r, sub_w = evaluate_trace_batch(pack.rows(rows),
                                                       static_bits)
            mis_s, rec_s, wrong_s = (mis.copy(), rec.copy(),
                                     wrong.copy())
            mis_s[rows] = sub_m
            rec_s[rows] = sub_r
            wrong_s[rows] = sub_w

    # counter parity with the interpreter (see module docstring): the
    # dynamic prediction/evaluation happens 3× there, the static
    # evaluation once
    lookups = pack.history_lookups
    obs.add("core.predict.ops", _INTERP_REPEATS * n)
    obs.add("core.predict.history_lookups", _INTERP_REPEATS * lookups)
    obs.add("core.predict.history_hits",
            _INTERP_REPEATS * int(pred.has_prev.sum()))
    obs.add("core.predict.peek_static",
            _INTERP_REPEATS * int(pred.peek_known.sum()))
    obs.add("predictor.static_peek_hits", int(static_known.sum()))
    m, r, wb = int(mis.sum()), int(rec.sum()), int(wrong.sum())
    m_s, r_s, wb_s = (int(mis_s.sum()), int(rec_s.sum()),
                      int(wrong_s.sum()))
    obs.add("core.adder.ops", _INTERP_REPEATS * n)
    obs.add("core.adder.mispredicts", 2 * m + m_s)
    obs.add("core.adder.recomputed_slices", 2 * r + r_s)
    obs.add("core.adder.wrong_bits", 2 * wb + wb_s)

    speculation = SpeculationResult(config=config, n_ops=n,
                                    mispredicted=mis, recomputed=rec,
                                    wrong_bits=wrong)

    with obs.timer("sim.timing.pair"):
        base_t, st2_t = run_pair(plan.timing,
                                 plan_miss_frac(plan.timing, mis))
    obs.add("sim.timing.warp_insts", base_t.instructions)
    obs.add("sim.timing.stall_cycles_fu", base_t.stall_cycles_fu)
    obs.add("sim.timing.recompute_insts", st2_t.extra_recompute_insts)

    activity = activity_from_run(run, base_t, name=run.name)
    baseline = baseline_breakdown(model, activity)
    duration_scale = st2_t.total_cycles / max(base_t.total_cycles, 1)
    st2 = st2_breakdown(model, activity, speculation, adder_model,
                        duration_scale=duration_scale)
    evaluation = KernelEvaluation(
        name=run.name, speculation=speculation,
        timing_baseline=base_t, timing_st2=st2_t,
        energy=EnergyComparison(name=run.name, baseline=baseline,
                                st2=st2))

    return evaluation, _static_peek_row(
        pack, pred.peek_known, static_known, facts, mis, mis_s, n)


def _static_peek_row(pack: Any, dyn_resolved: np.ndarray,
                     static_known: np.ndarray, facts: Any,
                     mis: np.ndarray, mis_s: np.ndarray,
                     n: int) -> Dict[str, Any]:
    """The ``metrics.static_peek`` dict — field for field what
    ``_static_peek_metrics`` derives from ``static_peek_ablation``."""
    fact_bits = 0
    for fact in (facts or {}).values():
        carries = (fact["carries"] if isinstance(fact, dict)
                   else fact.carries)
        fact_bits += len(carries)
    valid = pack.pred_valid
    events_base = int((valid & ~dyn_resolved).sum())
    events_static = int((valid & ~(dyn_resolved | static_known)).sum())
    return {
        "fact_labels": len(facts or {}),
        "fact_bits": fact_bits,
        "static_bits": int(static_known.sum()),
        "new_static_bits": int((static_known & ~pack.peek_known).sum()),
        "dynamic_events_base": events_base,
        "dynamic_events_static": events_static,
        "events_reduced": events_base - events_static,
        "misprediction_rate_base":
            float(mis.mean()) if n else 0.0,
        "misprediction_rate_static":
            float(mis_s.mean()) if n else 0.0,
    }
