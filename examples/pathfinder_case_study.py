#!/usr/bin/env python
"""The paper's Figure 2 case study: spatio-temporal value correlation
in the pathfinder hot loop.

Reproduces Section III's observation on the real kernel: values at one
PC evolve gradually within a narrow magnitude band, values across PCs
differ wildly — and that translates directly into predictable per-slice
carries.

Run:  python examples/pathfinder_case_study.py
"""

import numpy as np

from repro.analysis.ascii_charts import hbar_chart, table
from repro.core.correlation import (slice_carry_correlation,
                                    value_evolution)
from repro.kernels import pathfinder


def main() -> None:
    run = pathfinder.prepare(scale=1.0, seed=0).run()
    print(f"pathfinder executed: {len(run.trace):,} additions across "
          f"{run.n_static_pcs} static PCs\n")

    # -- Figure 2: per-PC value bands ------------------------------------
    series = value_evolution(run.trace, max_pcs=7)
    rows = []
    for s in series:
        lo, hi = s.magnitude_band
        rows.append((f"PC{s.pc}", s.label,
                     f"{np.min(s.values):.0f}..{np.max(s.values):.0f}",
                     f"{lo:.0f}..{hi:.0f}",
                     f"{np.mean(s.chain_lengths):.1f}"))
    print(table("hot-loop additions (compare the paper's Figure 2)",
                ["pc", "call site", "value range", "|v| p10..p90",
                 "avg carry chain"], rows))

    # a small sample of each PC's value series, in logical time
    print("\nvalue evolution (first 8 executions of each PC):")
    for s in series[:4]:
        sample = ", ".join(f"{v:.0f}" for v in s.values[:8])
        print(f"  PC{s.pc:<3d} {s.label:28s} {sample}")

    # -- how correlation turns into carry predictability -----------------
    summary = slice_carry_correlation(run.trace, "pathfinder")
    print("\n" + hbar_chart(
        "slice carry-in match rate (the paper's Figure 3 keys)",
        list(summary.match_rates), list(summary.match_rates.values()),
        vmax=1.0))
    print("\ntakeaway: indexing history by PC (spatial axis) recovers "
          "the correlation\nthe purely temporal Prev+Gtid key misses.")


if __name__ == "__main__":
    main()
