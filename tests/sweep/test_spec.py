"""SweepSpec wire behaviour and the compositional-name round trip the
grid machinery depends on."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (SCHEMA_VERSION, SWEEP_AXES, SweepSpec,
                       WireError)
from repro.core.speculation import config_name, parse_config_name


def small_spec(**overrides):
    base = dict(name="t", kernels=("qrng_K2",),
                axes=(("mechanism", ("static1", "operand")),
                      ("peek", (False, True))))
    base.update(overrides)
    return SweepSpec(**base)


class TestSpecValidation:
    def test_wire_round_trip(self):
        spec = small_spec(scale=0.5, seed=7, engine="vec", aux=True)
        clone = SweepSpec.from_wire(spec.to_wire())
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_future_schema_rejected(self):
        doc = small_spec().to_wire()
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(WireError, match="schema"):
            SweepSpec.from_wire(doc)

    def test_unknown_fields_ignored(self):
        doc = small_spec().to_wire()
        doc["totally_new_rider"] = {"x": 1}
        assert SweepSpec.from_wire(doc) == small_spec()

    def test_unknown_axis_rejected(self):
        with pytest.raises(WireError, match="unknown axis"):
            small_spec(axes=(("warp_size", (16, 32)),))

    def test_repeated_axis_rejected(self):
        with pytest.raises(WireError, match="repeats"):
            small_spec(axes=(("peek", (False,)), ("peek", (True,))))

    def test_out_of_domain_value_rejected(self):
        with pytest.raises(WireError):
            small_spec(axes=(("mechanism", ("psychic",)),))

    def test_negative_pc_bits_rejected(self):
        with pytest.raises(WireError):
            small_spec(axes=(("pc_bits", (-1,)),))

    def test_empty_axes_rejected(self):
        with pytest.raises(WireError):
            small_spec(axes=())

    def test_grid_size(self):
        spec = small_spec(axes=(("mechanism", ("prev", "static1")),
                                ("pc_index", ("none", "mod")),
                                ("pc_bits", (0, 4))))
        assert spec.grid_size == 8

    def test_invalid_combos_dropped_at_expansion(self):
        """mod-PC indexing with pc_bits=0 is invalid — it is dropped
        by configs(), not rejected at spec construction."""
        spec = small_spec(axes=(("mechanism", ("prev",)),
                                ("pc_index", ("mod",)),
                                ("pc_bits", (0, 4))))
        assert spec.grid_size == 2
        assert [c.name for c in spec.configs()] == ["Prev+ModPC4"]

    def test_job_spec_carries_grid_settings(self):
        spec = small_spec(scale=0.5, seed=9, engine="vec")
        job = spec.job_spec(configs=("staticOne",))
        assert job.kernels == spec.kernels
        assert job.configs == ("staticOne",)
        assert job.scale == 0.5 and job.seed == 9
        assert job.engine == "vec" and job.client == "sweep"


# -- compositional naming ------------------------------------------------

mechanisms = st.sampled_from(SWEEP_AXES["mechanism"])
pc_indexes = st.sampled_from(SWEEP_AXES["pc_index"])
thread_keys = st.sampled_from(SWEEP_AXES["thread_key"])


@st.composite
def field_combos(draw):
    fields = {
        "mechanism": draw(mechanisms),
        "peek": draw(st.booleans()),
        "pc_index": draw(pc_indexes),
        "thread_key": draw(thread_keys),
        "sm_scoped": draw(st.booleans()),
    }
    fields["pc_bits"] = draw(st.integers(1, 10)) \
        if fields["pc_index"] in ("mod", "xor") else 0
    return fields


class TestNamingRoundTrip:
    @given(field_combos())
    @settings(max_examples=120)
    def test_parse_inverts_config_name(self, fields):
        name = config_name(**fields)
        config = parse_config_name(name)
        parsed = {f: getattr(config, f) for f in fields}
        assert parsed == fields
        assert config.name == name

    def test_token_order_is_free(self):
        assert parse_config_name("Prev+ModPC4+Ltid+Peek").name \
            == parse_config_name("Ltid+Prev+ModPC4+Peek").name

    def test_unknown_token_raises(self):
        with pytest.raises(KeyError):
            parse_config_name("Prev+Warp7")

    def test_spec_grid_configs_all_round_trip(self):
        spec = small_spec(axes=(
            ("mechanism", ("prev", "valhalla", "static0")),
            ("pc_index", ("none", "mod", "xor")),
            ("pc_bits", (0, 2)),
            ("thread_key", ("", "gtid", "ltid"))))
        for config in spec.configs():
            clone = parse_config_name(config.name)
            assert dataclasses.asdict(clone) \
                == dataclasses.asdict(config)
