"""Public-API surface: everything documented in README must import and
compose the way the examples show."""

import numpy as np

import repro


class TestTopLevelApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_readme_snippet_runs(self):
        """The exact flow from README's quickstart."""
        from repro import (GridLauncher, LaunchConfig, ST2_DESIGN,
                           run_speculation)

        def saxpy(k, a, x, y, out, n):
            i = k.global_id()
            with k.where(k.lt(i, n)):
                xi = k.ld_global(x, i)
                yi = k.ld_global(y, i)
                k.st_global(out, i, k.ffma(a, xi, yi))

        launcher = GridLauncher(seed=0)
        x = launcher.buffer("x", np.random.rand(512).astype(np.float32))
        y = launcher.buffer("y", np.random.rand(512).astype(np.float32))
        out = launcher.buffer("out", np.zeros(512, np.float32))
        run = launcher.run(saxpy, LaunchConfig(4, 128), a=2.0, x=x, y=y,
                           out=out, n=512)
        result = run_speculation(run.trace, ST2_DESIGN)
        assert 0.0 <= result.thread_misprediction_rate <= 1.0
        assert np.allclose(out.data, 2.0 * x.data + y.data, rtol=1e-5)


class TestSubpackageApi:
    def test_core_exports(self):
        import repro.core as core
        for name in core.__all__:
            assert hasattr(core, name), name

    def test_sim_exports(self):
        import repro.sim as sim
        for name in sim.__all__:
            assert hasattr(sim, name), name

    def test_power_exports(self):
        import repro.power as power
        for name in power.__all__:
            assert hasattr(power, name), name

    def test_st2_exports(self):
        import repro.st2 as st2
        for name in st2.__all__:
            assert hasattr(st2, name), name

    def test_circuits_exports(self):
        import repro.circuits as circuits
        for name in circuits.__all__:
            assert hasattr(circuits, name), name

    def test_analysis_and_isa_exports(self):
        import repro.analysis as analysis
        import repro.isa as isa
        for mod in (analysis, isa):
            for name in mod.__all__:
                assert hasattr(mod, name), name


class TestTensorGemmExtension:
    def test_runs_and_traces(self):
        from repro.kernels import tensor_gemm
        prep = tensor_gemm.prepare(scale=0.5, seed=0)
        run = prep.run()
        assert len(run.trace) > 100
        # HMMA ops present but not adder-class
        from repro.isa.opcodes import Opcode
        counts = run.insts.counts_by_opcode()
        assert Opcode.HMMA in counts
        assert not Opcode.HMMA.is_adder_op

    def test_epilogue_math(self):
        from repro.kernels import tensor_gemm
        prep = tensor_gemm.prepare(scale=0.5, seed=1)
        c = prep.params["c"].data.copy()
        d0 = prep.params["d"].data.copy()
        prep.run()
        d = prep.params["d"].data
        expect = 1.0 * c + 0.8 * d0
        assert np.allclose(d, expect, rtol=1e-5)
