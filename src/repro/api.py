"""``repro.api`` — the typed, versioned wire schemas of ``st2-serve``.

Both sides of the experiment service import this module and nothing
else from each other: the server (:mod:`repro.serve`) parses submitted
:class:`JobSpec` documents and emits :class:`JobStatus` /
:class:`JobResult` / :class:`ErrorEnvelope` documents; the client
(:mod:`repro.serve.client`, ``st2-client``) does the reverse.  Every
document is a flat JSON object carrying an explicit
``schema_version``, so the two ends can evolve independently.

Versioning policy
-----------------

* ``SCHEMA_VERSION`` is bumped whenever a field changes meaning or a
  required field is added.  Documents carry the version they were
  written with.
* **Readers are tolerant**: unknown fields are ignored (a newer peer
  may have added optional fields), and a missing ``schema_version``
  reads as version 1.  A document from a *newer major* version than
  the reader supports is rejected with :class:`WireError` — silently
  reinterpreting it could corrupt results.
* **Writers are exact**: :meth:`~JobSpec.to_wire` emits every field,
  current version included.

Lossless translation
--------------------

A :class:`JobSpec` is exactly the experiment-defining subset of the
``st2-run`` surface: it expands to the same
:class:`~repro.runner.units.UnitSpec` grid via :meth:`JobSpec.units`
and to a server-side :class:`~repro.runner.options.RunOptions` via
:meth:`JobSpec.run_options`, so a served :class:`JobResult` is
``results_equal`` to what ``st2-run`` computes offline for the same
grid — the equivalence the serve-smoke CI job enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

if TYPE_CHECKING:                   # pragma: no cover - typing only
    from repro.runner.options import RunOptions
    from repro.runner.units import UnitSpec
    from repro.st2.results import RunResult

#: Version of every wire document this module reads and writes.
SCHEMA_VERSION = 1

#: Job lifecycle states a :class:`JobStatus` may carry.
JOB_STATES = ("queued", "running", "done", "failed")

#: Terminal states — the job will never change again.
TERMINAL_STATES = ("done", "failed")

#: Machine-readable error codes an :class:`ErrorEnvelope` may carry.
ERROR_CODES = ("bad_request", "not_found", "pending", "quota_exhausted",
               "backpressure", "draining", "internal")


class WireError(ValueError):
    """A wire document failed validation (shape, types or version)."""


def _check_version(doc: Mapping[str, Any], kind: str) -> int:
    version = doc.get("schema_version", 1)
    if not isinstance(version, int) or isinstance(version, bool):
        raise WireError(f"{kind}: schema_version must be an int, "
                        f"got {version!r}")
    if version > SCHEMA_VERSION:
        raise WireError(
            f"{kind}: document is schema_version {version}, this end "
            f"only speaks <= {SCHEMA_VERSION}")
    return version


def _string_tuple(doc: Mapping[str, Any], kind: str,
                  name: str) -> Tuple[str, ...]:
    value = doc.get(name)
    if not isinstance(value, (list, tuple)) or not value \
            or not all(isinstance(v, str) for v in value):
        raise WireError(f"{kind}: {name!r} must be a non-empty list "
                        f"of strings, got {value!r}")
    return tuple(value)


def _number(value: Any, kind: str, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(f"{kind}: {name!r} must be a number, "
                        f"got {value!r}")
    return float(value)


def _integer(value: Any, kind: str, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(f"{kind}: {name!r} must be an int, "
                        f"got {value!r}")
    return value


@dataclass(frozen=True)
class JobSpec:
    """One submitted experiment grid: (kernels × configs) at a fixed
    scale and seed — the client-side mirror of the ``st2-run`` work
    list flags.

    ``priority`` orders jobs in the server's queue (lower runs
    sooner); ``client`` attributes the job to a quota bucket.  Both
    are scheduling hints, not experiment identity: they never reach
    the unit cache keys.
    """

    kernels: Tuple[str, ...]
    configs: Tuple[str, ...] = ("st2",)
    scale: float = 1.0
    seed: int = 0
    aux: bool = False
    per_kernel_seeds: bool = False
    engine: str = "auto"
    priority: int = 0
    client: str = "anon"

    def __post_init__(self) -> None:
        from repro.runner.units import ENGINES
        if not self.kernels:
            raise WireError("job_spec: kernels must be non-empty")
        if self.engine not in ENGINES:
            raise WireError(f"job_spec: unknown engine "
                            f"{self.engine!r}; choose one of {ENGINES}")
        if not (isinstance(self.scale, (int, float))
                and self.scale > 0):
            raise WireError(f"job_spec: scale must be positive, "
                            f"got {self.scale!r}")

    # -- wire form -----------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "kernels": list(self.kernels),
            "configs": list(self.configs),
            "scale": self.scale,
            "seed": self.seed,
            "aux": self.aux,
            "per_kernel_seeds": self.per_kernel_seeds,
            "engine": self.engine,
            "priority": self.priority,
            "client": self.client,
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "JobSpec":
        """Parse a wire document; unknown fields are ignored."""
        if not isinstance(doc, Mapping):
            raise WireError(f"job_spec: expected an object, "
                            f"got {type(doc).__name__}")
        _check_version(doc, "job_spec")
        kernels = _string_tuple(doc, "job_spec", "kernels")
        configs = _string_tuple(doc, "job_spec", "configs") \
            if "configs" in doc else ("st2",)
        client = doc.get("client", "anon")
        engine = doc.get("engine", "auto")
        if not isinstance(client, str) or not isinstance(engine, str):
            raise WireError("job_spec: client and engine must be "
                            "strings")
        return cls(
            kernels=kernels, configs=configs,
            scale=_number(doc.get("scale", 1.0), "job_spec", "scale"),
            seed=_integer(doc.get("seed", 0), "job_spec", "seed"),
            aux=bool(doc.get("aux", False)),
            per_kernel_seeds=bool(doc.get("per_kernel_seeds", False)),
            engine=engine,
            priority=_integer(doc.get("priority", 0), "job_spec",
                              "priority"),
            client=client)

    # -- translation to the runner surface -----------------------------

    def units(self) -> "List[UnitSpec]":
        """Expand to the exact :class:`UnitSpec` grid ``st2-run``
        would build for the same flags (kernel groups and config
        aliases resolve identically).  Raises :class:`WireError` on
        unknown kernels or configs."""
        from repro.runner.units import build_units, resolve_configs

        try:
            configs = resolve_configs(list(self.configs))
            return build_units(
                list(self.kernels), configs=configs, scale=self.scale,
                seed=self.seed, aux=self.aux,
                per_kernel_seeds=self.per_kernel_seeds)
        except KeyError as exc:
            raise WireError(f"job_spec: {exc.args[0]}") from None

    def run_options(self, **server_side: Any) -> "RunOptions":
        """A :class:`RunOptions` carrying this job's engine choice;
        everything else (workers, caches, trace store) is server
        policy, passed through ``server_side``."""
        from repro.runner.options import RunOptions

        return RunOptions(engine=self.engine, **server_side)

    @classmethod
    def from_run_args(cls, kernels: Tuple[str, ...],
                      configs: Tuple[str, ...], scale: float = 1.0,
                      seed: int = 0, aux: bool = False,
                      per_kernel_seeds: bool = False,
                      engine: str = "auto", priority: int = 0,
                      client: str = "anon") -> "JobSpec":
        """The inverse translation: build a spec from the ``st2-run``
        style grid arguments (used by ``st2-client``)."""
        return cls(kernels=tuple(kernels), configs=tuple(configs),
                   scale=scale, seed=seed, aux=aux,
                   per_kernel_seeds=per_kernel_seeds, engine=engine,
                   priority=priority, client=client)


#: SpeculationConfig fields a :class:`SweepSpec` may place axes over,
#: with the value domain of each (``None`` marks free integer axes).
SWEEP_AXES: Dict[str, Optional[Tuple[Any, ...]]] = {
    "mechanism": ("static0", "static1", "operand", "valhalla", "prev"),
    "peek": (False, True),
    "pc_index": ("none", "full", "mod", "xor"),
    "pc_bits": None,
    "thread_key": ("", "gtid", "ltid"),
    "sm_scoped": (False, True),
}

#: Axis value assumed when a :class:`SweepSpec` omits the axis — the
#: :class:`~repro.core.predictors.SpeculationConfig` field defaults.
SWEEP_AXIS_DEFAULTS: Dict[str, Any] = {
    "mechanism": "prev", "peek": False, "pc_index": "none",
    "pc_bits": 0, "thread_key": "", "sm_scoped": False,
}


@dataclass(frozen=True)
class SweepSpec:
    """One declarative design-space sweep: a grid of axis values over
    :class:`~repro.core.predictors.SpeculationConfig` fields, crossed
    with a kernel list at a fixed scale and seed.

    The axes expand to the cartesian product of their values; field
    combinations the config model rejects (``mod``/``xor`` PC indexing
    with ``pc_bits < 1``) are dropped at expansion, not submission.
    ``st2-sweep`` consumes these specs from YAML/JSON files; the wire
    form follows the same ``schema_version`` skew rules as
    :class:`JobSpec`.
    """

    kernels: Tuple[str, ...]
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    name: str = "sweep"
    scale: float = 1.0
    seed: int = 0
    engine: str = "auto"
    aux: bool = False

    def __post_init__(self) -> None:
        from repro.runner.units import ENGINES
        if not self.kernels \
                or not all(isinstance(k, str) for k in self.kernels):
            raise WireError("sweep_spec: kernels must be a non-empty "
                            "list of strings")
        if not self.name or not isinstance(self.name, str):
            raise WireError("sweep_spec: name must be a non-empty "
                            "string")
        if self.engine not in ENGINES:
            raise WireError(f"sweep_spec: unknown engine "
                            f"{self.engine!r}; choose one of {ENGINES}")
        if not (isinstance(self.scale, (int, float))
                and not isinstance(self.scale, bool)
                and self.scale > 0):
            raise WireError(f"sweep_spec: scale must be positive, "
                            f"got {self.scale!r}")
        if not self.axes:
            raise WireError("sweep_spec: axes must name at least one "
                            "swept field")
        seen = set()
        for entry in self.axes:
            if not (isinstance(entry, tuple) and len(entry) == 2):
                raise WireError("sweep_spec: axes must be (name, "
                                "values) pairs")
            axis, values = entry
            if axis not in SWEEP_AXES:
                raise WireError(
                    f"sweep_spec: unknown axis {axis!r}; choose from "
                    f"{tuple(SWEEP_AXES)}")
            if axis in seen:
                raise WireError(f"sweep_spec: axis {axis!r} repeats")
            seen.add(axis)
            if not isinstance(values, tuple) or not values:
                raise WireError(f"sweep_spec: axis {axis!r} needs a "
                                f"non-empty list of values")
            if len(set(values)) != len(values):
                raise WireError(f"sweep_spec: axis {axis!r} repeats "
                                f"values")
            domain = SWEEP_AXES[axis]
            for value in values:
                if domain is None:
                    if isinstance(value, bool) \
                            or not isinstance(value, int) or value < 0:
                        raise WireError(
                            f"sweep_spec: axis {axis!r} values must "
                            f"be non-negative ints, got {value!r}")
                elif value not in domain:
                    raise WireError(
                        f"sweep_spec: axis {axis!r} value {value!r} "
                        f"not in {domain}")

    # -- derived views --------------------------------------------------

    @property
    def axes_dict(self) -> Dict[str, Tuple[Any, ...]]:
        """The axes as an ordered ``{field: values}`` mapping."""
        return {axis: values for axis, values in self.axes}

    @property
    def grid_size(self) -> int:
        """Cartesian-product size before invalid combos are dropped."""
        size = 1
        for _, values in self.axes:
            size *= len(values)
        return size

    def field_grid(self) -> "List[Dict[str, Any]]":
        """Every axis combination as a full SpeculationConfig field
        dict (omitted axes pinned to their defaults), in deterministic
        row-major order.  Includes combinations the config model will
        reject — expansion filters those."""
        import itertools

        axes = self.axes_dict
        names = list(axes)
        rows = []
        for combo in itertools.product(*(axes[n] for n in names)):
            fields = dict(SWEEP_AXIS_DEFAULTS)
            fields.update(dict(zip(names, combo)))
            rows.append(fields)
        return rows

    def configs(self) -> "List[Any]":
        """The grid as canonically-named
        :class:`~repro.core.predictors.SpeculationConfig` objects:
        field combinations the config model rejects are dropped, dead
        ``pc_bits`` (under ``none``/``full`` PC indexing) is pinned to
        0, and combinations that collapse to the same design point are
        deduplicated — names and field tuples stay bijective."""
        from repro.core.speculation import config_name
        from repro.core.predictors import SpeculationConfig

        configs = []
        seen = set()
        for fields in self.field_grid():
            if fields["pc_index"] in ("none", "full"):
                fields = dict(fields, pc_bits=0)
            try:
                config = SpeculationConfig(
                    name=config_name(**fields), **fields)
            except ValueError:
                continue
            if config.name in seen:
                continue
            seen.add(config.name)
            configs.append(config)
        return configs

    def digest(self) -> str:
        """Content hash of the wire form — the resume-compatibility
        key a sweep manifest records."""
        import hashlib
        import json

        blob = json.dumps(self.to_wire(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    # -- wire form -----------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "kernels": list(self.kernels),
            "axes": {axis: list(values) for axis, values in self.axes},
            "scale": self.scale,
            "seed": self.seed,
            "engine": self.engine,
            "aux": self.aux,
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "SweepSpec":
        """Parse a wire document; unknown fields are ignored."""
        if not isinstance(doc, Mapping):
            raise WireError(f"sweep_spec: expected an object, "
                            f"got {type(doc).__name__}")
        _check_version(doc, "sweep_spec")
        kernels = _string_tuple(doc, "sweep_spec", "kernels")
        axes_doc = doc.get("axes")
        if not isinstance(axes_doc, Mapping) or not axes_doc:
            raise WireError("sweep_spec: axes must be a non-empty "
                            "object of {field: [values]}")
        axes = []
        for axis, values in axes_doc.items():
            if not isinstance(values, (list, tuple)):
                raise WireError(f"sweep_spec: axis {axis!r} values "
                                f"must be a list, got {values!r}")
            axes.append((axis, tuple(values)))
        name = doc.get("name", "sweep")
        engine = doc.get("engine", "auto")
        if not isinstance(name, str) or not isinstance(engine, str):
            raise WireError("sweep_spec: name and engine must be "
                            "strings")
        return cls(
            kernels=kernels, axes=tuple(axes), name=name,
            scale=_number(doc.get("scale", 1.0), "sweep_spec", "scale"),
            seed=_integer(doc.get("seed", 0), "sweep_spec", "seed"),
            engine=engine, aux=bool(doc.get("aux", False)))

    def job_spec(self, configs: Tuple[str, ...],
                 kernels: Optional[Tuple[str, ...]] = None,
                 priority: int = 0, client: str = "sweep") -> JobSpec:
        """One serve-backend submission covering ``configs`` (by
        canonical name — any design point resolves server-side) over
        ``kernels`` (default: the sweep's full kernel list)."""
        return JobSpec(
            kernels=tuple(kernels) if kernels is not None
            else self.kernels,
            configs=configs, scale=self.scale, seed=self.seed,
            aux=self.aux, engine=self.engine, priority=priority,
            client=client)


@dataclass(frozen=True)
class JobStatus:
    """One job's lifecycle snapshot, as served by ``GET /v1/jobs/<id>``
    and streamed by ``GET /v1/jobs/<id>/events``."""

    job_id: str
    state: str
    units_total: int
    units_done: int = 0
    units_failed: int = 0
    units_cached: int = 0
    units_coalesced: int = 0
    priority: int = 0
    client: str = "anon"
    submitted_s: float = 0.0
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    error: Optional[str] = None

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise WireError(f"job_status: unknown state "
                            f"{self.state!r}; one of {JOB_STATES}")

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_wire(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "job_id": self.job_id,
            "state": self.state,
            "units_total": self.units_total,
            "units_done": self.units_done,
            "units_failed": self.units_failed,
            "units_cached": self.units_cached,
            "units_coalesced": self.units_coalesced,
            "priority": self.priority,
            "client": self.client,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "error": self.error,
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "JobStatus":
        if not isinstance(doc, Mapping):
            raise WireError(f"job_status: expected an object, "
                            f"got {type(doc).__name__}")
        _check_version(doc, "job_status")
        job_id = doc.get("job_id")
        state = doc.get("state")
        if not isinstance(job_id, str) or not isinstance(state, str):
            raise WireError("job_status: job_id and state must be "
                            "strings")
        optional = {}
        for name in ("started_s", "finished_s"):
            value = doc.get(name)
            optional[name] = None if value is None \
                else _number(value, "job_status", name)
        error = doc.get("error")
        if error is not None and not isinstance(error, str):
            raise WireError("job_status: error must be a string or "
                            "null")
        return cls(
            job_id=job_id, state=state,
            units_total=_integer(doc.get("units_total", 0),
                                 "job_status", "units_total"),
            units_done=_integer(doc.get("units_done", 0),
                                "job_status", "units_done"),
            units_failed=_integer(doc.get("units_failed", 0),
                                  "job_status", "units_failed"),
            units_cached=_integer(doc.get("units_cached", 0),
                                  "job_status", "units_cached"),
            units_coalesced=_integer(doc.get("units_coalesced", 0),
                                     "job_status", "units_coalesced"),
            priority=_integer(doc.get("priority", 0), "job_status",
                              "priority"),
            client=str(doc.get("client", "anon")),
            submitted_s=_number(doc.get("submitted_s", 0.0),
                                "job_status", "submitted_s"),
            started_s=optional["started_s"],
            finished_s=optional["finished_s"],
            error=error)


@dataclass(frozen=True)
class JobResult:
    """A finished job's payload: the unit result dicts (exactly the
    :data:`~repro.runner.units.RESULT_SCHEMA` payloads ``st2-run``
    caches and manifests) plus the job-level metadata header."""

    job_id: str
    units: Tuple[Dict[str, Any], ...]
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "job_id": self.job_id,
            "meta": dict(self.meta),
            "units": [dict(unit) for unit in self.units],
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "JobResult":
        if not isinstance(doc, Mapping):
            raise WireError(f"job_result: expected an object, "
                            f"got {type(doc).__name__}")
        _check_version(doc, "job_result")
        job_id = doc.get("job_id")
        units = doc.get("units")
        meta = doc.get("meta", {})
        if not isinstance(job_id, str):
            raise WireError("job_result: job_id must be a string")
        if not isinstance(units, list) \
                or not all(isinstance(u, dict) for u in units):
            raise WireError("job_result: units must be a list of "
                            "objects")
        if not isinstance(meta, dict):
            raise WireError("job_result: meta must be an object")
        return cls(job_id=job_id,
                   units=tuple(dict(u) for u in units),
                   meta=dict(meta))

    def run_results(self) -> "List[RunResult]":
        """The units as typed :class:`~repro.st2.results.RunResult`
        views — the same objects ``run_units`` returns."""
        from repro.st2.results import RunResult

        return [RunResult(dict(unit)) for unit in self.units]


@dataclass(frozen=True)
class ErrorEnvelope:
    """Every non-2xx server response body.

    ``retry_after_s`` is set on backpressure/quota rejections (it also
    rides in the HTTP ``Retry-After`` header); ``detail`` is free-form
    diagnostic context.
    """

    code: str
    message: str
    retry_after_s: Optional[float] = None
    detail: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise WireError(f"error: unknown code {self.code!r}; "
                            f"one of {ERROR_CODES}")

    def to_wire(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "error": self.code,
            "message": self.message,
            "retry_after_s": self.retry_after_s,
            "detail": self.detail,
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "ErrorEnvelope":
        if not isinstance(doc, Mapping):
            raise WireError(f"error: expected an object, "
                            f"got {type(doc).__name__}")
        _check_version(doc, "error")
        code = doc.get("error")
        message = doc.get("message", "")
        if not isinstance(code, str) or not isinstance(message, str):
            raise WireError("error: error and message must be strings")
        retry = doc.get("retry_after_s")
        detail = doc.get("detail")
        if detail is not None and not isinstance(detail, str):
            raise WireError("error: detail must be a string or null")
        return cls(code=code, message=message,
                   retry_after_s=None if retry is None
                   else _number(retry, "error", "retry_after_s"),
                   detail=detail)


def is_error(doc: Mapping[str, Any]) -> bool:
    """Whether a parsed response body is an :class:`ErrorEnvelope`
    (all error bodies carry the ``error`` code field)."""
    return isinstance(doc, Mapping) and "error" in doc
