"""PTX-like instruction-set substrate: opcodes and PC interning."""

from repro.isa.opcodes import FunctionalUnit, MixCategory, Opcode
from repro.isa.pc import PcTable

__all__ = ["FunctionalUnit", "MixCategory", "Opcode", "PcTable"]
