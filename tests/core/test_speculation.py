"""The named design-space ladder (Figure 5 configurations)."""

import pytest

from repro.core.speculation import (CASA, DESIGN_LADDER, FIG3_CONFIGS,
                                    LTID_PREV_MODPC4_PEEK, ST2_DESIGN,
                                    VALHALLA, config_by_name, explore,
                                    prev_modpc)
from repro.kernels import pathfinder


class TestLadderDefinition:
    def test_ladder_has_twelve_points(self):
        assert len(DESIGN_LADDER) == 12

    def test_ladder_order_matches_figure5(self):
        names = [c.name for c in DESIGN_LADDER]
        assert names[0] == "staticOne"
        assert names[1] == "staticZero"
        assert names[2] == "VaLHALLA"
        assert "Prev+ModPC4+Peek" in names
        assert names[-3] == "Gtid+Prev+ModPC4+Peek"
        assert names[-2] == "Ltid+Prev+ModPC4+Peek"

    def test_st2_design_is_ltid_prev_modpc4_peek(self):
        assert ST2_DESIGN is LTID_PREV_MODPC4_PEEK
        assert ST2_DESIGN.thread_key == "ltid"
        assert ST2_DESIGN.pc_bits == 4
        assert ST2_DESIGN.peek

    def test_prev_modpc_naming(self):
        assert prev_modpc(8).name == "Prev+ModPC8+Peek"
        assert prev_modpc(4, thread_key="gtid").name \
            == "Gtid+Prev+ModPC4+Peek"
        assert prev_modpc(2, peek=False).name == "Prev+ModPC2"

    def test_config_lookup(self):
        assert config_by_name("VaLHALLA") is VALHALLA
        assert config_by_name("CASA") is CASA
        with pytest.raises(KeyError):
            config_by_name("OraclePredictor")

    def test_fig3_configs(self):
        names = {c.name for c in FIG3_CONFIGS}
        assert names == {"Prev+Gtid", "Prev+FullPC+Gtid",
                         "Prev+FullPC+Ltid"}

    def test_st2_table_size_is_practical(self):
        """Ltid indexing needs 16 x 32 entries; Gtid would need
        16 x 2048 (the paper's 15-bit-index objection)."""
        assert ST2_DESIGN.table_entries() == 512
        gtid = config_by_name("Gtid+Prev+ModPC4+Peek")
        assert gtid.table_entries(2048) == 32768


class TestExploration:
    @pytest.fixture(scope="class")
    def points(self):
        run = pathfinder.prepare(scale=0.25, seed=0).run()
        return explore(run.trace)

    def test_one_point_per_config(self, points):
        assert len(points) == len(DESIGN_LADDER)

    def test_static_one_is_worst(self, points):
        rates = {p.config.name: p.misprediction_rate for p in points}
        assert rates["staticOne"] == max(rates.values())

    def test_history_beats_static(self, points):
        rates = {p.config.name: p.misprediction_rate for p in points}
        assert rates["Ltid+Prev+ModPC4+Peek"] < rates["staticZero"]
        assert rates["Prev+Peek"] < rates["VaLHALLA"]

    def test_peek_helps_valhalla(self, points):
        """Paper: retrofitting VaLHALLA with Peek cuts its miss rate."""
        rates = {p.config.name: p.misprediction_rate for p in points}
        assert rates["VaLHALLA+Peek"] < rates["VaLHALLA"]

    def test_xor_hash_adds_nothing(self, points):
        """Paper: more complex PC hashing provides no benefit."""
        rates = {p.config.name: p.misprediction_rate for p in points}
        assert rates["Ltid+Prev+XorPC4+Peek"] \
            == pytest.approx(rates["Ltid+Prev+ModPC4+Peek"], abs=0.02)

    def test_recompute_statistics_in_range(self, points):
        for p in points:
            if p.misprediction_rate > 0:
                assert 1.0 <= p.recomputed_per_misprediction <= 7.0
