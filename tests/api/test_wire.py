"""The ``repro.api`` wire schemas: round-trips, forward compatibility
and the lossless translation to the ``st2-run`` surface."""

from __future__ import annotations

import pytest

from repro.api import (ERROR_CODES, SCHEMA_VERSION, ErrorEnvelope,
                       JobResult, JobSpec, JobStatus, WireError,
                       is_error)

SPEC = JobSpec(kernels=("qrng_K2", "sortNets_K2"), configs=("st2",),
               scale=0.25, seed=3, aux=False, per_kernel_seeds=True,
               engine="vec", priority=-5, client="ci")


class TestJobSpec:
    def test_round_trip_is_lossless(self):
        assert JobSpec.from_wire(SPEC.to_wire()) == SPEC

    def test_wire_doc_carries_current_version(self):
        assert SPEC.to_wire()["schema_version"] == SCHEMA_VERSION

    def test_unknown_fields_are_ignored(self):
        doc = SPEC.to_wire()
        doc["future_knob"] = {"nested": True}
        doc["another"] = 7
        assert JobSpec.from_wire(doc) == SPEC

    def test_missing_version_reads_as_one(self):
        doc = SPEC.to_wire()
        del doc["schema_version"]
        assert JobSpec.from_wire(doc) == SPEC

    def test_newer_version_rejected(self):
        doc = SPEC.to_wire()
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(WireError, match="schema_version"):
            JobSpec.from_wire(doc)

    def test_optional_fields_default(self):
        spec = JobSpec.from_wire({"kernels": ["qrng_K2"]})
        assert spec.configs == ("st2",)
        assert spec.scale == 1.0
        assert spec.engine == "auto"
        assert spec.client == "anon"

    @pytest.mark.parametrize("doc", [
        "not an object",
        {},                                     # kernels missing
        {"kernels": []},                        # kernels empty
        {"kernels": [1, 2]},                    # not strings
        {"kernels": ["qrng_K2"], "scale": "big"},
        {"kernels": ["qrng_K2"], "scale": -1.0},
        {"kernels": ["qrng_K2"], "seed": 1.5},
        {"kernels": ["qrng_K2"], "seed": True},  # bool is not an int
        {"kernels": ["qrng_K2"], "engine": "quantum"},
        {"kernels": ["qrng_K2"], "client": 7},
        {"kernels": ["qrng_K2"], "schema_version": "one"},
    ])
    def test_malformed_documents_rejected(self, doc):
        with pytest.raises(WireError):
            JobSpec.from_wire(doc)

    def test_from_run_args_is_the_inverse(self):
        spec = JobSpec.from_run_args(
            kernels=("qrng_K2", "sortNets_K2"), configs=("st2",),
            scale=0.25, seed=3, aux=False, per_kernel_seeds=True,
            engine="vec", priority=-5, client="ci")
        assert spec == SPEC


class TestTranslation:
    def test_units_match_the_st2_run_grid(self):
        from repro.runner.units import build_units, resolve_configs
        expect = build_units(
            ["qrng_K2", "sortNets_K2"],
            configs=resolve_configs(["st2"]), scale=0.25, seed=3,
            aux=False, per_kernel_seeds=True)
        assert SPEC.units() == expect

    def test_units_share_cache_keys_with_st2_run(self):
        from repro.runner.cache import unit_key
        offline = {unit_key(u, "v0") for u in SPEC.units()}
        served = {unit_key(u, "v0") for u in SPEC.units()}
        assert offline == served

    def test_unknown_kernel_is_a_wire_error(self):
        with pytest.raises(WireError, match="job_spec"):
            JobSpec(kernels=("no_such_kernel",)).units()

    def test_unknown_config_is_a_wire_error(self):
        with pytest.raises(WireError, match="job_spec"):
            JobSpec(kernels=("qrng_K2",),
                    configs=("no_such_config",)).units()

    def test_run_options_carry_engine_and_server_policy(self):
        opts = SPEC.run_options(workers=3, use_cache=False)
        assert opts.engine == "vec"
        assert opts.workers == 3
        assert opts.use_cache is False

    def test_scheduling_hints_never_reach_unit_identity(self):
        from repro.runner.cache import unit_key
        hinted = JobSpec(kernels=SPEC.kernels, configs=SPEC.configs,
                         scale=SPEC.scale, seed=SPEC.seed,
                         per_kernel_seeds=SPEC.per_kernel_seeds,
                         engine=SPEC.engine,
                         priority=99, client="someone-else")
        assert [unit_key(u, "v0") for u in SPEC.units()] \
            == [unit_key(u, "v0") for u in hinted.units()]


class TestJobStatus:
    STATUS = JobStatus(job_id="abc123", state="running",
                       units_total=4, units_done=1, units_failed=0,
                       units_cached=1, units_coalesced=2, priority=1,
                       client="ci", submitted_s=10.0, started_s=11.0,
                       finished_s=None, error=None)

    def test_round_trip_is_lossless(self):
        assert JobStatus.from_wire(self.STATUS.to_wire()) == self.STATUS

    def test_unknown_fields_are_ignored(self):
        doc = self.STATUS.to_wire()
        doc["eta_s"] = 12.5
        assert JobStatus.from_wire(doc) == self.STATUS

    def test_terminal_property(self):
        assert not self.STATUS.terminal
        for state in ("done", "failed"):
            doc = dict(self.STATUS.to_wire(), state=state)
            assert JobStatus.from_wire(doc).terminal

    def test_unknown_state_rejected(self):
        with pytest.raises(WireError, match="state"):
            JobStatus(job_id="x", state="paused", units_total=1)

    def test_newer_version_rejected(self):
        doc = dict(self.STATUS.to_wire(),
                   schema_version=SCHEMA_VERSION + 1)
        with pytest.raises(WireError):
            JobStatus.from_wire(doc)


class TestJobResult:
    UNIT = {"kernel": "qrng_K2", "scale": 0.25, "seed": 0,
            "config": "Ltid+Prev+ModPC4+Peek", "config_fields": {},
            "metrics": {"slowdown": 0.01}, "energy_stacks": {},
            "wall_time_s": 0.1, "capture_time_s": 0.05,
            "eval_time_s": 0.05, "trace_cache_hit": False,
            "trace_rows": 10, "trace_bytes": 80, "n_static_pcs": 2}
    RESULT = JobResult(job_id="abc123", units=(UNIT,),
                       meta={"engine": "auto"})

    def test_round_trip_is_lossless(self):
        again = JobResult.from_wire(self.RESULT.to_wire())
        assert again.job_id == self.RESULT.job_id
        assert again.meta == self.RESULT.meta
        assert list(again.units) == [self.UNIT]

    def test_units_are_copied_not_aliased(self):
        doc = self.RESULT.to_wire()
        again = JobResult.from_wire(doc)
        doc["units"][0]["kernel"] = "mutated"
        assert again.units[0]["kernel"] == "qrng_K2"

    def test_run_results_are_typed_views(self):
        views = self.RESULT.run_results()
        assert views[0].kernel == "qrng_K2"
        assert views[0].metrics.slowdown == 0.01

    def test_malformed_units_rejected(self):
        with pytest.raises(WireError, match="units"):
            JobResult.from_wire({"job_id": "x", "units": ["str"]})
        with pytest.raises(WireError, match="meta"):
            JobResult.from_wire({"job_id": "x", "units": [],
                                 "meta": 3})


class TestErrorEnvelope:
    def test_round_trip_is_lossless(self):
        env = ErrorEnvelope(code="backpressure", message="full",
                            retry_after_s=2.5, detail="queue at 4096")
        assert ErrorEnvelope.from_wire(env.to_wire()) == env

    def test_every_code_is_constructible(self):
        for code in ERROR_CODES:
            env = ErrorEnvelope(code=code, message="m")
            assert ErrorEnvelope.from_wire(env.to_wire()).code == code

    def test_unknown_code_rejected(self):
        with pytest.raises(WireError, match="code"):
            ErrorEnvelope(code="weird", message="m")

    def test_is_error_discriminates_bodies(self):
        env = ErrorEnvelope(code="pending", message="wait")
        assert is_error(env.to_wire())
        assert not is_error(SPEC.to_wire())
        assert not is_error("nope")
