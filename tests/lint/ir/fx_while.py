"""IR-lowering fixture: ``while`` loop with a loop-carried adder.

The header condition re-evaluates every iteration; the branch refines
``i`` to ``[0, 7]`` inside the body, so the increment stays bounded
while the accumulator widens to ``[0, +inf)``.
"""


def while_kernel(k, out, n):
    t = k.thread_id()
    i = 0
    acc = 0
    while i < 8:
        acc = k.iadd(acc, 2)
        i = i + 1
    k.st_global(out, t, acc)
