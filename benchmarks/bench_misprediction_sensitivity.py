"""Sensitivity study: what if the predictor were worse (or perfect)?

Sweeps an *injected* misprediction rate on a real kernel by corrupting
a fraction of the ST2 predictions, and measures both the energy saving
and the slowdown. The finding (which the paper implies but never
plots): voltage-scaled slicing wins on energy even with a terrible
predictor — prediction quality mostly buys *performance*; the slowdown
is what grows with the miss rate.
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import table
from repro.core.predictors import (Prediction, evaluate_trace,
                                   predict_trace)
from repro.core.speculation import ST2_DESIGN
from repro.sim.pipeline import simulate_sm_pair, warp_misprediction_map

KERNEL = "pathfinder"
INJECT_RATES = (0.0, 0.05, 0.1, 0.2, 0.4, 0.8)


def _sweep(run, adder_model):
    trace = run.trace
    base_pred = predict_trace(trace, ST2_DESIGN)
    carries_pred = base_pred.bits
    rng = np.random.default_rng(0)
    rows = []
    for rate in INJECT_RATES:
        bits = carries_pred.copy()
        flip = rng.random(bits.shape) < rate
        bits = np.where(flip, 1 - bits, bits)
        pred = Prediction(config=ST2_DESIGN, bits=bits,
                          has_prev=base_pred.has_prev,
                          peek_known=base_pred.peek_known)
        res = evaluate_trace(trace, pred)
        base_t, st2_t = simulate_sm_pair(
            run.insts, run.launch,
            warp_misprediction_map(trace, res.mispredicted))
        slowdown = st2_t.total_cycles / base_t.total_cycles - 1
        saving = adder_model.saving(
            res.thread_misprediction_rate,
            max(res.recomputed_per_misprediction, 1.0))
        rows.append((rate, res.thread_misprediction_rate, saving,
                     slowdown))
    return rows


def test_misprediction_sensitivity(benchmark, suite_runs, adder_model,
                                   artifact_dir):
    run = suite_runs[KERNEL]
    rows = benchmark.pedantic(_sweep, args=(run, adder_model),
                              rounds=1, iterations=1)

    txt = table(
        f"injected prediction corruption on {KERNEL}",
        ["injected flip rate", "resulting miss rate",
         "adder-power saving", "slowdown"],
        [(f"{r:.0%}", f"{m:.1%}", f"{s:.1%}", f"{sl:.2%}")
         for r, m, s, sl in rows])
    txt += ("\n\nfinding: the energy saving barely moves (voltage "
            "scaling dominates);\nthe *performance* cost is what a bad "
            "predictor buys — which is why the\npaper's design effort "
            "goes into the misprediction rate.")
    save_artifact(artifact_dir, "misprediction_sensitivity.txt", txt)

    miss = [m for __, m, __, __ in rows]
    savings = [s for __, __, s, __ in rows]
    slows = [sl for __, __, __, sl in rows]
    # monotone structure
    assert miss == sorted(miss)
    assert slows[-1] > slows[0]
    # energy saving stays strongly positive even at 80% corruption
    assert min(savings) > 0.5
    # but degrades monotonically
    assert savings == sorted(savings, reverse=True)
