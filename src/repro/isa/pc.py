"""Program-counter interning for DSL kernels.

The ST2 mechanism indexes its history by "the PC" — i.e. the identity of
the *static instruction*.  Our kernels are Python functions, so we map
every DSL call site (code object + bytecode offset) to a small integer
PC, assigned sequentially in first-execution order, exactly like the
index of a static instruction in a compiled kernel.

``ModPCk`` indexing then uses ``pc % 2**k``, matching the paper's use of
the lowest k bits of the (instruction-granular) PC.

A fresh :class:`PcTable` is used per kernel launch so PCs are
deterministic for a given kernel and scale.
"""

from __future__ import annotations

import sys


class PcTable:
    """Interns call sites into dense integer PCs."""

    def __init__(self) -> None:
        self._sites: dict = {}
        self._labels: list = []

    def __len__(self) -> int:
        return len(self._sites)

    def intern(self, depth: int = 2, tag: str = "") -> int:
        """PC of the caller's call site.

        ``depth`` is how many frames above this call the kernel code
        lives (the DSL op helpers pass their own depth).  ``tag``
        distinguishes implicit sub-operations emitted from the same site
        (e.g. the address-arithmetic LEA a load emits).
        """
        frame = sys._getframe(depth)
        key = (id(frame.f_code), frame.f_lasti, tag)
        pc = self._sites.get(key)
        if pc is None:
            pc = len(self._sites)
            self._sites[key] = pc
            label = f"{frame.f_code.co_name}:{frame.f_lineno}"
            if tag:
                label += f"#{tag}"
            self._labels.append(label)
        return pc

    def label(self, pc: int) -> str:
        """Human-readable ``function:line`` label of a PC."""
        return self._labels[pc]

    @property
    def labels(self) -> list:
        return list(self._labels)
