"""Extension workload: Rodinia *hotspot* (thermal simulation).

One transient step of the chip-temperature ODE: per cell, the new
temperature blends the neighbour differences and the local power
density — an FFMA/FADD-dense stencil over smoothly-varying physical
fields, exactly the gradually-evolving data Section III describes.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128


def hotspot_kernel(k, temp_in, power, temp_out, rows, cols, cap,
                   rx, ry, rz, amb):
    """One step: T' = T + dt/C * (conduction + P + (Tamb-T)/Rz)."""
    idx = k.global_id()
    n = rows * cols
    row = k.idiv(idx, cols)
    col = k.irem(idx, cols)
    interior = (np.asarray(row) > 0) & (np.asarray(row) < rows - 1) \
        & (np.asarray(col) > 0) & (np.asarray(col) < cols - 1) \
        & (np.asarray(idx) < n)
    with k.where(interior):
        t = k.ld_global(temp_in, idx)
        tn = k.ld_global(temp_in, k.isub(idx, cols))
        ts = k.ld_global(temp_in, k.iadd(idx, cols))
        tw = k.ld_global(temp_in, k.isub(idx, 1))
        te = k.ld_global(temp_in, k.iadd(idx, 1))
        p = k.ld_global(power, idx)

        two_t = k.fadd(t, t)
        vert = k.fmul(k.fsub(k.fadd(tn, ts), two_t), ry)
        horiz = k.fmul(k.fsub(k.fadd(tw, te), two_t), rx)
        vert_sink = k.fmul(k.fsub(amb, t), rz)
        delta = k.fadd(k.fadd(vert, horiz), k.fadd(p, vert_sink))
        k.st_global(temp_out, idx, k.ffma(cap, delta, t))


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    """Chip-like temperature and power maps: smooth background plus
    hotspots (functional-unit blocks dissipating more)."""
    rng = np.random.default_rng(seed)
    rows = scaled(40, scale, minimum=8)
    cols = scaled(64, scale, minimum=16)
    yy, xx = np.indices((rows, cols))
    temp = 323.0 + 6.0 * np.sin(xx / 9.0) * np.cos(yy / 7.0) \
        + rng.normal(0, 0.3, (rows, cols))
    power = 0.02 + 0.05 * (((xx // 16) + (yy // 10)) % 2) \
        + rng.normal(0, 0.002, (rows, cols))

    n = rows * cols
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="hotspot",
        fn=hotspot_kernel,
        launch=LaunchConfig(max(1, (n + BLOCK - 1) // BLOCK), BLOCK),
        params=dict(
            temp_in=launcher.buffer(
                "temp_in", temp.astype(np.float32).reshape(-1)),
            power=launcher.buffer(
                "power", power.astype(np.float32).reshape(-1)),
            temp_out=launcher.buffer(
                "temp_out", np.zeros(n, np.float32)),
            rows=rows, cols=cols, cap=np.float32(0.5),
            rx=np.float32(0.1), ry=np.float32(0.1),
            rz=np.float32(0.05), amb=np.float32(300.0)),
        launcher=launcher)
