"""Spec file loading: the mini-YAML subset, JSON, format detection
and error surfaces.  The mini-YAML parser is exercised directly (it is
the fallback when PyYAML is absent) — both parsers must agree on the
example document."""

import pytest

from repro.sweep.specio import (EXAMPLE_WIRE, SpecIOError,
                                detect_format, example_spec,
                                example_text, load_spec, mini_yaml,
                                parse_text, spec_from_doc)


class TestMiniYaml:
    def test_example_round_trips(self):
        doc = mini_yaml(example_text("yaml"))
        assert doc == EXAMPLE_WIRE

    def test_agrees_with_pyyaml_when_available(self):
        try:
            import yaml
        except ImportError:
            pytest.skip("PyYAML not installed")
        text = example_text("yaml")
        assert yaml.safe_load(text) == mini_yaml(text)

    def test_block_lists_and_nesting(self):
        doc = mini_yaml(
            "name: deep\n"
            "kernels:\n"
            "  - qrng_K2\n"
            "  - pathfinder\n"
            "axes:\n"
            "  peek: [false, true]\n"
            "  pc_bits:\n"
            "    - 0\n"
            "    - 4\n")
        assert doc["kernels"] == ["qrng_K2", "pathfinder"]
        assert doc["axes"]["peek"] == [False, True]
        assert doc["axes"]["pc_bits"] == [0, 4]

    def test_scalar_coercion_and_quotes(self):
        doc = mini_yaml(
            "a: 1.5\nb: -3\nc: true\nd: null\n"
            "e: 'quoted: text'\nf: \"false\"\ng: plain\n")
        assert doc == {"a": 1.5, "b": -3, "c": True, "d": None,
                       "e": "quoted: text", "f": "false",
                       "g": "plain"}

    def test_comments_stripped_outside_quotes(self):
        doc = mini_yaml("a: 5   # trailing\n# full line\nb: '#keep'\n")
        assert doc == {"a": 5, "b": "#keep"}

    def test_tabs_rejected(self):
        with pytest.raises(SpecIOError, match="tab"):
            mini_yaml("a:\n\tb: 1\n")

    def test_inconsistent_indent_rejected(self):
        with pytest.raises(SpecIOError):
            mini_yaml("a:\n    b: 1\n  c: 2\n")

    def test_empty_document(self):
        assert mini_yaml("") == {}
        assert mini_yaml("# only comments\n") == {}


class TestLoading:
    def test_json_example_loads(self):
        assert parse_text(example_text("json"), "json") == EXAMPLE_WIRE

    def test_bad_json_raises(self):
        with pytest.raises(SpecIOError, match="JSON"):
            parse_text("{nope", "json")

    def test_unknown_format_raises(self):
        with pytest.raises(SpecIOError, match="format"):
            parse_text("{}", "toml")

    def test_detect_format(self):
        assert detect_format("sweep.json") == "json"
        assert detect_format("sweep.yaml") == "yaml"
        assert detect_format("sweep.YML") == "yaml"
        with pytest.raises(SpecIOError):
            detect_format("sweep.txt")

    def test_load_spec_yaml_and_json_agree(self, tmp_path):
        ypath = tmp_path / "s.yaml"
        jpath = tmp_path / "s.json"
        ypath.write_text(example_text("yaml"))
        jpath.write_text(example_text("json"))
        yspec, jspec = load_spec(ypath), load_spec(jpath)
        assert yspec == jspec == example_spec()
        assert yspec.digest() == jspec.digest()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SpecIOError, match="cannot read"):
            load_spec(tmp_path / "absent.json")

    def test_spec_from_doc_requires_mapping(self):
        with pytest.raises(SpecIOError, match="mapping"):
            spec_from_doc(["not", "a", "mapping"])

    def test_wire_errors_carry_source(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 1, "kernels": []}')
        with pytest.raises(SpecIOError, match="bad.json"):
            load_spec(path)

    def test_example_spec_is_valid(self):
        spec = example_spec()
        assert spec.grid_size == 32
        assert spec.name == "ladder-mini"
