"""Section V-B — slice bit-width design space.

Paper: 8-bit slices are the best option; they let the supply scale to
~60 % of the reference voltage and give 75-87 % potential energy
savings per adder.
"""

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import table
from repro.circuits.characterize import (best_slice_width,
                                         nominal_period_ps,
                                         slice_bitwidth_sweep)


def test_slice_bitwidth_sweep(benchmark, artifact_dir):
    points = benchmark.pedantic(slice_bitwidth_sweep, rounds=1,
                                iterations=1)

    rows = [(p.slice_width, p.n_slices, f"{p.vdd:.2f}",
             f"{p.vdd_fraction:.0%}", f"{p.datapath_energy_fj:.0f}",
             f"{p.overhead_energy_fj:.0f}", f"{p.total_energy_fj:.0f}",
             f"{p.potential_saving:.1%}", f"{p.net_saving:.1%}")
            for p in points]
    txt = table(
        "slice bit-width design space (64-bit adder)",
        ["width", "slices", "Vdd", "Vdd/nom", "datapath fJ",
         "overhead fJ", "total fJ", "potential", "net"],
        rows)
    best = best_slice_width(points)
    p8 = next(p for p in points if p.slice_width == 8)
    txt += (f"\n\nnominal period: {nominal_period_ps():.0f} ps"
            f"\nbest slice width: {best}   (paper: 8)"
            f"\n8-bit voltage: {p8.vdd_fraction:.0%} of nominal "
            "(paper: 60%)"
            f"\n8-bit potential saving: {p8.potential_saving:.1%} "
            "(paper band: 75-87%)")
    save_artifact(artifact_dir, "slice_bitwidth.txt", txt)

    assert best == 8, "the paper's chosen slice width must win"
    assert 0.50 <= p8.vdd_fraction <= 0.70
    assert 0.65 <= p8.potential_saving <= 0.90
    savings = [p.potential_saving for p in points]
    assert savings == sorted(savings, reverse=True), \
        "smaller slices always have more datapath headroom"
