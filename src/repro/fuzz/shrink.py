"""Counterexample minimization (delta debugging over the mini-AST).

A failing kernel from the generator has ~10–40 statements of which
usually two or three matter.  :func:`minimize` greedily reduces the
program while a caller-supplied predicate (*does this candidate still
fail the same oracle?*) stays true, using only the structural edits
the three-address form makes safe:

* **drop** — remove one statement (rejected by the scope check when a
  later statement uses its destination);
* **unwrap** — replace a ``where``/``range``/``inline`` block with its
  body (the block statement itself was the irrelevant part);
* **simplify** — shrink literal atoms toward ``0``/``1``, collapse
  loops to one trip, and redirect name operands at the prologue's
  ``t0`` so the drop pass can then remove the old producer.

Passes repeat to a fixpoint under an evaluation budget; every
candidate is validated with :func:`~repro.fuzz.kast.program_ok` before
the (expensive) predicate runs, and a predicate that *raises* counts
as "different failure" — minimization never trades one bug for
another.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.fuzz.kast import (Alloc, Atom, Call, Inline, Loop, Op,
                             Program, Raw, Stmt, Where, all_paths,
                             child_body, get_at, program_ok, splice_at)

#: default cap on predicate evaluations per minimization
MAX_EVALS = 400

#: the always-defined prologue name operands are redirected at
_ANCHOR = "t0"


@dataclass
class ShrinkOutcome:
    """What :func:`minimize` did."""

    program: Program
    evaluations: int
    reduced_from: int

    @property
    def size(self) -> int:
        return self.program.size()


class _Budget:
    """Counts predicate evaluations; refuses when spent."""

    def __init__(self, predicate: Callable[[Program], bool],
                 max_evals: int) -> None:
        self._predicate = predicate
        self.remaining = max_evals
        self.spent = 0

    def check(self, candidate: Program) -> bool:
        if self.remaining <= 0 or not program_ok(candidate):
            return False
        self.remaining -= 1
        self.spent += 1
        try:
            return bool(self._predicate(candidate))
        except Exception:
            return False


def _drop_pass(program: Program, budget: _Budget) -> Program:
    """Remove statements one at a time, deepest-last-first so earlier
    paths stay valid across accepted edits within the pass."""
    for path in reversed(all_paths(program.body)):
        candidate = dataclasses.replace(
            program, body=splice_at(program.body, path, ()))
        if budget.check(candidate):
            program = candidate
    return program


def _unwrap_pass(program: Program, budget: _Budget) -> Program:
    """Replace block statements with their bodies."""
    for path in reversed(all_paths(program.body)):
        stmt = get_at(program.body, path)
        body = child_body(stmt)
        if body is None:
            continue
        candidate = dataclasses.replace(
            program, body=splice_at(program.body, path, body))
        if budget.check(candidate):
            program = candidate
    return program


def _atom_candidates(atom: Atom) -> List[Atom]:
    if isinstance(atom, bool):
        return []
    if isinstance(atom, int):
        return [c for c in (0, 1) if c != atom]
    if isinstance(atom, float):
        return [c for c in (0.0, 1.0) if c != atom]
    if atom != _ANCHOR:
        return [_ANCHOR]
    return []


def _simplified(stmt: Stmt) -> List[Stmt]:
    """Single-edit simpler variants of one statement, best first."""
    out: List[Stmt] = []
    if isinstance(stmt, (Op, Call)):
        for i, atom in enumerate(stmt.args):
            for repl in _atom_candidates(atom):
                args: Tuple[Atom, ...] = (stmt.args[:i] + (repl,)
                                          + stmt.args[i + 1:])
                out.append(dataclasses.replace(stmt, args=args))
    elif isinstance(stmt, Where):
        for repl in _atom_candidates(stmt.cond):
            out.append(dataclasses.replace(stmt, cond=repl))
    elif isinstance(stmt, Loop):
        if stmt.trips > 1:
            out.append(dataclasses.replace(stmt, trips=1))
    elif isinstance(stmt, Alloc):
        if stmt.size > 1:
            out.append(dataclasses.replace(stmt, size=1))
    elif isinstance(stmt, (Inline, Raw)):
        pass
    return out


def _simplify_pass(program: Program, budget: _Budget) -> Program:
    for path in reversed(all_paths(program.body)):
        stmt = get_at(program.body, path)
        for variant in _simplified(stmt):
            candidate = dataclasses.replace(
                program, body=splice_at(program.body, path, (variant,)))
            if budget.check(candidate):
                program = candidate
                break
    return program


def minimize(program: Program,
             still_fails: Callable[[Program], bool],
             max_evals: int = MAX_EVALS) -> ShrinkOutcome:
    """Greedy fixpoint of drop/unwrap/simplify under ``still_fails``.

    ``still_fails`` receives a *candidate program* and must return
    True iff it reproduces the original failure (same oracle).  The
    input program is assumed failing; the result is the smallest
    equivalent the budget reached and always satisfies
    :func:`program_ok`.
    """
    budget = _Budget(still_fails, max_evals)
    reduced_from = program.size()
    while True:
        before = (program.size(), program.body)
        program = _drop_pass(program, budget)
        program = _unwrap_pass(program, budget)
        program = _simplify_pass(program, budget)
        if (program.size(), program.body) == before \
                or budget.remaining <= 0:
            break
    return ShrinkOutcome(program=program, evaluations=budget.spent,
                         reduced_from=reduced_from)


__all__ = ["MAX_EVALS", "ShrinkOutcome", "minimize"]
