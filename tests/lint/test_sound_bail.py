"""Sound bailing: a refused construct must suppress ALL static claims.

Every kernel here contains a ``k.range`` loop that would normally
export a ``#loop-inc`` carry fact — plus one construct the IR lowering
refuses (:class:`~repro.lint.ir.LoweringError`).  The contract the
fuzzer's static-facts oracle enforces dynamically is checked here
statically for each refused construct: the function summary is
``bailed`` with a reason, it exports **no** carry facts, and the flow
analysis claims **no** adder or barrier sites — a bailed analysis must
claim nothing at all, because unproven "facts" would be injected into
the speculative adder as truth.
"""

import ast
import textwrap

import pytest

from repro.lint.absint import analyze_source
from repro.lint.facts import module_facts_from_source
from repro.lint.ir import LoweringError, lower_function

#: the loop that would export a #loop-inc fact in a clean kernel
_FACT_LOOP = """
    acc = k.iadd(k.thread_id(), 1)
    for i in k.range(4):
        acc = k.iadd(acc, 0)
    k.st_global(out, k.thread_id(), acc)
"""

#: constructs the IR lowering refuses (raise LoweringError)
BAIL_CONSTRUCTS = {
    "listcomp_ctx": "vals = [k.iadd(acc, c) for c in (1, 2)]",
    "setcomp_ctx": "s = {k.iadd(acc, c) for c in (1, 2)}",
    "dictcomp_ctx": "d = {c: k.iadd(acc, c) for c in (1, 2)}",
    "genexp_ctx": "g = sum(k.iadd(acc, c).size for c in (1, 2))",
    "lambda_ctx": "f = lambda: k.iadd(acc, 1)",
    "try_except": textwrap.dedent("""\
        try:
            acc = k.iadd(acc, 3)
        except ValueError:
            pass"""),
    "nested_def_ctx": textwrap.dedent("""\
        def helper():
            return k.iadd(acc, 1)
        acc = helper()"""),
    "yield_expr": "yield acc",
    "where_arity": textwrap.dedent("""\
        with k.where(acc, acc):
            acc = k.iadd(acc, 1)"""),
    "range_arity": textwrap.dedent("""\
        for j in k.range(1, 2, 3, 4):
            acc = k.iadd(acc, 1)"""),
}

#: near-misses that DO lower — the refusal boundary, pinned so it
#: cannot silently widen (over-refusing loses real coverage)
LOWERED_FINE = {
    "with_open": textwrap.dedent("""\
        with open('/dev/null') as fh:
            acc = k.iadd(acc, 1)"""),
    "while_loop": textwrap.dedent("""\
        while False:
            acc = k.iadd(acc, 1)"""),
    "listcomp_no_ctx": "vals = [c + 1 for c in (1, 2)]",
    "dynamic_inline_tag": textwrap.dedent("""\
        with k.inline('d' + 'yn'):
            acc = k.iadd(acc, 5)"""),
}


def _kernel_src(construct: str) -> str:
    body = textwrap.indent(
        textwrap.dedent(_FACT_LOOP).strip("\n"), "    ")
    extra = textwrap.indent(construct, "    ")
    return (f"import numpy as np\n\n\n"
            f"def bail_kernel(k, data, out):\n{body}\n{extra}\n")


def test_clean_variant_exports_the_fact():
    """Sanity: without the refused construct the loop fact IS there."""
    src = _kernel_src("pass")
    facts = module_facts_from_source(src, "clean.py")
    assert any(label.endswith("#loop-inc") for label in facts), facts
    summaries = analyze_source(src, "clean.py")
    assert not summaries["bail_kernel"].bailed


@pytest.mark.parametrize("name", sorted(BAIL_CONSTRUCTS))
def test_refused_construct_bails_and_claims_nothing(name):
    src = _kernel_src(BAIL_CONSTRUCTS[name])
    summaries = analyze_source(src, f"{name}.py")
    summary = summaries["bail_kernel"]
    assert summary.bailed, f"{name} did not bail"
    assert summary.reason, f"{name} bailed without a reason"
    assert not summary.adder_sites, \
        f"{name} bailed but still claims adder sites"
    assert not summary.barrier_sites, \
        f"{name} bailed but still claims barrier sites"
    facts = module_facts_from_source(src, f"{name}.py")
    assert facts == {}, \
        f"{name} bailed but still exports facts: {sorted(facts)}"


@pytest.mark.parametrize("name", sorted(BAIL_CONSTRUCTS))
def test_refusal_is_a_lowering_error_not_a_crash(name):
    """The refusal surfaces as LoweringError from lower_function (the
    analyzer catches exactly that) — never any other exception."""
    src = _kernel_src(BAIL_CONSTRUCTS[name])
    tree = ast.parse(src)
    fn = next(n for n in tree.body if isinstance(n, ast.FunctionDef))
    with pytest.raises(LoweringError):
        lower_function(fn, f"{name}.py")


@pytest.mark.parametrize("name", sorted(LOWERED_FINE))
def test_near_miss_still_lowers_and_keeps_the_fact(name):
    src = _kernel_src(LOWERED_FINE[name])
    summary = analyze_source(src, f"{name}.py")["bail_kernel"]
    assert not summary.bailed, \
        f"{name} unexpectedly bailed: {summary.reason}"
    facts = module_facts_from_source(src, f"{name}.py")
    assert any(label.endswith("#loop-inc") for label in facts), \
        f"{name} lost the loop fact"


def test_bail_reason_names_the_construct():
    src = _kernel_src(BAIL_CONSTRUCTS["listcomp_ctx"])
    summary = analyze_source(src, "r.py")["bail_kernel"]
    assert "ListComp" in summary.reason or "not lowerable" \
        in summary.reason
