"""Per-kernel functional correctness and trace sanity.

Every kernel must (a) compute the right answer where one is defined —
these are real algorithm implementations, not op generators — and
(b) produce a trace with the structural properties the studies rely on.
"""

import numpy as np
import pytest

from repro.isa.opcodes import MixCategory
from repro.kernels import (backprop, binomial, btree, dct8x8, dwt2d,
                           histogram, kmeans, mergesort, mriq, pathfinder,
                           qrng, sad, sgemm, sobol, sorting_networks,
                           sradv1, walsh)

SCALE = 0.2


class TestPathfinder:
    def test_dp_matches_reference(self):
        prep = pathfinder.prepare(scale=SCALE, seed=3)
        prep.run()
        wall = prep.params["gpu_wall"].data
        src = prep.params["gpu_src"].data
        dst = prep.params["gpu_dst"].data
        cols = prep.params["cols"]
        iteration = prep.params["iteration"]
        start = prep.params["start_step"]
        # reference DP, restricted to columns interior to each block
        # tile (the halo shrinks the valid region per iteration)
        grid = np.arange(cols)
        bs = pathfinder.BLOCK_SIZE
        small = bs - 2 * iteration
        # the kernel's own math was already exercised; verify cells far
        # from tile borders match the unrestricted DP
        ref = src.astype(np.int64).copy()
        for i in range(iteration):
            left = np.roll(ref, 1)
            right = np.roll(ref, -1)
            best = np.minimum(np.minimum(left, ref), right)
            ref = best + wall[(start + i) * cols + grid]
        tile_pos = grid - (grid // small) * small
        interior = (tile_pos > iteration) & (tile_pos < small - iteration)
        interior &= (grid > iteration) & (grid < cols - iteration - 1)
        assert np.array_equal(dst[interior], ref[interior])

    def test_trace_has_loop_structure(self):
        run = pathfinder.prepare(scale=SCALE, seed=0).run()
        pcs, counts = np.unique(run.trace.pc, return_counts=True)
        # the in-loop PCs each execute many times
        assert counts.max() > 100
        assert len(pcs) >= 7     # at least the paper's 7 addition PCs


class TestKmeans:
    def test_membership_is_nearest_centre(self):
        prep = kmeans.prepare(scale=SCALE, seed=2)
        prep.run()
        n = prep.params["npoints"]
        nf = prep.params["nfeatures"]
        nc = prep.params["nclusters"]
        feats = prep.params["features"].data.reshape(nf, n)
        centres = prep.params["clusters"].data.reshape(nc, nf)
        membership = prep.params["membership"].data[:n]
        dists = ((feats.T[:, None, :].astype(np.float32)
                  - centres[None, :, :]) ** 2).sum(axis=2)
        expect = dists.argmin(axis=1)
        agree = (membership == expect).mean()
        assert agree > 0.99     # fp32 summation-order ties allowed


class TestBackprop:
    def test_layerforward_partial_sums(self):
        prep = backprop.prepare_k1(scale=SCALE, seed=1)
        prep.run()
        n_in = prep.params["n_inputs"]
        n_hid = prep.params["n_hidden"]
        inputs = prep.params["inputs"].data
        weights = prep.params["weights"].data.reshape(n_in, n_hid)
        sums = prep.params["partial_sums"].data
        h = backprop.HEIGHT
        for blk in range(min(3, n_in // h)):
            rows = slice(blk * h, (blk + 1) * h)
            expect = (inputs[rows, None] * weights[rows]).sum(axis=0)
            got = sums[blk * n_hid:(blk + 1) * n_hid]
            assert np.allclose(got, expect, rtol=1e-4)

    def test_adjust_weights_update_rule(self):
        prep = backprop.prepare_k2(scale=SCALE, seed=1)
        w_before = prep.params["w"].data.copy()
        old_before = prep.params["oldw"].data.copy()
        ly = prep.params["ly"].data
        delta = prep.params["delta"].data
        n_hid = prep.params["n_hidden"]
        prep.run()
        w_after = prep.params["w"].data
        # check one touched weight
        row, tx = 1, 2
        index = row * (n_hid + 1) + tx
        grad = backprop.ETA * delta[tx] * ly[row]
        dw = grad + backprop.MOMENTUM * old_before[index]
        assert w_after[index] == pytest.approx(w_before[index] + dw,
                                               rel=1e-5)


class TestSgemm:
    def test_matches_numpy(self):
        prep = sgemm.prepare(scale=0.5, seed=4)
        m, n, kk = (prep.params[x] for x in ("m", "n", "kk"))
        a = prep.params["a"].data.reshape(m, kk).copy()
        b = prep.params["b"].data.reshape(kk, n).copy()
        c0 = prep.params["c"].data.reshape(m, n).copy()
        prep.run()
        got = prep.params["c"].data.reshape(m, n)
        expect = 1.0 * (a @ b) + 0.5 * c0
        assert np.allclose(got, expect, rtol=1e-4)

    def test_ffma_is_a_major_mix_component(self):
        """The tiled inner product makes FFMA a dominant FPU-add source
        (1 per 5 inner-loop instructions without register blocking)."""
        run = sgemm.prepare(scale=0.5, seed=4).run()
        mix = run.insts.mix()
        assert mix[MixCategory.FPU_ADD] > 0.12 * sum(mix.values())


class TestSortingKernels:
    def test_bitonic_shared_sorts_each_chunk(self):
        prep = sorting_networks.prepare_k1(scale=SCALE, seed=5)
        prep.run()
        keys = prep.params["keys"].data
        chunk = sorting_networks.CHUNK
        for c in range(len(keys) // chunk):
            part = keys[c * chunk:(c + 1) * chunk]
            assert (np.diff(part) >= 0).all(), f"chunk {c} unsorted"

    def test_merge_global_pass_moves_keys(self):
        prep = sorting_networks.prepare_k2(scale=SCALE, seed=5)
        before = prep.params["keys"].data.copy()
        prep.run()
        after = prep.params["keys"].data
        assert sorted(before) == sorted(after)   # permutation only

    def test_mergesort_shared_sorts_each_tile(self):
        prep = mergesort.prepare_k1(scale=SCALE, seed=6)
        prep.run()
        keys = prep.params["keys"].data
        chunk = mergesort.CHUNK
        for c in range(len(keys) // chunk):
            part = keys[c * chunk:(c + 1) * chunk]
            assert (np.diff(part) >= 0).all()

    def test_merge_intervals_produces_sorted_pairs(self):
        prep = mergesort.prepare_k2(scale=SCALE, seed=6)
        prep.run()
        dst = prep.params["dst"].data
        tile = prep.params["tile"]
        for p in range(len(dst) // (2 * tile)):
            pair = dst[p * 2 * tile:(p + 1) * 2 * tile]
            assert (np.diff(pair) >= 0).all(), f"pair {p} unsorted"


class TestBtree:
    def test_point_queries_find_leaf_values(self):
        prep = btree.prepare_k1(scale=SCALE, seed=7)
        prep.run()
        answers = prep.params["answers"].data
        n_q = prep.params["n_queries"]
        # every query key exists in the tree; answers are leaf values
        # (key+1), and must be > 0 (a real leaf was reached)
        assert (answers[:n_q] > 0).all()

    def test_range_queries_nonnegative_span(self):
        prep = btree.prepare_k2(scale=SCALE, seed=7)
        prep.run()
        answers = prep.params["answers"].data
        n_q = prep.params["n_queries"]
        assert (answers[:n_q] >= 0).all()


class TestHistogram:
    def test_partial_histograms_sum_to_data(self):
        prep = histogram.prepare(scale=SCALE, seed=8)
        prep.run()
        partial = prep.params["partial_hist"].data
        data = prep.params["data"].data
        bins = histogram.BINS
        got = partial.reshape(-1, bins).sum(axis=0)
        bytes_ = data.view(np.uint8) & (bins - 1)
        expect = np.bincount(bytes_, minlength=bins)
        # per-thread sub-histograms are conflict-free: exact counts
        assert np.array_equal(got, expect)


class TestNumericalKernels:
    def test_dct_energy_preserved(self):
        """An orthonormal 8-point DCT preserves row L2 norms."""
        prep = dct8x8.prepare(scale=SCALE, seed=9)
        img = prep.params["image"].data.copy()
        prep.run()
        coef = prep.params["coeffs"].data
        w = prep.params["blocks_per_row"] * 8
        img2 = (img.reshape(-1, w) - 128).reshape(-1, 8)
        coef2 = coef.reshape(-1, 8)
        assert np.allclose((img2 ** 2).sum(axis=1),
                           (coef2 ** 2).sum(axis=1), rtol=1e-3)

    def test_walsh_batch1_is_walsh_transform(self):
        prep = walsh.prepare_k2(scale=SCALE, seed=10)
        data_before = prep.params["data"].data.copy()
        prep.run()
        data_after = prep.params["data"].data
        chunk = 2 * walsh.BLOCK
        # reference Walsh-Hadamard on the first chunk
        ref = data_before[:chunk].astype(np.float64).copy()
        h = 1
        while h < chunk:
            for i in range(0, chunk, h * 2):
                for j in range(i, i + h):
                    x, y = ref[j], ref[j + h]
                    ref[j], ref[j + h] = x + y, x - y
            h *= 2
        assert np.allclose(np.sort(np.abs(data_after[:chunk])),
                           np.sort(np.abs(ref)), rtol=1e-3)

    def test_dwt_lifting_predict_step(self):
        prep = dwt2d.prepare(scale=SCALE, seed=11)
        img = prep.params["image"].data.copy()
        prep.run()
        high = prep.params["high_out"].data
        # detail coefficient of pair 1 (interior): d = odd - (s0+s1)>>1
        i = 1
        s0, d0, s1 = img[2 * i], img[2 * i + 1], img[2 * i + 2]
        assert high[i] == d0 - ((s0 + s1) >> 1)

    def test_binomial_prices_positive_and_below_spot(self):
        prep = binomial.prepare(scale=SCALE, seed=12)
        prep.run()
        prices = prep.params["results"].data
        spots = prep.params["spots"].data
        assert (prices >= 0).all()
        assert (prices <= spots * 3).all()

    def test_sradv1_coefficients_clamped(self):
        prep = sradv1.prepare(scale=SCALE, seed=13)
        prep.run()
        c = prep.params["c_out"].data
        assert (c >= 0).all() and (c <= 1).all()

    def test_mriq_accumulates_bounded_magnitudes(self):
        prep = mriq.prepare(scale=SCALE, seed=14)
        prep.run()
        qr = prep.params["qr"].data
        phi = prep.params["phi_mag"].data
        assert np.abs(qr).max() <= phi.sum() + 1e-3

    def test_sad_zero_for_identical_frames(self):
        prep = sad.prepare(scale=SCALE, seed=15)
        prep.params["ref"].data[:] = prep.params["cur"].data
        prep.run()
        sads = prep.params["sad_out"].data
        # the zero-offset candidate (cand == SEARCH//2) must be 0
        zero_cand = sads[sad.SEARCH // 2::sad.SEARCH]
        assert (zero_cand == 0).all()


class TestQuasirandom:
    def test_qrng_output_in_unit_interval(self):
        prep = qrng.prepare_k1(scale=SCALE, seed=16)
        prep.run()
        out = prep.params["output"].data
        assert (out >= 0).all() and (out < 1).all()

    def test_qrng_deterministic(self):
        a = qrng.prepare_k1(scale=SCALE, seed=16)
        a.run()
        b = qrng.prepare_k1(scale=SCALE, seed=16)
        b.run()
        assert np.array_equal(a.params["output"].data,
                              b.params["output"].data)

    def test_inverse_cnd_monotone_in_central_region(self):
        prep = qrng.prepare_k2(scale=SCALE, seed=17)
        prep.run()
        out = prep.params["output"].data
        samples = prep.params["samples"].data
        central = (samples > 0.2) & (samples < 0.8)
        order = np.argsort(samples[central])
        assert (np.diff(out[central][order]) >= -1e-4).all()

    def test_sobol_covers_unit_interval(self):
        prep = sobol.prepare(scale=SCALE, seed=18)
        prep.run()
        out = prep.params["output"].data
        assert (out >= 0).all() and (out < 1).all()
        assert out.std() > 0.2      # actually spreads out
