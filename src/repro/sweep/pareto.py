"""Incremental Pareto frontier over sweep objectives.

The sweep optimises three objectives per design point, aggregated over
the kernel list:

* ``energy_saved`` — mean system energy saving (maximise),
* ``misprediction_rate`` — mean thread misprediction rate (minimise),
* ``perf_overhead`` — mean timing slowdown (minimise).

:func:`dominates` is *strict Pareto dominance*: at least as good in
every objective and strictly better in at least one.  It is a strict
partial order (irreflexive, asymmetric, transitive — property-tested),
which is what makes the frontier independent of the order points
arrive in: :class:`ParetoFrontier.add` inserts a point unless an
existing point dominates it and evicts every point the newcomer
dominates, so the surviving set is exactly the non-dominated subset of
everything ever added.

Pruning hooks on :meth:`ParetoFrontier.dominated_by`: if a frontier
point dominates a candidate's *optimistic completion bound* (the best
final objectives it could still reach), it dominates every completion
of the candidate — transitivity then keeps the candidate off the final
frontier even if the dominating point is itself later evicted.  That
is the invariant behind "pruning never changes the surviving
frontier".

This module is pure (no I/O, no observability side effects) so the
property tests can hammer it with synthetic objective spaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

#: The sweep's objectives and the sense each is optimised in.
OBJECTIVES: Dict[str, str] = {
    "energy_saved": "max",
    "misprediction_rate": "min",
    "perf_overhead": "min",
}


class ParetoError(ValueError):
    """A malformed point (missing objectives) or a violated
    equivalence claim (two members of one class disagreeing)."""


def _check_objectives(objectives: Mapping[str, float],
                      senses: Mapping[str, str]) -> None:
    missing = [name for name in senses if name not in objectives]
    if missing:
        raise ParetoError(f"point is missing objectives {missing}")


@dataclass(frozen=True)
class ParetoPoint:
    """One completed design point: a config class and its aggregated
    objectives.

    ``key`` is the *canonical* config name of the point's equivalence
    class; ``members`` lists every grid config that provably shares
    these numbers; ``fields`` are the canonical SpeculationConfig
    fields; ``per_kernel`` holds the unaggregated per-kernel objective
    values the report renders.
    """

    key: str
    objectives: Mapping[str, float]
    fields: Mapping[str, Any] = field(default_factory=dict)
    members: Tuple[str, ...] = ()
    per_kernel: Mapping[str, Mapping[str, float]] = \
        field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "objectives": dict(self.objectives),
            "fields": dict(self.fields),
            "members": list(self.members),
            "per_kernel": {k: dict(v)
                           for k, v in self.per_kernel.items()},
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "ParetoPoint":
        key = doc.get("key")
        objectives = doc.get("objectives")
        if not isinstance(key, str) \
                or not isinstance(objectives, Mapping):
            raise ParetoError(f"malformed pareto point: {doc!r}")
        return cls(
            key=key, objectives=dict(objectives),
            fields=dict(doc.get("fields", {})),
            members=tuple(doc.get("members", ())),
            per_kernel={k: dict(v) for k, v
                        in doc.get("per_kernel", {}).items()})


def dominates(a: Mapping[str, float], b: Mapping[str, float],
              senses: Mapping[str, str] = OBJECTIVES) -> bool:
    """Strict Pareto dominance of objective vector ``a`` over ``b``."""
    _check_objectives(a, senses)
    _check_objectives(b, senses)
    strict = False
    for name, sense in senses.items():
        av, bv = a[name], b[name]
        better = av > bv if sense == "max" else av < bv
        worse = av < bv if sense == "max" else av > bv
        if worse or av != av:       # worse, or NaN never dominates
            return False
        strict = strict or better
    return strict


class ParetoFrontier:
    """The non-dominated subset of every point added so far.

    Order-invariant: for any arrival order of the same point set the
    surviving frontier is identical (equal-objective points from
    different classes all survive — none dominates another).
    """

    def __init__(self, senses: Optional[Mapping[str, str]] = None):
        self.senses: Dict[str, str] = dict(senses if senses is not None
                                           else OBJECTIVES)
        self._points: Dict[str, ParetoPoint] = {}

    def __len__(self) -> int:
        return len(self._points)

    def __contains__(self, key: str) -> bool:
        return key in self._points

    def points(self) -> Tuple[ParetoPoint, ...]:
        """The frontier, deterministically ordered by key."""
        return tuple(self._points[k] for k in sorted(self._points))

    def add(self, point: ParetoPoint) -> bool:
        """Insert a completed point.  Returns True when the point
        survives (it is not dominated by any current member); every
        member the newcomer dominates is evicted."""
        _check_objectives(point.objectives, self.senses)
        if point.key in self._points:
            raise ParetoError(
                f"frontier already holds a point for {point.key!r}")
        for other in self._points.values():
            if dominates(other.objectives, point.objectives,
                         self.senses):
                return False
        evicted = [k for k, other in self._points.items()
                   if dominates(point.objectives, other.objectives,
                                self.senses)]
        for k in evicted:
            del self._points[k]
        self._points[point.key] = point
        return True

    def dominated_by(self,
                     objectives: Mapping[str, float]
                     ) -> Optional[ParetoPoint]:
        """A frontier point dominating ``objectives``, or ``None``.

        Feeding a candidate's optimistic completion bound here yields
        a *sound* prune decision: dominance of the bound implies
        dominance of every completion (see module docstring).
        """
        for other in self._points.values():
            if dominates(other.objectives, objectives, self.senses):
                return other
        return None


def frontiers_equal(a: List[Any], b: List[Any]) -> bool:
    """Exact equality of two frontier lists (wire docs or
    :class:`ParetoPoint` objects, freely mixed): same keys, same
    objective floats (NaN compares equal to NaN), member sets equal."""
    def canon(points: List[Any]) -> List[Tuple[Any, ...]]:
        rows = []
        for doc in points:
            point = doc if isinstance(doc, ParetoPoint) \
                else ParetoPoint.from_wire(doc)
            objs = tuple(sorted(
                (name, "nan" if value != value else value)
                for name, value in point.objectives.items()))
            rows.append((point.key, objs, tuple(sorted(point.members))))
        return sorted(rows)
    return canon(list(a)) == canon(list(b))


__all__ = ["OBJECTIVES", "ParetoError", "ParetoFrontier", "ParetoPoint",
           "dominates", "frontiers_equal"]
