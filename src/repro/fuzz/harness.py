"""Materialize and execute generated kernels.

A generated kernel only becomes comparable to its static analysis once
its *runtime line numbers* match its *AST line numbers*: the PC labels
the simulator interns come from live stack frames
(``function:f_lineno``), while the abstract interpreter reads the same
lines from ``ast.parse``.  :func:`materialize` therefore writes the
rendered source to a real file and ``compile()``s it with that path —
tracebacks, ``linecache`` (which the sanitizer's suppression check
uses) and ``st2-lint`` all see the same module a suite kernel would.

Device buffers are derived deterministically from the kernel's data
seed; the integer buffer mixes full-range and small values so carry
chains of every length occur.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict

import numpy as np

from repro.sim.config import LaunchConfig
from repro.sim.functional import GridLauncher

#: cells in each of the four global buffers
BUFFER_CELLS = 256


@dataclass
class KernelBundle:
    """A generated kernel materialized to disk and importable."""

    name: str
    source: str
    path: str
    fn: Callable[..., None]
    blocks: int
    threads: int
    data_seed: int

    @property
    def total_threads(self) -> int:
        return self.blocks * self.threads


def materialize(source: str, name: str, directory: str,
                fn_name: str = "fuzz_kernel",
                filename: str = "") -> KernelBundle:
    """Write ``source`` under ``directory`` and bind its kernel
    function.  ``blocks``/``threads``/``data_seed`` are filled by
    :func:`bundle_for`; this low-level form exists for corpus replay,
    which carries its own launch geometry."""
    path = os.path.join(directory, filename or f"{name}.py")
    with open(path, "w") as fh:
        fh.write(source)
    namespace: Dict[str, Any] = {"np": np}
    code = compile(source, path, "exec")
    exec(code, namespace)
    fn = namespace[fn_name]
    return KernelBundle(name=name, source=source, path=path, fn=fn,
                        blocks=1, threads=32, data_seed=0)


def bundle_for(kernel: Any, directory: str,
               filename: str = "") -> KernelBundle:
    """Materialize one :class:`~repro.fuzz.gen.GeneratedKernel`."""
    bundle = materialize(kernel.source, kernel.name, directory,
                         filename=filename)
    bundle.blocks = kernel.blocks
    bundle.threads = kernel.threads
    bundle.data_seed = kernel.data_seed
    return bundle


def device_data(data_seed: int) -> Dict[str, np.ndarray]:
    """The deterministic initial contents of the four global buffers."""
    rng = np.random.default_rng(data_seed)
    ints = rng.integers(0, 1 << 31, size=BUFFER_CELLS, dtype=np.int64)
    small = rng.integers(0, 256, size=BUFFER_CELLS, dtype=np.int64)
    take_small = rng.random(BUFFER_CELLS) < 0.3
    ints = np.where(take_small, small, ints)
    flts = (rng.standard_normal(BUFFER_CELLS) * 2.0).astype(np.float32)
    return {
        "ints": ints,
        "flts": flts,
        "iout": np.zeros(BUFFER_CELLS, dtype=np.int64),
        "fout": np.zeros(BUFFER_CELLS, dtype=np.float32),
    }


def execute(bundle: KernelBundle, sanitize: bool = False) -> Any:
    """Run the kernel once; returns the
    :class:`~repro.sim.functional.KernelRun`.

    ``sanitize`` is explicit (never inherited from ``ST2_SANITIZE``):
    the oracles need one unsanitized run for trace capture and one
    sanitized run for the contract check, regardless of environment.
    """
    launcher = GridLauncher(seed=0, sanitize=sanitize)
    data = device_data(bundle.data_seed)
    params: Dict[str, Any] = {name: launcher.buffer(name, arr)
                              for name, arr in data.items()}
    params["n"] = bundle.total_threads
    launch = LaunchConfig(grid_blocks=bundle.blocks,
                          block_threads=bundle.threads)
    return launcher.run(bundle.fn, launch, name=bundle.name, **params)


__all__ = ["BUFFER_CELLS", "KernelBundle", "bundle_for", "device_data",
           "execute", "materialize"]
