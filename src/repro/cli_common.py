"""Shared CLI infrastructure for ``st2-run`` / ``st2-trace`` /
``st2-lint`` / ``st2-stats``.

Every repro CLI follows one contract:

* **exit codes** — ``0`` success, ``1`` findings / damage / regression
  (the tool ran fine but the checked thing is bad), ``2`` usage or
  input errors (argparse errors included: :class:`ArgumentParser`
  already exits 2);
* **``--json``** — every informational command can emit its result as
  one machine-readable JSON document on stdout instead of tables
  (:func:`add_json_flag` / :func:`emit_json`);
* **error reporting** — diagnostics go to stderr as ``prog: message``
  (:func:`fail`), never mixed into machine output;
* **pipe behaviour** — console entry points run through
  :func:`run_cli`, which maps ``BrokenPipeError`` (``st2-run --list |
  head``) to success and ``KeyboardInterrupt`` to 130.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: the exit-code contract shared by every repro CLI
EXIT_OK = 0          # success
EXIT_PROBLEMS = 1    # ran fine, found problems (lint findings, damaged
#                      store entries, out-of-band metrics)
EXIT_USAGE = 2       # usage / input errors


def build_parser(prog: str, description: str,
                 **kwargs) -> argparse.ArgumentParser:
    """An ArgumentParser wired for the shared contract (argparse's own
    usage errors already exit :data:`EXIT_USAGE`)."""
    return argparse.ArgumentParser(prog=prog, description=description,
                                   **kwargs)


def add_json_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the standard ``--json`` machine-output flag."""
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable JSON document "
                             "on stdout instead of tables")


def emit_json(payload, out=None) -> None:
    """Print one JSON document (the whole machine output of a command)."""
    out = out if out is not None else sys.stdout
    print(json.dumps(payload, indent=1, sort_keys=True), file=out)


def fail(prog: str, message: str, code: int = EXIT_USAGE) -> int:
    """Report ``prog: message`` on stderr and return the exit code —
    callers ``return fail(...)`` from their mains."""
    print(f"{prog}: {message}", file=sys.stderr)
    return code


def run_cli(main) -> int:
    """Run a CLI ``main()`` with the shared terminal behaviour:
    ``BrokenPipeError`` is success (output piped into ``head``),
    ``KeyboardInterrupt`` exits 130."""
    try:
        return main()
    except BrokenPipeError:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK
    except KeyboardInterrupt:
        return 130
