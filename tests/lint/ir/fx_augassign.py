"""IR-lowering fixture: augmented assigns feeding a ``k.range`` loop.

``acc += 2`` must lower to a binop + store (same dataflow as
``acc = acc + 2``), and the ``k.range`` latch must model the
generator's own increment (interval ``[0, 3] + 1``) regardless of any
body reassignment of the loop variable.
"""


def augassign_kernel(k, out):
    t = k.thread_id()
    acc = 0
    for i in k.range(4):
        acc += 2
        acc = k.iadd(acc, i)
        i = i * 10
    k.st_global(out, t, acc)
