"""Per-trace plans for the vectorized engine, with a small cache.

A *plan* bundles everything about one captured run that does not depend
on the :class:`~repro.core.predictors.SpeculationConfig` being
evaluated: the :class:`~repro.core.batch.TracePack` of derived adder
arrays and the :class:`~repro.sim.vec.timing.TimingPlan` of resolved
scheduling decisions, plus a memo of the static carry-fact overlay.

The stage-2 runner evaluates each trace under several configs (and the
static-peek ablation re-reads the same arrays), so plans are cached —
keyed by the unit's ``(kernel, scale, seed)`` identity, the same
triple that keys the trace store — with a small bounded LRU: grids
iterate configs per trace, so only a handful of traces are ever hot at
once, and a pack is a few padded copies of the trace columns that
should not accumulate for a whole suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.batch import TracePack, build_pack
from repro.core.predictors import trace_static_peek
from repro.sim.vec.timing import TimingPlan, build_timing_plan

#: traces kept planned at once (a grid evaluates configs per trace)
PLAN_CACHE_SIZE = 8

PlanKey = Tuple[str, float, int]


@dataclass
class TracePlan:
    """Config-independent plan of one captured kernel run."""

    n_rows: int
    n_insts: int
    pack: TracePack
    timing: TimingPlan
    # memo of the static carry-fact overlay; facts tables come from the
    # per-module memo in repro.lint.facts, so identity comparison of
    # the table object is the cache key
    _static_facts: Any = field(default=None, repr=False)
    _static_overlay: Optional[Tuple[np.ndarray, np.ndarray]] = \
        field(default=None, repr=False)

    def static_peek(self, trace: Any,
                    facts: Any) -> Tuple[np.ndarray, np.ndarray]:
        """``(known, value)`` of the compile-time facts over ``trace``."""
        if self._static_overlay is None or self._static_facts is not facts:
            self._static_facts = facts
            self._static_overlay = trace_static_peek(trace, facts)
        return self._static_overlay


_PLANS: Dict[PlanKey, TracePlan] = {}

#: memoised :func:`repro.sim.vec.engine.supported` verdicts.  The
#: verdict depends only on the captured trace the key identifies, so
#: the dispatch guard scans each trace's columns once per process, not
#: once per (trace x config) unit.  Lives here (not in ``engine``) so
#: :func:`clear_plans` resets every vec-side cache in one place.
_SUPPORTED: Dict[PlanKey, Optional[str]] = {}


def plan_for(run: Any, key: Optional[PlanKey] = None) -> TracePlan:
    """The (possibly cached) plan of ``run``.

    ``key`` is the unit's ``(kernel, scale, seed)``; without one the
    plan is built fresh and not cached.  A cached plan is only reused
    if its row counts still match the run (defensive: a key collision
    across processes with different code versions would otherwise read
    stale shapes).
    """
    if key is not None:
        plan = _PLANS.get(key)
        if (plan is not None and plan.n_rows == len(run.trace)
                and plan.n_insts == len(run.insts)):
            _PLANS[key] = _PLANS.pop(key)      # refresh LRU position
            return plan
    plan = TracePlan(n_rows=len(run.trace), n_insts=len(run.insts),
                     pack=build_pack(run.trace),
                     timing=build_timing_plan(run))
    if key is not None:
        _PLANS[key] = plan
        while len(_PLANS) > PLAN_CACHE_SIZE:
            _PLANS.pop(next(iter(_PLANS)))
    return plan


def clear_plans() -> None:
    """Drop every cached plan and supported-verdict memo (tests)."""
    _PLANS.clear()
    _SUPPORTED.clear()
