"""Section VI performance claim — ST2's execution-time overhead.

Paper: within 0.36 % of the baseline on average; the worst kernel is
dwt2d_K1 at a still-small 3.5 %.
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import hbar_chart


def _slowdowns(suite_evaluations):
    return {name: e.slowdown for name, e in suite_evaluations.items()}


def test_performance_overhead(benchmark, suite_evaluations,
                              artifact_dir):
    slows = benchmark.pedantic(_slowdowns, args=(suite_evaluations,),
                               rounds=1, iterations=1)

    names = list(slows)
    values = [max(slows[n], 0.0) for n in names]
    txt = hbar_chart("ST2 execution-time overhead per kernel",
                     names, values, fmt="{:7.3%}")
    avg = float(np.mean(list(slows.values())))
    worst_name = max(slows, key=slows.get)
    txt += (f"\n\naverage slowdown: {avg:.3%}   (paper: 0.36%)"
            f"\nworst kernel: {worst_name} at {slows[worst_name]:.2%}"
            "   (paper: dwt2d_K1 at 3.5%)")
    save_artifact(artifact_dir, "performance_overhead.txt", txt)

    assert avg < 0.01, "average slowdown must be well below 1%"
    assert slows[worst_name] < 0.06, "worst case must stay small"
    # the worst kernel should be one of the high-misprediction,
    # ALU-bound ones the paper identifies
    worst_eval = suite_evaluations[worst_name]
    assert worst_eval.misprediction_rate > 0.1
