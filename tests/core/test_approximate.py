"""Related-work adder baselines: ACA (approximate) and VLSA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitops
from repro.core.approximate import (AccuracyConfigurableAdder,
                                    VLSAAdder, compare_on_stream)
from repro.core.slices import AdderGeometry


class TestACA:
    def test_short_carries_exact(self, rng):
        """Operands whose chains fit the window add exactly."""
        adder = AccuracyConfigurableAdder(AdderGeometry(64), window=8)
        a = rng.integers(0, 100, 200)
        b = rng.integers(0, 100, 200)
        out = adder.add(a, b)
        assert out.error_rate == 0.0
        assert np.array_equal(out.result, out.exact)

    def test_long_chain_is_silently_wrong(self):
        """The defining approximate-adder failure: a full-width
        propagate chain truncated at the window."""
        adder = AccuracyConfigurableAdder(AdderGeometry(32), window=8)
        a = np.array([0x0000FFFF], dtype=np.uint64)
        b = np.array([0x00000001], dtype=np.uint64)
        out = adder.add(a, b)
        assert out.erroneous[0]
        assert int(out.result[0]) != 0x00010000

    def test_wider_window_fewer_errors(self, rng):
        a = rng.integers(0, 1 << 62, 2000).astype(np.uint64)
        b = rng.integers(0, 1 << 62, 2000).astype(np.uint64)
        geo = AdderGeometry(64)
        e4 = AccuracyConfigurableAdder(geo, 4).add(a, b).error_rate
        e8 = AccuracyConfigurableAdder(geo, 8).add(a, b).error_rate
        e16 = AccuracyConfigurableAdder(geo, 16).add(a, b).error_rate
        assert e4 >= e8 >= e16

    def test_full_window_is_exact(self, rng):
        adder = AccuracyConfigurableAdder(AdderGeometry(16), window=16)
        a = rng.integers(0, 1 << 16, 500)
        b = rng.integers(0, 1 << 16, 500)
        assert adder.add(a, b).error_rate == 0.0

    def test_error_magnitude_normalised(self, rng):
        adder = AccuracyConfigurableAdder(AdderGeometry(32), window=4)
        a = rng.integers(0, 1 << 31, 500)
        b = rng.integers(0, 1 << 31, 500)
        out = adder.add(a, b)
        assert (out.error_magnitude >= 0).all()
        assert (out.error_magnitude < 1).all()

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            AccuracyConfigurableAdder(AdderGeometry(32), window=0)

    @given(a=st.integers(0, 2**16 - 1), b=st.integers(0, 2**16 - 1))
    @settings(max_examples=100)
    def test_errors_detected_against_truth(self, a, b):
        """erroneous is exactly (result != exact)."""
        adder = AccuracyConfigurableAdder(AdderGeometry(16), window=4)
        out = adder.add(np.array([a], np.uint64), np.array([b], np.uint64))
        assert bool(out.erroneous[0]) == \
            (int(out.result[0]) != (a + b) % (1 << 16))


class TestVLSA:
    def test_always_correct(self, rng):
        """Unlike ACA, VLSA never produces a wrong result."""
        adder = VLSAAdder(AdderGeometry(64), window=8)
        a = rng.integers(0, 1 << 62, 1000).astype(np.uint64)
        b = rng.integers(0, 1 << 62, 1000).astype(np.uint64)
        result, miss, cycles = adder.add(a, b)
        assert np.array_equal(result, bitops.add_wrapped(a, b, 64))
        assert set(np.unique(cycles)).issubset({1, 2})

    def test_misprediction_iff_long_chain(self):
        adder = VLSAAdder(AdderGeometry(32), window=8)
        # short chain: no violation
        __, miss, cycles = adder.add(np.array([3]), np.array([5]))
        assert not miss[0] and cycles[0] == 1
        # 16-bit propagate chain >> window: violation
        __, miss, cycles = adder.add(np.array([0x0000FFFF]),
                                     np.array([0x00000001]))
        assert miss[0] and cycles[0] == 2

    def test_wider_window_fewer_mispredictions(self, rng):
        a = rng.integers(0, 1 << 62, 2000).astype(np.uint64)
        b = rng.integers(0, 1 << 62, 2000).astype(np.uint64)
        geo = AdderGeometry(64)
        m4 = VLSAAdder(geo, 4).add(a, b)[1].mean()
        m16 = VLSAAdder(geo, 16).add(a, b)[1].mean()
        assert m4 > m16


class TestComparison:
    def test_aca_and_vlsa_fail_on_the_same_streams(self, rng):
        """Both families are defeated by long carry chains; VLSA pays
        latency where ACA pays correctness."""
        a = rng.integers(0, 1 << 62, 3000).astype(np.uint64)
        b = rng.integers(0, 1 << 62, 3000).astype(np.uint64)
        stats = compare_on_stream(a, b, 64, 8)
        assert stats["aca_error_rate"] > 0
        assert stats["vlsa_misprediction_rate"] > 0
        assert stats["aca_error_rate"] == pytest.approx(
            stats["vlsa_misprediction_rate"], abs=0.05)

    def test_st2_correct_where_aca_wrong(self, rng):
        """The paper's headline contrast: on operands where the
        approximate adder is wrong, ST2 is merely slower."""
        from repro.core.adder import ST2Adder
        geo = AdderGeometry(32)
        a = np.array([0x0000FFFF], dtype=np.uint64)
        b = np.array([0x00000001], dtype=np.uint64)
        aca = AccuracyConfigurableAdder(geo, 8).add(a, b)
        assert aca.erroneous[0]
        st2 = ST2Adder(geo).add(a, b, np.zeros((1, 3), np.uint8))
        assert int(st2.result[0]) == 0x00010000   # correct
        assert st2.mispredicted[0]                # just 2 cycles
