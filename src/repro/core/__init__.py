"""The paper's contribution: sliced speculative adders and their
spatio-temporal carry-speculation design space."""

from repro.core.adder import (AddOutcome, CarrySelectAdder, ReferenceAdder,
                              ST2Adder)
from repro.core.history import CarryRegisterFile, ReferencePredictor
from repro.core.predictors import (Prediction, SpeculationConfig,
                                   SpeculationResult, predict_trace,
                                   run_speculation)
from repro.core.slices import (FP32_MANTISSA, FP64_MANTISSA, INT32, INT64,
                               AdderGeometry)
from repro.core.speculation import (DESIGN_LADDER, FIG3_CONFIGS, ST2_DESIGN,
                                    explore)

__all__ = [
    "AddOutcome", "AdderGeometry", "CarryRegisterFile", "CarrySelectAdder",
    "DESIGN_LADDER", "FIG3_CONFIGS", "FP32_MANTISSA", "FP64_MANTISSA",
    "INT32", "INT64", "Prediction", "ReferenceAdder", "ReferencePredictor",
    "ST2Adder", "ST2_DESIGN", "SpeculationConfig", "SpeculationResult",
    "explore", "predict_trace", "run_speculation",
]
