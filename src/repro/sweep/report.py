"""``st2-sweep report``: render a ``sweep.json`` frontier report.

Everything here works from the :class:`~repro.sweep.engine.SweepResult`
wire document alone — no manifest, no re-execution.  Per-axis
sensitivity is recovered by parsing each completed point's member
names back into :class:`~repro.core.predictors.SpeculationConfig`
fields (:func:`~repro.core.speculation.parse_config_name`), so the
report never needs the original spec expansion machinery.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Mapping, Tuple

from repro.core.speculation import parse_config_name
from repro.sweep.engine import SweepResult
from repro.sweep.pareto import OBJECTIVES, ParetoPoint

#: Objective display order and headers.
_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("energy_saved", "energy saved"),
    ("misprediction_rate", "mispred rate"),
    ("perf_overhead", "slowdown"),
)


def _fmt(value: float) -> str:
    if value != value:
        return "nan"
    return f"{value:.4f}"


def member_rows(result: SweepResult
                ) -> List[Tuple[str, Dict[str, Any],
                                Mapping[str, float]]]:
    """Every *completed* grid config as ``(name, fields, objectives)``.

    Each member of a class carries the class objectives — that is the
    provable-equivalence contract, verified bit-for-bit by exhaustive
    runs.  Domination-pruned configs have no objectives and are
    excluded (the report states how many)."""
    rows = []
    for point in result.points:
        members = point.members if point.members else (point.key,)
        for name in members:
            fields = asdict(parse_config_name(name))
            fields.pop("name", None)
            rows.append((name, fields, point.objectives))
    return rows


def axis_sensitivity(result: SweepResult
                     ) -> Dict[str, Dict[Any, Dict[str, float]]]:
    """Mean objectives per swept-axis value over completed configs.

    ``{axis: {value: {objective: mean}}}``, axes in spec order,
    values in spec order.  The spread of the per-value means is the
    axis's first-order sensitivity.

    Every swept axis appears in the output, including *collapsed*
    (dead) axes — axes whose every config landed in a single
    equivalence class, so at most one value has any completed config
    (e.g. the history axes under history-free mechanisms).  Such an
    axis maps to fewer than two values; the report renders it as an
    explicit "collapsed (dead axis)" row instead of a table.
    """
    rows = member_rows(result)
    out: Dict[str, Dict[Any, Dict[str, float]]] = {}
    for axis, values in result.spec.axes:
        per_value: Dict[Any, Dict[str, float]] = {}
        for value in values:
            picked = [objs for _, fields, objs in rows
                      if fields.get(axis) == value]
            if not picked:
                continue
            per_value[value] = {
                name: sum(o[name] for o in picked) / len(picked)
                for name in OBJECTIVES}
        out[axis] = per_value
    return out


def _point_table(points: Tuple[ParetoPoint, ...],
                 title: str) -> List[str]:
    lines = [f"## {title}", ""]
    if not points:
        return lines + ["(empty)", ""]
    header = "| config class | " \
        + " | ".join(label for _, label in _COLUMNS) \
        + " | members |"
    rule = "|---" * (len(_COLUMNS) + 2) + "|"
    lines += [header, rule]
    ordered = sorted(
        points,
        key=lambda p: -p.objectives.get("energy_saved", float("-inf")))
    for point in ordered:
        cells = " | ".join(_fmt(float(point.objectives[name]))
                           for name, _ in _COLUMNS)
        lines.append(f"| `{point.key}` | {cells} | "
                     f"{max(1, len(point.members))} |")
    return lines + [""]


def _sensitivity_section(result: SweepResult) -> List[str]:
    sensitivity = axis_sensitivity(result)
    lines = ["## Per-axis sensitivity",
             "",
             "Mean objectives over every completed config holding the "
             "axis value (other axes marginalised).",
             ""]
    if not sensitivity:
        return lines + ["(no swept axes)", ""]
    for axis, per_value in sensitivity.items():
        lines += [f"### `{axis}`", ""]
        if len(per_value) < 2:
            # every completed config holds one value of this axis
            # (or none at all): there is nothing to compare, but
            # silence would read as "axis not swept" — say so.
            survivor = next(iter(per_value), None)
            tail = (f"every completed config holds "
                    f"`{survivor!r}`" if per_value
                    else "no completed config exposes this axis")
            lines += [f"collapsed (dead axis): {tail} — the axis "
                      f"cannot affect the objectives on this grid",
                      ""]
            continue
        header = "| value | " \
            + " | ".join(label for _, label in _COLUMNS) + " |"
        lines += [header, "|---" * (len(_COLUMNS) + 1) + "|"]
        for value, means in per_value.items():
            cells = " | ".join(_fmt(means[name])
                               for name, _ in _COLUMNS)
            lines.append(f"| `{value!r}` | {cells} |")
        spread = max(means["energy_saved"]
                     for means in per_value.values()) \
            - min(means["energy_saved"]
                  for means in per_value.values())
        lines += ["",
                  f"energy-saved spread across `{axis}` values: "
                  f"{_fmt(spread)}", ""]
    return lines


def render_report(result: SweepResult) -> str:
    """The full markdown report of one sweep result."""
    spec = result.spec
    n_pruned_dom = sum(1 for info in result.pruned.values()
                       if info.get("reason") == "dominated")
    n_pruned_eq = sum(1 for info in result.pruned.values()
                      if info.get("reason") == "equivalent")
    lines = [
        f"# Sweep report: {spec.name}",
        "",
        f"- kernels: {', '.join(result.kernels)}",
        f"- axes: " + ", ".join(
            f"{axis}×{len(values)}" for axis, values in spec.axes),
        f"- grid: {spec.grid_size} combinations "
        f"({result.invalid_combos} invalid, "
        f"{result.duplicate_configs} duplicate), "
        f"{len(result.points)} completed config classes",
        f"- backend: {result.backend}, pruning "
        f"{'on' if result.prune else 'off (exhaustive)'}, "
        f"{'complete' if result.complete else 'INCOMPLETE (budget)'}",
        f"- units: {result.executed_units} executed, "
        f"{result.reused_units} reused from manifest, "
        f"{result.skipped_units} skipped by pruning",
        f"- pruned configs: {n_pruned_eq} provably equivalent, "
        f"{n_pruned_dom} dominated "
        f"(excluded from sensitivity means)",
        f"- manifest: `{result.manifest}`",
        "",
    ]
    lines += _point_table(result.frontier, "Pareto frontier "
                          f"({len(result.frontier)} points)")
    lines += _sensitivity_section(result)
    completed = tuple(p for p in result.points
                      if p.key not in {f.key for f in result.frontier})
    if completed:
        lines += _point_table(
            completed, f"Dominated points ({len(completed)})")
    return "\n".join(lines).rstrip() + "\n"


__all__ = ["axis_sensitivity", "member_rows", "render_report"]
