"""Vectorised two's-complement carry-chain arithmetic.

Everything in the ST2 study reduces to one question: *given the two
operands of an addition, what carry flows into each 8-bit slice of the
adder?*  This module answers it with plain bit identities, vectorised over
numpy ``uint64`` arrays so that whole warps (and whole traces) can be
analysed at once.

The identities used throughout:

* sum bit:        ``s_i = a_i ^ b_i ^ c_i``  hence  ``c_i = a_i ^ b_i ^ s_i``
* carry out of i: ``c_{i+1} = majority(a_i, b_i, c_i)``

where ``c_0`` is the adder's carry-in (0 for ADD, 1 for SUB with the second
operand pre-inverted, exactly as the SUB signal does in the paper's
Figure 4 slice schematic).
"""

from __future__ import annotations

import numpy as np

U64 = np.uint64
_ONE = U64(1)


def mask(width: int) -> int:
    """All-ones mask of ``width`` bits as a Python int."""
    if not 1 <= width <= 64:
        raise ValueError(f"width must be in [1, 64], got {width}")
    return (1 << width) - 1


def to_unsigned(values, width: int) -> np.ndarray:
    """Reinterpret (possibly negative) integers as ``width``-bit unsigned.

    Accepts scalars or arrays; returns a ``uint64`` array.  Python ints of
    arbitrary magnitude are wrapped into the two's-complement range first.
    """
    arr = np.asarray(values)
    if arr.dtype == object or arr.dtype.kind not in "iu":
        wrapped = [int(v) & mask(width) for v in np.ravel(arr)]
        return np.array(wrapped, dtype=U64).reshape(arr.shape)
    out = arr.astype(np.int64, copy=True).view(np.uint64)
    return out & U64(mask(width))


def _cin_u64(cin) -> np.ndarray:
    """Carry-in as uint64 (scalar or per-element vector)."""
    return np.asarray(cin, dtype=U64)


def add_wrapped(a, b, width: int, cin=0) -> np.ndarray:
    """``(a + b + cin) mod 2**width`` on uint64 arrays.

    ``cin`` may be a scalar or a vector matching the operand shape.
    """
    a = to_unsigned(a, width)
    b = to_unsigned(b, width)
    with np.errstate(over="ignore"):  # uint64 wrap-around is the point
        total = a + b + _cin_u64(cin)
    return total & U64(mask(width))


def carry_into_bits(a, b, width: int, cin=0) -> np.ndarray:
    """Carry *into* every bit position, as a packed ``width``-bit word.

    Bit ``i`` of the result is the carry flowing into full-adder ``i``
    (bit 0 of the result equals ``cin``).  Derived from ``c = a ^ b ^ s``.
    """
    a = to_unsigned(a, width)
    b = to_unsigned(b, width)
    s = add_wrapped(a, b, width, cin)
    return (a ^ b ^ s) & U64(mask(width))


def carry_out(a, b, width: int, cin=0) -> np.ndarray:
    """Carry out of the most significant bit (0 or 1)."""
    a = to_unsigned(a, width)
    b = to_unsigned(b, width)
    s = add_wrapped(a, b, width, cin)
    msb = U64(width - 1)
    # c_out = majority(a_msb, b_msb, c_msb); c_msb = (a^b^s)_msb
    generate = (a & b) >> msb & _ONE
    propagate = (a ^ b) >> msb & _ONE
    c_msb = (a ^ b ^ s) >> msb & _ONE
    return generate | (propagate & c_msb)


def slice_bounds(width: int, slice_width: int = 8) -> list:
    """Bit ranges ``[(lo, hi), ...]`` of each slice, LSB slice first.

    The last slice absorbs the remainder when ``width`` is not a multiple
    of ``slice_width`` (e.g. a 23-bit FP32 mantissa adder has slices of
    8, 8 and 7 bits — three slices, as in the paper).
    """
    if slice_width < 1:
        raise ValueError("slice_width must be >= 1")
    bounds = []
    lo = 0
    while lo < width:
        hi = min(lo + slice_width, width)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def n_slices(width: int, slice_width: int = 8) -> int:
    """Number of slices a ``width``-bit adder is split into."""
    return len(slice_bounds(width, slice_width))


def slice_carry_ins(a, b, width: int, slice_width: int = 8,
                    cin=0) -> np.ndarray:
    """True carry-in of every slice, shape ``(..., n_slices)``.

    Column 0 is always ``cin`` (architecturally known); columns 1..n-1 are
    the carries the ST2 mechanism must predict (the paper's
    ``Cpred[0] .. Cpred[n-2]`` correspond to columns 1..n-1 here).
    """
    carries = carry_into_bits(a, b, width, cin)
    carries = np.asarray(carries)
    cols = [((carries >> U64(lo)) & _ONE).astype(np.uint8)
            for lo, _hi in slice_bounds(width, slice_width)]
    return np.stack(cols, axis=-1)


def slice_operand_bits(op, width: int, slice_width: int = 8) -> np.ndarray:
    """MSB of each slice of an operand, shape ``(..., n_slices)``.

    Used by the *Peek* mechanism: slice ``i`` peeks at the most significant
    bit of slice ``i-1`` of both operands.
    """
    op = to_unsigned(op, width)
    cols = [((op >> U64(hi - 1)) & _ONE).astype(np.uint8)
            for _lo, hi in slice_bounds(width, slice_width)]
    return np.stack(cols, axis=-1)


def carry_chain_length(a, b, width: int, cin=0) -> np.ndarray:
    """Index of the highest bit that receives a carry (+1), 0 if none.

    A crude measure of how far the carry chain propagates — used in the
    value-correlation study to relate result magnitude to chain length.
    """
    carries = np.asarray(carry_into_bits(a, b, width, cin))
    out = np.zeros(carries.shape, dtype=np.int64)
    remaining = carries.copy()
    # position of highest set bit via repeated shift (width <= 64 so this
    # loop is at most 64 iterations and fully vectorised per iteration)
    for bit in range(width):
        out = np.where((remaining >> U64(bit)) & _ONE == _ONE, bit + 1, out)
    return out


def popcount(values) -> np.ndarray:
    """Per-element population count of a uint64 array."""
    v = np.asarray(values, dtype=U64).copy()
    count = np.zeros(v.shape, dtype=np.int64)
    while np.any(v):
        count += (v & _ONE).astype(np.int64)
        v >>= _ONE
    return count


def invert(op, width: int) -> np.ndarray:
    """Bitwise NOT within ``width`` bits (for SUB's pre-inverted operand)."""
    return (~to_unsigned(op, width)) & U64(mask(width))
