"""The sweep report renderer on a synthetic (execution-free)
SweepResult: frontier table, per-axis sensitivity and member rows."""

import pytest

from repro.api import SweepSpec
from repro.sweep.engine import SweepResult
from repro.sweep.pareto import ParetoPoint
from repro.sweep.report import (axis_sensitivity, member_rows,
                                render_report)


def objectives(saved, miss, over):
    return {"energy_saved": saved, "misprediction_rate": miss,
            "perf_overhead": over}


def fields(mechanism, peek):
    return {"mechanism": mechanism, "peek": peek, "pc_index": "none",
            "pc_bits": 0, "thread_key": "", "sm_scoped": False}


@pytest.fixture
def result():
    spec = SweepSpec(name="report-t", kernels=("qrng_K2",),
                     axes=(("mechanism", ("static1", "operand")),
                           ("peek", (False, True))))
    points = (
        ParetoPoint(key="staticOne",
                    objectives=objectives(0.10, 0.30, 0.02),
                    fields=fields("static1", False),
                    members=("staticOne",),
                    per_kernel={"qrng_K2":
                                objectives(0.10, 0.30, 0.02)}),
        ParetoPoint(key="staticOne+Peek",
                    objectives=objectives(0.12, 0.25, 0.02),
                    fields=fields("static1", True),
                    members=("staticOne+Peek",),
                    per_kernel={"qrng_K2":
                                objectives(0.12, 0.25, 0.02)}),
        ParetoPoint(key="CASA",
                    objectives=objectives(0.14, 0.20, 0.01),
                    fields=fields("operand", False),
                    members=("CASA",),
                    per_kernel={"qrng_K2":
                                objectives(0.14, 0.20, 0.01)}),
    )
    return SweepResult(
        spec=spec, kernels=("qrng_K2",), frontier=points[2:],
        points=points,
        pruned={"staticOne": {"reason": "dominated",
                              "dominated_by": "CASA",
                              "units_skipped": 0}},
        backend="local", prune=True, complete=True,
        executed_units=3, reused_units=0, skipped_units=1,
        invalid_combos=0, duplicate_configs=0,
        manifest="sweep.manifest.jsonl", wall_time_s=1.5)


class TestSensitivity:
    def test_axis_means(self, result):
        sens = axis_sensitivity(result)
        assert set(sens) == {"mechanism", "peek"}
        static1 = sens["mechanism"]["static1"]
        assert static1["energy_saved"] == pytest.approx(0.11)
        assert sens["mechanism"]["operand"]["energy_saved"] \
            == pytest.approx(0.14)
        assert sens["peek"][False]["energy_saved"] \
            == pytest.approx(0.12)

    def test_values_without_points_are_absent(self, result):
        sens = axis_sensitivity(result)
        # peek=True has exactly one completed point
        assert sens["peek"][True]["misprediction_rate"] \
            == pytest.approx(0.25)


class TestMemberRows:
    def test_one_row_per_member(self, result):
        rows = member_rows(result)
        assert len(rows) == 3
        by_member = {name: (fields, objs)
                     for name, fields, objs in rows}
        casa_fields, casa_objs = by_member["CASA"]
        assert casa_fields["mechanism"] == "operand"
        assert casa_objs["energy_saved"] == pytest.approx(0.14)


class TestRender:
    def test_report_mentions_everything(self, result):
        text = render_report(result)
        assert "report-t" in text
        assert "CASA" in text
        assert "| energy saved" in text or "energy saved" in text
        assert "mechanism" in text and "peek" in text
        assert "dominated" in text
        assert "sweep.manifest.jsonl" in text

    def test_incomplete_flagged(self, result):
        import dataclasses
        partial = dataclasses.replace(result, complete=False)
        assert "incomplete" in render_report(partial).lower()


class TestCollapsedAxis:
    """Dead axes stay visible: an axis whose every *completed* config
    holds one value must appear as an explicit "collapsed (dead
    axis)" row, never be silently omitted."""

    @pytest.fixture
    def collapsed(self):
        spec = SweepSpec(name="dead-axis", kernels=("qrng_K2",),
                         axes=(("mechanism", ("static1", "operand")),
                               ("thread_key", ("", "ltid"))))
        points = (
            ParetoPoint(key="staticOne",
                        objectives=objectives(0.10, 0.30, 0.02),
                        fields=fields("static1", False),
                        members=("staticOne",),
                        per_kernel={"qrng_K2":
                                    objectives(0.10, 0.30, 0.02)}),
            ParetoPoint(key="CASA",
                        objectives=objectives(0.14, 0.20, 0.01),
                        fields=fields("operand", False),
                        members=("CASA",),
                        per_kernel={"qrng_K2":
                                    objectives(0.14, 0.20, 0.01)}),
        )
        # both ltid members were domination-pruned: no completed
        # config exposes thread_key="ltid"
        return SweepResult(
            spec=spec, kernels=("qrng_K2",), frontier=points[1:],
            points=points,
            pruned={"Ltid+staticOne": {"reason": "dominated",
                                       "dominated_by": "CASA",
                                       "units_skipped": 1},
                    "Ltid+CASA": {"reason": "dominated",
                                  "dominated_by": "CASA",
                                  "units_skipped": 1}},
            backend="local", prune=True, complete=True,
            executed_units=2, reused_units=0, skipped_units=2,
            invalid_combos=0, duplicate_configs=0,
            manifest="sweep.manifest.jsonl", wall_time_s=1.0)

    def test_axis_present_in_sensitivity(self, collapsed):
        sens = axis_sensitivity(collapsed)
        assert set(sens) == {"mechanism", "thread_key"}
        assert len(sens["thread_key"]) == 1      # only "" completed

    def test_render_emits_collapsed_row(self, collapsed):
        text = render_report(collapsed)
        assert "### `thread_key`" in text
        assert "collapsed (dead axis)" in text
        assert "every completed config holds `''`" in text
        # the live axis still gets a real table
        assert "### `mechanism`" in text
        assert "energy-saved spread across `mechanism`" in text

    def test_fully_dead_axis_renders_without_crash(self, collapsed):
        """Zero completed values on an axis (everything pruned) must
        render the no-completed-config variant, not divide by zero."""
        import dataclasses
        spec = SweepSpec(name="dead-axis", kernels=("qrng_K2",),
                         axes=(("pc_index", ("full", "mod")),))
        empty = dataclasses.replace(collapsed, spec=spec,
                                    frontier=(), points=())
        text = render_report(empty)
        assert "no completed config exposes this axis" in text
