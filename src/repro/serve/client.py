"""Blocking client library for the ``st2-serve`` daemon.

Built on stdlib ``http.client`` only.  One :class:`ServeClient` keeps
a keep-alive connection to the server and speaks the typed wire
schemas of :mod:`repro.api`::

    with ServeClient("http://127.0.0.1:8787", client="ci") as sc:
        status = sc.submit(JobSpec(kernels=("qrng_K2",)))
        result = sc.run_to_completion(status.job_id)

Every non-2xx response raises :class:`ServeError` carrying the parsed
:class:`~repro.api.ErrorEnvelope`; :meth:`ServeClient.submit_retry`
honours ``Retry-After`` on quota/backpressure rejections.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit

from repro.api import (SCHEMA_VERSION, ErrorEnvelope, JobResult,
                       JobSpec, JobStatus, WireError)

#: Rejection codes worth retrying after the server-suggested delay.
RETRYABLE_CODES = ("quota_exhausted", "backpressure")


class ServeError(Exception):
    """A non-2xx response.  ``envelope`` is the parsed
    :class:`ErrorEnvelope` when the body carried one, else ``None``."""

    def __init__(self, status: int, envelope=None, body: str = ""):
        message = envelope.message if envelope is not None \
            else (body.strip() or f"HTTP {status}")
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.envelope = envelope

    @property
    def code(self) -> str:
        return self.envelope.code if self.envelope is not None \
            else "internal"

    @property
    def retry_after_s(self):
        return self.envelope.retry_after_s \
            if self.envelope is not None else None


class ServeClient:
    """One connection to an ``st2-serve`` daemon."""

    def __init__(self, address: str, client: str = "anon",
                 timeout: float = 300.0):
        split = urlsplit(address if "//" in address
                         else f"http://{address}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme in {address!r} "
                             f"(only http)")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.client = client
        self.timeout = timeout
        self._conn = None

    # -- context / connection ------------------------------------------

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _connection(self):
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def _request(self, method: str, path: str, payload=None) -> dict:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):      # one retry on a stale keep-alive
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException,
                    OSError):
                self.close()
                if attempt:
                    raise
        try:
            doc = json.loads(raw.decode()) if raw else {}
        except ValueError:
            doc = {}
        if response.status >= 400:
            envelope = None
            if isinstance(doc, dict) and "error" in doc:
                try:
                    envelope = ErrorEnvelope.from_wire(doc)
                except WireError:
                    pass
            raise ServeError(response.status, envelope,
                             raw.decode(errors="replace"))
        return doc

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    @staticmethod
    def _query(path: str, **params) -> str:
        from urllib.parse import urlencode

        pairs = {k: v for k, v in params.items() if v is not None}
        return f"{path}?{urlencode(pairs)}" if pairs else path

    def jobs(self, client: str = None) -> list:
        return [JobStatus.from_wire(doc)
                for doc in self._request(
                    "GET", self._query("/v1/jobs",
                                       client=client))["jobs"]]

    def jobs_page(self, client: str = None, cursor: str = None,
                  limit: int = 100) -> tuple:
        """One page of the job listing in submission order:
        ``(statuses, next_cursor)`` — ``next_cursor`` is ``None`` on
        the last page, else the value to pass back in."""
        doc = self._request(
            "GET", self._query("/v1/jobs", client=client,
                               cursor=cursor, limit=limit))
        return ([JobStatus.from_wire(entry)
                 for entry in doc["jobs"]], doc.get("next_cursor"))

    def iter_jobs(self, client: str = None, page_size: int = 100):
        """Every job status, newest-submission last, fetched one page
        at a time (jobs submitted mid-iteration are included — ``seq``
        cursors stay valid while the listing grows)."""
        cursor = None
        while True:
            statuses, cursor = self.jobs_page(client=client,
                                              cursor=cursor,
                                              limit=page_size)
            for status in statuses:
                yield status
            if cursor is None:
                return

    def submit(self, spec: JobSpec) -> JobStatus:
        """Submit one job (the spec's ``client`` field is overridden
        with this client's identity)."""
        doc = spec.to_wire()
        doc["client"] = self.client
        return JobStatus.from_wire(
            self._request("POST", "/v1/jobs", payload=doc))

    def submit_retry(self, spec: JobSpec,
                     deadline_s: float = 600.0) -> JobStatus:
        """Submit, sleeping out ``Retry-After`` on quota/backpressure
        rejections until ``deadline_s`` elapses."""
        t0 = time.monotonic()
        while True:
            try:
                return self.submit(spec)
            except ServeError as exc:
                if exc.code not in RETRYABLE_CODES:
                    raise
                delay = exc.retry_after_s or 1.0
                if time.monotonic() - t0 + delay > deadline_s:
                    raise
                time.sleep(delay)

    def submit_batch(self, specs) -> list:
        """Submit several jobs atomically via ``POST /v1/jobs:batch``
        (all admitted or none; every spec's ``client`` is overridden
        with this client's identity).  Returns the list of
        :class:`JobStatus`, aligned with ``specs``."""
        docs = []
        for spec in specs:
            doc = spec.to_wire()
            doc["client"] = self.client
            docs.append(doc)
        out = self._request(
            "POST", "/v1/jobs:batch",
            payload={"schema_version": SCHEMA_VERSION, "jobs": docs})
        return [JobStatus.from_wire(doc) for doc in out["jobs"]]

    def submit_batch_retry(self, specs,
                           deadline_s: float = 600.0) -> list:
        """Batch submit, sleeping out ``Retry-After`` on
        quota/backpressure rejections until ``deadline_s`` elapses.
        Safe to retry verbatim: a rejected batch admitted nothing."""
        t0 = time.monotonic()
        while True:
            try:
                return self.submit_batch(specs)
            except ServeError as exc:
                if exc.code not in RETRYABLE_CODES:
                    raise
                delay = exc.retry_after_s or 1.0
                if time.monotonic() - t0 + delay > deadline_s:
                    raise
                time.sleep(delay)

    def status(self, job_id: str) -> JobStatus:
        return JobStatus.from_wire(
            self._request("GET", f"/v1/jobs/{job_id}"))

    def result(self, job_id: str) -> JobResult:
        return JobResult.from_wire(
            self._request("GET", f"/v1/jobs/{job_id}/result"))

    def result_page(self, job_id: str, cursor: str = None,
                    limit: int = 200) -> tuple:
        """One page of a finished job's unit results:
        ``(JobResult, next_cursor)``.  The returned result carries
        only this page's units; ``next_cursor`` is ``None`` on the
        last page."""
        doc = self._request(
            "GET", self._query(f"/v1/jobs/{job_id}/result",
                               cursor=cursor, limit=limit))
        return JobResult.from_wire(doc), doc.get("next_cursor")

    def iter_results(self, job_id: str, page_size: int = 200):
        """Yield a finished job's unit result dicts one page at a
        time — bounded memory on the wire no matter how large the
        job's grid was."""
        cursor = None
        while True:
            result, cursor = self.result_page(job_id, cursor=cursor,
                                              limit=page_size)
            for unit in result.units:
                yield unit
            if cursor is None:
                return

    def drain(self) -> dict:
        return self._request("POST", "/v1/admin/drain")

    # -- streaming / waiting -------------------------------------------

    def events(self, job_id: str):
        """Yield :class:`JobStatus` snapshots from the server's NDJSON
        event stream until the job reaches a terminal state.  Uses a
        dedicated connection (the stream occupies it fully)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                envelope = None
                try:
                    doc = json.loads(raw.decode())
                    if "error" in doc:
                        envelope = ErrorEnvelope.from_wire(doc)
                except (ValueError, WireError):
                    pass
                raise ServeError(response.status, envelope,
                                 raw.decode(errors="replace"))
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                yield JobStatus.from_wire(json.loads(line.decode()))
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = None) -> JobStatus:
        """Block until the job is terminal (streaming when possible,
        falling back to polling) and return its final status."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        status = None
        try:
            for status in self.events(job_id):
                if status.terminal:
                    return status
                if deadline is not None \
                        and time.monotonic() > deadline:
                    raise TimeoutError(
                        f"job {job_id} not terminal in {timeout}s")
        except (ConnectionError, http.client.HTTPException, OSError):
            pass                        # stream dropped: poll instead
        while True:
            status = self.status(job_id)
            if status.terminal:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} not terminal in {timeout}s")
            time.sleep(0.2)

    def run_to_completion(self, job_id: str,
                          timeout: float = None) -> JobResult:
        """Wait for the job and fetch its result in one call."""
        status = self.wait(job_id, timeout=timeout)
        if status.state == "failed":
            raise ServeError(
                500, ErrorEnvelope(
                    code="internal",
                    message=status.error or
                    f"job {job_id} failed"))
        return self.result(job_id)


__all__ = ["RETRYABLE_CODES", "ServeClient", "ServeError"]
