#!/usr/bin/env python
"""Serve-layer load benchmark: thousands of synthetic clients against
one in-process ``st2-serve`` application.

The load has two deliberate shapes:

* a **warm torrent** — every client hammers the same fully-cached
  grid, measuring pure service latency (HTTP + scheduling + cache),
  which is where p50/p99 live;
* periodic **bursts** — all clients submit the *same uncached* spec at
  the same phase, so its units are in flight exactly once and every
  duplicate must coalesce.  Across the whole run each distinct unit
  may execute at most once (``redundant_executions`` pins 0).

The run writes a ``metrics.json`` (snapshot of the server registry
plus the latency percentiles in ``meta``) and — with
``--write-baseline`` — regenerates ``BENCH_serve.json``: latency and
throughput gates with ``--factor`` headroom, plus the hard
correctness pins (dedupe ratio >= 0.9, zero redundant executions,
zero failed jobs) that hold at any load size.  The CI ``serve-smoke``
job replays a smaller load and checks it with ``st2-stats check``
against the committed baseline.

Usage::

    python benchmarks/bench_serve.py                       # report only
    python benchmarks/bench_serve.py --write-baseline      # regen pins
    python benchmarks/bench_serve.py --jobs 300 --clients 30 \\
        --metrics-out serve-load.metrics.json              # CI shape
"""

from __future__ import annotations

import argparse
import asyncio
import json
import tempfile
import threading
import time
from pathlib import Path

from repro import obs
from repro.api import JobSpec
from repro.obs.metrics import BASELINE_VERSION, write_metrics
from repro.runner.cache import ResultCache
from repro.serve.app import ServeApp
from repro.serve.client import ServeClient
from repro.sim.trace_store import TraceStore

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_serve.json"

#: The cheap pinned grid every client replays (4 units).
GRID_KERNELS = ("qrng_K2", "sortNets_K2")
GRID_CONFIGS = ("st2", "valhalla")
GRID_SCALE = 0.25

#: Every BURST_EVERY-th job per client is an uncached burst spec; the
#: burst seed cycles so the whole run captures N_BURST_SEEDS fresh
#: functional executions and nothing more.
BURST_EVERY = 10
N_BURST_SEEDS = 4


def _grid_spec(seed: int) -> JobSpec:
    return JobSpec(kernels=GRID_KERNELS, configs=GRID_CONFIGS,
                   scale=GRID_SCALE, seed=seed, aux=False)


class _Server:
    """A ServeApp on a private event-loop thread."""

    def __init__(self, workers: int, root: Path):
        self.app = ServeApp(shards=workers,
                            trace_store=TraceStore(root / "traces"),
                            cache=ResultCache(root / "cache"),
                            registry=obs.Obs())
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)

        async def go():
            await self.app.start()
            self._ready.set()
            await self.app.serve_forever()

        try:
            self.loop.run_until_complete(go())
        finally:
            self.loop.close()

    def __enter__(self) -> "_Server":
        self._thread.start()
        if not self._ready.wait(timeout=300):
            raise RuntimeError("server failed to start")
        return self

    def __exit__(self, *exc) -> None:
        asyncio.run_coroutine_threadsafe(
            self.app.stop(), self.loop).result(timeout=60)
        self._thread.join(timeout=30)

    @property
    def address(self) -> str:
        return self.app.server.address


def _burst_seed(k: int):
    """The burst seed for a client's k-th job, or None on warm jobs."""
    if k % BURST_EVERY == 0:
        return 1000 + (k // BURST_EVERY) % N_BURST_SEEDS
    return None


def _client_loop(address: str, ident: int, n_jobs: int,
                 warm_latencies, burst_latencies, failures) -> None:
    with ServeClient(address, client=f"bench-{ident}",
                     timeout=600.0) as sc:
        for k in range(n_jobs):
            seed = _burst_seed(k)
            t0 = time.monotonic()
            status = sc.submit_retry(_grid_spec(seed or 0),
                                     deadline_s=600.0)
            final = sc.wait(status.job_id, timeout=600.0)
            dt = time.monotonic() - t0
            # warm jobs measure service latency; bursts carry real
            # simulation wall and are scored on dedupe instead
            (burst_latencies if seed is not None
             else warm_latencies).append(dt)
            if final.state != "done":
                failures.append(final)


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def run_load(jobs: int, clients: int, workers: int) -> dict:
    """Drive the load and return the measurement dict."""
    per_client = max(1, jobs // clients)
    jobs = per_client * clients
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        with _Server(workers, Path(tmp)) as server:
            # warm only the torrent spec: the burst seeds stay cold so
            # their duplicates genuinely race in flight and coalesce
            with ServeClient(server.address, client="warmup") as sc:
                status = sc.submit(_grid_spec(0))
                sc.wait(status.job_id, timeout=600.0)

            warm_latencies, burst_latencies, failures = [], [], []
            threads = [
                threading.Thread(
                    target=_client_loop,
                    args=(server.address, i, per_client,
                          warm_latencies, burst_latencies, failures))
                for i in range(clients)]
            t0 = time.monotonic()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.monotonic() - t0
            snapshot = server.app.registry.snapshot()

    counters = snapshot["counters"]
    n_units = len(GRID_KERNELS) * len(GRID_CONFIGS)
    burst_seeds = {_burst_seed(k) for k in range(per_client)}
    burst_seeds.discard(None)
    distinct_units = n_units * (1 + len(burst_seeds))
    submitted = counters.get("serve.units.submitted", 0)
    executed = counters.get("serve.units.executed", 0)
    duplicates = submitted - distinct_units
    redundant = executed - distinct_units
    warm_latencies.sort()
    burst_latencies.sort()
    return {
        "snapshot": snapshot,
        "meta": {
            "tool": "bench-serve",
            "jobs": jobs,
            "clients": clients,
            "workers": workers,
            "units_per_job": n_units,
            "elapsed_s": elapsed,
            "p50_s": _percentile(warm_latencies, 0.50),
            "p99_s": _percentile(warm_latencies, 0.99),
            "max_s": warm_latencies[-1] if warm_latencies else 0.0,
            "burst_p99_s": _percentile(burst_latencies, 0.99),
            "throughput_jobs_per_s": jobs / elapsed,
            "distinct_units": distinct_units,
            "duplicates": duplicates,
            "redundant_executions": redundant,
            "coalesce_dedupe_ratio":
                1.0 - redundant / duplicates if duplicates else 1.0,
            "coalesce_hits": counters.get("serve.coalesce.hit", 0),
            "cache_hits": counters.get("serve.units.cache_hits", 0),
            "jobs_failed": len(failures),
        },
    }


def build_baseline(meta: dict, factor: float) -> dict:
    description = (
        f"serve-layer load baseline: {meta['jobs']} jobs from "
        f"{meta['clients']} concurrent clients over the "
        f"{'x'.join(GRID_KERNELS)} / {'x'.join(GRID_CONFIGS)} grid at "
        f"scale {GRID_SCALE} ({BURST_EVERY - 1} warm jobs per uncached "
        f"burst); latency/throughput gates carry {factor}x headroom; "
        f"regenerate with benchmarks/bench_serve.py --write-baseline")
    return {
        "bench_version": BASELINE_VERSION,
        "description": description,
        "load": {k: meta[k] for k in
                 ("jobs", "clients", "workers", "units_per_job",
                  "p50_s", "p99_s", "throughput_jobs_per_s",
                  "coalesce_dedupe_ratio")},
        "metrics": [
            # perf gates, headroom-banded (hold at smaller loads too)
            {"metric": "meta.p50_s",
             "max": round(meta["p50_s"] * factor, 4)},
            {"metric": "meta.p99_s",
             "max": round(meta["p99_s"] * factor, 4)},
            {"metric": "meta.throughput_jobs_per_s",
             "min": round(meta["throughput_jobs_per_s"] / factor, 2)},
            # hard correctness pins, load-size independent
            {"metric": "meta.coalesce_dedupe_ratio", "min": 0.9},
            {"metric": "meta.redundant_executions", "max": 0},
            {"metric": "meta.jobs_failed", "max": 0},
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Load-test the serve layer and (optionally) "
                    "regenerate BENCH_serve.json.")
    parser.add_argument("--jobs", type=int, default=2000,
                        help="total jobs across all clients "
                             "(default %(default)s)")
    parser.add_argument("--clients", type=int, default=200,
                        help="concurrent synthetic clients "
                             "(default %(default)s)")
    parser.add_argument("--workers", type=int, default=2,
                        help="server worker shards (default 2)")
    parser.add_argument("--factor", type=float, default=5.0,
                        help="headroom factor on latency/throughput "
                             "gates (default %(default)s)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the load's metrics.json here")
    parser.add_argument("--write-baseline", action="store_true",
                        help=f"rewrite {DEFAULT_BASELINE.name} from "
                             f"this run")
    parser.add_argument("--out", metavar="PATH",
                        default=str(DEFAULT_BASELINE),
                        help="baseline path (default %(default)s)")
    args = parser.parse_args(argv)

    measured = run_load(args.jobs, args.clients, args.workers)
    meta = measured["meta"]
    print(f"{meta['jobs']} jobs / {meta['clients']} clients in "
          f"{meta['elapsed_s']:.2f}s: "
          f"p50 {meta['p50_s'] * 1e3:.1f}ms, "
          f"p99 {meta['p99_s'] * 1e3:.1f}ms, "
          f"{meta['throughput_jobs_per_s']:.1f} jobs/s")
    print(f"dedupe: {meta['duplicates']} duplicate units, "
          f"{meta['coalesce_hits']} coalesced, "
          f"{meta['cache_hits']} cache hits, "
          f"{meta['redundant_executions']} redundant executions "
          f"(ratio {meta['coalesce_dedupe_ratio']:.3f})")

    if args.metrics_out:
        path = write_metrics(args.metrics_out, measured["snapshot"],
                             meta=meta)
        print(f"metrics written to {path}")
    if args.write_baseline:
        payload = build_baseline(meta, args.factor)
        Path(args.out).write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"baseline written to {args.out}")

    if meta["jobs_failed"] or meta["redundant_executions"] > 0:
        return 1
    if meta["coalesce_dedupe_ratio"] < 0.9:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
