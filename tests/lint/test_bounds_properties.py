"""Property suite for the SpecBound interval arithmetic
(:mod:`repro.lint.bounds`): ratio composition is monotone and
genuinely bounds the reachable ratios, widening only loosens, and
count products stay sound."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.bounds import Bound, Count, ratio_inf, ratio_sup

# values are rates/recompute counts: small non-negative floats
_value = st.floats(min_value=0.0, max_value=8.0, allow_nan=False,
                   allow_infinity=False, width=32)
_count = st.integers(min_value=0, max_value=20)


@st.composite
def entries(draw, min_size=0, bounded=False):
    """A list of (lo, hi, v) ratio-composition entries, lo <= hi."""
    n = draw(st.integers(min_value=min_size, max_value=6))
    out = []
    for _ in range(n):
        lo = draw(_count)
        if not bounded and draw(st.booleans()) and draw(st.booleans()):
            hi = None
        else:
            hi = lo + draw(_count)
        out.append((lo, hi, draw(_value)))
    return out


@st.composite
def bounds(draw):
    a = draw(st.one_of(st.none(), _value))
    b = draw(st.one_of(st.none(), _value))
    if a is not None and b is not None and a > b:
        a, b = b, a
    return Bound(a, b)


class TestRatioComposition:
    @given(entries())
    def test_sup_dominates_inf(self, es):
        assert ratio_inf(es) <= ratio_sup(es) + 1e-12

    @given(entries(bounded=True), st.randoms(use_true_random=False))
    @settings(max_examples=200)
    def test_bounds_contain_every_concrete_ratio(self, es, rng):
        """Any concrete choice of per-site counts inside the boxes
        yields a ratio inside [inf, sup] — the core soundness claim
        the fuzz oracle enforces dynamically."""
        counts = [rng.randint(lo, hi) for lo, hi, _ in es]
        num = sum(c * v for c, (_, _, v) in zip(counts, es))
        den = sum(counts)
        observed = num / den if den else 0.0
        assert ratio_inf(es) - 1e-9 <= observed <= ratio_sup(es) + 1e-9

    @given(entries(min_size=1), _count, _count)
    @settings(max_examples=200)
    def test_monotone_under_box_loosening(self, es, widen_lo,
                                          widen_hi):
        """Loosening any count box can only loosen the ratio bounds
        (sup grows or stays, inf shrinks or stays)."""
        idx = random.Random(widen_lo + widen_hi).randrange(len(es))
        lo, hi, v = es[idx]
        loose = list(es)
        loose[idx] = (max(0, lo - widen_lo),
                      None if hi is None else hi + widen_hi, v)
        assert ratio_sup(loose) >= ratio_sup(es) - 1e-12
        if ratio_inf(es) > 0:
            assert ratio_inf(loose) <= ratio_inf(es) + 1e-12

    @given(_value, _count.filter(bool))
    def test_single_site_is_tight(self, v, c):
        es = [(c, c, v)]
        assert ratio_sup(es) == ratio_inf(es) == v


class TestBound:
    @given(bounds(), _value)
    def test_join_contains_both_operands_points(self, b, x):
        other = Bound(x, x)
        joined = b.join(other)
        assert joined.contains(x)
        if b.contains(x):
            assert joined.contains(x)

    @given(bounds(), bounds(), _value)
    def test_join_is_an_upper_bound(self, a, b, x):
        joined = a.join(b)
        if a.contains(x) or b.contains(x):
            assert joined.contains(x)

    @given(bounds(), bounds(), _value)
    def test_widen_only_loosens(self, old, new, x):
        """Widening never claims more than the original: everything
        the old bound contains, the widened bound contains."""
        widened = old.widen(new)
        if old.contains(x):
            assert widened.contains(x)

    @given(bounds(), bounds())
    def test_widen_reaches_a_fixpoint(self, old, new):
        widened = old.widen(new)
        assert widened.widen(new) == widened


class TestCount:
    @given(_count, _count, _count, _count)
    def test_times_contains_products(self, alo, aw, blo, bw):
        a = Count(alo, alo + aw)
        b = Count(blo, blo + bw)
        prod = a.times(b)
        for x in (alo, alo + aw):
            for y in (blo, blo + bw):
                assert prod.lo <= x * y
                assert prod.hi is None or x * y <= prod.hi

    @given(_count, _count)
    def test_unbounded_times_zero_is_zero(self, lo, n):
        assert Count(lo, None).times(Count(0, 0)) == Count(0, 0)
        assert Count(lo, None).scaled(n).hi == (0 if n == 0 else None)
