"""End-to-end service tests over real HTTP: served-vs-offline
equivalence, coalescing, quotas/backpressure, error envelopes and
drain-on-SIGTERM."""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import SCHEMA_VERSION, JobSpec
from repro.serve.client import ServeClient, ServeError
from tests.serve.conftest import GRID_CONFIGS, GRID_KERNELS, GRID_SCALE

GRID_SPEC = JobSpec(kernels=GRID_KERNELS, configs=GRID_CONFIGS,
                    scale=GRID_SCALE, seed=0, aux=False)
N_UNITS = len(GRID_KERNELS) * len(GRID_CONFIGS)


def _counters(client):
    return client.stats().get("counters", {})


@pytest.fixture(scope="module")
def completed(server):
    """The grid job, submitted once and finished — several tests
    inspect it."""
    with ServeClient(server.address, client="equiv") as sc:
        status = sc.submit(GRID_SPEC)
        final = sc.wait(status.job_id, timeout=120)
        return final, sc.result(status.job_id)


class TestHealthAndRouting:
    def test_health_document(self, server):
        from repro.runner.cache import code_version
        with ServeClient(server.address) as sc:
            doc = sc.health()
        assert doc["ok"] is True
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["shards"] == 2
        assert doc["code_version"] == code_version()
        assert doc["trace_store"]

    def test_unknown_job_is_404(self, server):
        with ServeClient(server.address) as sc:
            with pytest.raises(ServeError) as exc:
                sc.status("feedfacecafe")
        assert exc.value.status == 404
        assert exc.value.code == "not_found"

    def test_unknown_route_is_404(self, server):
        with ServeClient(server.address) as sc:
            with pytest.raises(ServeError) as exc:
                sc._request("GET", "/v2/everything")
        assert exc.value.status == 404

    def test_invalid_json_body_is_400(self, server):
        app = server.app
        conn = http.client.HTTPConnection(app.server.host,
                                          app.server.port, timeout=30)
        try:
            conn.request("POST", "/v1/jobs", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            doc = json.loads(response.read().decode())
            assert response.status == 400
            assert doc["error"] == "bad_request"
        finally:
            conn.close()

    def test_non_object_body_is_400(self, server):
        with ServeClient(server.address) as sc:
            with pytest.raises(ServeError) as exc:
                sc._request("POST", "/v1/jobs", payload="a string")
        assert exc.value.status == 400
        assert exc.value.code == "bad_request"

    def test_unknown_kernel_is_400_bad_request(self, server):
        with ServeClient(server.address) as sc:
            with pytest.raises(ServeError) as exc:
                sc._request("POST", "/v1/jobs",
                            payload={"kernels": ["no_such_kernel"]})
        assert exc.value.status == 400
        assert exc.value.code == "bad_request"

    def test_unknown_spec_fields_are_tolerated(self, server):
        """Forward compatibility on the wire: a newer client's extra
        fields don't break submission."""
        doc = GRID_SPEC.to_wire()
        doc["future_hint"] = {"gpu": "st2"}
        with ServeClient(server.address) as sc:
            reply = sc._request("POST", "/v1/jobs", payload=doc)
        assert reply["state"] in ("queued", "running", "done")


class TestServedEqualsOffline:
    def test_job_completes(self, completed):
        status, result = completed
        assert status.state == "done"
        assert status.units_done == N_UNITS
        assert len(result.units) == N_UNITS

    def test_results_equal_st2_run(self, completed):
        """The tentpole invariant: a served JobResult is
        ``results_equal`` to what st2-run computes offline for the
        same grid."""
        from repro.runner import RunOptions, run_units
        from repro.runner.units import results_equal
        _, result = completed
        offline = run_units(GRID_SPEC.units(),
                            RunOptions(workers=2, use_cache=False))
        served = {(r.kernel, r.config): r
                  for r in result.run_results()}
        assert len(served) == len(offline)
        for expect in offline:
            got = served[(expect.kernel, expect.config)]
            assert results_equal(expect, got), \
                f"served diverged from offline on {expect.label}"

    def test_result_meta_describes_the_job(self, completed):
        _, result = completed
        assert result.meta["kernels"] == sorted(GRID_KERNELS)
        assert result.meta["scale"] == GRID_SCALE
        assert result.meta["client"] == "equiv"
        assert result.meta["code_version"]

    def test_resubmission_is_fully_cached(self, server, completed):
        with ServeClient(server.address, client="warm") as sc:
            status = sc.submit(GRID_SPEC)
            final = sc.wait(status.job_id, timeout=60)
        assert final.state == "done"
        assert final.units_cached == N_UNITS

    def test_worker_obs_merged_into_registry(self, server, completed):
        """Worker-side instrumentation (capture, eval) travels back in
        the result payloads and lands in the server registry."""
        with ServeClient(server.address) as sc:
            doc = sc.stats()
        assert doc["counters"].get("serve.units.executed", 0) \
            >= N_UNITS
        assert any(not name.startswith("serve.")
                   for name in doc["counters"])
        assert doc["timers"]["serve.unit.wall"]["count"] >= N_UNITS

    def test_events_stream_ends_terminal(self, server, completed):
        status, _ = completed
        with ServeClient(server.address) as sc:
            seen = list(sc.events(status.job_id))
        assert seen
        assert seen[-1].terminal

    def test_job_listing_filters_by_client(self, server, completed):
        status, _ = completed
        with ServeClient(server.address) as sc:
            mine = sc.jobs(client="equiv")
            everyone = sc.jobs()
        assert status.job_id in {s.job_id for s in mine}
        assert all(s.client == "equiv" for s in mine)
        assert len(everyone) >= len(mine)


class TestCoalescing:
    def test_duplicate_inflight_submissions_coalesce(self, server):
        """5 identical uncached jobs submitted back-to-back: the 4
        distinct units execute exactly once, every duplicate attaches
        to the in-flight execution (the >= 90% dedupe gate)."""
        spec = JobSpec(kernels=GRID_KERNELS, configs=GRID_CONFIGS,
                       scale=GRID_SCALE, seed=77, aux=False)
        n_jobs = 5
        with ServeClient(server.address, client="burst") as sc:
            executed_before = _counters(sc).get(
                "serve.units.executed", 0)
            job_ids = [sc.submit(spec).job_id for _ in range(n_jobs)]
            finals = [sc.wait(job_id, timeout=120)
                      for job_id in job_ids]
            executed_after = _counters(sc).get(
                "serve.units.executed", 0)
        assert all(f.state == "done" for f in finals)
        # capture-and-execute-exactly-once, cluster-wide
        assert executed_after - executed_before == N_UNITS
        duplicates = (n_jobs - 1) * N_UNITS
        coalesced = sum(f.units_coalesced for f in finals)
        cached = sum(f.units_cached for f in finals)
        assert coalesced + cached == duplicates
        assert coalesced >= 0.9 * (duplicates - cached)


class TestRejections:
    """Quota / backpressure / pending paths on a server whose pool
    never finishes anything (deterministic occupancy)."""

    @pytest.fixture(scope="class")
    def stuck_job(self, reject_server):
        with ServeClient(reject_server.address, client="greedy") as sc:
            return sc.submit(GRID_SPEC)        # 4 units, never resolve

    def test_client_quota_is_429(self, reject_server, stuck_job):
        with ServeClient(reject_server.address, client="greedy") as sc:
            with pytest.raises(ServeError) as exc:
                sc.submit(GRID_SPEC)
        assert exc.value.status == 429
        assert exc.value.code == "quota_exhausted"
        assert exc.value.retry_after_s >= 1.0

    def test_backpressure_is_429(self, reject_server, stuck_job):
        with ServeClient(reject_server.address, client="other") as sc:
            with pytest.raises(ServeError) as exc:
                sc.submit(GRID_SPEC)           # 4 + 4 > 6 server-wide
        assert exc.value.status == 429
        assert exc.value.code == "backpressure"
        assert exc.value.retry_after_s >= 1.0

    def test_retry_after_rides_the_http_header(self, reject_server,
                                               stuck_job):
        app = reject_server.app
        conn = http.client.HTTPConnection(app.server.host,
                                          app.server.port, timeout=30)
        try:
            body = json.dumps(dict(GRID_SPEC.to_wire(),
                                   client="greedy")).encode()
            conn.request("POST", "/v1/jobs", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            response.read()
            assert response.status == 429
            assert int(response.getheader("Retry-After")) >= 1
        finally:
            conn.close()

    def test_submit_retry_gives_up_at_deadline(self, reject_server,
                                               stuck_job):
        with ServeClient(reject_server.address, client="greedy") as sc:
            with pytest.raises(ServeError) as exc:
                sc.submit_retry(GRID_SPEC, deadline_s=0.0)
        assert exc.value.code == "quota_exhausted"

    def test_unfinished_result_is_409_pending(self, reject_server,
                                              stuck_job):
        with ServeClient(reject_server.address) as sc:
            with pytest.raises(ServeError) as exc:
                sc.result(stuck_job.job_id)
        assert exc.value.status == 409
        assert exc.value.code == "pending"
        assert exc.value.retry_after_s >= 1.0


class TestClientCli:
    def test_run_round_trip_writes_a_manifest(self, server, tmp_path,
                                              completed, capsys):
        """``st2-client run`` against the warm server: exits 0 and
        records the st2-run manifest format."""
        from repro.serve.client_cli import main
        out = tmp_path / "manifest.jsonl"
        code = main([
            "run", "--server", server.address, "--client", "cli",
            "--kernels", ",".join(GRID_KERNELS),
            "--configs", ",".join(GRID_CONFIGS),
            "--scale", str(GRID_SCALE), "--no-aux",
            "--out", str(out), "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["units"]) == N_UNITS
        lines = [json.loads(line)
                 for line in out.read_text().splitlines()]
        assert lines[0]["type"] == "run"
        assert lines[0]["served"] is True
        assert lines[0]["n_units"] == N_UNITS
        assert {line["kernel"] for line in lines[1:]} \
            == set(GRID_KERNELS)

    def test_health_and_stats_against_live_server(self, server,
                                                  capsys):
        from repro.serve.client_cli import main
        for argv in (["health"], ["stats"]):
            code = main(argv + ["--server", server.address, "--json"])
            assert code == 0
            json.loads(capsys.readouterr().out)

    def test_unreachable_server_is_a_usage_error(self, capsys):
        from repro.serve.client_cli import main
        code = main(["health", "--server",
                     "http://127.0.0.1:1",       # nothing listens
                     "--timeout", "2"])
        assert code == 2
        assert "unreachable" in capsys.readouterr().err


class TestDrainOnSigterm:
    def test_sigterm_finishes_inflight_then_exits_zero(self, tmp_path):
        """Boot the real daemon, submit an uncached job, SIGTERM it
        mid-flight: the job still completes (metrics prove it) and
        the process exits 0."""
        metrics = tmp_path / "metrics.json"
        env = dict(os.environ)
        repo_src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = repo_src + os.pathsep \
            + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c",
             "from repro.serve.cli import console_main; "
             "raise SystemExit(console_main())",
             "--json", "--workers", "1",
             "--cache-dir", str(tmp_path / "cache"),
             "--trace-store", str(tmp_path / "traces"),
             "--metrics-out", str(metrics)],
            env=env, stdout=subprocess.PIPE, text=True)
        try:
            lines = []
            while True:                     # pretty-printed announce
                line = proc.stdout.readline()
                assert line, "daemon exited before announcing"
                lines.append(line)
                if line.rstrip() == "}":
                    break
            address = json.loads("".join(lines))["address"]

            spec = JobSpec(kernels=GRID_KERNELS,
                           configs=GRID_CONFIGS, scale=GRID_SCALE,
                           seed=911, aux=False)
            with ServeClient(address, client="drainer") as sc:
                job = sc.submit(spec)
                proc.send_signal(signal.SIGTERM)
                # during the drain the server still answers, but
                # refuses new work (unless the drain already won)
                try:
                    sc.submit(spec)
                    rejected = None         # probe beat the drain task
                except ServeError as exc:
                    rejected = exc
                except (ConnectionError, OSError):
                    rejected = "gone"       # drain already finished
                if isinstance(rejected, ServeError):
                    assert rejected.status == 503
                    assert rejected.code == "draining"
            assert proc.wait(timeout=180) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        doc = json.loads(metrics.read_text())
        counters = doc["counters"]
        assert counters["serve.drain.started"] == 1
        # the probe job is accepted only when it beats the drain task
        expected_jobs = 2 if rejected is None else 1
        assert counters["serve.jobs.completed"] == expected_jobs
        # either way each distinct unit executed exactly once: the
        # probe's duplicates coalesce or hit the cache
        assert counters["serve.units.executed"] == N_UNITS
        assert job.state in ("queued", "running", "done")
