"""Suppression-directive parsing (shared by st2-lint and the sanitizer)."""

from repro.lint.suppress import line_suppresses, suppressed_rules


class TestDirectiveParsing:
    def test_single_rule(self):
        line = "x = a + b  # st2-lint: disable=L1 — LDS immediate"
        assert suppressed_rules(line) == frozenset({"L1"})
        assert line_suppresses(line, "L1")
        assert not line_suppresses(line, "L3")

    def test_multiple_rules(self):
        line = "y = f(a)  # st2-lint: disable=L1,L3"
        assert suppressed_rules(line) == frozenset({"L1", "L3"})

    def test_disable_all(self):
        line = "z = g()  # st2-lint: disable=all"
        assert line_suppresses(line, "L1")
        assert line_suppresses(line, "L5")

    def test_whitespace_variants(self):
        assert line_suppresses("x  #st2-lint:  disable=L2", "L2")
        assert line_suppresses("x  # st2-lint: disable= L2 , L4", "L4")

    def test_plain_lines_are_not_suppressed(self):
        assert suppressed_rules("x = a + b") == frozenset()
        assert suppressed_rules("") == frozenset()
        assert suppressed_rules(None) == frozenset()

    def test_unrelated_comment_is_not_a_directive(self):
        assert not line_suppresses("x = 1  # lint would disable=L1", "L1")
