"""Optional refinements to the Eq. (1) power model — default-off.

Two literature-inspired energy terms that the baseline GPUWattch-style
model deliberately omits, gated behind explicit config objects so that
the calibrated model of :mod:`repro.power.model` stays bit-identical
unless a caller opts in:

* :class:`RegFileParams` — a GREENER-style register-file refinement:
  bank-conflict replays inflate the per-access dynamic energy, and an
  explicit leakage term (reducible by keeping a fraction of the file
  drowsy) is attributed to the RegFile component instead of being
  folded into the board constant.
* :class:`SchedulerParams` — a WaSP-style warp-scheduler term: each
  warp instruction through fetch/decode/issue (the ``Others`` event
  stream, the closest activity proxy for scheduler work) pays a
  scheduling energy, partially gateable; throttling schedulers may
  also stretch execution (``duration_scale >= 1``), which callers
  accounting for static energy must apply themselves.

Every parameter defaults to a no-op, so even an *enabled* extension
with default parameters changes nothing — the flags only open the
door.  :class:`PowerExtensions` bundles both and plugs into
``GPUPowerModel.extensions`` (default ``None``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.power.activity import ActivityVector
from repro.power.components import Component


class ExtensionError(ValueError):
    """An extension parameter outside its physical range."""


@dataclass(frozen=True)
class RegFileParams:
    """GREENER-style register-file energy refinement.

    ``bank_conflict_rate`` is the fraction of register accesses that
    replay due to operand-collector bank conflicts (each replay costs
    one extra access energy).  ``leakage_w`` is the register file's
    leakage power, of which the fraction kept drowsy saves
    ``drowsy_savings`` of its share.
    """

    bank_conflict_rate: float = 0.0
    leakage_w: float = 0.0
    drowsy_fraction: float = 0.0
    drowsy_savings: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.bank_conflict_rate:
            raise ExtensionError("bank_conflict_rate must be >= 0")
        if self.leakage_w < 0.0:
            raise ExtensionError("leakage_w must be >= 0")
        for name in ("drowsy_fraction", "drowsy_savings"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ExtensionError(f"{name} must be in [0, 1]")

    def extra_power_w(self, regfile_power_w: float) -> float:
        """Added RegFile power: conflict replays plus residual
        leakage."""
        replay_w = regfile_power_w * self.bank_conflict_rate
        leak_w = self.leakage_w * (
            1.0 - self.drowsy_fraction * self.drowsy_savings)
        return replay_w + leak_w

    def to_wire(self) -> Dict[str, Any]:
        return {
            "bank_conflict_rate": self.bank_conflict_rate,
            "leakage_w": self.leakage_w,
            "drowsy_fraction": self.drowsy_fraction,
            "drowsy_savings": self.drowsy_savings,
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "RegFileParams":
        return cls(
            bank_conflict_rate=float(
                doc.get("bank_conflict_rate", 0.0)),
            leakage_w=float(doc.get("leakage_w", 0.0)),
            drowsy_fraction=float(doc.get("drowsy_fraction", 0.0)),
            drowsy_savings=float(doc.get("drowsy_savings", 0.9)))


@dataclass(frozen=True)
class SchedulerParams:
    """WaSP-style warp-scheduler energy term.

    ``schedule_pj`` is the energy of scheduling one warp instruction;
    ``gated_fraction`` of those events are clock-gated away (sleeping
    warps).  A throttling scheduler may stretch execution by
    ``duration_scale >= 1`` — exposed for callers that integrate
    static energy over time; the dynamic terms here are rates and do
    not apply it themselves.
    """

    schedule_pj: float = 0.0
    gated_fraction: float = 0.0
    duration_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.schedule_pj < 0.0:
            raise ExtensionError("schedule_pj must be >= 0")
        if not 0.0 <= self.gated_fraction <= 1.0:
            raise ExtensionError("gated_fraction must be in [0, 1]")
        if self.duration_scale < 1.0:
            raise ExtensionError("duration_scale must be >= 1")

    def extra_power_w(self, activity: ActivityVector) -> float:
        """Added scheduler power on the warp-instruction stream."""
        rate = activity.rate(Component.OTHERS)
        return (rate * self.schedule_pj * 1e-12
                * (1.0 - self.gated_fraction))

    def to_wire(self) -> Dict[str, Any]:
        return {
            "schedule_pj": self.schedule_pj,
            "gated_fraction": self.gated_fraction,
            "duration_scale": self.duration_scale,
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "SchedulerParams":
        return cls(
            schedule_pj=float(doc.get("schedule_pj", 0.0)),
            gated_fraction=float(doc.get("gated_fraction", 0.0)),
            duration_scale=float(doc.get("duration_scale", 1.0)))


@dataclass(frozen=True)
class PowerExtensions:
    """The bundle ``GPUPowerModel.extensions`` accepts.  ``None``
    members are off; enabled members with default parameters are
    numeric no-ops."""

    regfile: Optional[RegFileParams] = None
    scheduler: Optional[SchedulerParams] = None

    @property
    def active(self) -> bool:
        return self.regfile is not None or self.scheduler is not None

    def adjust_power_w(self, powers: Dict[Component, float],
                       activity: ActivityVector
                       ) -> Dict[Component, float]:
        """Return the per-component power dict with the extension
        terms added onto their home components."""
        adjusted = dict(powers)
        if self.regfile is not None:
            adjusted[Component.REGFILE] += self.regfile.extra_power_w(
                powers[Component.REGFILE])
        if self.scheduler is not None:
            adjusted[Component.OTHERS] += \
                self.scheduler.extra_power_w(activity)
        return adjusted

    def duration_scale(self) -> float:
        """The execution stretch a throttling scheduler imposes
        (``1.0`` when off) — for callers integrating static energy."""
        return 1.0 if self.scheduler is None \
            else self.scheduler.duration_scale

    def to_wire(self) -> Dict[str, Any]:
        return {
            "regfile": None if self.regfile is None
            else self.regfile.to_wire(),
            "scheduler": None if self.scheduler is None
            else self.scheduler.to_wire(),
        }

    @classmethod
    def from_wire(cls, doc: Mapping[str, Any]) -> "PowerExtensions":
        regfile = doc.get("regfile")
        scheduler = doc.get("scheduler")
        return cls(
            regfile=None if regfile is None
            else RegFileParams.from_wire(regfile),
            scheduler=None if scheduler is None
            else SchedulerParams.from_wire(scheduler))


__all__ = ["ExtensionError", "PowerExtensions", "RegFileParams",
           "SchedulerParams"]
