"""Cross-model consistency: the gate-level netlist, the RTL protocol
model and the vectorised behavioural model must tell one story."""

import numpy as np
import pytest

from repro.circuits.adders_rtl import sliced_adder
from repro.circuits.st2_rtl import ST2AdderRTL
from repro.core import bitops
from repro.core.adder import ST2Adder
from repro.core.slices import INT64, AdderGeometry


def _stimulus(a, b, cin, preds, width):
    n = len(a)
    n_preds = len(preds[0])
    stim = np.zeros((n, 2 * width + 1 + n_preds), dtype=bool)
    for i in range(width):
        stim[:, i] = (a >> np.uint64(i)) & np.uint64(1)
        stim[:, width + i] = (b >> np.uint64(i)) & np.uint64(1)
    stim[:, 2 * width] = cin
    stim[:, 2 * width + 1:] = preds
    return stim


class TestGateVsBehavioural:
    @pytest.mark.parametrize("width", [16, 32, 64])
    def test_error_wires_agree(self, width, rng):
        """The netlist's cycle-1 E[i] outputs must equal the
        behavioural model's error matrix for the same inputs."""
        geo = AdderGeometry(width)
        net = sliced_adder(width, 8)
        n = 120
        lim = bitops.mask(width)
        a = rng.integers(0, lim, n, dtype=np.uint64)
        b = rng.integers(0, lim, n, dtype=np.uint64)
        cin = rng.integers(0, 2, n).astype(np.uint8)
        preds = rng.integers(0, 2, (n, geo.n_predictions)) \
            .astype(np.uint8)

        out = net.outputs(_stimulus(a, b, cin, preds, width))
        n_slices = geo.n_slices
        gate_errors = out[:, width + n_slices:].astype(np.uint8)

        beh = ST2Adder(geo).add(a, b, preds, cin=cin)
        assert np.array_equal(gate_errors, beh.errors[:, 1:])

    def test_gate_couts_match_cycle1_semantics(self, rng):
        """The netlist's per-slice carry-outs are the cycle-1 values
        (computed with the *predicted* carry-ins), not the true ones."""
        width = 16
        net = sliced_adder(width, 8)
        # slice 1 propagates: 0xFF00 + 0x00FF, true cin of slice1 = 0
        a = np.array([0xFF00], dtype=np.uint64)
        b = np.array([0x00FF], dtype=np.uint64)
        preds = np.array([[1]], dtype=np.uint8)   # wrong prediction
        out = net.outputs(_stimulus(a, b, np.array([0]), preds, width))
        cout_slice1 = out[0, width + 1]
        # slice 1 = 0xFF + 0x00 with assumed cin 1 -> carries out 1
        assert bool(cout_slice1) is True


class TestRtlVsBehavioural:
    def test_three_models_agree_on_errors(self, rng):
        geo = INT64
        beh = ST2Adder(geo)
        rtl = ST2AdderRTL(geo)
        for _ in range(60):
            a = int(rng.integers(0, bitops.mask(64), dtype=np.uint64,
                                 endpoint=True))
            b = int(rng.integers(0, bitops.mask(64), dtype=np.uint64,
                                 endpoint=True))
            preds = rng.integers(0, 2, geo.n_predictions).tolist()
            out = beh.add(np.array([a], np.uint64),
                          np.array([b], np.uint64),
                          np.array([preds], np.uint8))
            rtl.start_op(a, b, preds)
            rtl.clock()
            assert rtl.errors == list(out.errors[0])
            assert rtl.stall == int(out.mispredicted[0])
            if rtl.stall:
                rtl.clock()
            assert rtl.result == int(out.result[0])
