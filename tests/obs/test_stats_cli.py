"""st2-stats: subcommands and the 0/1/2 exit-code contract."""

from __future__ import annotations

import json

import pytest

from repro.cli_common import EXIT_OK, EXIT_PROBLEMS, EXIT_USAGE
from repro.obs import Obs, write_metrics
from repro.obs.cli import main


@pytest.fixture
def metrics_file(tmp_path):
    reg = Obs()
    reg.add("sim.functional.trace_rows", 1000)
    reg.record_timer("runner.stage.eval", 1.5)
    return write_metrics(tmp_path / "run.metrics.json", reg.snapshot(),
                         meta={"kernels": ["qrng_K2"]})


@pytest.fixture
def baseline_file(tmp_path, metrics_file):
    out = tmp_path / "baseline.json"
    assert main(["baseline", str(metrics_file),
                 "--out", str(out)]) == EXIT_OK
    return out


class TestSummary:
    def test_text(self, metrics_file, capsys):
        assert main(["summary", str(metrics_file)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "sim.functional.trace_rows" in out
        assert "runner.stage.eval" in out

    def test_json(self, metrics_file, capsys):
        assert main(["summary", str(metrics_file), "--json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"]["sim.functional.trace_rows"] == 1000

    def test_resolves_manifest_path(self, tmp_path, metrics_file,
                                    capsys):
        """Pointing at the manifest finds the rider metrics file."""
        manifest = tmp_path / "run.jsonl"
        manifest.write_text("")
        assert main(["summary", str(manifest)]) == EXIT_OK
        assert "trace_rows" in capsys.readouterr().out


class TestDiff:
    def test_identical(self, metrics_file, capsys):
        assert main(["diff", str(metrics_file),
                     str(metrics_file)]) == EXIT_OK
        assert "=" in capsys.readouterr().out

    def test_changed_only_json(self, tmp_path, metrics_file, capsys):
        reg = Obs()
        reg.add("sim.functional.trace_rows", 1200)
        other = write_metrics(tmp_path / "other.metrics.json",
                              reg.snapshot())
        assert main(["diff", str(metrics_file), str(other),
                     "--changed-only", "--json"]) == EXIT_OK
        rows = json.loads(capsys.readouterr().out)
        assert all(r["delta"] != 0 for r in rows)


class TestCheck:
    def test_in_band_exits_zero(self, metrics_file, baseline_file,
                                capsys):
        assert main(["check", str(metrics_file),
                     "--baseline", str(baseline_file)]) == EXIT_OK
        assert "in band" in capsys.readouterr().out

    def test_out_of_band_exits_one(self, tmp_path, baseline_file,
                                   capsys):
        reg = Obs()
        reg.add("sim.functional.trace_rows", 2000)    # 2x the pin
        reg.record_timer("runner.stage.eval", 1.5)
        drifted = write_metrics(tmp_path / "drift.metrics.json",
                                reg.snapshot())
        assert main(["check", str(drifted),
                     "--baseline", str(baseline_file)]) == EXIT_PROBLEMS
        assert "out of band" in capsys.readouterr().err

    def test_out_of_band_json(self, tmp_path, baseline_file, capsys):
        reg = Obs()
        drifted = write_metrics(tmp_path / "d.metrics.json",
                                reg.snapshot())
        assert main(["check", str(drifted), "--json",
                     "--baseline", str(baseline_file)]) == EXIT_PROBLEMS
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["deviations"]

    def test_json_reports_structured_rows(self, metrics_file,
                                          baseline_file, capsys):
        """``--json`` carries one row per pinned metric so CI can
        print the measured eval-gate value, not just pass/fail."""
        assert main(["check", str(metrics_file), "--json",
                     "--baseline", str(baseline_file)]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["checked"] == len(payload["rows"]) > 0
        by_ref = {r["metric"]: r for r in payload["rows"]}
        pinned = by_ref["counters.sim.functional.trace_rows"]
        assert pinned["ok"] and pinned["value"] == 1000
        assert pinned["expect"] == 1000 and "band" in pinned
        timer = by_ref["timers.runner.stage.eval.total_s"]
        assert timer["ok"] and "max" in timer


class TestUsageErrors:
    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["summary",
                     str(tmp_path / "nope.json")]) == EXIT_USAGE
        assert "no such file" in capsys.readouterr().err

    def test_ill_formed_metrics_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.metrics.json"
        bad.write_text("{not json")
        assert main(["summary", str(bad)]) == EXIT_USAGE

    def test_bad_baseline_exits_two(self, tmp_path, metrics_file):
        bad = tmp_path / "bad_baseline.json"
        bad.write_text(json.dumps({"bench_version": 1}))
        assert main(["check", str(metrics_file),
                     "--baseline", str(bad)]) == EXIT_USAGE

    def test_unknown_subcommand_exits_two(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["frobnicate"])
        assert exc.value.code == EXIT_USAGE


class TestBaselineCommand:
    def test_written_shape(self, baseline_file):
        payload = json.loads(baseline_file.read_text())
        assert payload["bench_version"] == 1
        refs = [e["metric"] for e in payload["metrics"]]
        assert "counters.sim.functional.trace_rows" in refs
        assert payload["grid"] == {"kernels": ["qrng_K2"]}
