"""CUDA Samples *dct8x8* — ``dct8x8_K1`` (CUDAkernel1DCT).

Each thread computes one output coefficient of an 8-point DCT over a
row of its 8x8 block held in shared memory: an FFMA chain against the
cosine basis (constant memory), over pixel data centred at zero.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BS = 8                      # DCT block edge
BLOCK = BS * BS             # one thread per coefficient


def dct_kernel(k, image, coeffs, basis, blocks_per_row):
    """CUDAkernel1DCT: row-wise 8-point DCT of an 8x8 tile."""
    tx = k.thread_id() % BS          # output frequency index
    ty = k.thread_id() // BS         # row within tile
    bx = k.block_id % blocks_per_row
    by = k.block_id // blocks_per_row
    img_w = blocks_per_row * BS

    tile = k.shared(BLOCK, np.float32)
    row = k.imad(by, BS, ty)
    col = k.imad(bx, BS, tx)
    src = k.imad(row, img_w, col)
    pix = k.ld_global(image, src)
    centred = k.fsub(pix, 128.0)
    sidx = k.imad(ty, BS, tx)
    k.st_shared(tile, sidx, centred)
    k.syncthreads()

    acc = np.zeros(k.n_threads, dtype=np.float32)
    row_base = k.imul(ty, BS)
    for i in k.range(BS):
        v = k.ld_shared(tile, k.iadd(row_base, i))
        c = k.ld_const(basis, k.imad(tx, BS, i))
        acc = k.ffma(v, c, acc)
    k.st_global(coeffs, src, acc)


def dct_columns_kernel(k, coeffs, out, basis, blocks_per_row):
    """Extension (CUDAkernel2DCT-style): the column pass completing the
    2-D transform over the row-DCT coefficients."""
    tx = k.thread_id() % BS          # column within tile
    ty = k.thread_id() // BS         # output frequency index
    bx = k.block_id % blocks_per_row
    by = k.block_id // blocks_per_row
    img_w = blocks_per_row * BS

    tile = k.shared(BLOCK, np.float32)
    row = k.imad(by, BS, ty)
    col = k.imad(bx, BS, tx)
    src = k.imad(row, img_w, col)
    k.st_shared(tile, k.imad(ty, BS, tx), k.ld_global(coeffs, src))
    k.syncthreads()

    acc = np.zeros(k.n_threads, dtype=np.float32)
    for i in k.range(BS):
        v = k.ld_shared(tile, k.imad(i, BS, tx))
        c = k.ld_const(basis, k.imad(ty, BS, i))
        acc = k.ffma(v, c, acc)
    k.st_global(out, src, acc)


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    blocks_per_row = scaled(8, scale, minimum=2)
    blocks_per_col = scaled(8, scale, minimum=2)
    w, h = blocks_per_row * BS, blocks_per_col * BS

    yy, xx = np.indices((h, w))
    img = (128 + 80 * np.sin(xx / 11.0) * np.cos(yy / 13.0)
           + rng.normal(0, 8, (h, w)))
    image = np.clip(img, 0, 255).astype(np.float32)

    n = np.arange(BS)
    basis = np.cos((2 * n[None, :] + 1) * n[:, None] * np.pi / 16.0)
    basis *= np.where(n[:, None] == 0, np.sqrt(1 / BS), np.sqrt(2 / BS))

    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="dct8x8_K1",
        fn=dct_kernel,
        launch=LaunchConfig(blocks_per_row * blocks_per_col, BLOCK),
        params=dict(
            image=launcher.buffer("image", image.reshape(-1)),
            coeffs=launcher.buffer("coeffs",
                                   np.zeros(w * h, np.float32)),
            basis=launcher.buffer(
                "basis", basis.astype(np.float32).reshape(-1)),
            blocks_per_row=blocks_per_row),
        launcher=launcher)


def prepare_k2(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    """Extension kernel: the column DCT pass over K1's coefficients."""
    k1 = prepare(scale=scale, seed=seed, gpu=gpu)
    k1.run()
    p = k1.params
    launcher = k1.launcher
    n = len(p["coeffs"].data)
    return PreparedKernel(
        name="dct8x8_K2",
        fn=dct_columns_kernel,
        launch=k1.launch,
        params=dict(
            coeffs=p["coeffs"],
            out=launcher.buffer("coeffs2", np.zeros(n, np.float32)),
            basis=p["basis"],
            blocks_per_row=p["blocks_per_row"]),
        launcher=launcher)
