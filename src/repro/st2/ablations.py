"""Ablation studies around the ST2 design point.

The paper's design-space exploration covers three axes — spatial (PC
bits), temporal (history depth) and thread sharing — plus two practical
concerns it argues away qualitatively: CRF write-port contention
("random arbitration suffices") and the slice width (fixed at 8 bits by
the circuit study). This module quantifies each on the actual traces:

* :func:`history_depth_sweep` — deeper per-entry history (keep the last
  N carry vectors, predict by agreement) vs the paper's depth-1 "Prev";
* :func:`contention_sweep` — ST2 with realistic CRF write arbitration
  (simultaneous writers to one entry drop all but a random winner)
  versus the idealised table;
* :func:`slice_width_speculation_sweep` — the *misprediction* cost of
  narrower/wider slices on real value streams (complementing the
  circuit-level energy sweep of Section V-B);
* :func:`static_peek_ablation` — the value of *compile-time* carry
  facts (``st2-lint facts``, consumed through
  :class:`~repro.core.predictors.StaticPeekPredictor`): how many
  dynamic speculation events statically proven carries replace, at
  unchanged functional results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import bitops
from repro.core.predictors import (SpeculationConfig, history_keys,
                                   previous_same_key, run_speculation,
                                   trace_groups, trace_peek)
from repro.core.speculation import ST2_DESIGN

# ----------------------------------------------------------------------
# history depth
# ----------------------------------------------------------------------


def _depth_predictions(trace, config: SpeculationConfig,
                       depth: int) -> np.ndarray:
    """Prediction bits using the last ``depth`` carry vectors per entry.

    Depth-1 is the paper's Prev. For deeper history the prediction is
    the majority vote of the stored vectors (ties resolved toward the
    most recent) — the natural hardware generalisation (a small shift
    register per entry).
    """
    from repro.core.predictors import (MAX_PREDICTIONS,
                                       trace_n_predictions,
                                       trace_slice_carries)
    carries = trace_slice_carries(trace)
    n_preds = trace_n_predictions(trace)
    keys = history_keys(trace, config)
    groups = trace_groups(trace)
    n = len(trace)
    bits = np.zeros((n, MAX_PREDICTIONS), dtype=np.uint8)
    for j in range(MAX_PREDICTIONS):
        valid = n_preds > j
        if not valid.any():
            continue
        # chain of predecessors: prev, prev-of-prev, ...
        prev = previous_same_key(keys, valid, groups)
        ancestors = [prev]
        for _ in range(depth - 1):
            last = ancestors[-1]
            nxt = np.where(last >= 0, prev[np.maximum(last, 0)], -1)
            ancestors.append(nxt)
        votes = np.zeros(n, dtype=np.int64)
        counts = np.zeros(n, dtype=np.int64)
        for anc in ancestors:
            has = anc >= 0
            votes[has] += carries[anc[has], j + 1]
            counts[has] += 1
        # majority, most-recent-wins on ties
        recent = np.zeros(n, dtype=np.uint8)
        has0 = ancestors[0] >= 0
        recent[has0] = carries[ancestors[0][has0], j + 1]
        with np.errstate(invalid="ignore"):
            maj = np.where(2 * votes > counts, 1,
                           np.where(2 * votes < counts, 0, recent))
        bits[:, j] = maj.astype(np.uint8)
    if config.peek:
        known, value = trace_peek(trace)
        bits = np.where(known, value, bits)
    return bits


@dataclass
class DepthPoint:
    depth: int
    misprediction_rate: float


def history_depth_sweep(trace, depths=(1, 2, 3, 4),
                        config: SpeculationConfig = ST2_DESIGN) -> list:
    """Misprediction rate vs history depth at the ST2 index."""
    from repro.core.predictors import Prediction, evaluate_trace
    points = []
    for depth in depths:
        bits = _depth_predictions(trace, config, depth)
        pred = Prediction(config=config, bits=bits,
                          has_prev=np.zeros_like(bits, dtype=bool),
                          peek_known=np.zeros_like(bits, dtype=bool))
        res = evaluate_trace(trace, pred)
        points.append(DepthPoint(depth=depth,
                                 misprediction_rate=res
                                 .thread_misprediction_rate))
    return points


# ----------------------------------------------------------------------
# CRF write-port contention
# ----------------------------------------------------------------------

@dataclass
class ContentionResult:
    ideal_rate: float
    contended_rate: float
    updates_dropped_fraction: float

    @property
    def rate_penalty(self) -> float:
        return self.contended_rate - self.ideal_rate


def contention_sweep(trace, config: SpeculationConfig = ST2_DESIGN,
                     writeback_width: int = 4, seed: int = 0,
                     max_rows: int = 120_000) -> ContentionResult:
    """ST2 misprediction with realistic CRF write arbitration.

    Warp instructions retiring in the same cycle are modelled as the
    groups of ``writeback_width`` consecutive dynamic warp instructions
    per SM (the SM has that many write-back slots). Within one cycle,
    updates that target the same CRF entry conflict: one random winner
    writes, the rest are dropped (the paper's arbitration). Dropping
    updates only stales predictions — correctness is untouched.
    """
    from repro.core.predictors import (MAX_PREDICTIONS, Prediction,
                                       evaluate_trace,
                                       trace_n_predictions,
                                       trace_slice_carries)
    if len(trace) > max_rows:
        trace = trace.select(np.arange(max_rows))
    ideal = run_speculation(trace, config)

    rng = np.random.default_rng(seed)
    carries = trace_slice_carries(trace)
    n_preds = trace_n_predictions(trace)
    keys = history_keys(trace, config)
    groups = trace_groups(trace)
    n = len(trace)

    # a CRF *entry* is the key without its lane component: all lanes of
    # a warp write disjoint bit fields of one entry (no intra-warp
    # conflict); two warps retiring in the same cycle conflict when
    # they target the same entry
    lane_mask = np.int64(((1 << 32) - 1) << 24)
    entry_ids = keys & ~lane_mask

    bits = np.zeros((n, MAX_PREDICTIONS), dtype=np.uint8)
    table: dict = {}
    dropped = 0
    total_updates = 0

    # walk the trace warp-instruction by warp-instruction; a "cycle"
    # spans `writeback_width` instructions (the SM's write-back slots)
    group_edges = np.nonzero(np.diff(groups, prepend=groups[0] - 1))[0]
    cycle_updates: dict = {}   # entry_id -> list of per-warp writes
    groups_in_cycle = 0

    def flush_cycle():
        nonlocal dropped, cycle_updates, groups_in_cycle
        for writers in cycle_updates.values():
            if len(writers) > 1:
                keep = int(rng.integers(len(writers)))
                dropped += len(writers) - 1
                writers = [writers[keep]]
            for key, vec, width_bits in writers[0]:
                slot = table.setdefault(
                    key, np.zeros(MAX_PREDICTIONS, dtype=np.uint8))
                slot[:width_bits] = vec[:width_bits]
        cycle_updates = {}
        groups_in_cycle = 0

    for gi, start in enumerate(group_edges):
        end = group_edges[gi + 1] if gi + 1 < len(group_edges) else n
        rows = range(start, end)
        # register-read stage: lanes see the pre-cycle table state
        for r in rows:
            stored = table.get(int(keys[r]))
            if stored is not None:
                bits[r, :n_preds[r]] = stored[:n_preds[r]]
        # write-back stage: one atomic entry write per warp instruction
        warp_write = [(int(keys[r]), carries[r, 1:], int(n_preds[r]))
                      for r in rows]
        total_updates += 1
        cycle_updates.setdefault(int(entry_ids[start]), []).append(
            warp_write)
        groups_in_cycle += 1
        if groups_in_cycle >= writeback_width:
            flush_cycle()
    flush_cycle()

    if config.peek:
        known, value = trace_peek(trace)
        bits = np.where(known, value, bits)
    pred = Prediction(config=config, bits=bits,
                      has_prev=np.zeros_like(bits, dtype=bool),
                      peek_known=np.zeros_like(bits, dtype=bool))
    contended = evaluate_trace(trace, pred)
    return ContentionResult(
        ideal_rate=ideal.thread_misprediction_rate,
        contended_rate=contended.thread_misprediction_rate,
        updates_dropped_fraction=dropped / max(total_updates, 1))


# ----------------------------------------------------------------------
# slice width (speculation cost, on real traces)
# ----------------------------------------------------------------------

@dataclass
class SliceWidthPoint:
    slice_width: int
    misprediction_rate: float
    boundaries_per_64bit_op: int


def slice_width_speculation_sweep(trace, widths=(4, 8, 16),
                                  config: SpeculationConfig = ST2_DESIGN,
                                  max_rows: int = 200_000) -> list:
    """Misprediction cost of other slice widths on real operands.

    Narrower slices mean more predicted boundaries per op (more chances
    to stall); wider slices mean fewer. Run per-width Prev+Peek
    prediction directly on the trace operands.
    """
    if len(trace) > max_rows:
        trace = trace.select(np.arange(max_rows))
    keys = history_keys(trace, config)
    groups = trace_groups(trace)
    points = []
    for sw in widths:
        max_nb = (64 + sw - 1) // sw - 1
        n = len(trace)
        n_bound = (trace.width.astype(np.int64) + sw - 1) // sw - 1
        # true carries at this slicing
        carr = np.zeros((n, max_nb + 1), dtype=np.uint8)
        peek_known = np.zeros((n, max_nb), dtype=bool)
        peek_val = np.zeros((n, max_nb), dtype=np.uint8)
        for w in np.unique(trace.width):
            rows = np.nonzero(trace.width == w)[0]
            c = bitops.slice_carry_ins(trace.op_a[rows],
                                       trace.op_b[rows], int(w), sw,
                                       trace.cin[rows])
            carr[rows[:, None], np.arange(c.shape[1])[None, :]] = c
            ma = bitops.slice_operand_bits(trace.op_a[rows], int(w), sw)
            mb = bitops.slice_operand_bits(trace.op_b[rows], int(w), sw)
            nb = ma.shape[1] - 1
            if nb <= 0:
                continue
            one = (ma[:, :nb] & mb[:, :nb]) == 1
            zero = (ma[:, :nb] | mb[:, :nb]) == 0
            peek_known[rows[:, None], np.arange(nb)[None, :]] = one | zero
            peek_val[rows[:, None], np.arange(nb)[None, :]] = \
                one.astype(np.uint8)
        # prev prediction per boundary
        bits = np.zeros((n, max_nb), dtype=np.uint8)
        for j in range(max_nb):
            valid = n_bound > j
            if not valid.any():
                continue
            prev = previous_same_key(keys, valid, groups)
            has = prev >= 0
            bits[has, j] = carr[prev[has], j + 1]
        bits = np.where(peek_known, peek_val, bits)
        in_range = np.arange(max_nb)[None, :] < n_bound[:, None]
        wrong = (bits != carr[:, 1:]) & in_range
        miss = wrong.any(axis=1)
        points.append(SliceWidthPoint(
            slice_width=sw,
            misprediction_rate=float(miss.mean()),
            boundaries_per_64bit_op=max_nb))
    return points


# ----------------------------------------------------------------------
# static carry facts (compile-time Peek)
# ----------------------------------------------------------------------

@dataclass
class StaticPeekPoint:
    """Effect of a static carry-fact table on one trace + config."""

    fact_labels: int            # PC labels with proven carries
    fact_bits: int              # pinned boundaries in the fact table
    static_bits: int            # (row, slice) bits resolved statically
    new_static_bits: int        # ... of which dynamic Peek would miss
    dynamic_events_base: int    # speculation events without facts
    dynamic_events_static: int  # speculation events with facts
    misprediction_rate_base: float
    misprediction_rate_static: float

    @property
    def events_reduced(self) -> int:
        """Dynamic speculation events replaced by static facts
        (never negative: facts only remove the need to speculate)."""
        return self.dynamic_events_base - self.dynamic_events_static


def static_peek_ablation(trace, facts,
                         config: SpeculationConfig = ST2_DESIGN
                         ) -> StaticPeekPoint:
    """Measure what the exported static carry facts buy on a trace.

    Runs the wrapped config twice — purely dynamic vs through
    :class:`~repro.core.predictors.StaticPeekPredictor` — and counts
    the dynamic speculation events each needs.  Statically proven
    carries equal the true carries, so the functional results are
    bit-identical and the misprediction rate can only go down.
    """
    from repro.core.predictors import (StaticPeekPredictor,
                                       evaluate_trace, predict_trace,
                                       speculation_events, trace_peek)
    base_pred = predict_trace(trace, config)
    base = evaluate_trace(trace, base_pred)
    predictor = StaticPeekPredictor(config, facts)
    static_pred = predictor.predict(trace)
    static = evaluate_trace(trace, static_pred)
    known = static_pred.static_known
    peek_known, _ = trace_peek(trace)
    fact_bits = 0
    for fact in (facts or {}).values():
        carries = (fact["carries"] if isinstance(fact, dict)
                   else fact.carries)
        fact_bits += len(carries)
    return StaticPeekPoint(
        fact_labels=len(facts or {}),
        fact_bits=fact_bits,
        static_bits=int(known.sum()),
        new_static_bits=int((known & ~peek_known).sum()),
        dynamic_events_base=speculation_events(base_pred, trace),
        dynamic_events_static=speculation_events(static_pred, trace),
        misprediction_rate_base=base.thread_misprediction_rate,
        misprediction_rate_static=static.thread_misprediction_rate)
