"""The named design-space ladder of Figure 5 and its exploration runner.

``DESIGN_LADDER`` lists, left to right, the configurations the paper
sweeps: static predictions, VaLHALLA (with and without the Peek
retrofit), the shared previous-carry table, progressively more PC index
bits (ModPCk), full thread disambiguation (Gtid — shown to be *worse*,
because it forfeits constructive cross-thread interference), the ST2
choice (Ltid), and the XOR-hash variant shown to add nothing.

``ST2_DESIGN`` is the paper's final pick: ``Ltid+Prev+ModPC4+Peek``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.predictors import SpeculationConfig, run_speculation

STATIC_ONE = SpeculationConfig("staticOne", "static1")
STATIC_ZERO = SpeculationConfig("staticZero", "static0")
CASA = SpeculationConfig("CASA", "operand")
VALHALLA = SpeculationConfig("VaLHALLA", "valhalla")
VALHALLA_PEEK = SpeculationConfig("VaLHALLA+Peek", "valhalla", peek=True)
PREV = SpeculationConfig("Prev", "prev")
PREV_PEEK = SpeculationConfig("Prev+Peek", "prev", peek=True)


def prev_modpc(bits: int, peek: bool = True,
               thread_key: str = "") -> SpeculationConfig:
    """A Prev+ModPCk(+Peek) configuration, optionally thread-indexed."""
    prefix = {"": "", "gtid": "Gtid+", "ltid": "Ltid+"}[thread_key]
    suffix = "+Peek" if peek else ""
    return SpeculationConfig(
        f"{prefix}Prev+ModPC{bits}{suffix}", "prev", peek=peek,
        pc_index="mod", pc_bits=bits, thread_key=thread_key)


GTID_PREV_MODPC4_PEEK = prev_modpc(4, thread_key="gtid")
LTID_PREV_MODPC4_PEEK = prev_modpc(4, thread_key="ltid")
XOR_LTID = SpeculationConfig("Ltid+Prev+XorPC4+Peek", "prev", peek=True,
                             pc_index="xor", pc_bits=4, thread_key="ltid")

#: The ST2 GPU design point (Section IV-B conclusion).
ST2_DESIGN = LTID_PREV_MODPC4_PEEK

#: Figure 5's x-axis, left to right.
DESIGN_LADDER = (
    STATIC_ONE,
    STATIC_ZERO,
    VALHALLA,
    VALHALLA_PEEK,
    PREV_PEEK,
    prev_modpc(1),
    prev_modpc(2),
    prev_modpc(4),
    prev_modpc(8),
    GTID_PREV_MODPC4_PEEK,
    LTID_PREV_MODPC4_PEEK,
    XOR_LTID,
)

#: Figure 3's three correlation configurations.
FIG3_CONFIGS = (
    SpeculationConfig("Prev+Gtid", "prev", thread_key="gtid"),
    SpeculationConfig("Prev+FullPC+Gtid", "prev", pc_index="full",
                      thread_key="gtid"),
    SpeculationConfig("Prev+FullPC+Ltid", "prev", pc_index="full",
                      thread_key="ltid"),
)


#: Display token <-> field value for the compositional config grammar.
_MECHANISM_TOKENS = {
    "static1": "staticOne", "static0": "staticZero",
    "operand": "CASA", "valhalla": "VaLHALLA", "prev": "Prev",
}
_THREAD_TOKENS = {"gtid": "Gtid", "ltid": "Ltid"}


def config_name(mechanism: str, peek: bool = False,
                pc_index: str = "none", pc_bits: int = 0,
                thread_key: str = "", sm_scoped: bool = False) -> str:
    """The canonical display name of a design point.

    Token order is fixed — ``[Sm+][Gtid+|Ltid+]<mechanism>[+FullPC|
    +ModPCk|+XorPCk][+Peek]`` — so every distinct field tuple has
    exactly one canonical name, and :func:`parse_config_name` inverts
    it losslessly.  The paper's ladder names (``Ltid+Prev+ModPC4+Peek``
    …) are already in this form.
    """
    tokens = []
    if sm_scoped:
        tokens.append("Sm")
    if thread_key:
        tokens.append(_THREAD_TOKENS[thread_key])
    tokens.append(_MECHANISM_TOKENS[mechanism])
    if pc_index == "full":
        tokens.append("FullPC")
    elif pc_index == "mod":
        tokens.append(f"ModPC{pc_bits}")
    elif pc_index == "xor":
        tokens.append(f"XorPC{pc_bits}")
    if peek:
        tokens.append("Peek")
    return "+".join(tokens)


def parse_config_name(name: str) -> SpeculationConfig:
    """Parse a compositional design-point name into a config.

    Token order is free (``Prev+FullPC+Gtid`` and ``Gtid+Prev+FullPC``
    are the same point) and matching is case-insensitive, so every
    historical ladder/Figure-3 spelling parses; the returned config
    carries the *canonical* :func:`config_name` spelling.  Raises
    :class:`KeyError` on unknown or repeated tokens and
    :class:`ValueError` on invalid field combinations (via
    :class:`SpeculationConfig` validation).
    """
    mechanisms = {v.lower(): k for k, v in _MECHANISM_TOKENS.items()}
    threads = {v.lower(): k for k, v in _THREAD_TOKENS.items()}
    fields = {"mechanism": None, "peek": False, "pc_index": "none",
              "pc_bits": 0, "thread_key": None, "sm_scoped": False}

    def set_once(field, value, token):
        if fields[field] not in (None, "none", False, 0):
            raise KeyError(
                f"config name {name!r}: token {token!r} repeats or "
                f"conflicts with an earlier token")
        fields[field] = value

    for token in name.split("+"):
        low = token.strip().lower()
        if low in mechanisms:
            set_once("mechanism", mechanisms[low], token)
        elif low in threads:
            set_once("thread_key", threads[low], token)
        elif low == "sm":
            set_once("sm_scoped", True, token)
        elif low == "peek":
            set_once("peek", True, token)
        elif low == "fullpc":
            set_once("pc_index", "full", token)
        elif low.startswith(("modpc", "xorpc")) and low[5:].isdigit():
            set_once("pc_index",
                     "mod" if low.startswith("modpc") else "xor", token)
            fields["pc_bits"] = int(low[5:])
        else:
            raise KeyError(f"unknown speculation config {name!r} "
                           f"(unrecognised token {token!r})")
    if fields["mechanism"] is None:
        raise KeyError(f"config name {name!r} names no mechanism "
                       f"(staticOne, staticZero, CASA, VaLHALLA, Prev)")
    fields["thread_key"] = fields["thread_key"] or ""
    return SpeculationConfig(name=config_name(**fields), **fields)


def config_by_name(name: str) -> SpeculationConfig:
    """Resolve a configuration by display name.

    Exact ladder / Figure-3 names return the canonical module-level
    objects; any other name is parsed compositionally
    (:func:`parse_config_name`), so every point of the design space —
    not just the paper's named ladder — is addressable by name.  This
    is what lets sweep-generated configs travel the ``st2-serve`` wire
    as plain strings and still resolve to identical cache keys.
    """
    for cfg in DESIGN_LADDER + FIG3_CONFIGS + (CASA, PREV):
        if cfg.name == name:
            return cfg
    try:
        return parse_config_name(name)
    except ValueError as exc:
        raise KeyError(f"invalid speculation config {name!r}: {exc}") \
            from None


@dataclass
class DesignSpacePoint:
    """One bar of Figure 5 for one kernel."""

    config: SpeculationConfig
    misprediction_rate: float
    recomputed_per_misprediction: float


def explore(trace, configs=DESIGN_LADDER) -> list:
    """Run the design-space exploration over one kernel trace."""
    points = []
    for cfg in configs:
        result = run_speculation(trace, cfg)
        points.append(DesignSpacePoint(
            config=cfg,
            misprediction_rate=result.thread_misprediction_rate,
            recomputed_per_misprediction=(
                result.recomputed_per_misprediction)))
    return points
