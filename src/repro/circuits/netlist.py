"""Gate-level netlists with vectorised simulation and toggle counting.

A tiny structural-RTL substrate standing in for the paper's Synopsys
netlist flow: netlists are built gate by gate (in topological order,
which construction naturally produces), simulated over whole stimulus
sets at once with numpy boolean vectors, and characterised for

* critical-path delay (longest register-to-register gate chain, each
  gate weighted by its fanin delay at the chosen supply voltage), and
* switching energy (output toggles between consecutive stimulus
  vectors, weighted by per-gate switched capacitance and Vdd^2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.technology import SAED90, Technology

_EVALUATORS = {
    "AND": lambda ins: np.logical_and.reduce(ins),
    "OR": lambda ins: np.logical_or.reduce(ins),
    "XOR": lambda ins: np.logical_xor.reduce(ins),
    "NOT": lambda ins: ~ins[0],
    "NAND": lambda ins: ~np.logical_and.reduce(ins),
    "NOR": lambda ins: ~np.logical_or.reduce(ins),
    "XNOR": lambda ins: ~np.logical_xor.reduce(ins),
    "BUF": lambda ins: ins[0],
}


@dataclass
class Gate:
    kind: str
    inputs: tuple
    output: int


class Netlist:
    """A combinational netlist over boolean nodes."""

    def __init__(self, name: str = ""):
        self.name = name
        self.n_nodes = 0
        self.input_nodes: list = []
        self.output_nodes: list = []
        self.gates: list = []

    # -- construction ---------------------------------------------------

    def input(self, count: int = 1):
        """Allocate primary-input node(s)."""
        ids = list(range(self.n_nodes, self.n_nodes + count))
        self.n_nodes += count
        self.input_nodes.extend(ids)
        return ids[0] if count == 1 else ids

    def gate(self, kind: str, *inputs: int) -> int:
        """Add a gate; returns its output node id."""
        if kind not in _EVALUATORS:
            raise ValueError(f"unknown gate kind {kind!r}")
        out = self.n_nodes
        self.n_nodes += 1
        self.gates.append(Gate(kind, tuple(inputs), out))
        return out

    def mark_output(self, *nodes: int) -> None:
        self.output_nodes.extend(nodes)

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    # -- simulation -----------------------------------------------------

    def evaluate(self, stimulus: np.ndarray) -> np.ndarray:
        """Simulate; ``stimulus`` is (n_vectors, n_inputs) bools.

        Returns all node values, shape ``(n_vectors, n_nodes)``.
        """
        stimulus = np.asarray(stimulus, dtype=bool)
        n_vec = stimulus.shape[0]
        if stimulus.shape[1] != len(self.input_nodes):
            raise ValueError(
                f"stimulus has {stimulus.shape[1]} columns, netlist has "
                f"{len(self.input_nodes)} inputs")
        values = np.zeros((n_vec, self.n_nodes), dtype=bool)
        values[:, self.input_nodes] = stimulus
        for g in self.gates:
            ins = [values[:, i] for i in g.inputs]
            values[:, g.output] = _EVALUATORS[g.kind](ins)
        return values

    def outputs(self, stimulus: np.ndarray) -> np.ndarray:
        return self.evaluate(stimulus)[:, self.output_nodes]

    # -- characterisation -------------------------------------------------

    def gate_levels(self, tech: Technology = SAED90,
                    vdd: float = None) -> np.ndarray:
        """Arrival time (ps) at each node for the critical-path delay."""
        arrival = np.zeros(self.n_nodes)
        for g in self.gates:
            t_in = max(arrival[i] for i in g.inputs)
            fanin = max(len(g.inputs), 1)
            arrival[g.output] = t_in + tech.gate_delay_ps(fanin, vdd)
        return arrival

    def critical_path_ps(self, tech: Technology = SAED90,
                         vdd: float = None) -> float:
        arrival = self.gate_levels(tech, vdd)
        if not self.output_nodes:
            return float(arrival.max()) if self.n_nodes else 0.0
        return float(arrival[self.output_nodes].max())

    def logic_depth(self) -> int:
        """Critical path length in gate levels (unit delays)."""
        level = np.zeros(self.n_nodes, dtype=np.int64)
        for g in self.gates:
            level[g.output] = 1 + max(level[i] for i in g.inputs)
        nodes = self.output_nodes or range(self.n_nodes)
        return int(level[list(nodes)].max()) if self.n_nodes else 0

    def toggle_counts(self, stimulus: np.ndarray) -> np.ndarray:
        """Per-gate toggle counts between consecutive stimulus vectors."""
        values = self.evaluate(stimulus)
        gate_outputs = [g.output for g in self.gates]
        v = values[:, gate_outputs]
        return (v[1:] != v[:-1]).sum(axis=0)

    def glitch_factor(self, coeff: float = 0.05) -> float:
        """Multiplier accounting for glitching the zero-delay simulation
        cannot see: spurious transitions grow with logic depth (arrival
        skew accumulates level by level), so deep designs pay more.
        First-order model: ``1 + coeff * (depth - 1)``."""
        return 1.0 + coeff * max(self.logic_depth() - 1, 0)

    def switching_energy_fj(self, stimulus: np.ndarray,
                            tech: Technology = SAED90,
                            vdd: float = None,
                            with_glitches: bool = True) -> float:
        """Total switching energy over the stimulus sequence (fJ)."""
        toggles = self.toggle_counts(stimulus)
        energy = 0.0
        for g, n_toggles in zip(self.gates, toggles):
            fanin = max(len(g.inputs), 1)
            energy += n_toggles * tech.toggle_energy_fj(fanin, vdd)
        if with_glitches:
            energy *= self.glitch_factor()
        return float(energy)

    def energy_per_op_fj(self, stimulus: np.ndarray,
                         tech: Technology = SAED90,
                         vdd: float = None,
                         with_glitches: bool = True) -> float:
        """Average switching energy per applied input vector (fJ)."""
        n_ops = max(len(stimulus) - 1, 1)
        return self.switching_energy_fj(stimulus, tech, vdd,
                                        with_glitches) / n_ops
