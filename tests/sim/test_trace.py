"""Trace assembly: ordering, interleave, instruction streams."""

import numpy as np

from repro.isa.opcodes import MixCategory, Opcode
from repro.sim.trace import TraceBuilder, _block_phase


def _record(builder, block, seq, pc=0, n=4, warp0=0):
    builder.record_add(
        pc=pc, gtid=np.arange(n) + block * n, ltid=np.arange(n) % 32,
        warp=np.full(n, warp0 + block), sm=0, block=block, seq=seq,
        op_a=np.ones(n, np.uint64), op_b=np.ones(n, np.uint64),
        cin=0, width=32, opcode=Opcode.IADD, value=np.zeros(n))


class TestAddTraceAssembly:
    def test_lanes_of_one_op_stay_contiguous_in_lane_order(self):
        b = TraceBuilder()
        _record(b, block=0, seq=0, n=8)
        trace, _ = b.build()
        assert list(trace.ltid) == list(range(8))

    def test_blocks_interleave_round_robin_with_phase(self):
        b = TraceBuilder()
        for block in range(3):
            for seq in range(4):
                _record(b, block=block, seq=seq, n=1)
        trace, _ = b.build()
        # every block's ops remain in seq order within the block
        for block in range(3):
            seqs = trace.seq[trace.block == block]
            assert list(seqs) == sorted(seqs)

    def test_phase_jitter_is_deterministic(self):
        blocks = np.arange(100)
        p1 = _block_phase(blocks)
        p2 = _block_phase(blocks)
        assert np.array_equal(p1, p2)
        assert (p1 >= 0).all() and (p1 < 29).all()
        assert len(np.unique(p1)) > 5     # actually spreads blocks

    def test_select_preserves_order(self):
        b = TraceBuilder()
        for seq in range(5):
            _record(b, block=0, seq=seq, n=2)
        trace, _ = b.build()
        sub = trace.select(trace.seq >= 2)
        assert len(sub) == 6
        assert list(sub.seq) == sorted(sub.seq)

    def test_empty_build(self):
        trace, insts = TraceBuilder().build()
        assert len(trace) == 0
        assert len(insts) == 0
        assert insts.thread_instructions() == 0


class TestInstStream:
    def test_zero_active_warps_dropped(self):
        b = TraceBuilder()
        b.record_inst(seq=0, block=0, warps=[0, 1], sm=0,
                      opcode=Opcode.IADD, active_per_warp=[32, 0])
        _, insts = b.build()
        assert len(insts) == 1
        assert insts.thread_instructions() == 32

    def test_mix_aggregation(self):
        b = TraceBuilder()
        b.record_inst(seq=0, block=0, warps=[0], sm=0,
                      opcode=Opcode.IADD, active_per_warp=[32])
        b.record_inst(seq=1, block=0, warps=[0], sm=0,
                      opcode=Opcode.FMUL, active_per_warp=[16])
        _, insts = b.build()
        mix = insts.mix()
        assert mix[MixCategory.ALU_ADD] == 32
        assert mix[MixCategory.FPU_OTHER] == 16

    def test_counts_by_opcode(self):
        b = TraceBuilder()
        for seq in range(3):
            b.record_inst(seq=seq, block=0, warps=[0], sm=0,
                          opcode=Opcode.LDG, active_per_warp=[32])
        _, insts = b.build()
        assert insts.counts_by_opcode()[Opcode.LDG] == 96

    def test_n_predictions_column(self):
        b = TraceBuilder()
        _record(b, block=0, seq=0, n=1)
        trace, _ = b.build()
        assert list(trace.n_predictions) == [3]   # 32-bit -> 4 slices
