"""The machine-readable fact export is byte-stable.

``st2-lint facts --json`` and ``st2-lint --fact-dump`` are interchange
formats: the fuzzer's static-facts oracle, the runner's static-peek
path and any external consumer parse them, so the bytes for a fixed
input must never drift.  The golden file pins them (``{PATH}`` is
substituted with the sample module's path at test time).
"""

import io
import json
from pathlib import Path

import pytest

from repro.lint.cli import facts_main, main

DATA = Path(__file__).parent / "data"
KERNEL = DATA / "golden_kernel.py"
GOLDEN = DATA / "golden_facts.json"


def golden_text() -> str:
    return GOLDEN.read_text().replace("{PATH}", str(KERNEL))


def test_facts_json_matches_golden_bytes():
    out = io.StringIO()
    assert facts_main([str(KERNEL), "--json"], out) == 0
    assert out.getvalue() == golden_text()


def test_fact_dump_file_matches_golden_bytes(tmp_path, capsys):
    dump = tmp_path / "facts.json"
    code = main([str(KERNEL), "--fact-dump", str(dump)],
                out=io.StringIO())
    assert code == 0
    assert dump.read_text() == golden_text()


def test_fact_dump_stdout_matches_facts_json():
    dumped, exported = io.StringIO(), io.StringIO()
    assert main([str(KERNEL), "--fact-dump", "-"], out=dumped) == 0
    assert facts_main([str(KERNEL), "--json"], exported) == 0
    # --fact-dump - appends the lint verdict line after the document
    assert dumped.getvalue().startswith(exported.getvalue())


def test_fact_dump_dash_conflicts_with_json(capsys):
    code = main([str(KERNEL), "--fact-dump", "-", "--json"],
                out=io.StringIO())
    assert code == 2
    assert "--fact-dump" in capsys.readouterr().err


def test_golden_document_shape():
    """The golden file itself stays a valid versioned document."""
    doc = json.loads(golden_text())
    assert doc["version"] == 1
    assert doc["facts"] == sum(len(m) for m in doc["modules"].values())
    assert doc["pinned_carries"] == sum(
        len(f["carries"])
        for m in doc["modules"].values() for f in m.values())
    for module in doc["modules"].values():
        for label, fact in module.items():
            assert set(fact) == {"width", "carries", "sites", "line"}
            assert all(v in (0, 1) for v in fact["carries"].values())
    assert doc["bailed"] == sum(len(b) for b in doc["bails"].values())
    for module in doc["bails"].values():
        for name, rec in module.items():
            assert set(rec) == {"bail_reason", "line"}
            assert rec["bail_reason"]        # names the construct


def test_bail_reason_names_offending_construct():
    """The sample module's bailing function is reported with the
    LoweringError message, and exports no facts."""
    doc = json.loads(golden_text())
    [module] = doc["bails"].values()
    assert "golden_bailer" in module
    reason = module["golden_bailer"]["bail_reason"]
    assert "Lambda" in reason and ":17" in reason
    facts = next(iter(doc["modules"].values()))
    assert not any(label.startswith("golden_bailer:")
                   for label in facts)


def test_dump_consumable_by_static_peek():
    """The exported dict form feeds ``trace_static_peek`` directly —
    the fact-dump format IS the predictor's fact-table format."""
    from repro.core.predictors import trace_static_peek
    from repro.kernels.suite import run_kernel

    out = io.StringIO()
    assert facts_main([str(KERNEL), "--json"], out) == 0
    doc = json.loads(out.getvalue())
    facts = next(iter(doc["modules"].values()))
    run = run_kernel("pathfinder", scale=0.1, seed=0)
    known, value = trace_static_peek(run.trace, facts)
    # foreign labels match nothing, but the call must accept the format
    assert known.shape == value.shape
    assert not known.any()


@pytest.mark.parametrize("flag", [["--json"], []])
def test_facts_subcommand_still_exits_zero(flag):
    out = io.StringIO()
    assert facts_main([str(KERNEL)] + flag, out) == 0
    assert out.getvalue()
