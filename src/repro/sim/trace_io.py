"""Trace persistence: save and reload captured traces as ``.npz``.

Functional execution is cheap but not free; persisting an
:class:`~repro.sim.trace.AddTrace` (plus its instruction stream) lets
design-space studies iterate on fixed traces — the same decoupling
GPGPU-Sim users get from PTX trace files.  The format is a single
compressed ``.npz`` with a small JSON header for metadata.

For the capture-once/evaluate-many workflow (many readers, zero-copy
sharing across pool workers) see :mod:`repro.sim.trace_store`, which
stores the same columns as raw per-column ``.npy`` files loaded with
``mmap_mode="r"``.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.sim.trace import AddTrace, InstStream

FORMAT_VERSION = 1

_ADD_COLUMNS = ("pc", "gtid", "ltid", "warp", "sm", "block", "seq",
                "op_a", "op_b", "cin", "width", "opcode", "value")
_INST_COLUMNS = ("seq", "block", "warp", "sm", "opcode", "active")


@dataclass
class TraceBundle:
    """A loaded trace: ``.trace``, ``.insts`` (or None) and ``.metadata``.

    :func:`load_trace` used to return a positional 3-tuple; unpacking a
    bundle (``trace, insts, meta = load_trace(p)``) still works for one
    release but emits a :class:`DeprecationWarning` — use the named
    attributes instead.
    """

    trace: AddTrace
    insts: InstStream = None
    metadata: dict = field(default_factory=dict)

    def __iter__(self):
        warnings.warn(
            "unpacking load_trace(...) as a (trace, insts, metadata) "
            "tuple is deprecated; use the TraceBundle attributes "
            ".trace/.insts/.metadata instead",
            DeprecationWarning, stacklevel=2)
        return iter((self.trace, self.insts, self.metadata))


def trace_nbytes(trace: AddTrace, insts: InstStream = None) -> int:
    """In-memory footprint of a trace (and optional instruction
    stream): the runner's per-unit trace-size metric, and a guide for
    sizing trace archives before :func:`save_trace` compresses them."""
    total = sum(getattr(trace, c).nbytes for c in _ADD_COLUMNS)
    if insts is not None:
        total += sum(getattr(insts, c).nbytes for c in _INST_COLUMNS)
    return total


def save_trace(path, trace: AddTrace, insts: InstStream = None,
               metadata: dict = None) -> None:
    """Write a trace (and optionally its InstStream) to ``path``."""
    path = Path(path)
    arrays = {f"add_{c}": getattr(trace, c) for c in _ADD_COLUMNS}
    if insts is not None:
        arrays.update({f"inst_{c}": getattr(insts, c)
                       for c in _INST_COLUMNS})
    header = {
        "format_version": FORMAT_VERSION,
        "n_rows": len(trace),
        "pc_labels": list(trace.pc_labels),
        "metadata": metadata or {},
        "has_insts": insts is not None,
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_trace(path) -> TraceBundle:
    """Read back a :class:`TraceBundle` (``.trace``, ``.insts``,
    ``.metadata``)."""
    path = Path(path)
    with np.load(path) as data:
        header = json.loads(bytes(data["header"]).decode())
        if header.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format "
                f"{header.get('format_version')!r} in {path}")
        trace = AddTrace(
            **{c: data[f"add_{c}"] for c in _ADD_COLUMNS},
            pc_labels=list(header["pc_labels"]))
        insts = None
        if header.get("has_insts"):
            insts = InstStream(
                **{c: data[f"inst_{c}"] for c in _INST_COLUMNS})
    return TraceBundle(trace=trace, insts=insts,
                       metadata=header.get("metadata", {}))


def save_kernel_run(path, run, extra_metadata: dict = None) -> None:
    """Persist a :class:`~repro.sim.functional.KernelRun`'s trace."""
    metadata = {
        "kernel": run.name,
        "grid_blocks": run.launch.grid_blocks,
        "block_threads": run.launch.block_threads,
        "n_static_pcs": run.n_static_pcs,
    }
    metadata.update(extra_metadata or {})
    save_trace(path, run.trace, run.insts, metadata)
