"""Shared fixtures and trace-building helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.trace import AddTrace, opcode_id
from repro.isa.opcodes import Opcode


def make_trace(pc, gtid, ltid, op_a, op_b, cin=None, width=64,
               sm=None, warp=None, value=None) -> AddTrace:
    """Build an AddTrace directly from arrays (synthetic test traces)."""
    n = len(np.atleast_1d(pc))

    def col(x, dtype, default=0):
        if x is None:
            x = default
        arr = np.asarray(x)
        if arr.ndim == 0:
            arr = np.full(n, arr)
        return arr.astype(dtype)

    ltid = col(ltid, np.int8)
    return AddTrace(
        pc=col(pc, np.int32),
        gtid=col(gtid, np.int64),
        ltid=ltid,
        warp=col(warp if warp is not None else np.asarray(gtid) // 32,
                 np.int32),
        sm=col(sm, np.int16),
        block=col(0, np.int32),
        seq=np.arange(n, dtype=np.int64),
        op_a=col(op_a, np.uint64),
        op_b=col(op_b, np.uint64),
        cin=col(cin, np.uint8),
        width=col(width, np.uint8),
        opcode=col(opcode_id(Opcode.IADD), np.int16),
        value=col(0.0, np.float64),
        pc_labels=[],
    )


def random_trace(rng, n=256, n_pcs=6, n_threads=64, widths=(32, 64, 23, 52)):
    """A random mixed-width trace for oracle cross-checks."""
    pc = rng.integers(0, n_pcs, n)
    gtid = rng.integers(0, n_threads, n)
    ltid = gtid % 32
    width = rng.choice(widths, n)
    op_a = rng.integers(0, 2 ** 63, n, dtype=np.int64)
    op_b = rng.integers(0, 2 ** 63, n, dtype=np.int64)
    # clamp to each row's width
    mask = (np.uint64(1) << width.astype(np.uint64)) - np.uint64(1)
    cin = rng.integers(0, 2, n)
    return make_trace(pc, gtid, ltid,
                      op_a.astype(np.uint64) & mask,
                      op_b.astype(np.uint64) & mask,
                      cin=cin, width=width, sm=gtid % 4)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
