"""The one-command report must run end to end and contain every
section of the reproduction."""

import pytest

from repro import report


class TestReport:
    @pytest.fixture(scope="class")
    def output(self):
        import contextlib
        import io
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            report.main(scale=0.1, seed=0)
        return buf.getvalue()

    def test_all_sections_present(self, output):
        for section in ("Figure 1", "Figure 3", "Figure 5",
                        "Section V-B", "Section V-C", "Section VI",
                        "overheads"):
            assert section in output, section

    def test_paper_anchors_quoted(self, output):
        for anchor in ("paper: 21/23", "paper: 8", "paper: ~70%",
                       "paper 9%", "448 B"):
            assert anchor in output, anchor

    def test_reports_suite_size(self, output):
        assert "23 kernels" in output

    def test_finishes(self, output):
        assert "report complete" in output
