"""``st2-lint`` command-line entry point.

Exit codes follow the shared contract (:mod:`repro.cli_common`):
0 — clean (or every finding suppressed/baselined), 1 — new
unsuppressed findings, 2 — usage or parse errors.  ``--json`` emits
the findings as one machine-readable document.

``st2-lint facts [paths...] [--json]`` runs only the abstract
interpreter and exports the statically proven per-PC slice-carry
facts — the table :class:`repro.core.predictors.StaticPeekPredictor`
consumes.

``st2-lint bounds [paths...] [--json]`` runs the bounds tier
(:mod:`repro.lint.bounds`) and exports sound per-kernel,
per-config-class bounds on misprediction rate, recompute, perf
overhead and energy saving.  Like ``facts`` it is a report, not a
gate: it always exits 0.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import cli_common
from repro.lint.analyzer import ALL_RULES, lint_paths
from repro.lint.baseline import (load_baseline, new_findings,
                                 write_baseline)
from repro.lint.findings import INFO_RULES, RULES


def _parse_rules(spec: str):
    rules = tuple(r.strip() for r in spec.split(",") if r.strip())
    unknown = [r for r in rules if r not in ALL_RULES]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule(s) {', '.join(unknown)}; "
            f"choose from {', '.join(ALL_RULES)}")
    return rules


def build_parser() -> argparse.ArgumentParser:
    parser = cli_common.build_parser(
        "st2-lint",
        "Static correctness analyzer for the ST2 kernel DSL "
        "(rules L1-L10; `st2-lint facts` exports static carry facts, "
        "`st2-lint bounds` exports static speculation-outcome "
        "bounds).")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--rules", type=_parse_rules, default=None,
                        metavar="L1,L2,...",
                        help="comma-separated subset of rules to run")
    parser.add_argument("--baseline", metavar="FILE",
                        help="accept findings recorded in this "
                             "baseline file")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record current findings as the accepted "
                             "baseline and exit 0")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed findings")
    parser.add_argument("--show-info", action="store_true",
                        help="also print informational findings "
                             "(L6/L8/L9/L10 — they never affect the "
                             "exit code or baselines)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--fact-dump", metavar="FILE",
                        help="also write the statically proven per-PC "
                             "carry facts of the linted paths to FILE "
                             "as JSON (the `st2-lint facts --json` "
                             "document; '-' for stdout)")
    cli_common.add_json_flag(parser)
    return parser


def build_facts_parser() -> argparse.ArgumentParser:
    parser = cli_common.build_parser(
        "st2-lint facts",
        "Export statically proven per-PC slice-carry facts "
        "(the StaticPeekPredictor fact table).")
    parser.add_argument("paths", nargs="*",
                        default=["src/repro/kernels"],
                        help="files or directories to analyze "
                             "(default: src/repro/kernels)")
    cli_common.add_json_flag(parser)
    return parser


def build_bounds_parser() -> argparse.ArgumentParser:
    parser = cli_common.build_parser(
        "st2-lint bounds",
        "Export sound static per-kernel speculation-outcome bounds "
        "(misprediction rate, recompute, perf overhead, energy "
        "saving per config class).")
    parser.add_argument("paths", nargs="*",
                        default=["src/repro/kernels"],
                        help="files or directories to analyze "
                             "(default: src/repro/kernels)")
    cli_common.add_json_flag(parser)
    return parser


def bounds_main(argv, out) -> int:
    """``st2-lint bounds`` — always exits 0 (the export is a report,
    not a gate; bailed kernels export trivial bounds only)."""
    from repro.lint.bounds import collect_bounds_payload
    args = build_bounds_parser().parse_args(argv)
    payload = collect_bounds_payload(args.paths)
    if args.json:
        cli_common.emit_json(payload, out=out)
        return cli_common.EXIT_OK
    modules = payload["modules"]
    for path in sorted(modules):
        for name, rec in sorted(modules[path].items()):
            rows = rec["rows"]
            if rec["trivial"]:
                print(f"{path}:{rec['line']}: {name}: trivial "
                      f"(bailed: {rec['bail_reason']})", file=out)
                continue
            print(f"{path}:{rec['line']}: {name}: rows in "
                  f"[{rows[0]}, "
                  f"{'inf' if rows[1] is None else rows[1]}], "
                  f"{len(rec['sites'])} site(s)", file=out)
            for key, cls in sorted(rec["bounds"].items()):

                def _fmt(pair):
                    lo = "-inf" if pair[0] is None else f"{pair[0]:.4g}"
                    hi = "inf" if pair[1] is None else f"{pair[1]:.4g}"
                    return f"[{lo}, {hi}]"

                print(f"  {key}: mis {_fmt(cls['misprediction_rate'])}"
                      f" rec/row {_fmt(cls['recompute_per_row'])}"
                      f" overhead {_fmt(cls['perf_overhead'])}"
                      f" saved {_fmt(cls['energy_saved'])}", file=out)
    print(f"st2-lint bounds: {payload['kernels']} kernel(s), "
          f"{payload['trivial']} trivial", file=out)
    return cli_common.EXIT_OK


def facts_main(argv, out) -> int:
    """``st2-lint facts`` — always exits 0 (the export is a report,
    not a gate; parse failures simply export no facts)."""
    from repro.lint.facts import collect_facts_payload
    args = build_facts_parser().parse_args(argv)
    payload = collect_facts_payload(args.paths)
    if args.json:
        cli_common.emit_json(payload, out=out)
        return cli_common.EXIT_OK
    modules = payload["modules"]
    for path in sorted(modules):
        for label, rec in modules[path].items():
            pinned = ", ".join(f"c{j}={c}"
                               for j, c in rec["carries"].items())
            print(f"{path}:{rec['line']}: {label} "
                  f"[w{rec['width']}, {rec['sites']} site(s)] "
                  f"{pinned}", file=out)
    bails = payload["bails"]
    for path in sorted(bails):
        for name, rec in bails[path].items():
            print(f"{path}:{rec['line']}: {name}: bailed — "
                  f"{rec['bail_reason']}", file=out)
    print(f"st2-lint facts: {payload['facts']} PC label(s), "
          f"{payload['pinned_carries']} pinned carry boundary(ies), "
          f"{payload['bailed']} bailed function(s)",
          file=out)
    return cli_common.EXIT_OK


def _finding_record(f) -> dict:
    return {"path": f.path, "line": f.line, "rule": f.rule,
            "message": f.message, "suppressed": f.suppressed}


def main(argv=None, out=None) -> int:
    out = out if out is not None else sys.stdout
    arg_list = list(sys.argv[1:] if argv is None else argv)
    if arg_list and arg_list[0] == "facts":
        return facts_main(arg_list[1:], out)
    if arg_list and arg_list[0] == "bounds":
        return bounds_main(arg_list[1:], out)
    parser = build_parser()
    args = parser.parse_args(arg_list)

    if args.list_rules:
        if args.json:
            cli_common.emit_json(dict(RULES), out=out)
        else:
            for rule, text in RULES.items():
                print(f"{rule}  {text}", file=out)
        return cli_common.EXIT_OK

    findings = lint_paths(args.paths, rules=args.rules)

    errors = [f for f in findings if f.rule == "E0"]
    for f in errors:
        print(f.format(), file=out)
    if errors:
        return cli_common.EXIT_USAGE

    if args.fact_dump:
        from repro.lint.facts import collect_facts_payload
        if args.fact_dump == "-" and args.json:
            print("st2-lint: --fact-dump - conflicts with --json "
                  "(two documents on stdout)", file=sys.stderr)
            return cli_common.EXIT_USAGE
        payload = collect_facts_payload(args.paths)
        if args.fact_dump == "-":
            cli_common.emit_json(payload, out=out)
        else:
            with open(args.fact_dump, "w") as fh:
                cli_common.emit_json(payload, out=fh)

    if args.write_baseline:
        recorded = write_baseline(args.write_baseline, findings)
        print(f"st2-lint: wrote {sum(recorded.values())} finding(s) "
              f"to {args.write_baseline}", file=out)
        return 0

    baseline = {}
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (ValueError, OSError) as exc:
            print(f"st2-lint: bad baseline: {exc}", file=out)
            return 2

    info = [f for f in findings
            if f.rule in INFO_RULES and not f.suppressed]
    fresh = new_findings(findings, baseline)
    shown = list(fresh)
    if args.show_suppressed:
        shown += [f for f in findings if f.suppressed]
    if args.show_info:
        shown += info
    shown = sorted(shown, key=lambda f: (f.path, f.line, f.rule))

    n_sup = sum(1 for f in findings if f.suppressed)
    n_base = sum(1 for f in findings
                 if not f.suppressed
                 and f.rule not in INFO_RULES) - len(fresh)

    if args.json:
        cli_common.emit_json({
            "findings": [_finding_record(f) for f in shown],
            "fresh": len(fresh), "suppressed": n_sup,
            "baselined": n_base, "info": len(info),
            "clean": not fresh}, out=out)
        return cli_common.EXIT_PROBLEMS if fresh else cli_common.EXIT_OK

    for f in shown:
        print(f.format(), file=out)
    tail = []
    if n_sup:
        tail.append(f"{n_sup} suppressed")
    if n_base:
        tail.append(f"{n_base} baselined")
    if info and not args.show_info:
        tail.append(f"{len(info)} informational (--show-info)")
    note = f" ({', '.join(tail)})" if tail else ""
    if fresh:
        print(f"st2-lint: {len(fresh)} finding(s){note}", file=out)
        return cli_common.EXIT_PROBLEMS
    print(f"st2-lint: clean{note}", file=out)
    return cli_common.EXIT_OK


def console_main() -> None:
    raise SystemExit(cli_common.run_cli(main))


if __name__ == "__main__":
    console_main()
