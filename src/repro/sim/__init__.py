"""GPU simulator substrate: configuration, kernel DSL, functional
execution, trace capture and the cycle-approximate timing pipeline."""

from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher, KernelRun, run_kernel
from repro.sim.pipeline import (TimingResult, compare_baseline_st2,
                                simulate_sm)
from repro.sim.trace import AddTrace, InstStream

__all__ = [
    "AddTrace", "GPUConfig", "GridLauncher", "InstStream", "KernelRun",
    "LaunchConfig", "TITAN_V", "TimingResult", "compare_baseline_st2",
    "run_kernel", "simulate_sm",
]
