"""Memory-locality study (extension): per-kernel L2 behaviour.

Replays each kernel's recorded sector streams through the
set-associative L2 model and reports the measured miss ratio versus the
power model's first-order default — the DRAM component of Figure 7
seen through actual locality instead of a constant.
"""


from _bench_utils import save_artifact
from repro.analysis.ascii_charts import table
from repro.kernels.suite import spec_by_name
from repro.power.activity import L2_MISS_RATIO
from repro.sim.cache import l2_miss_ratio_for_run

KERNELS = ("sgemm", "walsh_K1", "b+tree_K1", "pathfinder", "histo_K1",
           "msort_K2", "kmeans_K1")


def _measure(bench_scale):
    rows = []
    for name in KERNELS:
        prep = spec_by_name(name).prepare(scale=min(bench_scale, 0.5),
                                          seed=0)
        # record_streams is consumed at run(): flip it on the
        # launcher before executing
        prep.launcher.record_streams = True
        run = prep.run()
        ratio = l2_miss_ratio_for_run(run)
        rows.append((name, run.mem.global_load_transactions
                     + run.mem.global_store_transactions, ratio))
    return rows


def test_cache_locality(benchmark, bench_scale, artifact_dir):
    rows = benchmark.pedantic(_measure, args=(bench_scale,), rounds=1,
                              iterations=1)

    txt = table(
        "measured L2 miss ratio per kernel (set-associative LRU model)",
        ["kernel", "sector transactions", "measured miss ratio"],
        [(n, t, f"{r:.1%}") for n, t, r in rows])
    txt += (f"\n\nfirst-order model default: {L2_MISS_RATIO:.0%} "
            "(used by the calibrated power model)\nnote: scaled-down "
            "working sets inflate compulsory-miss shares; the spread\n"
            "across kernels (reuse-heavy trees vs streaming "
            "butterflies) is the signal.")
    save_artifact(artifact_dir, "cache_locality.txt", txt)

    ratios = {n: r for n, __, r in rows}
    # locality structure: pointer-chasing tree reuses nodes, streaming
    # walsh does not
    assert ratios["b+tree_K1"] < ratios["walsh_K1"]
    assert all(0.0 <= r <= 1.0 for r in ratios.values())
