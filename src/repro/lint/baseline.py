"""Committed-baseline support: accept legacy findings, fail on new ones.

The baseline file (``lint-baseline.json`` at the repo root by
convention) maps finding fingerprints to their occurrence count.
Fingerprints hash the rule, the trailing path components and the
stripped *line text* — not the line number — so unrelated edits above
a baselined site do not churn the file, while editing the flagged line
itself surfaces the finding again.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.lint.findings import INFO_RULES

BASELINE_VERSION = 1


def load_baseline(path) -> dict:
    """fingerprint -> count; empty dict when the file is absent."""
    p = Path(path)
    if not p.is_file():
        return {}
    payload = json.loads(p.read_text())
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} "
            f"in {path} (expected {BASELINE_VERSION})")
    return dict(payload.get("fingerprints", {}))


def write_baseline(path, findings) -> dict:
    """Record unsuppressed findings as the new accepted baseline.

    Informational findings (L6/L8) never enter the baseline: they are
    proofs, not problems, and churning them would drown real entries.
    """
    counts = Counter(f.fingerprint() for f in findings
                     if not f.suppressed and f.rule not in INFO_RULES)
    payload = {"version": BASELINE_VERSION,
               "fingerprints": dict(sorted(counts.items()))}
    Path(path).write_text(json.dumps(payload, indent=2,
                                     sort_keys=True) + "\n")
    return payload["fingerprints"]


def new_findings(findings, baseline: dict):
    """Unsuppressed, non-informational findings not covered by the
    baseline.

    Each fingerprint's budget is its baseline count: a third copy of a
    twice-baselined finding is new.
    """
    budget = Counter(baseline)
    fresh = []
    for f in findings:
        if f.suppressed or f.rule in INFO_RULES:
            continue
        fp = f.fingerprint()
        if budget[fp] > 0:
            budget[fp] -= 1
        else:
            fresh.append(f)
    return fresh
