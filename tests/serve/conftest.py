"""Shared fixtures: run a ServeApp inside a background event-loop
thread so blocking test code can drive it over real HTTP."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro import obs
from repro.runner.cache import ResultCache
from repro.serve.app import ServeApp
from repro.sim.trace_store import TraceStore

#: Fast grid shared by the integration tests: 2 kernels x 2 configs
#: at quarter scale (the cheapest tracers in the suite).
GRID_KERNELS = ("qrng_K2", "sortNets_K2")
GRID_CONFIGS = ("st2", "valhalla")
GRID_SCALE = 0.25


class ServerHarness:
    """One ServeApp on its own event-loop thread, plus sync helpers."""

    def __init__(self, app: ServeApp):
        self.app = app
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run,
                                        name="serve-test-loop",
                                        daemon=True)
        self._ready = threading.Event()
        self._startup_error = None

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)

        async def go():
            try:
                await self.app.start()
            except BaseException as exc:    # surface in start()
                self._startup_error = exc
                raise
            finally:
                self._ready.set()
            await self.app.serve_forever()

        try:
            self.loop.run_until_complete(go())
        finally:
            self.loop.close()

    def start(self) -> "ServerHarness":
        self._thread.start()
        assert self._ready.wait(timeout=120), "server failed to start"
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def call(self, coro, timeout: float = 120.0):
        """Run a coroutine on the server loop from test code."""
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop).result(timeout)

    def stop(self) -> None:
        if self._thread.is_alive():
            self.call(self.app.stop())
            self._thread.join(timeout=30)

    @property
    def address(self) -> str:
        return self.app.server.address


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """A real 2-shard server with its own trace store and result
    cache, shared by the whole module (workers build models once)."""
    root = tmp_path_factory.mktemp("serve")
    app = ServeApp(shards=2,
                   trace_store=TraceStore(root / "traces"),
                   cache=ResultCache(root / "cache"),
                   registry=obs.Obs())
    harness = ServerHarness(app).start()
    yield harness
    harness.stop()


@pytest.fixture(scope="module")
def reject_server(tmp_path_factory):
    """A server with tiny limits and a stubbed pool: admitted jobs
    never finish, so quota / backpressure / pending paths are
    deterministic."""
    root = tmp_path_factory.mktemp("reject")
    app = ServeApp(shards=1, cache=ResultCache(root / "cache"),
                   use_cache=False, client_quota=4,
                   max_queued_units=6, registry=obs.Obs())
    app.pool.start = lambda wait_ready=True: app.pool  # never fork
    app.pool.submit = lambda *a, **k: 0                # swallow work
    harness = ServerHarness(app).start()
    yield harness
    harness.stop()
