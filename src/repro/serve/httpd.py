"""A zero-dependency asyncio HTTP/1.1 layer for ``st2-serve``.

The stdlib has no *async* HTTP server, and the repo's no-new-runtime-
deps rule rules out aiohttp — so this module implements the small,
well-behaved subset the experiment service needs on top of
``asyncio.start_server``:

* request parsing (request line, headers, ``Content-Length`` bodies)
  with hard size limits;
* JSON responses (every body the service emits is one JSON document);
* **streaming** responses via chunked transfer encoding — the
  ``/v1/jobs/<id>/events`` endpoint yields NDJSON status lines as the
  job progresses;
* HTTP/1.1 keep-alive, so load-test clients can reuse connections.

Routing stays with the application (:mod:`repro.serve.app`): the
handler passed to :class:`HttpServer` receives a :class:`Request` and
returns a :class:`Response`.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from repro import obs

#: Hard limits keeping one bad client from ballooning server memory.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(Exception):
    """Malformed HTTP from the client; the connection is dropped."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str                       # decoded path, query stripped
    query: dict                     # first value per query key
    headers: dict                   # lower-cased header names
    body: bytes = b""

    def json(self):
        """The body parsed as JSON; raises :class:`BadRequest` on
        syntax errors (the route maps it to a 400 envelope)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """One response: a JSON payload or a streaming chunk iterator.

    ``payload`` is any JSON-serialisable object (ignored when
    ``stream`` is set).  ``stream`` is an async iterator of ``bytes``
    chunks, sent with chunked transfer encoding and flushed per chunk.
    """

    status: int = 200
    payload: object = None
    headers: dict = field(default_factory=dict)
    stream: object = None           # async iterator of bytes, or None


def json_response(payload, status: int = 200,
                  headers: dict = None) -> Response:
    return Response(status=status, payload=payload,
                    headers=dict(headers or {}))


async def _read_headers(reader) -> dict:
    headers = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise BadRequest("header block too large")
        if line in (b"\r\n", b"\n", b""):
            return headers
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise BadRequest("undecodable header line")
        headers[name.strip().lower()] = value.strip()


async def read_request(reader) -> Request:
    """Parse one request off the stream; ``None`` on clean EOF."""
    line = await reader.readline()
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise BadRequest("request line too large")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line: {line!r}")
    method, target, _version = parts
    headers = await _read_headers(reader)
    length = headers.get("content-length", "0")
    try:
        n = int(length)
    except ValueError:
        raise BadRequest(f"bad Content-Length: {length!r}")
    if n > MAX_BODY_BYTES:
        raise BadRequest(f"body of {n} bytes exceeds the "
                         f"{MAX_BODY_BYTES}-byte limit")
    body = await reader.readexactly(n) if n else b""
    split = urlsplit(target)
    return Request(method=method.upper(), path=split.path,
                   query=dict(parse_qsl(split.query)),
                   headers=headers, body=body)


def _head(status: int, headers: dict) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines += [f"{name}: {value}" for name, value in headers.items()]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def write_response(writer, response: Response,
                         keep_alive: bool = True) -> None:
    headers = {"Content-Type": "application/json"}
    headers.update(response.headers)
    headers["Connection"] = "keep-alive" if keep_alive else "close"
    if response.stream is not None:
        headers["Transfer-Encoding"] = "chunked"
        writer.write(_head(response.status, headers))
        await writer.drain()
        async for chunk in response.stream:
            if not chunk:
                continue
            writer.write(b"%x\r\n%s\r\n" % (len(chunk), chunk))
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return
    body = b"" if response.payload is None else \
        (json.dumps(response.payload, sort_keys=True) + "\n").encode()
    headers["Content-Length"] = str(len(body))
    writer.write(_head(response.status, headers) + body)
    await writer.drain()


class HttpServer:
    """``asyncio.start_server`` wrapper running one request handler.

    ``handler(request)`` is an async callable returning a
    :class:`Response`; exceptions it leaks become 500s (and are
    counted, never propagated to the connection loop).
    """

    def __init__(self, handler, host: str = "127.0.0.1",
                 port: int = 0):
        self.handler = handler
        self.host = host
        self.port = port
        self._server = None

    async def start(self) -> "HttpServer":
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _on_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except (BadRequest, asyncio.IncompleteReadError):
                    obs.add("serve.http.bad_requests")
                    break
                if request is None:
                    break
                obs.add("serve.http.requests")
                try:
                    response = await self.handler(request)
                except Exception as exc:   # route bug: surface as 500
                    obs.add("serve.http.errors")
                    response = json_response(
                        {"schema_version": 1, "error": "internal",
                         "message": f"unhandled server error: {exc}",
                         "retry_after_s": None, "detail": None},
                        status=500)
                keep = request.keep_alive and response.stream is None
                try:
                    await write_response(writer, response,
                                         keep_alive=keep)
                except (ConnectionError, asyncio.CancelledError):
                    break
                if not keep:
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
