"""End-to-end ST2 GPU evaluation (the Section VI experiment)."""

import numpy as np
import pytest

from repro.core.speculation import ST2_DESIGN, STATIC_ONE
from repro.power.components import Component
from repro.st2.architecture import (default_adder_model, evaluate_kernel,
                                    evaluate_suite)


@pytest.fixture(scope="module")
def pathfinder_eval():
    return evaluate_kernel("pathfinder", scale=0.3, seed=0)


class TestKernelEvaluation:
    def test_misprediction_rate_reasonable(self, pathfinder_eval):
        assert 0.0 <= pathfinder_eval.misprediction_rate < 0.5

    def test_saves_energy(self, pathfinder_eval):
        assert pathfinder_eval.system_saving > 0.02
        assert pathfinder_eval.chip_saving > pathfinder_eval.system_saving

    def test_slowdown_small(self, pathfinder_eval):
        assert abs(pathfinder_eval.slowdown) < 0.10

    def test_recompute_bounded(self, pathfinder_eval):
        assert 1.0 <= pathfinder_eval.recomputed_per_misprediction <= 7.0

    def test_energy_breakdowns_consistent(self, pathfinder_eval):
        e = pathfinder_eval.energy
        assert e.baseline.system_j > e.st2.system_j
        # only ALU+FPU shrinks; other components unchanged
        for c in Component:
            if c is Component.ALU_FPU:
                assert e.st2.components[c] < e.baseline.components[c]
            else:
                assert e.st2.components[c] \
                    == pytest.approx(e.baseline.components[c])

    def test_normalized_stacks_sum_to_one_for_baseline(self,
                                                       pathfinder_eval):
        base, st2 = pathfinder_eval.energy.normalized_stacks()
        assert sum(base.values()) == pytest.approx(1.0)
        assert sum(st2.values()) < 1.0


class TestDesignSensitivity:
    def test_worse_predictor_saves_less(self):
        good = evaluate_kernel("pathfinder", scale=0.3, config=ST2_DESIGN)
        bad = evaluate_kernel("pathfinder", scale=0.3, config=STATIC_ONE)
        assert bad.misprediction_rate > good.misprediction_rate
        assert bad.system_saving < good.system_saving
        assert bad.slowdown >= good.slowdown - 0.01


class TestSuiteEvaluation:
    @pytest.fixture(scope="class")
    def evals(self):
        names = ("pathfinder", "sad_K1", "msort_K2", "qrng_K1")
        return evaluate_suite(scale=0.15, names=names)

    def test_all_kernels_evaluated(self, evals):
        assert len(evals) == 4

    def test_every_kernel_saves_chip_energy(self, evals):
        for name, e in evals.items():
            assert e.chip_saving > 0, name

    def test_average_slowdown_tiny(self, evals):
        avg = np.mean([e.slowdown for e in evals.values()])
        assert avg < 0.02       # paper: 0.36 %

    def test_arithmetic_intensity_flag(self, evals):
        assert any(e.arithmetic_intensive for e in evals.values())


class TestAdderModelDefaults:
    def test_memoised(self):
        assert default_adder_model() is default_adder_model()

    def test_headline_saving_in_band(self):
        m = default_adder_model()
        assert 0.6 < m.saving(0.09, 1.94) < 0.8
