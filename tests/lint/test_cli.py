"""st2-lint CLI exit codes, baselining, and the repaired-suite gate."""

import io
import textwrap
from pathlib import Path

from repro.lint.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

FIXTURES = {
    "L1": """
        def kernel(k, out):
            t = k.thread_id()
            x = t + 1
            k.st_global(out, t, x)
    """,
    "L2": """
        def step(k, node):
            return k.iadd(node, 1)

        def kernel(k, out):
            a = step(k, k.thread_id())
            b = step(k, a)
            k.st_global(out, a, b)
    """,
    "L3": """
        import numpy as np
        def kernel(k, out):
            t = k.thread_id()
            s = k.shared(64, np.int64)
            k.st_shared(s, t, t)
            v = k.ld_shared(s, k.isub(63, t))
            k.st_global(out, t, v)
    """,
    "L4": """
        def kernel(k, out):
            t = k.thread_id()
            with k.where(k.lt(t, 16)):
                k.syncthreads()
    """,
    "L5": """
        import numpy as np
        def draw(n):
            return np.random.rand(n)
    """,
}


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def write_fixture(tmp_path, rule):
    # L5 only applies to cache-hashed modules: mimic a src/repro/sim
    # layout so _module_is_hashed recognises the file
    parent = tmp_path / "repro" / "sim" if rule == "L5" else tmp_path
    parent.mkdir(parents=True, exist_ok=True)
    path = parent / f"fixture_{rule.lower()}.py"
    path.write_text(textwrap.dedent(FIXTURES[rule]))
    return path


class TestExitCodes:
    def test_each_rule_fails_its_fixture(self, tmp_path):
        for rule in ("L1", "L2", "L3", "L4", "L5"):
            path = write_fixture(tmp_path, rule)
            code, output = run([str(path)])
            assert code == 1, f"{rule} fixture did not fail: {output}"
            assert f" {rule}: " in output

    def test_clean_file_exits_zero(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text(textwrap.dedent("""
            def kernel(k, out):
                t = k.thread_id()
                k.st_global(out, t, k.iadd(t, 1))
        """))
        code, output = run([str(path)])
        assert code == 0 and "clean" in output

    def test_parse_error_exits_two(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        code, output = run([str(path)])
        assert code == 2 and "E0" in output

    def test_list_rules(self):
        code, output = run(["--list-rules"])
        assert code == 0
        for rule in ("L1", "L2", "L3", "L4", "L5"):
            assert rule in output


class TestBaselineFlow:
    def test_write_then_check_is_clean(self, tmp_path):
        fixture = write_fixture(tmp_path, "L1")
        baseline = tmp_path / "baseline.json"
        code, _ = run([str(fixture), "--write-baseline", str(baseline)])
        assert code == 0
        code, output = run([str(fixture), "--baseline", str(baseline)])
        assert code == 0 and "baselined" in output

    def test_new_finding_breaks_through_baseline(self, tmp_path):
        fixture = write_fixture(tmp_path, "L1")
        baseline = tmp_path / "baseline.json"
        run([str(fixture), "--write-baseline", str(baseline)])
        src = fixture.read_text().replace("x = t + 1",
                                          "x = t + 1\n    y = t - 2")
        fixture.write_text(src)
        code, output = run([str(fixture), "--baseline", str(baseline)])
        assert code == 1 and "t - 2" not in output  # message, not source
        assert "L1" in output

    def test_rule_filter(self, tmp_path):
        fixture = write_fixture(tmp_path, "L1")
        code, _ = run([str(fixture), "--rules", "L2,L3"])
        assert code == 0


class TestRepairedSuite:
    def test_kernel_suite_is_clean(self):
        """Acceptance: st2-lint exits 0 over the shipped kernels."""
        code, output = run([str(REPO_SRC / "kernels")])
        assert code == 0, output

    def test_whole_tree_is_clean(self):
        code, output = run([str(REPO_SRC)])
        assert code == 0, output


PROVEN_LOOP = """
    N = 16

    def kernel(k, out):
        t = k.thread_id()
        acc = 0
        for i in k.range(N):
            acc = k.iadd(acc, i)
        k.st_global(out, t, acc)
"""


class TestFactsSubcommand:
    def fixture(self, tmp_path):
        path = tmp_path / "fx_facts.py"
        path.write_text(textwrap.dedent(PROVEN_LOOP))
        return path

    def test_human_output(self, tmp_path):
        fixture = self.fixture(tmp_path)
        code, output = run(["facts", str(fixture)])
        assert code == 0
        assert "loop-inc" in output
        assert "pinned carry" in output

    def test_json_output(self, tmp_path):
        import json

        fixture = self.fixture(tmp_path)
        code, output = run(["facts", "--json", str(fixture)])
        assert code == 0
        payload = json.loads(output)
        assert payload["version"] == 1
        assert payload["facts"] >= 1
        (mod,) = payload["modules"].values()
        (fact,) = mod.values()
        assert fact["width"] == 32
        assert set(fact["carries"]) <= {"0", "1", "2"}

    def test_suite_exports_at_least_one_fact(self):
        """Acceptance: the shipped kernels yield a proven carry."""
        import json

        code, output = run(["facts", "--json",
                            str(REPO_SRC / "kernels")])
        assert code == 0
        payload = json.loads(output)
        assert payload["facts"] >= 1
        assert payload["pinned_carries"] >= 1


class TestShowInfo:
    def test_info_hidden_by_default(self, tmp_path):
        path = tmp_path / "fx_info.py"
        path.write_text(textwrap.dedent(PROVEN_LOOP))
        code, output = run([str(path)])
        assert code == 0
        assert "L6" not in output
        assert "informational" in output

    def test_show_info_lists_l6_l8(self, tmp_path):
        path = tmp_path / "fx_info.py"
        path.write_text(textwrap.dedent(PROVEN_LOOP))
        code, output = run([str(path), "--show-info"])
        assert code == 0
        assert "L6" in output and "L8" in output

    def test_info_never_enters_baseline(self, tmp_path):
        path = tmp_path / "fx_info.py"
        path.write_text(textwrap.dedent(PROVEN_LOOP))
        baseline = tmp_path / "baseline.json"
        code, _ = run([str(path), "--write-baseline", str(baseline)])
        assert code == 0
        import json

        recorded = json.loads(baseline.read_text())
        assert recorded["fingerprints"] == {}


class TestL7Audit:
    """Flow-sensitive re-audit of the committed baseline (L7): the
    baseline holds no fingerprints and the tree carries no disable=L4
    suppressions, so there is nothing for the reachability upgrade to
    retract — and the whole tree must stay clean with L7 active."""

    def test_baseline_has_no_fingerprints(self):
        import json

        repo = Path(__file__).resolve().parents[2]
        recorded = json.loads((repo / "lint-baseline.json").read_text())
        assert recorded["fingerprints"] == {}

    def test_no_l4_suppressions_in_tree(self):
        hits = [
            p for p in REPO_SRC.rglob("*.py")
            if "disable=L4" in p.read_text()
        ]
        assert hits == []

    def test_tree_clean_with_flow_rules(self):
        code, output = run([str(REPO_SRC), "--rules",
                            "L1,L2,L3,L4,L5,L7"])
        assert code == 0, output
