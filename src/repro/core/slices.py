"""Adder slice geometry.

The paper splits every adder into 8-bit slices (Section V-B finds 8 bits
to be the sweet spot).  A ``width``-bit adder therefore has
``ceil(width / 8)`` slices; slice 0's carry-in is architecturally known
(0 for ADD, 1 for SUB), so the speculation mechanism predicts
``n_slices - 1`` carries per operation:

* 64-bit integer adder — 8 slices, 7 predictions (``Cpred[6:0]``);
* 32-bit integer adder — 4 slices, 3 predictions;
* FP32 mantissa adder (23 bits) — 3 slices;
* FP64 mantissa adder (52 bits) — 7 slices.

The Carry Register File always stores 7 prediction bits per thread
(sized for the widest adder); narrower adders use the low-order bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import bitops


@dataclass(frozen=True)
class AdderGeometry:
    """Static shape of a sliced adder."""

    width: int
    slice_width: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.width <= 64:
            raise ValueError(f"adder width must be in [1, 64], got {self.width}")
        if self.slice_width < 1:
            raise ValueError("slice_width must be >= 1")

    @property
    def bounds(self) -> list:
        """Per-slice ``(lo, hi)`` bit ranges, LSB slice first."""
        return bitops.slice_bounds(self.width, self.slice_width)

    @property
    def n_slices(self) -> int:
        return len(self.bounds)

    @property
    def n_predictions(self) -> int:
        """Carries the speculation unit must supply (slices 1..n-1)."""
        return max(self.n_slices - 1, 0)

    @property
    def slice_widths(self) -> list:
        return [hi - lo for lo, hi in self.bounds]

    def state_bits(self) -> int:
        """Extra DFF bits per adder: 2 (State + Cout) per slice except 0.

        Matches the paper's accounting: 14 bits for the 64-bit integer
        adder, 4 for FP32 mantissa, 12 for FP64 mantissa.
        """
        return 2 * self.n_predictions


# Canonical geometries used by ST2 GPU (paper Section IV-C).
INT64 = AdderGeometry(64)
INT32 = AdderGeometry(32)
FP32_MANTISSA = AdderGeometry(23)
FP64_MANTISSA = AdderGeometry(52)

#: Width of a Carry Register File entry per thread: sized for the widest
#: adder (7 predictions), shared by all adder types.
CRF_BITS_PER_THREAD = INT64.n_predictions


def geometry_for(width: int, slice_width: int = 8) -> AdderGeometry:
    """Geometry for an arbitrary adder width (cached canonical cases)."""
    for geo in (INT64, INT32, FP32_MANTISSA, FP64_MANTISSA):
        if geo.width == width and geo.slice_width == slice_width:
            return geo
    return AdderGeometry(width, slice_width)
