"""CUDA Samples *histogram* — ``histo_K1`` (histogram256Kernel).

Each thread strides through the input, extracts four byte-bins per word
(shift/AND), and increments per-block shared-memory counters; a final
phase adds the block-local counts into the global histogram.  Counter
increments are small-int IADDs with extremely strong temporal
correlation.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128
BINS = 64


def histogram_kernel(k, data, partial_hist, n, words_per_thread):
    """histo_K1: per-thread shared sub-histograms, then a block merge.

    Per-thread counters (as in the CUDA sample's histogram64) avoid
    intra-warp increment conflicts entirely; the merge phase is a
    BINS-wide reduction across the block's threads.
    """
    tx = k.thread_id()
    t = k.global_id()
    # s_hist[bin * n_threads + thread]
    s_hist = k.shared(BINS * k.n_threads, np.int32)
    for b in k.range(BINS):
        k.st_shared(s_hist, k.imad(b, k.n_threads, tx), 0)
    k.syncthreads()

    total_threads = k.launch.total_threads
    for w in k.range(words_per_thread):
        idx = k.imad(w, total_threads, t)
        with k.where(k.lt(idx, n)):
            word = k.ld_global(data, idx)
            for byte in range(4):       # unrolled, like the sample
                bin_ = k.iand(k.shr(word, byte * 8), BINS - 1)
                slot = k.imad(bin_, k.n_threads, tx)
                cur = k.ld_shared(s_hist, slot)
                k.st_shared(s_hist, slot, k.iadd(cur, 1))
    k.syncthreads()

    with k.where(k.lt(tx, BINS)):
        total = np.zeros(k.n_threads, dtype=np.int64)
        slot = k.imul(tx, k.n_threads)
        for _i in k.range(k.n_threads):
            total = k.iadd(total, k.ld_shared(s_hist, slot))
            slot = k.iadd(slot, 1)
        out = k.imad(k.block_id, BINS, tx)
        k.st_global(partial_hist, out, total)


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    grid = scaled(8, scale, minimum=2)
    words_per_thread = scaled(8, scale, minimum=2)
    n = grid * BLOCK * words_per_thread
    # image-like byte data: clustered around mid-grey
    raw = np.clip(rng.normal(32, 12, n * 4), 0, 63).astype(np.uint8)
    words = raw.view(np.uint32).astype(np.int32)

    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="histo_K1",
        fn=histogram_kernel,
        launch=LaunchConfig(grid, BLOCK),
        params=dict(
            data=launcher.buffer("data", words),
            partial_hist=launcher.buffer(
                "partial", np.zeros(grid * BINS, np.int32)),
            n=n, words_per_thread=words_per_thread),
        launcher=launcher)


def merge_histogram_kernel(k, partial_hist, hist, n_partials):
    """Extension (mergeHistogram256-style): one block sums the partial
    histograms; each thread owns one bin and runs an IADD chain."""
    tx = k.thread_id()
    with k.where(k.lt(tx, BINS)):
        total = np.zeros(k.n_threads, dtype=np.int64)
        idx = tx.copy()
        for _p in k.range(n_partials):
            total = k.iadd(total, k.ld_global(partial_hist, idx))
            idx = k.iadd(idx, BINS)
        k.st_global(hist, tx, total)


def prepare_merge(scale: float = 1.0, seed: int = 0,
                  gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    """Extension kernel: merge the per-block partial histograms."""
    k1 = prepare(scale=scale, seed=seed, gpu=gpu)
    k1.run()
    launcher = k1.launcher
    n_partials = len(k1.params["partial_hist"].data) // BINS
    return PreparedKernel(
        name="histo_K2",
        fn=merge_histogram_kernel,
        launch=LaunchConfig(1, BLOCK),
        params=dict(partial_hist=k1.params["partial_hist"],
                    hist=launcher.buffer("hist",
                                         np.zeros(BINS, np.int32)),
                    n_partials=n_partials),
        launcher=launcher)
