"""CUDA Samples *sortingNetworks* — ``sortNets_K1``
(bitonicSortShared) and ``sortNets_K2`` (bitonicMergeGlobal).

Bitonic compare-exchange on integer keys: each exchange is a MIN/MAX
pair executed on the ALU adder (compare = subtract), plus the shift/XOR
index arithmetic selecting the partner element.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128
CHUNK = 2 * BLOCK


def bitonic_sort_shared_kernel(k, keys, n):
    """sortNets_K1: fully sort one CHUNK in shared memory."""
    tx = k.thread_id()
    base = k.block_id * CHUNK
    pos = k.iadd(base, tx)       # the tile-base pointer bump is a real IADD
    s = k.shared(CHUNK, np.int32)
    k.st_shared(s, tx, k.ld_global(keys, pos))
    # +BLOCK folds into the LDG/LDS immediate offset field on hardware
    k.st_shared(s, tx + BLOCK, k.ld_global(keys, pos + BLOCK))  # st2-lint: disable=L1
    k.syncthreads()

    size = 2
    while size <= CHUNK:
        # per-thread direction; the final merge stage sorts ascending
        ddd = ((tx & (size // 2)) != 0) if size < CHUNK \
            else np.zeros(k.n_threads, dtype=bool)
        stride = size // 2
        while stride > 0:
            lo = k.isub(k.imul(2, tx), k.iand(tx, stride - 1))
            hi = k.iadd(lo, stride)
            a = k.ld_shared(s, lo)
            b = k.ld_shared(s, hi)
            small = k.imin(a, b)
            large = k.imax(a, b)
            k.st_shared(s, lo, k.sel(ddd, large, small))
            k.st_shared(s, hi, k.sel(ddd, small, large))
            k.syncthreads()
            stride //= 2
        size *= 2

    k.st_global(keys, pos, k.ld_shared(s, tx))
    # +BLOCK folds into the LDG/LDS immediate offset field on hardware
    k.st_global(keys, pos + BLOCK, k.ld_shared(s, tx + BLOCK))  # st2-lint: disable=L1


def bitonic_merge_global_kernel(k, keys, size, stride, n):
    """sortNets_K2: one global compare-exchange pass."""
    t = k.global_id()
    with k.where(k.lt(t, n // 2)):
        pos = k.isub(k.imul(2, t), k.iand(t, stride - 1))
        partner = k.iadd(pos, stride)
        ddd = (t & (size // 2)) != 0
        a = k.ld_global(keys, pos)
        b = k.ld_global(keys, partner)
        small = k.imin(a, b)
        large = k.imax(a, b)
        k.st_global(keys, pos, k.sel(ddd, large, small))
        k.st_global(keys, partner, k.sel(ddd, small, large))


def _keys(rng, n):
    # uniform 20-bit keys, like the sample's default key range
    return rng.integers(0, 1 << 20, n).astype(np.int32)


def prepare_k1(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    n = scaled(6, scale, minimum=2) * CHUNK
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="sortNets_K1",
        fn=bitonic_sort_shared_kernel,
        launch=LaunchConfig(n // CHUNK, BLOCK),
        params=dict(keys=launcher.buffer("keys", _keys(rng, n)), n=n),
        launcher=launcher)


def prepare_k2(scale: float = 1.0, seed: int = 0,
               gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    rng = np.random.default_rng(seed)
    n = scaled(16, scale, minimum=4) * CHUNK
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="sortNets_K2",
        fn=bitonic_merge_global_kernel,
        launch=LaunchConfig(n // 2 // BLOCK, BLOCK),
        params=dict(keys=launcher.buffer("keys", _keys(rng, n)),
                    size=n // 2, stride=n // 4, n=n),
        launcher=launcher)
