"""Bit-identity tests for the carry-chain substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitops


class TestMask:
    def test_small_masks(self):
        assert bitops.mask(1) == 1
        assert bitops.mask(8) == 0xFF
        assert bitops.mask(64) == (1 << 64) - 1

    @pytest.mark.parametrize("width", [0, -1, 65])
    def test_invalid_width_rejected(self, width):
        with pytest.raises(ValueError):
            bitops.mask(width)


class TestToUnsigned:
    def test_negative_wraps_twos_complement(self):
        assert bitops.to_unsigned(-1, 8) == 0xFF
        assert bitops.to_unsigned(-1, 64) == (1 << 64) - 1
        assert bitops.to_unsigned(-128, 8) == 0x80

    def test_positive_masked(self):
        assert bitops.to_unsigned(0x1FF, 8) == 0xFF

    def test_array_input(self):
        out = bitops.to_unsigned(np.array([-1, 0, 5]), 16)
        assert out.dtype == np.uint64
        assert list(out) == [0xFFFF, 0, 5]

    def test_python_int_list(self):
        out = bitops.to_unsigned([2 ** 70 + 3, -2], 8)
        assert list(out) == [3, 0xFE]


class TestAddWrapped:
    @given(st.integers(-2**31, 2**31 - 1), st.integers(-2**31, 2**31 - 1),
           st.integers(0, 1))
    def test_matches_python_mod_arith(self, a, b, cin):
        got = int(bitops.add_wrapped(a, b, 32, cin))
        assert got == (a + b + cin) % (1 << 32)

    def test_vector_cin(self):
        a = np.array([1, 1], dtype=np.int64)
        b = np.array([2, 2], dtype=np.int64)
        out = bitops.add_wrapped(a, b, 8, np.array([0, 1], dtype=np.uint8))
        assert list(out) == [3, 4]


class TestCarryIdentities:
    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1),
           st.integers(0, 1))
    @settings(max_examples=200)
    def test_carry_into_bits_matches_longhand(self, a, b, cin):
        """Bit-serial reference: simulate a 64-bit ripple adder."""
        got = int(bitops.carry_into_bits(a, b, 64, cin))
        carry, word = cin, 0
        for i in range(64):
            word |= carry << i
            ai, bi = (a >> i) & 1, (b >> i) & 1
            carry = (ai & bi) | (ai & carry) | (bi & carry)
        assert got == word

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
           st.integers(0, 1))
    @settings(max_examples=200)
    def test_carry_out_is_overflow_bit(self, a, b, cin):
        assert int(bitops.carry_out(a, b, 32, cin)) == \
            (a + b + cin) >> 32

    def test_sub_via_invert_carry(self):
        """a - b == a + ~b + 1 for the recorded SUB operands."""
        a, b = 1000, 42
        res = bitops.add_wrapped(a, bitops.invert(b, 32), 32, 1)
        assert int(res) == a - b


class TestSliceBounds:
    def test_exact_multiple(self):
        assert bitops.slice_bounds(64, 8) == [
            (0, 8), (8, 16), (16, 24), (24, 32),
            (32, 40), (40, 48), (48, 56), (56, 64)]

    def test_remainder_slice(self):
        assert bitops.slice_bounds(23, 8) == [(0, 8), (8, 16), (16, 23)]
        assert bitops.slice_bounds(52, 8) == [
            (0, 8), (8, 16), (16, 24), (24, 32), (32, 40), (40, 48),
            (48, 52)]

    def test_n_slices(self):
        assert bitops.n_slices(64) == 8
        assert bitops.n_slices(32) == 4
        assert bitops.n_slices(23) == 3
        assert bitops.n_slices(52) == 7


class TestSliceCarryIns:
    def test_column_zero_is_cin(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2**63, 100)
        b = rng.integers(0, 2**63, 100)
        cin = rng.integers(0, 2, 100).astype(np.uint8)
        sl = bitops.slice_carry_ins(a, b, 64, 8, cin)
        assert np.array_equal(sl[:, 0], cin)

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    @settings(max_examples=100)
    def test_slices_consistent_with_carry_word(self, a, b):
        word = int(bitops.carry_into_bits(a, b, 64, 0))
        sl = bitops.slice_carry_ins(a, b, 64, 8, 0)
        for k in range(8):
            assert int(sl[0, k] if sl.ndim == 2 else sl[k]) == \
                (word >> (8 * k)) & 1

    def test_known_example(self):
        # 0x00FF + 0x0001 -> carry into slice 1
        sl = bitops.slice_carry_ins(0x00FF, 0x0001, 16, 8, 0)
        assert list(np.ravel(sl)) == [0, 1]


class TestSliceOperandBits:
    def test_msb_extraction(self):
        # slice MSbs of 0x80_80: bit7=1, bit15=1
        out = np.ravel(bitops.slice_operand_bits(0x8080, 16, 8))
        assert list(out) == [1, 1]
        out = np.ravel(bitops.slice_operand_bits(0x0080, 16, 8))
        assert list(out) == [1, 0]

    def test_partial_last_slice_uses_its_own_msb(self):
        # width 23: last slice covers bits 16..22, MSB is bit 22
        out = np.ravel(bitops.slice_operand_bits(1 << 22, 23, 8))
        assert list(out) == [0, 0, 1]


class TestCarryChainLength:
    def test_no_carries(self):
        assert int(bitops.carry_chain_length(1, 2, 64)) == 0

    def test_full_propagation(self):
        # -1 + 1 carries through every bit
        a = bitops.to_unsigned(-1, 64)
        assert int(bitops.carry_chain_length(a, 1, 64)) == 64

    def test_short_chain(self):
        # 1 + 1 = carry into bit 1 only
        assert int(bitops.carry_chain_length(1, 1, 64)) == 2


class TestPopcount:
    @given(st.integers(0, 2**64 - 1))
    @settings(max_examples=50)
    def test_matches_bin_count(self, v):
        assert int(bitops.popcount(v)) == bin(v).count("1")


class TestInvert:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_involution(self, v):
        assert int(bitops.invert(bitops.invert(v, 32), 32)) == v
