"""JSONL run manifests: the machine-readable record of one invocation.

Line 1 is a ``{"type": "run", ...}`` header (work-list shape, worker
count, code version, totals); every following line is a
``{"type": "unit", ...}`` record holding one unit's full result dict —
per-unit wall time, trace size, misprediction and energy summaries —
plus its cache key and whether this run served it from disk.
"""

from __future__ import annotations

import json
from pathlib import Path

MANIFEST_VERSION = 1


def write_manifest(path, results, meta: dict = None) -> Path:
    """Write a runner invocation's results as JSONL.

    ``results`` are raw unit dicts or typed
    :class:`~repro.st2.results.RunResult`\\ s — either way the line
    holds the flat JSON payload.
    """
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    header = {"type": "run", "manifest_version": MANIFEST_VERSION,
              "n_units": len(results)}
    header.update(meta or {})
    with open(path, "w") as fh:
        fh.write(json.dumps(header) + "\n")
        for result in results:
            if hasattr(result, "to_dict"):
                result = result.to_dict()
            fh.write(json.dumps({"type": "unit", **result}) + "\n")
    return path


def read_manifest(path) -> tuple:
    """Read back ``(header, [unit result dicts])``."""
    header = None
    units = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type", None)
            if kind == "run":
                header = record
            elif kind == "unit":
                units.append(record)
            else:
                raise ValueError(
                    f"unknown manifest record type {kind!r} in {path}")
    if header is None:
        raise ValueError(f"manifest {path} has no run header")
    if header.get("manifest_version") != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported manifest version "
            f"{header.get('manifest_version')!r} in {path}")
    return header, units
