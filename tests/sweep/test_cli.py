"""The ``st2-sweep`` CLI: example/expand/run/report round trip plus
the exit-code contract on its error surfaces."""

import json

import pytest

from repro.sweep.cli import main
from repro.sweep.specio import EXAMPLE_WIRE, example_text


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps({
        "schema_version": 1,
        "name": "cli-tiny",
        "kernels": ["qrng_K2"],
        "axes": {"mechanism": ["static1", "operand"]},
        "scale": 0.25,
        "seed": 0,
        "engine": "auto",
        "aux": False,
    }))
    return path


class TestExample:
    def test_yaml_output_is_loadable(self, capsys):
        code, out, _ = run_cli(capsys, "example")
        assert code == 0
        assert out == example_text("yaml")

    def test_json_format(self, capsys):
        code, out, _ = run_cli(capsys, "example", "--format", "json")
        assert code == 0
        assert json.loads(out) == EXAMPLE_WIRE

    def test_json_flag(self, capsys):
        code, out, _ = run_cli(capsys, "example", "--json")
        assert code == 0
        assert json.loads(out) == EXAMPLE_WIRE


class TestExpand:
    def test_expand_json(self, capsys, spec_path):
        code, out, _ = run_cli(capsys, "expand", str(spec_path),
                               "--json")
        assert code == 0
        doc = json.loads(out)
        assert doc["grid_size"] == 2
        assert doc["n_groups"] == 2
        assert sorted(g["canon"] for g in doc["groups"]) \
            == ["CASA", "staticOne"]

    def test_expand_human(self, capsys, spec_path):
        code, out, _ = run_cli(capsys, "expand", str(spec_path))
        assert code == 0
        assert "cli-tiny" in out and "staticOne" in out

    def test_missing_spec_file(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "expand",
                               str(tmp_path / "absent.yaml"))
        assert code == 2
        assert "cannot read" in err

    def test_bad_spec_contents(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 1, "kernels": []}')
        code, _, err = run_cli(capsys, "expand", str(path))
        assert code == 2
        assert "kernels" in err


class TestRunAndReport:
    def test_round_trip(self, capsys, spec_path, tmp_path):
        out_path = tmp_path / "sweep.json"
        code, out, _ = run_cli(
            capsys, "run", str(spec_path), "--out", str(out_path),
            "--workers", "2", "--cache-dir",
            str(tmp_path / "cache"), "--quiet")
        assert code == 0
        assert "frontier" in out
        doc = json.loads(out_path.read_text())
        assert doc["complete"] is True
        assert doc["spec"]["name"] == "cli-tiny"
        # the resume manifest and obs metrics ride next to the report
        manifest = tmp_path / "sweep.json.manifest.jsonl"
        assert manifest.exists()
        assert (tmp_path
                / "sweep.json.manifest.metrics.json").exists()

        code, report_out, _ = run_cli(capsys, "report",
                                      str(out_path))
        assert code == 0
        assert "cli-tiny" in report_out
        assert "energy saved" in report_out

        code, json_out, _ = run_cli(capsys, "report", str(out_path),
                                    "--json")
        assert code == 0
        report_doc = json.loads(json_out)
        assert set(report_doc) == {"frontier", "sensitivity",
                                   "markdown"}

    def test_rerun_reuses_everything(self, capsys, spec_path,
                                     tmp_path):
        args = ("run", str(spec_path), "--out",
                str(tmp_path / "s.json"), "--workers", "2",
                "--cache-dir", str(tmp_path / "cache"), "--quiet",
                "--json")
        code, first_out, _ = run_cli(capsys, *args)
        assert code == 0
        code, second_out, _ = run_cli(capsys, *args)
        assert code == 0
        second = json.loads(second_out)["result"]
        assert second["executed_units"] == 0
        assert second["reused_units"] \
            == json.loads(first_out)["result"]["executed_units"]

    def test_report_on_missing_file(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "report",
                               str(tmp_path / "absent.json"))
        assert code == 2
        assert "cannot read" in err

    def test_report_on_invalid_json(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        code, _, err = run_cli(capsys, "report", str(path))
        assert code == 2
        assert "invalid JSON" in err

    def test_run_unknown_kernel(self, capsys, tmp_path):
        path = tmp_path / "bad-kernel.json"
        path.write_text(json.dumps({
            "schema_version": 1, "name": "bad",
            "kernels": ["warp_drive"],
            "axes": {"peek": [False]},
        }))
        code, _, err = run_cli(capsys, "run", str(path), "--out",
                               str(tmp_path / "o.json"), "--quiet")
        assert code == 2
        assert "warp_drive" in err


class TestUsage:
    def test_no_command(self, capsys):
        code, _, err = run_cli(capsys)
        assert code == 2
        assert "command is required" in err
