"""Batched carry-speculation kernels for the vectorized replay engine.

The reference implementations in :mod:`repro.core.predictors` and
:mod:`repro.core.adder` evaluate a trace per unique adder width (and
the history mechanism per slice boundary, one stable argsort each).
This module computes the same quantities once for a *whole trace* in
padded ``(N, 8)`` / ``(N, 7)`` arrays:

* :class:`TracePack` — every config-independent derived array of one
  trace: true slice carries, per-slice generate/propagate summaries
  (the ``cout = G | (P & cin)`` identity of
  :meth:`~repro.core.adder.ST2Adder._slice_carry_outs`), runtime Peek
  facts and the slice-validity masks.
* :func:`previous_same_key_batch` — the history-table predecessor for
  all 7 slice boundaries from **one** stable argsort (the per-boundary
  valid sets are subsequences of the same time order, and a stable
  sort of a subsequence is the subsequence of the stable sort).
* :func:`predict_trace_batch` / :func:`evaluate_trace_batch` — padded
  whole-trace prediction and ST2-adder evaluation.

Everything here is **bit-identical** to the reference path — same
integer identities, same dtypes, same tie-breaking — which the vec
engine's equivalence suite asserts over the full kernel suite.  No
``repro.obs`` instrumentation happens at this level: the engine emits
aggregate counters that match the interpreter's totals exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.predictors import (MAX_PREDICTIONS, Prediction,
                                   SpeculationConfig,
                                   _operand_predictions,
                                   _valhalla_predictions, history_keys,
                                   trace_groups, trace_n_predictions)

#: widest supported adder: 64 bits = 8 slices of 8 bits
N_SLICES_MAX = MAX_PREDICTIONS + 1

_U64 = np.uint64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _operands_u64(trace) -> tuple:
    """``(a, b, width, mask)`` with both operands reinterpreted as
    unsigned and masked to each row's width — the vectorised-over-rows
    form of :func:`~repro.core.bitops.to_unsigned`."""
    width = np.asarray(trace.width).astype(_U64)
    m = _ALL_ONES >> (_U64(64) - width)
    a = np.asarray(trace.op_a).astype(np.int64).view(_U64) & m
    b = np.asarray(trace.op_b).astype(np.int64).view(_U64) & m
    return a, b, width, m


def _slice_carries_all(trace) -> np.ndarray:
    """``(N, 8)`` true slice carry-ins, one pass over every width.

    Bit-identical to
    :func:`~repro.core.predictors.trace_slice_carries`: slice ``j``
    always starts at bit ``8j``, and a row's carry word is masked to
    its width, so shifting past it reads the same zero the reference
    pads with — no per-width gather/scatter needed.
    """
    a, b, width, m = _operands_u64(trace)
    cin = np.asarray(trace.cin, dtype=_U64)
    with np.errstate(over="ignore"):    # uint64 wrap-around intended
        s = (a + b + cin) & m
    carries = a ^ b ^ s                 # < 2**width by construction
    out = np.empty((len(width), N_SLICES_MAX), dtype=np.uint8)
    for j in range(N_SLICES_MAX):
        out[:, j] = (carries >> _U64(8 * j)) & _U64(1)
    return out


def _peek_all(trace, pred_valid: np.ndarray) -> tuple:
    """``(known, value)`` of the runtime Peek rule, one pass over every
    width — bit-identical to :func:`~repro.core.predictors.trace_peek`.

    The MSB of slice ``j`` sits at ``min(8j + 8, width) - 1``; columns
    past a row's last boundary are masked off with ``pred_valid``
    (matching the zeros the reference never writes).
    """
    width = np.asarray(trace.width).astype(_U64)
    # only bits below each row's width are read, so the raw uint64
    # reinterpretation needs no mask
    a = np.asarray(trace.op_a).astype(np.int64).view(_U64)
    b = np.asarray(trace.op_b).astype(np.int64).view(_U64)
    known = np.empty((len(width), MAX_PREDICTIONS), dtype=bool)
    value = np.empty((len(width), MAX_PREDICTIONS), dtype=np.uint8)
    one = _U64(1)
    for j in range(MAX_PREDICTIONS):
        pos = np.minimum(_U64(8 * j + 8), width) - one
        a_bit = (a >> pos) & one
        b_bit = (b >> pos) & one
        both_one = (a_bit & b_bit) == one
        both_zero = (a_bit | b_bit) == 0
        known[:, j] = both_one | both_zero
        value[:, j] = both_one
    known &= pred_valid
    value &= pred_valid
    return known, value


@dataclass
class TracePack:
    """Config-independent derived arrays of one :class:`AddTrace`.

    Built once per trace (a few vectorised passes over the memmapped
    columns) and shared by every SpeculationConfig evaluated against
    it — the predict/evaluate work that the interpreter repeats per
    config (and repeats again inside the static-peek ablation) reads
    these arrays instead.
    """

    n_rows: int
    n_preds: np.ndarray         # (N,)  int64 — speculated carries/row
    carries: np.ndarray         # (N, 8) uint8 — true slice carry-ins
    gen: np.ndarray             # (N, 8) uint8 — slice generate bits
    prop: np.ndarray            # (N, 8) uint8 — slice propagate bits
    pred_valid: np.ndarray      # (N, 7) bool — boundary j < n_preds
    peek_known: np.ndarray      # (N, 7) bool — runtime Peek facts
    peek_value: np.ndarray      # (N, 7) uint8
    cin: np.ndarray             # (N,)  uint8 — architectural carry-in

    @property
    def history_lookups(self) -> int:
        """Total (row, boundary) pairs a history table would look up —
        the interpreter's ``core.predict.history_lookups`` per call."""
        return int(self.pred_valid.sum())

    def rows(self, idx: np.ndarray) -> "TracePack":
        """The pack restricted to ``idx`` — a row-subset view used to
        re-evaluate only the rows a prediction overlay changed."""
        return TracePack(
            n_rows=len(idx), n_preds=self.n_preds[idx],
            carries=self.carries[idx], gen=self.gen[idx],
            prop=self.prop[idx], pred_valid=self.pred_valid[idx],
            peek_known=self.peek_known[idx],
            peek_value=self.peek_value[idx], cin=self.cin[idx])


def _gen_prop_all(trace) -> tuple:
    """Per-slice generate/propagate summaries, one pass over every
    width — bit-identical to the per-width loop over
    :func:`~repro.core.bitops.carry_out` pairs: ``g`` is the slice's
    carry-out under carry-in 0, ``p`` marks carry-in 1 flipping it.
    Columns past a row's last slice are zero, as the reference never
    writes them.
    """
    a, b, width, _m = _operands_u64(trace)
    n = len(width)
    gen = np.zeros((n, N_SLICES_MAX), dtype=np.uint8)
    prop = np.zeros((n, N_SLICES_MAX), dtype=np.uint8)
    one = _U64(1)
    for j in range(N_SLICES_MAX):
        lo = _U64(8 * j)
        exists = width > lo
        if not exists.any():
            break                       # slices are a prefix per row
        hi = np.minimum(lo + _U64(8), width)
        sw = np.where(exists, hi - lo, one)     # clamp dead rows' shifts
        smask = _ALL_ONES >> (_U64(64) - sw)
        sa = (a >> lo) & smask
        sb = (b >> lo) & smask
        msb = sw - one
        with np.errstate(over="ignore"):
            s0 = (sa + sb) & smask
            s1 = (sa + sb + one) & smask
        g0 = (sa & sb) >> msb & one
        p0 = (sa ^ sb) >> msb & one
        g = g0 | (p0 & ((sa ^ sb ^ s0) >> msb & one))
        cout1 = g0 | (p0 & ((sa ^ sb ^ s1) >> msb & one))
        gen[:, j] = np.where(exists, g, 0)
        prop[:, j] = np.where(exists, (cout1 & ~g) & one, 0)
    return gen, prop


def build_pack(trace) -> TracePack:
    """Derive every config-independent array of ``trace``."""
    n = len(trace)
    n_preds = trace_n_predictions(trace)
    pred_valid = (np.arange(MAX_PREDICTIONS)[None, :]
                  < n_preds[:, None])
    peek_known, peek_value = _peek_all(trace, pred_valid)
    gen, prop = _gen_prop_all(trace)
    return TracePack(
        n_rows=n, n_preds=n_preds, carries=_slice_carries_all(trace),
        gen=gen, prop=prop, pred_valid=pred_valid,
        peek_known=peek_known, peek_value=peek_value,
        cin=np.asarray(trace.cin, dtype=np.uint8))


def previous_same_key_batch(keys: np.ndarray, groups: np.ndarray,
                            valid_cols: np.ndarray) -> np.ndarray:
    """Per-boundary history predecessors from one stable argsort.

    Equivalent to calling
    :func:`~repro.core.predictors.previous_same_key` once per column of
    ``valid_cols`` (shape ``(N, k)``), but the ``keys`` array is sorted
    only once: each column's valid subset is a subsequence of the rows
    in time order, and the stable sort of a subsequence equals the
    subsequence of the stable sort of the whole array.

    ``groups`` must mark simultaneity groups for every row (pass
    ``np.arange(N)`` for the no-groups semantics, where every row is
    its own group).  Returns ``(N, k)`` predecessor indices, -1 where
    none exists.
    """
    n, k = valid_cols.shape
    prev = np.full((n, k), -1, dtype=np.int64)
    if n < 2:
        return prev
    order = np.argsort(keys, kind="stable")
    sk_full = keys[order]
    sg_full = groups[order]
    sel_full = valid_cols[order]
    for j in range(k):
        sel = sel_full[:, j]
        si = order[sel]
        m = len(si)
        if m < 2:
            continue
        sk = sk_full[sel]
        sg = sg_full[sel]
        pos = np.arange(m)
        run_start = np.ones(m, dtype=bool)
        run_start[1:] = (sk[1:] != sk[:-1]) | (sg[1:] != sg[:-1])
        start_pos = np.maximum.accumulate(np.where(run_start, pos, 0))
        source = start_pos - 1
        ok = (source >= 0) & (sk[np.maximum(source, 0)] == sk)
        prev[si[ok], j] = si[source[ok]]
    return prev


def predict_trace_batch(trace, config: SpeculationConfig,
                        pack: TracePack) -> Prediction:
    """Whole-trace prediction from a pack — the batched
    :func:`~repro.core.predictors.predict_trace`.

    Identical bits/has_prev/peek_known for every mechanism; the
    ``prev`` history path replaces seven stable argsorts with one.
    """
    n = pack.n_rows
    has_prev = np.zeros((n, MAX_PREDICTIONS), dtype=bool)
    if config.mechanism == "static0":
        bits = np.zeros((n, MAX_PREDICTIONS), dtype=np.uint8)
    elif config.mechanism == "static1":
        bits = np.ones((n, MAX_PREDICTIONS), dtype=np.uint8)
    elif config.mechanism == "operand":
        bits = _operand_predictions(trace)
    elif config.mechanism == "valhalla":
        bits = _valhalla_predictions(trace, pack.carries, pack.n_preds)
    else:  # prev
        keys = history_keys(trace, config)
        groups = trace_groups(trace)
        prev = previous_same_key_batch(keys, groups, pack.pred_valid)
        has_prev = prev >= 0
        idx = np.where(has_prev, prev, 0)
        # bits[r, j] = carries[prev[r, j], j + 1] in one gather
        vals = np.take_along_axis(pack.carries[:, 1:], idx, axis=0)
        bits = np.where(has_prev, vals, np.uint8(0))
    peek_known = np.zeros((n, MAX_PREDICTIONS), dtype=bool)
    if config.peek:
        peek_known = pack.peek_known
        bits = np.where(peek_known, pack.peek_value, bits)
    return Prediction(config=config, bits=bits, has_prev=has_prev,
                      peek_known=peek_known)


def evaluate_trace_batch(pack: TracePack, bits: np.ndarray) -> tuple:
    """ST2-adder outcome of a whole trace against prediction ``bits``.

    Returns ``(mispredicted, recomputed, wrong_bits)`` — exactly the
    arrays :func:`~repro.core.predictors.evaluate_trace` produces, from
    the padded generate/propagate tables instead of a per-width adder
    loop.  Boundary ``j`` of a row only participates while
    ``j < n_preds`` (rows with a single slice never mispredict, as in
    the reference, whose per-width loop skips them).
    """
    n = pack.n_rows
    assumed = np.empty((n, N_SLICES_MAX), dtype=np.uint8)
    assumed[:, 0] = pack.cin
    assumed[:, 1:] = bits
    # cycle-1 carry-out of each slice under its *assumed* carry-in
    couts = pack.gen | (pack.prop & assumed)
    # E[i]: prediction for slice i vs predecessor's cycle-1 carry-out
    errors = (bits != couts[:, :MAX_PREDICTIONS]) & pack.pred_valid
    # S[i] = OR of E[1..i]: suspicion propagates to every higher slice
    suspect = np.cumsum(errors, axis=1) > 0
    mispredicted = errors.any(axis=1)
    recomputed = (suspect & pack.pred_valid).sum(axis=1) \
        .astype(np.int64)
    wrong_bits = ((bits != pack.carries[:, 1:]) & pack.pred_valid) \
        .sum(axis=1).astype(np.int64)
    return mispredicted, recomputed, wrong_bits
