"""st2-fuzz CLI: determinism, exit codes, machine output."""

import json

import pytest

from repro.fuzz.cli import main
from repro.cli_common import EXIT_OK, EXIT_PROBLEMS, EXIT_USAGE


def _json_out(capsys):
    out, err = capsys.readouterr()
    return json.loads(out), err


class TestGen:
    def test_emits_one_json_document(self, capsys):
        assert main(["gen", "--seed", "1", "--count", "2",
                     "--json"]) == EXIT_OK
        doc, err = _json_out(capsys)
        assert err == ""
        assert len(doc["kernels"]) == 2
        assert doc["kernels"][0]["source"].startswith("import numpy")

    def test_text_output_prints_sources(self, capsys):
        assert main(["gen", "--seed", "1"]) == EXIT_OK
        assert "def fuzz_kernel(" in capsys.readouterr().out

    def test_index_offsets_the_stream(self, capsys):
        main(["gen", "--seed", "1", "--count", "1", "--index", "3",
              "--json"])
        offset, _ = _json_out(capsys)
        main(["gen", "--seed", "1", "--count", "4", "--json"])
        batch, _ = _json_out(capsys)
        assert offset["kernels"][0] == batch["kernels"][3]


class TestRun:
    def test_clean_run_exits_ok(self, capsys):
        assert main(["run", "--seed", "21", "--budget", "2",
                     "--json"]) == EXIT_OK
        doc, _ = _json_out(capsys)
        assert doc["checked"] == 2
        assert doc["failed"] == 0
        assert doc["checks"]["engine"] >= 2

    def test_runs_are_deterministic(self, capsys):
        argv = ["run", "--seed", "4", "--budget", "2", "--json"]
        main(argv)
        first, _ = _json_out(capsys)
        main(argv)
        second, _ = _json_out(capsys)
        first.pop("elapsed_s")
        second.pop("elapsed_s")
        assert first == second

    def test_oracle_subset_runs_only_those(self, capsys):
        assert main(["run", "--seed", "21", "--budget", "1",
                     "--oracles", "adder", "--json"]) == EXIT_OK
        doc, _ = _json_out(capsys)
        assert "adder_rows" in doc["checks"]
        assert "engine" not in doc["checks"]

    def test_unknown_oracle_exits_usage(self, capsys):
        assert main(["run", "--oracles", "psychic"]) == EXIT_USAGE
        assert "unknown oracle" in capsys.readouterr().err

    def test_unknown_config_exits_usage(self, capsys):
        assert main(["run", "--configs", "warpspeed"]) == EXIT_USAGE
        assert "unknown config" in capsys.readouterr().err

    def test_failures_exit_problems_and_are_minimized(self, capsys,
                                                      tmp_path,
                                                      monkeypatch):
        """With the old empty-mask sanitizer re-introduced, a campaign
        that hits a uniform barrier must fail, minimize, and save a
        fixture."""
        import numpy as np

        from repro.sim import sanitizer as san_mod
        from repro.sim.sanitizer import BarrierDivergenceError

        def old_on_barrier(self, mask: np.ndarray) -> None:
            if not mask.all():
                fname, line = san_mod._kernel_frame()
                raise BarrierDivergenceError(
                    f"{fname}:{line}: syncthreads under a divergent "
                    f"mask ({int(mask.sum())}/{mask.size})")
            self.epoch += 1

        monkeypatch.setattr(san_mod.KernelSanitizer, "on_barrier",
                            old_on_barrier)
        save = tmp_path / "corpus"
        code = main(["run", "--seed", "7", "--budget", "3",
                     "--oracles", "sanitizer",
                     "--save-failures", str(save),
                     "--shrink-evals", "60", "--json"])
        assert code == EXIT_PROBLEMS
        doc, _ = _json_out(capsys)
        assert doc["failed"] >= 1
        entry = doc["failures"][0]
        assert "minimized_source" in entry
        assert entry["shrink"]["to"] <= entry["shrink"]["from"]
        saved = list(save.glob("*.json"))
        assert saved and json.loads(saved[0].read_text())["source"]


class TestReplay:
    def test_replays_committed_corpus_green(self, capsys):
        assert main(["replay", "--json"]) == EXIT_OK
        doc, _ = _json_out(capsys)
        assert doc["fixtures"] >= 1 and doc["failed"] == 0

    def test_unreadable_fixture_exits_usage(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["replay", str(bad)]) == EXIT_USAGE
        assert "unreadable fixture" in capsys.readouterr().err


def test_subcommand_required():
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == EXIT_USAGE
