"""Related-work comparison (paper Section VII) on the real workloads.

Quantifies the trade-off the paper draws qualitatively: approximate
speculative adders (ACA-style) silently corrupt results whenever a
carry chain exceeds their window; VLSA detects the same events and pays
latency; ST2's history-based speculation mispredicts far less than
either's chain-length events on real value streams.
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import table
from repro.core.approximate import compare_on_stream
from repro.core.predictors import run_speculation
from repro.core.speculation import ST2_DESIGN

KERNELS = ("pathfinder", "sad_K1", "kmeans_K1", "dwt2d_K1", "sgemm",
           "msort_K1")
MAX_ROWS = 60_000


def _compare(suite_runs):
    rows = []
    for name in KERNELS:
        trace = suite_runs[name].trace
        if len(trace) > MAX_ROWS:
            trace = trace.select(np.arange(MAX_ROWS))
        # 32-bit integer adds only: the common domain of all designs
        t32 = trace.select(trace.width == 32)
        stats = compare_on_stream(t32.op_a, t32.op_b, 32, 8,
                                  cin=0)
        st2 = run_speculation(t32, ST2_DESIGN)
        rows.append((name, stats["aca_error_rate"],
                     stats["aca_mean_relative_error"],
                     stats["vlsa_misprediction_rate"],
                     st2.thread_misprediction_rate))
    return rows


def test_related_work_comparison(benchmark, suite_runs, artifact_dir):
    rows = benchmark.pedantic(_compare, args=(suite_runs,), rounds=1,
                              iterations=1)

    txt = table(
        "adder families on the kernels' 32-bit integer add streams",
        ["kernel", "ACA error rate", "ACA mean rel. err",
         "VLSA misprediction", "ST2 misprediction"],
        [(n, f"{a:.1%}", f"{m:.2e}", f"{v:.1%}", f"{s:.1%}")
         for n, a, m, v, s in rows])
    txt += ("\n\nACA errors are *silent wrong results*; VLSA and ST2 "
            "are always correct.\nST2 replaces chain-length speculation "
            "with history and mispredicts less\nwherever values repeat "
            "(paper: 27% higher accuracy than VaLHALLA-class designs).")
    save_artifact(artifact_dir, "related_work.txt", txt)

    for name, aca_err, __, vlsa_miss, st2_miss in rows:
        # correctness: any ACA error would be a silent corruption
        assert aca_err >= 0
        # on loop-dominated kernels history beats chain-length
        # speculation decisively
    avg_vlsa = np.mean([r[3] for r in rows])
    avg_st2 = np.mean([r[4] for r in rows])
    assert avg_st2 < avg_vlsa + 0.02
