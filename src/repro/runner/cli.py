"""``st2-run`` / ``python -m repro.runner`` — the experiment runner CLI.

Examples::

    st2-run --kernels all --workers 4
    st2-run --kernels smoke --workers 2 --out manifest.jsonl
    st2-run --kernels binomial,pathfinder --configs ladder --no-cache

``--kernels`` takes a comma-separated list of suite kernel names or a
group (``all``, ``extended``, ``full``, ``smoke``); ``--configs`` takes
Figure 5 ladder names or an alias (``st2``, ``valhalla``, ``prev``,
``casa``, ``ladder``, ``fig3``).  Results are cached on disk under
``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``) and the run is
recorded as a JSONL manifest (``--out``) plus a ``metrics.json``
observability dump next to it (``st2_manifest.metrics.json``) that
``st2-stats`` reads.

Exit codes follow the shared contract (:mod:`repro.cli_common`):
0 success, 2 usage/input errors.
"""

from __future__ import annotations

import sys

from repro import cli_common, obs
from repro.kernels.suite import KERNEL_GROUPS, resolve_kernels
from repro.runner.cache import code_version
from repro.runner.manifest import write_manifest
from repro.runner.options import RunOptions
from repro.runner.pool import RunTimer, run_units
from repro.runner.units import ENGINES, build_units, resolve_configs


def build_parser():
    parser = cli_common.build_parser(
        "st2-run",
        "Parallel cached runner for the ST2 GPU "
        "(kernel x SpeculationConfig) experiment grid.")
    parser.add_argument("--kernels", default="all",
                        help="comma-separated kernel names or a group: "
                             + ", ".join(sorted(KERNEL_GROUPS)))
    parser.add_argument("--configs", default="st2",
                        help="comma-separated speculation configs "
                             "(aliases: st2, valhalla, prev, casa, "
                             "ladder, fig3)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: min(4, cores))")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed (default 0)")
    parser.add_argument("--per-kernel-seeds", action="store_true",
                        help="derive each unit's seed from "
                             "(seed, kernel) instead of sharing it")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the disk cache (no reads, "
                             "no writes)")
    parser.add_argument("--no-aux", action="store_true",
                        help="skip the VaLHALLA + correlation "
                             "auxiliary measurements")
    parser.add_argument("--engine", choices=list(ENGINES),
                        default="auto",
                        help="evaluation engine: 'interp' is the "
                             "reference per-width interpreter; 'vec' "
                             "is the batched trace-replay engine "
                             "(bit-identical results and obs "
                             "counters, errors if a trace is "
                             "unsupported); 'auto' (default) uses "
                             "vec where supported and falls back to "
                             "interp per unit otherwise")
    parser.add_argument("--cache-dir", default=None,
                        help="cache root (default: $REPRO_CACHE_DIR "
                             "or ~/.cache/repro)")
    parser.add_argument("--trace-store", nargs="?", const="",
                        default=None, metavar="DIR",
                        help="two-stage pipeline: capture each distinct "
                             "(kernel, scale, seed) trace once into a "
                             "memory-mapped store, then evaluate all "
                             "configs against it read-only (bare flag: "
                             "$REPRO_TRACE_DIR or "
                             "~/.cache/repro/traces)")
    parser.add_argument("--out", default="st2_manifest.jsonl",
                        help="JSONL manifest path "
                             "(default st2_manifest.jsonl); the obs "
                             "dump lands next to it as "
                             "<out>.metrics.json")
    parser.add_argument("--list", action="store_true",
                        help="print the resolved work list and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-unit progress lines")
    cli_common.add_json_flag(parser)
    return parser


def _progress_printer(total: int, quiet: bool):
    state = {"done": 0}

    def progress(spec, result) -> None:
        state["done"] += 1
        if quiet:
            return
        origin = "cache" if result.cached else \
            f"{result.wall_time_s:.2f}s"
        print(f"[{state['done']:>3}/{total}] {spec.label:<42} "
              f"miss={result.metrics.misprediction_rate:.4f} "
              f"({origin})", flush=True)
    return progress


def _summary_table(results) -> str:
    from repro.analysis.ascii_charts import table
    rows = [(r.kernel, r.config,
             "hit" if r.cached else "miss",
             f"{r.wall_time_s:.2f}", f"{r.trace_rows:,}",
             f"{r.metrics.misprediction_rate:.4f}",
             f"{r.metrics.system_saving:.1%}")
            for r in results]
    return table("st2-run results",
                 ["kernel", "config", "cache", "unit s", "trace rows",
                  "miss rate", "system saving"], rows)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        kernels = resolve_kernels(args.kernels)
        configs = resolve_configs(args.configs)
    except KeyError as exc:
        return cli_common.fail("st2-run", exc.args[0])

    units = build_units(kernels, configs=configs, scale=args.scale,
                        seed=args.seed, aux=not args.no_aux,
                        per_kernel_seeds=args.per_kernel_seeds)
    if not units:
        return cli_common.fail("st2-run", "no work units selected")
    if args.list:
        if args.json:
            cli_common.emit_json([
                {"kernel": spec.kernel, "config": spec.config.name,
                 "scale": spec.scale, "seed": spec.seed}
                for spec in units])
        else:
            for spec in units:
                print(f"{spec.label}  scale={spec.scale} "
                      f"seed={spec.seed}")
        return cli_common.EXIT_OK

    timer = RunTimer()
    quiet = args.quiet or args.json
    options = RunOptions.from_args(
        args, progress=_progress_printer(len(units), quiet),
        timer=timer)

    results = run_units(units, options)

    meta = {
        "kernels": list(kernels),
        "configs": [cfg.name for cfg in configs],
        "scale": args.scale,
        "seed": args.seed,
        "workers": options.workers,
        "engine": options.engine,
        "use_cache": options.use_cache,
        "cache_dir": str(options.resolved_cache().root),
        "code_version": code_version(),
    }
    if options.trace_store is not None:
        meta["trace_store"] = str(options.trace_store.root)
    meta.update(options.stats)
    meta.update(timer.summary())
    path = write_manifest(args.out, results, meta=meta)
    metrics_path = obs.write_metrics(obs.metrics_path_for(path),
                                     options.obs.snapshot(), meta=meta)

    if args.json:
        cli_common.emit_json({
            "meta": meta,
            "manifest": str(path),
            "metrics": str(metrics_path),
            "units": [r.to_dict() for r in results],
        })
        return cli_common.EXIT_OK

    print()
    print(_summary_table(results))
    print(f"\n{len(results)} units in {timer.elapsed_s:.2f}s "
          f"({timer.hits} cache hits, {timer.misses} computed, "
          f"workers={options.workers})")
    if options.trace_store is not None and \
            "traces_total" in options.stats:
        s = options.stats
        print(f"trace store: {s['traces_total']} traces "
              f"({s['traces_captured']} captured in "
              f"{s['stage_capture_s']:.2f}s, {s['trace_store_hits']} "
              f"warm), stage 2 {s['stage_eval_s']:.2f}s")
    print(f"manifest: {path}")
    print(f"metrics:  {metrics_path}")
    return cli_common.EXIT_OK


def console_main() -> int:
    return cli_common.run_cli(main)


if __name__ == "__main__":
    sys.exit(console_main())
