"""Disk-cache behaviour: keys, hits, invalidation, corruption."""

from __future__ import annotations

import json

import pytest

from repro.core.speculation import PREV_PEEK, ST2_DESIGN
from repro.runner import (ResultCache, RunOptions, UnitSpec, build_units,
                          run_units, unit_key)
from repro.runner.units import results_equal

FAST = "qrng_K2"        # smallest suite kernel: ~0.1 s per execution


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def unit(**kw):
    kw.setdefault("kernel", FAST)
    kw.setdefault("aux", False)
    return UnitSpec(**kw)


def test_key_is_deterministic_and_content_sensitive():
    base = unit()
    assert unit_key(base) == unit_key(unit())
    assert unit_key(base) != unit_key(unit(seed=1))
    assert unit_key(base) != unit_key(unit(scale=0.5))
    assert unit_key(base) != unit_key(unit(aux=True))
    assert unit_key(base) != unit_key(unit(config=PREV_PEEK))


def test_key_invalidates_on_code_version_change():
    spec = unit()
    assert unit_key(spec, version="aaaa") != unit_key(spec,
                                                      version="bbbb")


def test_miss_then_hit(cache):
    spec = unit()
    (cold,) = run_units([spec], RunOptions(cache=cache))
    assert cold.cached is False
    assert len(cache) == 1

    (warm,) = run_units([spec], RunOptions(cache=cache))
    assert warm.cached is True
    assert results_equal(cold, warm)


def test_config_change_is_a_miss(cache):
    (first,) = run_units([unit(config=ST2_DESIGN)], RunOptions(cache=cache))
    (other,) = run_units([unit(config=PREV_PEEK)], RunOptions(cache=cache))
    assert other.cached is False
    assert len(cache) == 2
    assert other.data["metrics"] != first.data["metrics"]


def test_no_cache_bypasses_reads_and_writes(cache):
    spec = unit()
    run_units([spec], RunOptions(cache=cache))          # populate
    (result,) = run_units([spec], RunOptions(cache=cache, use_cache=False))
    assert result.cached is False
    assert len(cache) == 1                  # nothing new written


def test_corrupted_entry_recomputes_and_heals(cache):
    spec = unit()
    (cold,) = run_units([spec], RunOptions(cache=cache))
    path = cache.path(cold.key)

    for garbage in (b"not json{", b"", json.dumps(
            {"key": "wrong", "result": {}}).encode()):
        path.write_bytes(garbage)
        (again,) = run_units([spec], RunOptions(cache=cache))
        assert again.cached is False        # recomputed, not crashed
        assert results_equal(cold, again)
        # the bad entry was overwritten with a valid one
        (healed,) = run_units([spec], RunOptions(cache=cache))
        assert healed.cached is True


def test_truncated_result_payload_is_a_miss(cache):
    spec = unit()
    (cold,) = run_units([spec], RunOptions(cache=cache))
    path = cache.path(cold.key)
    payload = json.loads(path.read_text())
    del payload["result"]["metrics"]
    path.write_text(json.dumps(payload))
    (again,) = run_units([spec], RunOptions(cache=cache))
    assert again.cached is False
    assert results_equal(cold, again)


def test_cache_dir_env_default(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    cache = ResultCache()
    assert cache.root == tmp_path / "envcache"


def test_build_units_grid_and_seeds():
    units = build_units([FAST, "sortNets_K2"],
                        configs=(ST2_DESIGN, PREV_PEEK), seed=7)
    assert len(units) == 4
    assert all(u.seed == 7 for u in units)
    per_kernel = build_units([FAST, "sortNets_K2"], seed=7,
                             per_kernel_seeds=True)
    assert per_kernel[0].seed != per_kernel[1].seed
    # derived seeds are pure functions of (base seed, kernel)
    again = build_units([FAST, "sortNets_K2"], seed=7,
                        per_kernel_seeds=True)
    assert [u.seed for u in per_kernel] == [u.seed for u in again]


def test_result_affecting_packages_match_disk():
    """The hashed-package list is derived from the tree, not a hand
    list: every repro subpackage is either hashed or explicitly named
    result-neutral."""
    from pathlib import Path

    import repro
    from repro.runner.cache import (NON_RESULT_PACKAGES,
                                    result_affecting_packages)

    root = Path(repro.__file__).parent
    on_disk = {child.name for child in root.iterdir()
               if child.is_dir() and (child / "__init__.py").is_file()}
    hashed = set(result_affecting_packages())
    assert hashed == on_disk - NON_RESULT_PACKAGES
    assert hashed == {"circuits", "core", "isa", "kernels", "power",
                      "sim", "st2"}
    assert result_affecting_packages() == tuple(sorted(hashed))
