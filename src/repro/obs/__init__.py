"""``repro.obs`` — the unified observability layer.

Zero-dependency hierarchical counters, timers and spans, threaded
through the hot paths of the stack (functional executor, cycle models,
predictors, trace store, runner), plus the ``metrics.json`` dump format
and the baseline machinery behind ``st2-stats``.

Instrumented code calls the **module-level helpers**, which route to
the *active* registry::

    from repro import obs

    obs.add("sim.functional.trace_rows", len(trace))
    with obs.timer("core.predict"):
        ...
    with obs.span("runner.stage.eval"):      # hierarchical
        ...

By default the active registry is one process-wide :class:`Obs`.
:func:`scoped` installs a fresh registry for the current thread — the
runner wraps each work unit in one, ships the unit's snapshot back to
the parent with the result, and merges everything into a per-invocation
registry whose snapshot becomes ``metrics.json``.

See ``docs/observability.md`` for the metric taxonomy, span naming
convention and the baseline workflow.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.obs.metrics import (BASELINE_VERSION, METRICS_VERSION,
                               baseline_from_metrics, check_baseline,
                               diff_metrics, flatten_metrics,
                               load_baseline, lookup_metric,
                               metrics_path_for, read_metrics,
                               write_metrics)
from repro.obs.registry import SPAN_SEP, TIMER_FIELDS, Obs, TimerStat

__all__ = [
    "BASELINE_VERSION", "METRICS_VERSION", "Obs", "SPAN_SEP",
    "TIMER_FIELDS", "TimerStat", "add", "baseline_from_metrics",
    "check_baseline", "diff_metrics", "flatten_metrics", "get_obs",
    "load_baseline", "lookup_metric", "metrics_path_for", "read_metrics",
    "record_timer", "scoped", "span", "timer", "write_metrics",
]

#: the process-wide fallback registry (instrumentation outside any
#: :func:`scoped` block lands here)
_GLOBAL = Obs()

_ACTIVE = threading.local()


def get_obs() -> Obs:
    """The registry instrumentation currently routes to: the innermost
    :func:`scoped` registry on this thread, else the process global."""
    stack = getattr(_ACTIVE, "stack", None)
    return stack[-1] if stack else _GLOBAL


@contextmanager
def scoped(registry: Obs = None):
    """Route this thread's instrumentation into ``registry`` (a fresh
    :class:`Obs` when omitted) for the duration of the block, yielding
    it.  Nests; other threads are unaffected."""
    registry = registry if registry is not None else Obs()
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = _ACTIVE.stack = []
    stack.append(registry)
    try:
        yield registry
    finally:
        stack.pop()


# -- conveniences over the active registry -----------------------------

def add(name: str, n=1) -> None:
    """Accumulate ``n`` into counter ``name`` of the active registry."""
    get_obs().add(name, n)


def record_timer(name: str, seconds: float) -> None:
    """Record one pre-measured duration into timer ``name``."""
    get_obs().record_timer(name, seconds)


def timer(name: str):
    """Context manager timing a block into the active registry."""
    return get_obs().timer(name)


def span(name: str):
    """Context manager opening a hierarchical span on the active
    registry."""
    return get_obs().span(name)
