"""Device-vector taint analysis over one kernel function's AST.

A *device vector* is any per-thread value produced by the DSL context
(``k.thread_id()``, ``k.iadd(...)``, ``k.ld_global(...)``, …).  The
static rules need to know which expressions hold such vectors: raw
``+``/``-`` on them is untraced arithmetic (L1), while the same
operators on Python scalars (``BLOCK - 1``, ``rows - 1``) are ordinary
host-side constant math and perfectly fine.

Taint seeds from calls and attributes on the kernel's context parameter
(the first argument, ``k`` by convention) and propagates through
assignments to a fixpoint, so loop-carried variables
(``child = k.sel(...)`` inside ``k.range``) taint their earlier uses
too.  The analysis is intra-procedural and name-based — a documented
heuristic, not an escape analysis.
"""

from __future__ import annotations

import ast

#: ``BlockContext`` attributes that *are* per-thread vectors.
DEVICE_ATTRS = frozenset({"tid", "ltid", "gtid", "warp",
                          "warp_in_block", "mask"})

#: Context methods that do NOT return device vectors (loop iterators
#: are Python ints, ``shared`` returns a buffer, stores return None…).
NON_VALUE_METHODS = frozenset({
    "range", "shared", "syncthreads", "where", "inline",
    "st_global", "st_shared", "tensor_mma",
})


class Taint:
    """Tainted-variable set for one function."""

    def __init__(self, fn: ast.FunctionDef):
        args = fn.args.args
        self.ctx = args[0].arg if args else "k"
        self.tainted: set = set()
        self._fn = fn
        self._propagate()

    # -- expression classification ------------------------------------

    def is_device_call(self, node: ast.AST) -> bool:
        """``k.<method>(...)`` returning a per-thread vector."""
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == self.ctx
                and node.func.attr not in NON_VALUE_METHODS)

    def is_device_attr(self, node: ast.AST) -> bool:
        """``k.tid`` and friends."""
        return (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == self.ctx
                and node.attr in DEVICE_ATTRS)

    def expr_tainted(self, node: ast.AST) -> bool:
        """Does this expression (sub)tree carry a device vector?"""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in self.tainted:
                return True
            if self.is_device_call(sub) or self.is_device_attr(sub):
                return True
        return False

    # -- propagation ---------------------------------------------------

    def _propagate(self) -> None:
        changed = True
        while changed:
            changed = False
            for node in ast.walk(self._fn):
                value, targets = None, ()
                if isinstance(node, ast.Assign):
                    value, targets = node.value, node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    if node.value is not None:
                        value, targets = node.value, (node.target,)
                elif isinstance(node, ast.For):
                    # `for i in k.range(...)` yields Python ints (not
                    # tainted: k.range is a NON_VALUE method); iterating
                    # an actual vector taints the loop variable.
                    value, targets = node.iter, (node.target,)
                if value is None or not self.expr_tainted(value):
                    continue
                for target in targets:
                    for name in ast.walk(target):
                        if (isinstance(name, ast.Name)
                                and name.id not in self.tainted):
                            self.tainted.add(name.id)
                            changed = True
