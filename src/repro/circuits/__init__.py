"""Circuit characterisation substrate (the Synopsys-flow stand-in):
gate-level adder netlists, toggle-based energy, voltage scaling."""

from repro.circuits.characterize import (AdderEnergyModel,
                                         characterize_adders,
                                         slice_bitwidth_sweep)
from repro.circuits.netlist import Netlist
from repro.circuits.technology import SAED90, Technology

__all__ = ["AdderEnergyModel", "Netlist", "SAED90", "Technology",
           "characterize_adders", "slice_bitwidth_sweep"]
