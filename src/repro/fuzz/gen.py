"""Seeded property-based generator of valid DSL kernels.

Kernel ``i`` of a run is a pure function of ``(seed, i)`` — per-kernel
RNG streams are derived by SHA-256, exactly like the runner's
``derive_unit_seed``, so budgets can grow without reshuffling earlier
kernels and a CI failure reproduces locally from its printed seed and
index alone.

The generator models the DSL's typing and scoping rules so every
program is *valid by construction*:

* three typed value pools (int / float / predicate vectors) feed
  operand selection; every statement draws only names already defined;
* shared memory is emitted as a race-free composite (each sequence
  allocates its own buffer, stores the thread's own cell, barriers,
  then loads an arbitrary cell — cross-warp *reads* after a barrier
  never race);
* ``syncthreads`` appears only where the mask is provably full
  (top level, counted loops) or under a **launch-uniform** ``k.where``
  condition derived from the scalar parameter ``n`` — the shape the
  flow analysis proves clean and the sanitizer must accept;
* a small fraction of kernels embeds a construct the IR lowering
  refuses (comprehension, ``try``, nested ``def``, dynamic
  ``k.inline`` tag): those must *execute* fine while the static
  analysis bails with no claims.

Every kernel ends by storing to both output buffers and is guaranteed
at least one 32-bit integer adder op, so the vectorized engine's
``supported()`` screen always passes.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.fuzz.kast import (Alloc, Atom, Call, Inline, Loop, Op,
                             Program, Raw, Stmt, Where, program_ok)

#: binary integer ops and their draw weights (adder class dominant)
_INT_OPS: Tuple[Tuple[str, int], ...] = (
    ("iadd", 6), ("isub", 4), ("imin", 2), ("imax", 2), ("imul", 2),
    ("iand", 2), ("ior", 1), ("ixor", 2), ("idiv", 1), ("irem", 1),
)
_FLOAT_OPS: Tuple[Tuple[str, int], ...] = (
    ("fadd", 4), ("fsub", 3), ("fmul", 2), ("fmin", 1), ("fmax", 1),
    ("fdiv", 1), ("dadd", 1), ("dsub", 1), ("dmul", 1),
)
_UNARY_FLOAT = ("fneg", "fabs", "sqrt", "rsqrt", "rcp", "sin", "cos",
                "exp", "log")
_INT_CMPS = ("lt", "le", "gt", "ge", "eq", "ne")
_SHUFFLES = ("shfl_down", "shfl_up", "shfl_xor")

#: (kind, weight, max depth at which it may appear)
_STMT_KINDS: Tuple[Tuple[str, int, int], ...] = (
    ("int", 30, 9), ("float", 12, 9), ("unary", 6, 9), ("cmp", 4, 9),
    ("imad", 2, 9), ("ffma", 2, 9), ("sel", 2, 9), ("shift", 3, 9),
    ("load", 4, 9), ("store", 4, 9), ("shfl", 2, 9), ("reduce", 1, 9),
    ("atomic", 2, 9), ("where", 6, 1), ("loop", 4, 1), ("inline", 2, 1),
    ("shared", 3, 0), ("barrier", 1, 0), ("uniwhere", 2, 0),
    ("mma", 1, 9),
)


@dataclass(frozen=True)
class FuzzProfile:
    """Tunable envelope of the generator (kept small so a kernel runs
    in tens of milliseconds and a CI smoke budget covers hundreds)."""

    min_stmts: int = 4
    max_stmts: int = 11
    max_depth: int = 2
    block_min: int = 1
    block_max: int = 3
    p_evil: float = 0.08
    threads_choices: Tuple[int, ...] = (32, 64)
    blocks_choices: Tuple[int, ...] = (1, 2, 3)


DEFAULT_PROFILE = FuzzProfile()


@dataclass(frozen=True)
class GeneratedKernel:
    """One generated kernel plus everything needed to execute it."""

    name: str
    seed: int
    index: int
    program: Program
    source: str
    blocks: int
    threads: int
    data_seed: int

    @property
    def total_threads(self) -> int:
        return self.blocks * self.threads


def derive_stream(seed: int, index: int, tag: str = "gen") -> int:
    """A 64-bit per-kernel stream id, stable across processes."""
    digest = hashlib.sha256(
        f"st2-fuzz:{tag}:{seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class _Builder:
    """Mutable generation state for one kernel."""

    def __init__(self, rng: random.Random, profile: FuzzProfile,
                 threads: int, blocks: int) -> None:
        self.rng = rng
        self.profile = profile
        self.threads = threads
        self.blocks = blocks
        self.ints: List[str] = []
        self.floats: List[str] = []
        self.preds: List[str] = []
        # loop variables: plain Python ints, broadcast by every DSL op
        # except the shuffles (which index per-lane vectors)
        self.scalars: Set[str] = set()
        self.counter = 0

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    # -- operand selection --------------------------------------------

    def int_atom(self) -> Atom:
        rng = self.rng
        if self.ints and rng.random() < 0.62:
            return rng.choice(self.ints)
        pick = rng.random()
        if pick < 0.4:
            return rng.randrange(0, 16)
        if pick < 0.75:
            return rng.randrange(0, 1 << 16)
        return rng.randrange(0, 1 << 31)

    def float_atom(self) -> Atom:
        rng = self.rng
        if self.floats and rng.random() < 0.65:
            return rng.choice(self.floats)
        return round(rng.uniform(-4.0, 4.0), 3)

    def int_var(self) -> str:
        return self.rng.choice(self.ints)

    def int_vector(self) -> str:
        """An int variable guaranteed to be a per-lane vector."""
        pool = [v for v in self.ints if v not in self.scalars]
        return self.rng.choice(pool)

    # -- statements ---------------------------------------------------

    def statement(self, depth: int,
                  allow_barrier: bool) -> List[Stmt]:
        kinds = [(kind, weight) for kind, weight, max_d in _STMT_KINDS
                 if depth <= max_d
                 and (allow_barrier
                      or kind not in ("barrier", "shared", "uniwhere"))]
        total = sum(w for _, w in kinds)
        roll = self.rng.randrange(total)
        for kind, weight in kinds:
            roll -= weight
            if roll < 0:
                return self._emit(kind, depth, allow_barrier)
        raise AssertionError("unreachable")

    def _emit(self, kind: str, depth: int,
              allow_barrier: bool) -> List[Stmt]:
        rng = self.rng
        if kind == "int":
            method = _weighted(rng, _INT_OPS)
            dest = self.fresh("x")
            stmt = Op(dest, method, (self.int_atom(), self.int_atom()))
            self.ints.append(dest)
            return [stmt]
        if kind == "float":
            method = _weighted(rng, _FLOAT_OPS)
            dest = self.fresh("f")
            stmt = Op(dest, method,
                      (self.float_atom(), self.float_atom()))
            self.floats.append(dest)
            return [stmt]
        if kind == "unary":
            dest = self.fresh("f")
            if rng.random() < 0.25:
                stmt = Op(dest, "cvt_f32", (self.int_atom(),))
            elif rng.random() < 0.2:
                dest = self.fresh("x")
                stmt = Op(dest, "cvt_i32", (self.float_atom(),))
                self.ints.append(dest)
                return [stmt]
            else:
                stmt = Op(dest, rng.choice(_UNARY_FLOAT),
                          (self.float_atom(),))
            self.floats.append(dest)
            return [stmt]
        if kind == "cmp":
            dest = self.fresh("p")
            if self.floats and rng.random() < 0.3:
                stmt = Op(dest, rng.choice(("flt", "fgt")),
                          (self.float_atom(), self.float_atom()))
            else:
                stmt = Op(dest, rng.choice(_INT_CMPS),
                          (self.int_atom(), self.int_atom()))
            self.preds.append(dest)
            return [stmt]
        if kind == "imad":
            dest = self.fresh("x")
            stmt = Op(dest, "imad", (self.int_atom(), self.int_atom(),
                                     self.int_atom()))
            self.ints.append(dest)
            return [stmt]
        if kind == "ffma":
            dest = self.fresh("f")
            method = "dfma" if rng.random() < 0.25 else "ffma"
            stmt = Op(dest, method, (self.float_atom(),
                                     self.float_atom(),
                                     self.float_atom()))
            self.floats.append(dest)
            return [stmt]
        if kind == "sel":
            if not self.preds:
                return self._emit("cmp", depth, allow_barrier)
            dest = self.fresh("x")
            stmt = Op(dest, "sel", (rng.choice(self.preds),
                                    self.int_atom(), self.int_atom()))
            self.ints.append(dest)
            return [stmt]
        if kind == "shift":
            dest = self.fresh("x")
            stmt = Op(dest, rng.choice(("shl", "shr")),
                      (self.int_atom(), rng.randrange(0, 9)))
            self.ints.append(dest)
            return [stmt]
        if kind == "load":
            if rng.random() < 0.5:
                dest = self.fresh("x")
                stmt = Op(dest, "ld_global", ("ints", self.int_var()))
                self.ints.append(dest)
            else:
                dest = self.fresh("f")
                stmt = Op(dest, "ld_global", ("flts", self.int_var()))
                self.floats.append(dest)
            return [stmt]
        if kind == "store":
            if rng.random() < 0.5:
                return [Call("st_global", ("iout", self.int_var(),
                                           self.int_atom()))]
            return [Call("st_global", ("fout", self.int_var(),
                                       self.float_atom()))]
        if kind == "shfl":
            dest = self.fresh("x")
            stmt = Op(dest, rng.choice(_SHUFFLES),
                      (self.int_vector(), rng.randrange(1, 17)))
            self.ints.append(dest)
            return [stmt]
        if kind == "reduce":
            if self.floats and rng.random() < 0.4:
                dest = self.fresh("f")
                stmt = Op(dest, "warp_reduce_fadd",
                          (rng.choice(self.floats),))
                self.floats.append(dest)
            else:
                dest = self.fresh("x")
                stmt = Op(dest, "warp_reduce_iadd", (self.int_var(),))
                self.ints.append(dest)
            return [stmt]
        if kind == "atomic":
            dest = self.fresh("x")
            stmt = Op(dest, "atomic_add",
                      ("iout", self.int_var(), self.int_atom()))
            self.ints.append(dest)
            return [stmt]
        if kind == "mma":
            return [Call("tensor_mma", ())]
        if kind == "barrier":
            return [Call("syncthreads", ())]
        if kind == "shared":
            return self._shared_sequence()
        if kind == "uniwhere":
            return self._uniform_barrier()
        if kind == "where":
            if not self.preds:
                return self._emit("cmp", depth, allow_barrier)
            # pick the condition before generating the body: the body
            # may define new predicates, which are not in scope at the
            # `with k.where(...)` line itself
            cond = rng.choice(self.preds)
            body = self.block(depth + 1, allow_barrier=False)
            return [Where(cond, tuple(body))]
        if kind == "loop":
            var = self.fresh("i")
            trips = rng.randrange(2, 5)
            self.ints.append(var)
            self.scalars.add(var)
            body = self.block(depth + 1, allow_barrier=allow_barrier)
            # the loop variable is body-scoped: later statements must
            # not reference it (names first bound in the body stay
            # bound — the body always executes at least once)
            self.ints = [v for v in self.ints if v != var]
            self.scalars.discard(var)
            return [Loop(var, trips, tuple(body))]
        if kind == "inline":
            tag = self.fresh("s")
            body = self.block(depth + 1, allow_barrier=False)
            return [Inline(tag, tuple(body))]
        raise AssertionError(f"unknown kind {kind}")

    def _shared_sequence(self) -> List[Stmt]:
        """alloc → store own cell → barrier → load: race-free by
        construction (cross-warp reads happen after the barrier)."""
        rng = self.rng
        buf = self.fresh("sm")
        int_buf = rng.random() < 0.5
        dtype = "np.int64" if int_buf else "np.float32"
        value: Atom = self.int_atom() if int_buf else self.float_atom()
        idx = self.int_var()
        stmts: List[Stmt] = [
            Alloc(buf, self.threads, dtype),
            Call("st_shared", (buf, "t0", value)),
            Call("syncthreads", ()),
        ]
        dest = self.fresh("x" if int_buf else "f")
        stmts.append(Op(dest, "ld_shared", (buf, idx)))
        (self.ints if int_buf else self.floats).append(dest)
        return stmts

    def _uniform_barrier(self) -> List[Stmt]:
        """A barrier under a launch-uniform condition — at runtime the
        block mask is either all-true or all-false, never mixed.

        Three uniformity sources, deliberately different for the flow
        analysis: ``k.block_id`` / ``k.n_threads`` are context
        attributes it *proves* uniform (the barrier site is clean, L4
        is retracted — the classic ``if (blockIdx.x == 0)
        __syncthreads()`` pattern), while the scalar parameter ``n``
        is conservatively divergent (params of helper functions may be
        per-lane), so that variant stays lint-dirty yet must still be
        *consistent* with the sanitizer."""
        rng = self.rng
        pred = self.fresh("p")
        subject = rng.choice(("n", "k.block_id", "k.n_threads"))
        if subject == "k.block_id":
            bound = rng.randrange(1, self.blocks + 1)
        elif subject == "k.n_threads":
            bound = rng.randrange(1, 2 * self.threads + 1)
        else:
            bound = rng.randrange(1, 2 * self.threads * self.blocks + 1)
        cond = Op(pred, "lt", (subject, bound))
        dest = self.fresh("x")
        body: Tuple[Stmt, ...] = (
            Call("syncthreads", ()),
            Op(dest, "iadd", (self.int_atom(), self.int_atom())),
        )
        self.ints.append(dest)
        return [cond, Where(pred, body)]

    def _evil(self) -> List[Stmt]:
        """One construct the IR lowering refuses (sound-bail probe)."""
        rng = self.rng
        n = self.fresh("e")
        kind = rng.choice(("listcomp", "tryexcept", "nesteddef",
                           "dynscope"))
        if kind == "listcomp":
            return [Raw((f"_lc{n} = [k.iadd(t0, c) for c in (1, 2)]",),
                        uses=("t0",))]
        dest = self.fresh("x")
        self.ints.append(dest)
        if kind == "tryexcept":
            return [Raw(("try:",
                         f"    {dest} = k.iadd(t0, 3)",
                         "except ValueError:",
                         "    pass"),
                        uses=("t0",), defines=(dest,))]
        if kind == "nesteddef":
            return [Raw((f"def _h{n}():",
                         "    return k.iadd(t0, 1)",
                         f"{dest} = _h{n}()"),
                        uses=("t0",), defines=(dest,))]
        return [Raw(("with k.inline('d' + 'yn'):",
                     f"    {dest} = k.iadd(t0, 5)"),
                    uses=("t0",), defines=(dest,))]

    # -- block assembly -----------------------------------------------

    def block(self, depth: int, allow_barrier: bool) -> List[Stmt]:
        profile = self.profile
        if depth == 0:
            n = self.rng.randrange(profile.min_stmts,
                                   profile.max_stmts + 1)
        else:
            n = self.rng.randrange(profile.block_min,
                                   profile.block_max + 1)
        allow_barrier = allow_barrier and depth < profile.max_depth
        out: List[Stmt] = []
        for _ in range(n):
            out.extend(self.statement(depth, allow_barrier))
        return out


def _weighted(rng: random.Random,
              table: Sequence[Tuple[str, int]]) -> str:
    total = sum(w for _, w in table)
    roll = rng.randrange(total)
    for name, weight in table:
        roll -= weight
        if roll < 0:
            return name
    raise AssertionError("unreachable")


def generate_kernel(seed: int, index: int,
                    profile: Optional[FuzzProfile] = None
                    ) -> GeneratedKernel:
    """Kernel ``index`` of the seeded stream — a pure function of
    ``(seed, index, profile)``."""
    profile = profile or DEFAULT_PROFILE
    rng = random.Random(  # st2-lint: disable=L5 — explicitly seeded stream
        derive_stream(seed, index))
    threads = rng.choice(profile.threads_choices)
    blocks = rng.choice(profile.blocks_choices)
    builder = _Builder(rng, profile, threads, blocks)

    body: List[Stmt] = [
        Op("t0", "thread_id", ()),
        Op("g0", "global_id", ()),
        Op("x0", "iadd", ("t0", rng.randrange(1, 1 << 16))),
        Op("y0", "ld_global", ("ints", "t0")),
        Op("f0", "cvt_f32", ("g0",)),
        Op("p0", "lt", ("t0", rng.randrange(1, threads + 1))),
    ]
    builder.ints.extend(["t0", "g0", "x0", "y0"])
    builder.floats.append("f0")
    builder.preds.append("p0")

    body.extend(builder.block(0, allow_barrier=True))
    if rng.random() < profile.p_evil:
        position = rng.randrange(6, len(body) + 1)
        body[position:position] = builder._evil()
    body.append(Call("st_global", ("iout", "t0", builder.int_var())))
    body.append(Call("st_global",
                     ("fout", "t0", rng.choice(builder.floats))))

    program = Program(tuple(body))
    assert program_ok(program), "generator produced an invalid program"
    return GeneratedKernel(
        name=f"fuzz_s{seed}_i{index}",
        seed=seed, index=index, program=program,
        source=program.render(), blocks=blocks, threads=threads,
        data_seed=derive_stream(seed, index, "data") % (1 << 32))


def generate_batch(seed: int, budget: int,
                   profile: Optional[FuzzProfile] = None
                   ) -> List[GeneratedKernel]:
    """The first ``budget`` kernels of the seeded stream."""
    return [generate_kernel(seed, i, profile) for i in range(budget)]


__all__ = [
    "DEFAULT_PROFILE", "FuzzProfile", "GeneratedKernel",
    "derive_stream", "generate_batch", "generate_kernel",
]
