"""``repro.serve.app`` — the experiment service application.

One :class:`ServeApp` owns the whole server: the HTTP front
(:mod:`repro.serve.httpd`), the job state (:mod:`repro.serve.state`),
the sharded worker pool (:mod:`repro.serve.pool`), the result cache
and the observability registry.  The event loop thread is the only
thing that touches mutable state — pool results hop onto it via
``call_soon_threadsafe`` — so the application needs no locks.

Request lifecycle::

    POST /v1/jobs            submit a JobSpec        -> 202 JobStatus
                             (429 quota/backpressure, 503 draining)
    POST /v1/jobs:batch      submit several jobs atomically
                             (all admitted or none) -> 202 [JobStatus]
    GET  /v1/jobs/<id>        poll                   -> 200 JobStatus
    GET  /v1/jobs/<id>/events stream NDJSON statuses until terminal
    GET  /v1/jobs/<id>/result fetch                  -> 200 JobResult
                             (?cursor=&limit= pages the unit list)
    GET  /v1/jobs[?cursor=&limit=]  list in submission order, paged
    GET  /v1/health, /v1/stats; POST /v1/admin/drain

Scheduling: each unit first consults the result cache, then the
in-flight coalescing map, and only then costs an execution.  Units
dispatched to the pool are bounded (``shards × DISPATCH_DEPTH``
outstanding), and the dispatcher always serves the best
``(priority, submission)`` job — so a long low-priority job cannot
bury a later high-priority one behind a deep pool queue.
"""

from __future__ import annotations

import asyncio
import json
import time

from repro import obs
from repro.api import (SCHEMA_VERSION, ErrorEnvelope, JobResult,
                       JobSpec, WireError)
from repro.serve import httpd
from repro.serve.pool import ShardedPool
from repro.serve.state import (DEFAULT_CLIENT_QUOTA,
                               DEFAULT_MAX_QUEUED_UNITS, RejectError,
                               ServeState)

#: Units dispatched to the pool but not yet resolved, per shard: deep
#: enough to keep workers busy, shallow enough that priority matters.
DISPATCH_DEPTH = 8

#: How often an idle ``/events`` stream re-checks its job (safety net;
#: real wake-ups come from the change notification).
STREAM_HEARTBEAT_S = 10.0


def _error(status: int, code: str, message: str,
           retry_after_s=None) -> httpd.Response:
    headers = {}
    if retry_after_s is not None:
        headers["Retry-After"] = str(max(1, round(retry_after_s)))
    return httpd.json_response(
        ErrorEnvelope(code=code, message=message,
                      retry_after_s=retry_after_s).to_wire(),
        status=status, headers=headers)


class ServeApp:
    """The experiment service (routes + scheduler + lifecycle)."""

    def __init__(self, shards: int = 2, trace_store=None, cache=None,
                 use_cache: bool = True,
                 client_quota: int = DEFAULT_CLIENT_QUOTA,
                 max_queued_units: int = DEFAULT_MAX_QUEUED_UNITS,
                 host: str = "127.0.0.1", port: int = 0,
                 registry=None):
        from repro.runner.cache import ResultCache, code_version

        self.state = ServeState(client_quota=client_quota,
                                max_queued_units=max_queued_units)
        self.shards = shards
        self.trace_store = trace_store          # TraceStore or None
        self.cache = cache if cache is not None else ResultCache()
        self.use_cache = use_cache
        self.code_version = code_version()
        self.registry = registry if registry is not None else obs.Obs()
        self.pool = ShardedPool(
            shards,
            store_root=str(trace_store.root)
            if trace_store is not None else None,
            on_result=self._on_pool_result)
        self.server = httpd.HttpServer(self.handle, host=host,
                                       port=port)
        self._loop = None
        self._budget = shards * DISPATCH_DEPTH
        self._active = []               # running jobs with units left
        self._cursors = {}              # job_id -> next unit index
        self._waiters = []              # futures resolved on any change
        self._stopped = None            # asyncio.Event once started

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "ServeApp":
        """Start workers and the HTTP listener (port 0 picks a free
        port; ``self.server.address`` is the resolved URL)."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        await self._loop.run_in_executor(None, self.pool.start)
        await self.server.start()
        return self

    async def serve_forever(self) -> None:
        """Block until a drain (or :meth:`stop`) completes.  All
        instrumentation of the loop thread lands in ``self.registry``."""
        with obs.scoped(self.registry):
            await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new jobs, finish every live one,
        stop the pool, close the listener."""
        if self.state.draining:
            return
        self.state.draining = True
        self.registry.add("serve.drain.started")
        self._notify_change()
        while self.state.live_jobs:
            await self.wait_change(timeout=1.0)
        await self._loop.run_in_executor(None, self.pool.close)
        await self.server.close()
        self._stopped.set()

    async def stop(self) -> None:
        """Hard stop (tests): terminate workers, close the listener."""
        self.state.draining = True
        await self._loop.run_in_executor(None, self.pool.terminate)
        await self.server.close()
        self._stopped.set()

    # -- change notification -------------------------------------------

    def _notify_change(self) -> None:
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            if not fut.done():
                fut.set_result(None)

    async def wait_change(self, timeout: float = None) -> None:
        fut = self._loop.create_future()
        self._waiters.append(fut)
        try:
            await asyncio.wait_for(fut, timeout)
        except asyncio.TimeoutError:
            pass

    # -- scheduling ----------------------------------------------------

    def _pump(self) -> None:
        """Dispatch units while budget lasts.  Cache hits and
        coalesced units never consume budget, so a fully-warm job
        completes within the submitting request."""
        from repro.runner.units import unit_trace_key

        while self._budget > 0:
            job = self._next_dispatchable()
            if job is None:
                return
            index = self._cursors[job.job_id]
            self._cursors[job.job_id] += 1
            key = job.keys[index]
            if self.use_cache:
                hit = self.cache.load(key)
                if hit is not None:
                    hit.update(key=key, cached=True)
                    self.state.resolve_cached(job, index, hit)
                    self._notify_change()
                    continue
            entry, created = self.state.attach(job, index)
            if not created:
                continue
            spec = job.units[index]
            trace_key = unit_trace_key(spec, self.code_version)
            entry.trace_key = trace_key
            store_key = trace_key if self.trace_store is not None \
                else None
            self.pool.submit(key, spec, trace_key,
                             store_key=store_key,
                             engine=job.spec.engine)
            self._budget -= 1

    def _next_dispatchable(self):
        """The best ``(priority, submission)`` job with units left to
        dispatch, activating queued jobs whenever they beat (or no one
        is in) the active set."""
        while True:
            stale = [j for j in self._active
                     if self._cursors[j.job_id] >= len(j.units)]
            for job in stale:
                self._active.remove(job)
                del self._cursors[job.job_id]
            best = min(self._active,
                       key=lambda j: (j.spec.priority, j.seq)) \
                if self._active else None
            queued = self.state.peek_job()
            if queued is not None and (
                    best is None
                    or (queued.spec.priority, queued.seq)
                    < (best.spec.priority, best.seq)):
                self.state.next_job()       # pops `queued` itself
                queued.state = "running"
                queued.started_s = time.time()
                self._active.append(queued)
                self._cursors[queued.job_id] = 0
                self._notify_change()
                continue
            return best

    def _on_pool_result(self, key, ok: bool, payload) -> None:
        """Runs on the pool drainer thread: hop onto the loop."""
        self._loop.call_soon_threadsafe(self._finish_exec, key, ok,
                                        payload)

    def _finish_exec(self, key, ok: bool, payload) -> None:
        with obs.scoped(self.registry):
            if ok:
                snap = payload.pop("obs", None)
                if snap:
                    self.registry.merge(snap)
                payload.update(key=key, cached=False)
                obs.record_timer("serve.unit.wall",
                                 payload.get("wall_time_s", 0.0))
                if self.use_cache:
                    self.cache.store(key, payload)
            touched = self.state.resolve_exec(key, ok, payload)
            self._budget += 1
            if touched:
                self._notify_change()
            self._pump()

    # -- routing -------------------------------------------------------

    async def handle(self, request: httpd.Request) -> httpd.Response:
        with obs.scoped(self.registry):
            return self._route(request)

    def _route(self, request: httpd.Request) -> httpd.Response:
        method, path = request.method, request.path.rstrip("/")
        if path == "/v1/health":
            return self._health()
        if path == "/v1/stats":
            return self._stats()
        if path == "/v1/jobs" and method == "POST":
            return self._submit(request)
        if path == "/v1/jobs:batch" and method == "POST":
            return self._submit_batch(request)
        if path == "/v1/jobs" and method == "GET":
            return self._list_jobs(request)
        if path == "/v1/admin/drain" and method == "POST":
            self._loop.create_task(self.drain())
            return httpd.json_response(
                {"draining": True,
                 "jobs_live": self.state.live_jobs})
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self.state.jobs.get(job_id)
            if job is None:
                return _error(404, "not_found",
                              f"no such job: {job_id!r}")
            if not tail and method == "GET":
                return httpd.json_response(job.status().to_wire())
            if tail == "result" and method == "GET":
                return self._result(job, request)
            if tail == "events" and method == "GET":
                return httpd.Response(
                    status=200, stream=self._events(job),
                    headers={"Content-Type": "application/x-ndjson"})
        return _error(404, "not_found",
                      f"no route for {method} {request.path}")

    # -- routes --------------------------------------------------------

    def _health(self) -> httpd.Response:
        return httpd.json_response({
            "ok": True,
            "schema_version": SCHEMA_VERSION,
            "shards": self.shards,
            "draining": self.state.draining,
            "code_version": self.code_version,
            "trace_store": str(self.trace_store.root)
            if self.trace_store is not None else None,
        })

    def _stats(self) -> httpd.Response:
        snapshot = self.registry.snapshot()
        return httpd.json_response({
            "schema_version": SCHEMA_VERSION,
            "state": self.state.stats(),
            "counters": snapshot.get("counters", {}),
            "timers": snapshot.get("timers", {}),
        })

    def _submit(self, request: httpd.Request) -> httpd.Response:
        try:
            doc = request.json()
        except httpd.BadRequest as exc:
            return _error(400, "bad_request", str(exc))
        try:
            spec = JobSpec.from_wire(doc)
            units = spec.units()
        except WireError as exc:
            obs.add("serve.jobs.rejected.bad_request")
            return _error(400, "bad_request", str(exc))
        from repro.runner.cache import unit_key

        keys = [unit_key(u, self.code_version) for u in units]
        try:
            job = self.state.admit(spec, units, keys)
        except RejectError as exc:
            status = 503 if exc.code == "draining" else 429
            return _error(status, exc.code, exc.message,
                          retry_after_s=exc.retry_after_s)
        self._pump()
        self._notify_change()
        return httpd.json_response(job.status().to_wire(), status=202)

    def _submit_batch(self, request: httpd.Request) -> httpd.Response:
        """``POST /v1/jobs:batch`` — admit several jobs atomically.

        The envelope is ``{"schema_version": 1, "jobs": [JobSpec wire
        docs, ...]}``; the whole batch is validated before any
        admission, and admission itself is all-or-nothing
        (:meth:`ServeState.admit_many`), so a 429/503 means no job of
        the batch exists."""
        try:
            doc = request.json()
        except httpd.BadRequest as exc:
            return _error(400, "bad_request", str(exc))
        entries = doc.get("jobs") if isinstance(doc, dict) else None
        if not isinstance(entries, list) or not entries:
            obs.add("serve.jobs.rejected.bad_request")
            return _error(400, "bad_request",
                          "body must be {\"jobs\": [JobSpec, ...]} "
                          "with at least one job")
        version = doc.get("schema_version", SCHEMA_VERSION)
        if not isinstance(version, int) or version > SCHEMA_VERSION:
            obs.add("serve.jobs.rejected.bad_request")
            return _error(400, "bad_request",
                          f"batch: schema_version {version!r} is "
                          f"newer than this server "
                          f"(<= {SCHEMA_VERSION})")
        from repro.runner.cache import unit_key

        submissions = []
        for position, entry in enumerate(entries):
            try:
                spec = JobSpec.from_wire(entry)
                units = spec.units()
            except WireError as exc:
                obs.add("serve.jobs.rejected.bad_request")
                return _error(400, "bad_request",
                              f"batch job [{position}]: {exc}")
            keys = [unit_key(u, self.code_version) for u in units]
            submissions.append((spec, units, keys))
        try:
            jobs = self.state.admit_many(submissions)
        except RejectError as exc:
            status = 503 if exc.code == "draining" else 429
            return _error(status, exc.code, exc.message,
                          retry_after_s=exc.retry_after_s)
        self._pump()
        self._notify_change()
        return httpd.json_response(
            {"schema_version": SCHEMA_VERSION,
             "jobs": [job.status().to_wire() for job in jobs]},
            status=202)

    @staticmethod
    def _page_args(request: httpd.Request):
        """Parse ``cursor`` / ``limit`` query params; raises
        ``ValueError`` with a client-ready message."""
        cursor = request.query.get("cursor")
        limit = request.query.get("limit")
        try:
            start = int(cursor) if cursor is not None else 0
            count = int(limit) if limit is not None else None
        except ValueError:
            raise ValueError("cursor and limit must be integers")
        if start < 0 or (count is not None and count < 1):
            raise ValueError("cursor must be >= 0 and limit >= 1")
        return start, count

    def _list_jobs(self, request: httpd.Request) -> httpd.Response:
        """``GET /v1/jobs[?client=][&cursor=][&limit=]`` — jobs in
        submission (``seq``) order.  Without ``limit`` the full list
        is returned (the original route, unchanged); with it, one page
        plus ``next_cursor`` (the seq to resume from; null on the last
        page).  ``seq`` cursors stay valid across pages even while new
        jobs arrive."""
        client = request.query.get("client")
        try:
            start, count = self._page_args(request)
        except ValueError as exc:
            return _error(400, "bad_request", str(exc))
        jobs = sorted((job for job in self.state.jobs.values()
                       if client is None or job.spec.client == client),
                      key=lambda job: job.seq)
        jobs = [job for job in jobs if job.seq >= start]
        page = jobs if count is None else jobs[:count]
        next_cursor = str(page[-1].seq + 1) \
            if count is not None and len(jobs) > count else None
        return httpd.json_response(
            {"schema_version": SCHEMA_VERSION,
             "jobs": [job.status().to_wire() for job in page],
             "next_cursor": next_cursor})

    def _result(self, job, request: httpd.Request) -> httpd.Response:
        if not job.terminal:
            return _error(409, "pending",
                          f"job {job.job_id} is {job.state} "
                          f"({job.units_done}/{len(job.units)} units)",
                          retry_after_s=self.state.retry_after_s())
        if job.state == "failed":
            return _error(500, "internal",
                          job.error or "job failed")
        try:
            start, count = self._page_args(request)
        except ValueError as exc:
            return _error(400, "bad_request", str(exc))
        meta = {
            "job_id": job.job_id,
            "schema_version": SCHEMA_VERSION,
            "kernels": sorted({u.kernel for u in job.units}),
            "configs": sorted({u.config.name for u in job.units}),
            "scale": job.spec.scale,
            "seed": job.spec.seed,
            "engine": job.spec.engine,
            "client": job.spec.client,
            "code_version": self.code_version,
            "units_cached": job.units_cached,
            "units_coalesced": job.units_coalesced,
        }
        units = job.results if count is None \
            else job.results[start:start + count]
        result = JobResult(job_id=job.job_id,
                           units=tuple(units), meta=meta)
        doc = result.to_wire()
        if count is not None:
            # Unit-index pagination rider; readers of the full-result
            # route never see it, and JobResult.from_wire ignores it.
            doc["next_cursor"] = str(start + count) \
                if start + count < len(job.results) else None
            doc["units_total"] = len(job.results)
        return httpd.json_response(doc)

    async def _events(self, job):
        """NDJSON stream of JobStatus snapshots: one line per change,
        closing after the terminal line."""
        last = None
        while True:
            doc = job.status().to_wire()
            if doc != last:
                last = doc
                yield (json.dumps(doc, sort_keys=True) + "\n").encode()
            if job.terminal:
                return
            await self.wait_change(timeout=STREAM_HEARTBEAT_S)


async def run_app(app: ServeApp, announce=None,
                  install_signals: bool = True) -> None:
    """Start ``app`` and serve until drained.  With
    ``install_signals``, SIGTERM and SIGINT trigger a graceful drain
    — in-flight jobs finish, then the process exits cleanly."""
    import signal

    await app.start()
    if announce is not None:
        announce(app)
    if install_signals:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: loop.create_task(app.drain()))
            except NotImplementedError:     # non-unix platforms
                break
    await app.serve_forever()


__all__ = ["ServeApp", "run_app", "DISPATCH_DEPTH",
           "STREAM_HEARTBEAT_S"]
