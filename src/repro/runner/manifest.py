"""JSONL run manifests: the machine-readable record of one invocation.

Line 1 is a ``{"type": "run", ...}`` header (work-list shape, worker
count, code version, totals); every following line is a
``{"type": "unit", ...}`` record holding one unit's full result dict —
per-unit wall time, trace size, misprediction and energy summaries —
plus its cache key and whether this run served it from disk.
"""

from __future__ import annotations

import json
from pathlib import Path

MANIFEST_VERSION = 1


class ManifestWriter:
    """Incremental manifest writer: header first, then one flushed
    unit line per :meth:`add`.

    Built for long-running, killable invocations (``st2-sweep``): a
    process killed mid-write loses at most its final partial line,
    which :func:`read_manifest_tolerant` skips on the next start — so
    every fully-written unit survives and is never re-executed.
    """

    def __init__(self, path, meta: dict = None, n_units: int = 0):
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {"type": "run", "manifest_version": MANIFEST_VERSION,
                  "n_units": n_units}
        header.update(meta or {})
        self._fh = open(self.path, "w")
        self._fh.write(json.dumps(header) + "\n")
        self._fh.flush()
        self.n_written = 0

    def add(self, result) -> None:
        """Append one unit result (dict or RunResult), flushed."""
        if hasattr(result, "to_dict"):
            result = result.to_dict()
        self._fh.write(json.dumps({"type": "unit", **result}) + "\n")
        self._fh.flush()
        self.n_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ManifestWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_manifest(path, results, meta: dict = None) -> Path:
    """Write a runner invocation's results as JSONL.

    ``results`` are raw unit dicts or typed
    :class:`~repro.st2.results.RunResult`\\ s — either way the line
    holds the flat JSON payload.
    """
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    header = {"type": "run", "manifest_version": MANIFEST_VERSION,
              "n_units": len(results)}
    header.update(meta or {})
    with open(path, "w") as fh:
        fh.write(json.dumps(header) + "\n")
        for result in results:
            if hasattr(result, "to_dict"):
                result = result.to_dict()
            fh.write(json.dumps({"type": "unit", **result}) + "\n")
    return path


def read_manifest(path) -> tuple:
    """Read back ``(header, [unit result dicts])``."""
    header = None
    units = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type", None)
            if kind == "run":
                header = record
            elif kind == "unit":
                units.append(record)
            else:
                raise ValueError(
                    f"unknown manifest record type {kind!r} in {path}")
    if header is None:
        raise ValueError(f"manifest {path} has no run header")
    if header.get("manifest_version") != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported manifest version "
            f"{header.get('manifest_version')!r} in {path}")
    return header, units


def read_manifest_tolerant(path) -> tuple:
    """Read back ``(header, [unit dicts], n_bad_lines)`` from a
    manifest that may have been truncated by a kill mid-write.

    Unparseable or unknown-type lines are skipped and counted instead
    of raised; ``header`` is ``None`` when no valid run header (of a
    supported version) survives — the caller decides whether that
    means "start fresh" or "refuse".
    """
    header = None
    units = []
    bad = 0
    try:
        fh = open(path)
    except OSError:
        return None, [], 0
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                bad += 1
                continue
            if not isinstance(record, dict):
                bad += 1
                continue
            kind = record.pop("type", None)
            if kind == "run" and header is None:
                if record.get("manifest_version") == MANIFEST_VERSION:
                    header = record
                else:
                    bad += 1
            elif kind == "unit":
                units.append(record)
            else:
                bad += 1
    return header, units, bad
