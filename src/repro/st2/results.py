"""Typed results for end-to-end runner units.

:class:`RunResult` replaces the ad-hoc flat dict that
``repro.runner.units.execute_unit`` (and the whole runner pipeline on
top of it) used to hand around.  It is a *view*: the JSON-native dict
is kept verbatim underneath (``.to_dict()`` returns it unchanged, so
disk caching and manifests are byte-identical to the dict era) while
callers get typed attribute access::

    result.kernel                 # "sgemm"
    result.metrics.slowdown       # 0.0036
    result.energy_stacks["st2"]   # {...}

Dict-style access (``result["kernel"]``, ``result.get(...)``,
iteration) is gone: the deprecation shim has been removed, and those
operations now raise ``TypeError`` / ``AttributeError`` like any
non-mapping object.  Port call sites to the typed attributes, or go
through ``.to_dict()`` when you genuinely need the raw payload.

This module is deliberately light (stdlib only): the runner imports it
on the cache-hit path, where dragging in the power/circuit stack would
be pure waste.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RunMetrics:
    """The per-unit experiment numbers (the paper's reported metrics)."""

    misprediction_rate: float = float("nan")
    recomputed_per_misprediction: float = float("nan")
    slowdown: float = float("nan")
    baseline_cycles: int = 0
    st2_cycles: int = 0
    system_saving: float = float("nan")
    chip_saving: float = float("nan")
    alu_fpu_share: float = float("nan")
    arithmetic_intensive: bool = False

    @classmethod
    def from_dict(cls, data: dict) -> "RunMetrics":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class RunResult:
    """Typed view over one work unit's flat result dict.

    ``data`` is the raw JSON-native payload — the exact object the
    result cache stores and the manifest writes.  Every attribute reads
    through to it, so a RunResult never drifts from its serialised
    form.
    """

    data: dict = field(repr=False)

    def __post_init__(self):
        if hasattr(self.data, "to_dict"):       # idempotent wrapping
            self.data = self.data.to_dict()

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        """The raw result dict (the cached / manifested payload)."""
        return self.data

    # -- identity ------------------------------------------------------

    @property
    def kernel(self) -> str:
        return self.data["kernel"]

    @property
    def scale(self) -> float:
        return self.data["scale"]

    @property
    def seed(self) -> int:
        return self.data["seed"]

    @property
    def config(self) -> str:
        """Name of the SpeculationConfig this unit evaluated."""
        return self.data["config"]

    @property
    def config_fields(self) -> dict:
        return self.data["config_fields"]

    @property
    def label(self) -> str:
        return f"{self.kernel}[{self.config}]"

    # -- runtime provenance --------------------------------------------

    @property
    def wall_time_s(self) -> float:
        return self.data["wall_time_s"]

    @property
    def capture_time_s(self) -> float:
        return self.data["capture_time_s"]

    @property
    def eval_time_s(self) -> float:
        return self.data["eval_time_s"]

    @property
    def trace_cache_hit(self) -> bool:
        return self.data["trace_cache_hit"]

    @property
    def cached(self) -> bool:
        """Served from the result cache by *this* invocation."""
        return bool(self.data.get("cached", False))

    @property
    def key(self) -> str:
        """Result-cache key (set by the runner, absent on bare
        ``execute_unit`` calls)."""
        return self.data.get("key", "")

    # -- trace shape ---------------------------------------------------

    @property
    def trace_rows(self) -> int:
        return self.data["trace_rows"]

    @property
    def trace_bytes(self) -> int:
        return self.data["trace_bytes"]

    @property
    def n_static_pcs(self) -> int:
        return self.data["n_static_pcs"]

    # -- the experiment numbers ----------------------------------------

    @property
    def metrics(self) -> RunMetrics:
        return RunMetrics.from_dict(self.data["metrics"])

    @property
    def energy_stacks(self) -> dict:
        """``{"baseline": {...}, "st2": {...}}`` normalised stacks."""
        return self.data["energy_stacks"]

    @property
    def aux(self) -> dict:
        """Auxiliary measurements (VaLHALLA point, Fig. 3 correlation);
        empty when the unit ran with ``aux=False``."""
        return self.data.get("aux", {})

    # convenience pass-throughs for the headline numbers
    @property
    def misprediction_rate(self) -> float:
        return self.data["metrics"]["misprediction_rate"]

    @property
    def slowdown(self) -> float:
        return self.data["metrics"]["slowdown"]

    @property
    def system_saving(self) -> float:
        return self.data["metrics"]["system_saving"]

    @property
    def chip_saving(self) -> float:
        return self.data["metrics"]["chip_saving"]

    @property
    def baseline_cycles(self) -> int:
        return self.data["metrics"]["baseline_cycles"]

    @property
    def st2_cycles(self) -> int:
        return self.data["metrics"]["st2_cycles"]

    @property
    def alu_fpu_share(self) -> float:
        return self.data["metrics"]["alu_fpu_share"]

    @property
    def arithmetic_intensive(self) -> bool:
        return self.data["metrics"]["arithmetic_intensive"]

def as_run_result(result) -> RunResult:
    """Wrap a raw result dict (idempotent on RunResult)."""
    return result if isinstance(result, RunResult) else RunResult(result)
