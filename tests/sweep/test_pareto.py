"""Pareto-frontier properties: strict-partial-order laws of
``dominates``, arrival-order invariance of the frontier, and the
prune-soundness invariant on synthetic objective spaces."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sweep.pareto import (OBJECTIVES, ParetoError, ParetoFrontier,
                                ParetoPoint, dominates, frontiers_equal)

finite = st.floats(min_value=-4.0, max_value=4.0, allow_nan=False,
                   allow_infinity=False)


@st.composite
def vectors(draw):
    return {name: draw(finite) for name in OBJECTIVES}


def point(key, objectives):
    return ParetoPoint(key=key, objectives=objectives, members=(key,))


@st.composite
def spaces(draw, max_points=24):
    """A random objective space — coarse grid values so ties and
    dominance chains actually occur."""
    grid = st.sampled_from([0.0, 0.1, 0.2, 0.3, 0.5, 1.0])
    n = draw(st.integers(1, max_points))
    return [point(f"p{i}", {name: draw(grid) for name in OBJECTIVES})
            for i in range(n)]


class TestDominanceOrder:
    @given(vectors())
    def test_irreflexive(self, a):
        assert not dominates(a, a)

    @given(vectors(), vectors())
    def test_asymmetric(self, a, b):
        assert not (dominates(a, b) and dominates(b, a))

    @given(vectors(), vectors(), vectors())
    def test_transitive(self, a, b, c):
        if dominates(a, b) and dominates(b, c):
            assert dominates(a, c)

    @given(vectors())
    def test_nan_never_dominates(self, b):
        a = dict(b)
        a["energy_saved"] = float("nan")
        assert not dominates(a, b)

    def test_senses(self):
        better = {"energy_saved": 0.2, "misprediction_rate": 0.1,
                  "perf_overhead": 0.01}
        worse = {"energy_saved": 0.1, "misprediction_rate": 0.2,
                 "perf_overhead": 0.02}
        assert dominates(better, worse)
        assert not dominates(worse, better)

    def test_missing_objective_rejected(self):
        with pytest.raises(ParetoError):
            dominates({"energy_saved": 1.0}, {"energy_saved": 0.0})


class TestFrontier:
    @given(spaces(), st.integers(0, 2**31))
    @settings(max_examples=60)
    def test_arrival_order_invariance(self, points, seed):
        shuffled = list(points)
        random.Random(seed).shuffle(shuffled)
        a, b = ParetoFrontier(), ParetoFrontier()
        for p in points:
            a.add(p)
        for p in shuffled:
            b.add(p)
        assert frontiers_equal(list(a.points()), list(b.points()))

    @given(spaces())
    @settings(max_examples=60)
    def test_frontier_is_nondominated_subset(self, points):
        frontier = ParetoFrontier()
        for p in points:
            frontier.add(p)
        surviving = frontier.points()
        keys = {p.key for p in surviving}
        for p in points:
            undominated = not any(
                dominates(q.objectives, p.objectives) for q in points)
            # every undominated point survives; ties never evict
            if undominated:
                assert p.key in keys
        for p in surviving:
            assert not any(dominates(q.objectives, p.objectives)
                           for q in points)

    @given(spaces(), st.integers(0, 2**31))
    @settings(max_examples=60)
    def test_prune_invariant_on_random_spaces(self, points, seed):
        """The engine's prune rule on a synthetic space: skipping any
        candidate whose *optimistic bound* (better-or-equal in every
        objective than its true completion) is dominated by the
        current frontier never changes the surviving frontier."""
        rng = random.Random(seed)
        exhaustive = ParetoFrontier()
        for p in points:
            exhaustive.add(p)
        pruned = ParetoFrontier()
        for p in points:
            bound = {
                "energy_saved":
                    p.objectives["energy_saved"] + rng.random(),
                "misprediction_rate": max(
                    0.0, p.objectives["misprediction_rate"]
                    - rng.random()),
                "perf_overhead": max(
                    0.0, p.objectives["perf_overhead"] - rng.random()),
            }
            if pruned.dominated_by(bound) is not None:
                continue            # provably cannot join the frontier
            pruned.add(p)
        assert frontiers_equal(list(exhaustive.points()),
                               list(pruned.points()))

    def test_duplicate_key_rejected(self):
        frontier = ParetoFrontier()
        p = point("x", {"energy_saved": 0.1, "misprediction_rate": 0.1,
                        "perf_overhead": 0.1})
        frontier.add(p)
        with pytest.raises(ParetoError):
            frontier.add(p)

    def test_contains_and_len(self):
        frontier = ParetoFrontier()
        frontier.add(point("x", {"energy_saved": 0.1,
                                 "misprediction_rate": 0.1,
                                 "perf_overhead": 0.1}))
        assert "x" in frontier and len(frontier) == 1


class TestFrontiersEqual:
    def test_accepts_points_and_wire_docs(self):
        p = point("x", {"energy_saved": 0.1, "misprediction_rate": 0.2,
                        "perf_overhead": 0.3})
        assert frontiers_equal([p], [p.to_wire()])

    def test_nan_compares_equal(self):
        p = point("x", {"energy_saved": float("nan"),
                        "misprediction_rate": 0.2,
                        "perf_overhead": 0.3})
        assert frontiers_equal([p], [p.to_wire()])

    def test_member_sets_matter(self):
        objectives = {"energy_saved": 0.1, "misprediction_rate": 0.2,
                      "perf_overhead": 0.3}
        a = ParetoPoint(key="x", objectives=objectives, members=("x",))
        b = ParetoPoint(key="x", objectives=objectives,
                        members=("x", "y"))
        assert not frontiers_equal([a], [b])
