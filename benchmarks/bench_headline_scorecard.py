"""The reproduction scorecard: every headline claim, one table.

Pulls each published number from the structured registry
(:mod:`repro.st2.paper_numbers`), measures its counterpart, and grades
the match:

* ``exact``  — deterministic arithmetic that must match to the digit;
* ``band``   — matched within the documented tolerance;
* ``shape``  — the ordering/direction holds, magnitude differs (with
  the delta recorded in EXPERIMENTS.md).

The per-kernel inputs come from the parallel cached runner
(:mod:`repro.runner`, the ``runner_results`` fixture) rather than an
in-process suite sweep; a one-kernel serial re-execution cross-checks
that the pooled numbers are identical to in-process ones.

This is the machine-checked version of EXPERIMENTS.md.
"""

import numpy as np

from _bench_utils import save_artifact
from repro.analysis.ascii_charts import table
from repro.circuits.characterize import (best_slice_width,
                                         slice_bitwidth_sweep)
from repro.st2.overheads import overhead_report
from repro.st2.paper_numbers import value

CORR_KEYS = {
    "corr_prev_gtid": "Prev+Gtid",
    "corr_prev_fullpc_gtid": "Prev+FullPC+Gtid",
    "corr_prev_fullpc_ltid": "Prev+FullPC+Ltid",
}


def _measure(runner_results, adder_model):
    m = {}
    mets = [r.metrics for r in runner_results.values()]
    aux = [r.aux for r in runner_results.values()]
    # misprediction + savings + performance
    m["miss_st2"] = float(np.mean(
        [x.misprediction_rate for x in mets]))
    m["recompute_per_miss_avg"] = float(np.mean(
        [x.recomputed_per_misprediction for x in mets
         if x.misprediction_rate > 0]))
    m["avg_slowdown"] = float(np.mean([x.slowdown for x in mets]))
    m["worst_slowdown"] = max(x.slowdown for x in mets)
    m["system_energy_saving"] = float(np.mean(
        [x.system_saving for x in mets]))
    m["chip_energy_saving"] = float(np.mean(
        [x.chip_saving for x in mets]))
    m["alu_fpu_system_share"] = float(np.mean(
        [x.alu_fpu_share for x in mets]))
    # VaLHALLA comparison
    m["miss_valhalla"] = float(np.mean(
        [a["valhalla_misprediction_rate"] for a in aux]))
    m["st2_vs_valhalla_reduction"] = 1 - m["miss_st2"] \
        / m["miss_valhalla"]
    # correlation
    for out_key, rate_key in CORR_KEYS.items():
        m[out_key] = float(np.nanmean(
            [a["correlation"][rate_key] for a in aux]))
    # circuits
    points = slice_bitwidth_sweep()
    p8 = next(p for p in points if p.slice_width == 8)
    m["slice_width"] = best_slice_width(points)
    m["slice_vdd_fraction"] = p8.vdd_fraction
    m["adder_power_saving"] = adder_model.saving(
        m["miss_st2"], m["recompute_per_miss_avg"])
    # overheads (deterministic)
    rep = overhead_report()
    m["crf_bytes_per_sm"] = rep.crf_bytes_per_sm
    m["total_storage_kb"] = round(rep.total_storage_bytes / 1024)
    m["dff_bits_alu_adder"] = 14
    return m


GRADING = (
    # key, grade, tolerance (relative unless 'abs')
    ("crf_bytes_per_sm", "exact", 0),
    ("total_storage_kb", "exact", 0),
    ("dff_bits_alu_adder", "exact", 0),
    ("slice_width", "exact", 0),
    ("slice_vdd_fraction", "band", 0.15),
    ("adder_power_saving", "band", 0.10),
    ("corr_prev_fullpc_gtid", "band", 0.10),
    ("corr_prev_fullpc_ltid", "band", 0.10),
    ("avg_slowdown", "band-abs", 0.005),
    ("worst_slowdown", "band-abs", 0.02),
    ("recompute_per_miss_avg", "band", 0.25),
    ("miss_st2", "shape", 0.60),
    ("miss_valhalla", "shape", 0.40),
    ("st2_vs_valhalla_reduction", "shape", 0.30),
    ("alu_fpu_system_share", "band", 0.15),
    ("system_energy_saving", "shape", 0.45),
    ("chip_energy_saving", "shape", 0.35),
    ("corr_prev_gtid", "shape", 0.80),
)


def test_headline_scorecard(benchmark, runner_results, adder_model,
                            bench_scale, artifact_dir):
    measured = benchmark.pedantic(
        _measure, args=(runner_results, adder_model),
        rounds=1, iterations=1)

    # parallel == serial: the pooled/cached unit for one kernel must be
    # numerically identical to a fresh in-process serial execution
    from repro.runner import build_units, execute_unit
    from repro.runner.units import results_equal
    probe = build_units(["qrng_K2"], scale=bench_scale, seed=0)[0]
    assert results_equal(execute_unit(probe),
                         runner_results["qrng_K2"]), \
        "runner result diverged from serial in-process evaluation"

    rows = []
    failures = []
    for key, grade, tol in GRADING:
        paper = value(key)
        got = measured[key]
        if grade == "exact":
            ok = got == paper
        elif grade == "band-abs":
            ok = abs(got - paper) <= tol
        else:   # relative band / shape
            ok = abs(got - paper) <= tol * abs(paper)
        rows.append((key, paper, f"{got:.4g}", grade,
                     "PASS" if ok else "FAIL"))
        if not ok:
            failures.append(key)

    txt = table("reproduction scorecard (machine-checked EXPERIMENTS.md)",
                ["claim", "paper", "measured", "grade", "status"], rows)
    txt += (f"\n\n{len(rows) - len(failures)}/{len(rows)} claims within"
            " their documented tolerance bands")
    save_artifact(artifact_dir, "headline_scorecard.txt", txt)

    assert not failures, f"claims out of tolerance: {failures}"
