"""Hierarchical counters, timers and spans — the observability core.

One :class:`Obs` registry accumulates three kinds of instruments:

* **counters** — monotonically accumulated numbers (``add``), named with
  dotted component paths (``sim.functional.trace_rows``);
* **timers** — wall-time accumulators (``timer`` context manager or
  ``record_timer``) carrying count / total / max seconds;
* **spans** — timers whose recorded name is the ``/``-joined path of
  every span active on the current thread (``runner.stage.eval`` inside
  no other span; ``runner.unit/st2.evaluate`` when nested), so one
  instrument call site produces a hierarchy in the dump.

Accumulation is thread-safe (one lock per registry).  Process-safe
accumulation is by construction, not by sharing: every worker process
accumulates into its own registry and ships a :meth:`snapshot` dict
back with its result; the parent :meth:`merge`\\ s the snapshots.  The
snapshot is JSON-native and is exactly what ``metrics.json`` stores.

The registry never touches the results it observes — it is excluded
from the result cache's code-version digest
(``repro.runner.cache.NON_RESULT_PACKAGES``).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

#: separator used to join nested span names into one hierarchical path
SPAN_SEP = "/"

#: the fields a timer snapshot carries (``mean_s`` is derived)
TIMER_FIELDS = ("count", "total_s", "max_s", "mean_s")


@dataclass
class TimerStat:
    """Accumulated wall-time of one named timer or span."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {"count": self.count, "total_s": self.total_s,
                "max_s": self.max_s, "mean_s": self.mean_s}

    def merge_dict(self, d: dict) -> None:
        self.count += int(d.get("count", 0))
        self.total_s += float(d.get("total_s", 0.0))
        self.max_s = max(self.max_s, float(d.get("max_s", 0.0)))


class Obs:
    """One observability registry: counters + timers + span stack.

    All mutation goes through one lock, so any number of threads may
    instrument concurrently.  The span stack is thread-local: spans
    opened on one thread never prefix another thread's spans.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._timers: dict = {}
        self._local = threading.local()

    # -- counters ------------------------------------------------------

    def add(self, name: str, n=1) -> None:
        """Accumulate ``n`` into the counter ``name``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counter(self, name: str):
        """Current value of a counter (0 if never written)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- timers --------------------------------------------------------

    def record_timer(self, name: str, seconds: float) -> None:
        """Accumulate one observation of ``seconds`` into timer ``name``."""
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.observe(seconds)

    @contextmanager
    def timer(self, name: str):
        """Time the enclosed block into timer ``name`` (flat name — use
        :meth:`span` for hierarchical attribution)."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.record_timer(name, time.perf_counter() - t0)

    # -- spans ---------------------------------------------------------

    def _span_stack(self) -> list:
        stack = getattr(self._local, "spans", None)
        if stack is None:
            stack = self._local.spans = []
        return stack

    def span_path(self, name: str = None) -> str:
        """The hierarchical path of the active spans on this thread,
        optionally extended with ``name``."""
        parts = list(self._span_stack())
        if name is not None:
            parts.append(name)
        return SPAN_SEP.join(parts)

    @contextmanager
    def span(self, name: str):
        """Time the enclosed block under the hierarchical span path.

        The recorded timer name is the ``/``-joined path of every span
        active on this thread, so nested spans produce a tree in the
        snapshot (``runner.stage.eval``, ``runner.unit/st2.evaluate``).
        """
        stack = self._span_stack()
        stack.append(name)
        path = SPAN_SEP.join(stack)
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.record_timer(path, time.perf_counter() - t0)
            stack.pop()

    # -- snapshot / merge ---------------------------------------------

    def snapshot(self) -> dict:
        """JSON-native dump: ``{"counters": {...}, "timers": {...}}``."""
        with self._lock:
            return {
                "counters": {k: self._counters[k]
                             for k in sorted(self._counters)},
                "timers": {k: self._timers[k].as_dict()
                           for k in sorted(self._timers)},
            }

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in."""
        if not snap:
            return
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, stat_dict in snap.get("timers", {}).items():
                stat = self._timers.get(name)
                if stat is None:
                    stat = self._timers[name] = TimerStat()
                stat.merge_dict(stat_dict)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._timers)
