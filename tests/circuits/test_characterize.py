"""Characterisation flow: voltage search, bitwidth sweep, energy model."""

import pytest

from repro.circuits.characterize import (best_slice_width,
                                         characterize_adders,
                                         min_slice_voltage,
                                         nominal_period_ps,
                                         slice_bitwidth_sweep)
from repro.circuits.technology import SAED90


class TestVoltageSearch:
    def test_slice_voltage_below_nominal(self):
        vdd = min_slice_voltage(8)
        assert SAED90.min_vdd <= vdd < SAED90.vdd_nominal

    def test_wider_slices_need_more_voltage(self):
        assert min_slice_voltage(32) >= min_slice_voltage(8) \
            >= min_slice_voltage(4)

    def test_scaled_slice_meets_period(self):
        from repro.circuits.adders_rtl import sliced_adder
        vdd = min_slice_voltage(8)
        period = nominal_period_ps()
        assert sliced_adder(64, 8).critical_path_ps(SAED90, vdd) \
            <= period + 1e-6


class TestBitwidthSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return slice_bitwidth_sweep(n_vectors=400)

    def test_eight_bit_is_optimal(self, points):
        """The paper's Section V-B conclusion."""
        assert best_slice_width(points) == 8

    def test_potential_savings_band(self, points):
        """8-bit slices give roughly the paper's 75-87 % potential."""
        p8 = next(p for p in points if p.slice_width == 8)
        assert 0.65 <= p8.potential_saving <= 0.90

    def test_voltage_fraction_near_60_percent(self, points):
        p8 = next(p for p in points if p.slice_width == 8)
        assert 0.5 <= p8.vdd_fraction <= 0.7

    def test_potential_monotone_in_slice_width(self, points):
        """Smaller slices always have more datapath headroom."""
        savings = [p.potential_saving for p in points]
        assert savings == sorted(savings, reverse=True)


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def model(self):
        return characterize_adders(n_vectors=500)

    def test_headline_saving_near_70_percent(self, model):
        """Paper: ST2 saves ~70 % of nominal adder power."""
        assert 0.6 <= model.saving(0.09, 1.94) <= 0.8

    def test_saving_degrades_with_mispredictions(self, model):
        assert model.saving(0.0, 0.0) > model.saving(0.5, 4.0)

    def test_net_saving_below_headline(self, model):
        assert model.saving_with_overheads(0.09, 1.94) \
            < model.saving(0.09, 1.94)

    def test_st2_cheaper_than_csla(self, model):
        """ST2 computes suspect slices only; CSLA computes both cases
        for every slice every time."""
        assert model.st2_energy_fj(0.09, 1.94) < model.csla_energy_fj()

    def test_csla_cheaper_than_reference(self, model):
        assert model.csla_energy_fj() < model.reference_fj

    def test_energy_components_positive(self, model):
        assert model.st2_cycle_fj > 0
        assert model.crf_fj > 0
        assert model.dff_fj > 0
        assert model.slice_recompute_fj == pytest.approx(
            model.st2_cycle_fj / model.n_slices)
