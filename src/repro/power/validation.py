"""Power-model validation on the 23-kernel suite (paper Section V-C).

The model is trained on the micro-benchmark stressors only, so the
kernel suite is a proper validation set.  The paper reports a mean
absolute relative error of 10.5 % +/- 3.8 % (95 % CI) and a Pearson r
of 0.8; this module computes the same statistics against the synthetic
silicon.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power.hardware import SyntheticSilicon
from repro.power.model import GPUPowerModel


@dataclass
class ValidationResult:
    kernel_names: list
    measured_w: np.ndarray
    predicted_w: np.ndarray

    @property
    def relative_errors(self) -> np.ndarray:
        return np.abs(self.predicted_w - self.measured_w) \
            / self.measured_w

    @property
    def mape(self) -> float:
        """Mean absolute relative error."""
        return float(self.relative_errors.mean())

    @property
    def mape_ci95(self) -> float:
        """Half-width of the 95 % confidence interval on the MAPE."""
        err = self.relative_errors
        if len(err) < 2:
            return 0.0
        return float(1.96 * err.std(ddof=1) / np.sqrt(len(err)))

    @property
    def pearson_r(self) -> float:
        if len(self.measured_w) < 2:
            return 0.0
        return float(np.corrcoef(self.measured_w,
                                 self.predicted_w)[0, 1])

    def summary(self) -> str:
        return (f"MAPE {self.mape:.1%} +/- {self.mape_ci95:.1%} "
                f"(95% CI), Pearson r {self.pearson_r:.2f} over "
                f"{len(self.kernel_names)} kernels")


def validate(model: GPUPowerModel, activities: dict,
             silicon: SyntheticSilicon = None) -> ValidationResult:
    """Compare model predictions with silicon over a kernel set.

    ``activities`` maps kernel name -> :class:`ActivityVector`.
    """
    silicon = silicon or SyntheticSilicon()
    names = list(activities)
    measured = np.array([silicon.measure_w(activities[n]) for n in names])
    predicted = np.array([model.total_power_w(activities[n])
                          for n in names])
    return ValidationResult(kernel_names=names, measured_w=measured,
                            predicted_w=predicted)
