"""IR-lowering corner cases: ``while`` loops, ``k.inline`` nesting,
early ``return`` inside branches, augmented assigns.

Each shape has a fixture kernel under ``tests/lint/ir/``; the tests
lower it, run the abstract interpreter, and check the structural
properties the facts/rules layers rely on.
"""

import ast
from pathlib import Path

from repro.lint.absint import analyze_source
from repro.lint.facts import module_facts_from_source, site_label
from repro.lint.ir import lower_function

FIXTURES = Path(__file__).parent / "ir"


def load(name):
    src = (FIXTURES / name).read_text()
    return src, ast.parse(src, filename=name)


def lower(tree, fn_name):
    fn = next(n for n in tree.body
              if isinstance(n, ast.FunctionDef) and n.name == fn_name)
    return lower_function(fn, "<fixture>")


class TestWhileLoop:
    def test_lowers_to_branch_loop(self):
        _, tree = load("fx_while.py")
        ir = lower(tree, "while_kernel")
        # the header must be a two-way branch whose taken edge reaches
        # a block that jumps back to it (a loop in the CFG)
        headers = [b for b in ir.blocks if b.terminator == "branch"]
        assert headers, "while header missing"
        preds = ir.preds()
        assert any(len(preds[h.id]) >= 2 for h in headers), \
            "no back edge into the while header"

    def test_analysis_terminates_and_bounds_operands(self):
        src, _ = load("fx_while.py")
        summaries = analyze_source(src, "fx_while.py")
        s = summaries["while_kernel"]
        assert not s.bailed
        (site,) = s.adder_sites
        assert site.kind == "iadd"
        # acc starts at 0 and only grows; the constant addend is exact
        assert site.op_a.interval.lo == 0
        assert site.op_b.interval.lo == site.op_b.interval.hi == 2

    def test_facts_exported(self):
        src, _ = load("fx_while.py")
        facts = module_facts_from_source(src, "fx_while.py")
        # acc widens to [0, +inf) -- no 32-bit proof, so no fact; the
        # analysis must stay sound rather than guess
        assert facts == {}


class TestInlineNesting:
    def test_scopes_compose_lexically(self):
        src, _ = load("fx_inline_nested.py")
        s = analyze_source(src, "fx_inline_nested.py")["inline_kernel"]
        assert not s.bailed
        by_line = {site.lineno: site for site in s.adder_sites}
        assert by_line[14].scopes == ("outer", "inner")
        assert by_line[16].scopes == (None,)
        assert by_line[17].scopes == ()

    def test_dynamic_scope_has_no_label(self):
        src, _ = load("fx_inline_nested.py")
        s = analyze_source(src, "fx_inline_nested.py")["inline_kernel"]
        by_line = {site.lineno: site for site in s.adder_sites}
        assert site_label("inline_kernel", by_line[14]) == \
            "inline_kernel:14#outer/inner"
        assert site_label("inline_kernel", by_line[16]) is None
        assert site_label("inline_kernel", by_line[17]) == \
            "inline_kernel:17"


class TestEarlyReturn:
    def test_return_seals_block(self):
        _, tree = load("fx_early_return.py")
        ir = lower(tree, "early_return_kernel")
        rets = [b for b in ir.blocks if b.terminator == "ret"]
        # the early return and the function tail both end in ret
        assert len(rets) >= 2

    def test_fallthrough_stays_reachable(self):
        src, _ = load("fx_early_return.py")
        summaries = analyze_source(src, "fx_early_return.py")
        s = summaries["early_return_kernel"]
        assert not s.bailed
        (barrier,) = s.barrier_sites
        assert barrier.reachable
        assert barrier.n_conds == 0          # where-depth 0 -> clean
        (site,) = s.adder_sites
        assert site.visits >= 1

    def test_code_after_unconditional_return_is_dead(self):
        src, _ = load("fx_early_return.py")
        summaries = analyze_source(src, "fx_early_return.py")
        s = summaries["dead_barrier_kernel"]
        assert not s.bailed
        (barrier,) = s.barrier_sites
        assert barrier.n_conds == 1
        assert not barrier.reachable
        assert barrier.clean


class TestAugAssign:
    def test_lowers_like_plain_assign(self):
        _, tree = load("fx_augassign.py")
        ir = lower(tree, "augassign_kernel")
        stores = [i for b in ir.blocks for i in b.instrs
                  if i.op == "store" and i.name == "acc"]
        # init + augassign + iadd result
        assert len(stores) == 3

    def test_loop_inc_uses_generator_interval(self):
        src, _ = load("fx_augassign.py")
        s = analyze_source(src, "fx_augassign.py")["augassign_kernel"]
        assert not s.bailed
        incs = [x for x in s.adder_sites if x.kind == "loop-inc"]
        (inc,) = incs
        # k.range(4): the latch adds step 1 to the generator's own i
        # in [0, 3] -- the body's `i = i * 10` must not leak in
        assert inc.op_a.interval.lo == 0
        assert inc.op_a.interval.hi == 3
        assert inc.op_b.interval.lo == inc.op_b.interval.hi == 1

    def test_loop_inc_fact_proved(self):
        src, _ = load("fx_augassign.py")
        facts = module_facts_from_source(src, "fx_augassign.py")
        label = "augassign_kernel:13#loop-inc"
        assert label in facts
        assert facts[label].carries == {0: 0, 1: 0, 2: 0}
