"""The two-stage (capture → evaluate) runner pipeline."""

from __future__ import annotations

import pytest

from repro.core.speculation import PREV, ST2_DESIGN
from repro.runner import RunOptions, build_units, run_units
from repro.runner.units import (RESULT_SCHEMA, execute_unit, results_equal,
                                unit_trace_key)
from repro.sim.trace_store import TraceStore

KERNELS = ["qrng_K2", "sortNets_K2"]
CONFIGS = (ST2_DESIGN, PREV)


@pytest.fixture(scope="module")
def units():
    return build_units(KERNELS, configs=CONFIGS, aux=False)


@pytest.fixture(scope="module")
def single_stage(units):
    return run_units(units, RunOptions(workers=1, use_cache=False))


def two_stage_options(tmp_path, workers=1) -> RunOptions:
    return RunOptions(workers=workers, use_cache=False,
                      trace_store=TraceStore(tmp_path / "traces"))


class TestTwoStagePipeline:
    def test_one_capture_per_kernel_not_per_config(self, tmp_path,
                                                   units):
        """The whole point: a (2-kernel × 2-config) grid captures two
        traces, not four."""
        opts = two_stage_options(tmp_path)
        run_units(units, opts)
        assert opts.stats["traces_total"] == len(KERNELS)
        assert opts.stats["traces_captured"] == len(KERNELS)
        assert opts.stats["trace_store_hits"] == 0
        assert len(opts.trace_store) == len(KERNELS)

    def test_warm_store_zero_reexecution(self, tmp_path, units,
                                         single_stage):
        cold_opts = two_stage_options(tmp_path)
        cold = run_units(units, cold_opts)
        warm_opts = two_stage_options(tmp_path, workers=2)
        warm = run_units(units, warm_opts)
        assert warm_opts.stats["traces_captured"] == 0
        assert warm_opts.stats["trace_store_hits"] == len(KERNELS)
        assert all(r.trace_cache_hit for r in warm)
        assert all(not r.trace_cache_hit for r in cold)
        for c, w in zip(cold, warm):
            assert results_equal(c, w)

    def test_bit_identical_to_single_stage(self, tmp_path, units,
                                           single_stage):
        """Stage-2 evaluation from the memmapped store must reproduce
        the single-stage runner exactly, serial and parallel."""
        for workers in (1, 2):
            results = run_units(
                units, two_stage_options(tmp_path, workers=workers))
            for s, r in zip(single_stage, results):
                assert results_equal(s, r), (workers, s.kernel)

    def test_aux_metrics_from_store(self, tmp_path):
        """VaLHALLA + correlation aux measurements work off memmaps."""
        aux_units = build_units(["qrng_K2"], aux=True)
        (direct,) = run_units(aux_units,
                              RunOptions(workers=1, use_cache=False))
        (stored,) = run_units(aux_units, two_stage_options(tmp_path))
        assert results_equal(direct, stored)
        assert stored.aux is not None

    def test_stage_timings_recorded(self, tmp_path, units):
        opts = two_stage_options(tmp_path)
        run_units(units, opts)
        assert opts.stats["stage_capture_s"] > 0
        assert opts.stats["stage_eval_s"] > 0

    def test_result_cache_short_circuits_stage_one(self, tmp_path,
                                                   units):
        """Units served from the result cache never touch the store."""
        from repro.runner import ResultCache
        cache = ResultCache(tmp_path / "cache")
        store = TraceStore(tmp_path / "traces")
        run_units(units, RunOptions(cache=cache, trace_store=store))
        opts = RunOptions(cache=cache, trace_store=store)
        again = run_units(units, opts)
        assert all(r.cached for r in again)
        assert "traces_total" not in opts.stats    # stage 1 skipped


class TestExecuteUnitWithStore:
    def test_capture_on_miss_then_hit(self, tmp_path, units):
        store = TraceStore(tmp_path / "t")
        spec = units[0]
        cold = execute_unit(spec, store=store)
        assert cold.trace_cache_hit is False
        assert cold.capture_time_s > 0
        assert store.has(unit_trace_key(spec))
        warm = execute_unit(spec, store=store)
        assert warm.trace_cache_hit is True
        assert warm.capture_time_s == 0.0
        assert results_equal(cold, warm)

    def test_schema_v4_fields_present(self, units):
        result = execute_unit(units[0])
        for fieldname in ("trace_cache_hit", "capture_time_s",
                          "eval_time_s", "engine"):
            assert fieldname in result.data
        assert result.eval_time_s > 0
        assert result.data["engine"] in ("interp", "vec")
        static = result.data["metrics"]["static_peek"]
        assert static["events_reduced"] >= 0
        assert static["dynamic_events_static"] \
            <= static["dynamic_events_base"]
        assert RESULT_SCHEMA == 4

    def test_pre_v2_cache_entries_invalidated(self, tmp_path, units):
        """A disk entry written by the old schema (no trace fields)
        must be recomputed, not served."""
        import json

        from repro.runner import ResultCache
        from repro.runner.cache import unit_key
        cache = ResultCache(tmp_path / "cache")
        spec = units[0]
        (cold,) = run_units([spec], RunOptions(cache=cache))
        key = unit_key(spec)
        path = cache.path(key)
        payload = json.loads(path.read_text())
        for stale in ("trace_cache_hit", "capture_time_s",
                      "eval_time_s"):
            del payload["result"][stale]
        path.write_text(json.dumps(payload))
        (again,) = run_units([spec], RunOptions(cache=cache))
        assert again.cached is False         # stale shape -> recomputed
        assert results_equal(cold, again)
