"""Parboil *sad* — ``sad_K1`` (mb_sad_calc).

H.264 motion-estimation sum-of-absolute-differences: each thread
evaluates one candidate motion vector for a 4x4 block, accumulating
``|cur - ref|`` over the 16 pixels — a pure integer ISUB/IADD chain over
8-bit pixel data, making this one of the most ALU-add-intensive kernels
in the suite.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.runtime import PreparedKernel, scaled
from repro.sim.config import GPUConfig, LaunchConfig, TITAN_V
from repro.sim.functional import GridLauncher

BLOCK = 128
BLK = 4          # 4x4 SAD blocks
SEARCH = 8       # candidate vectors per macroblock position


def sad_kernel(k, cur, ref, sad_out, width, n_positions):
    """mb_sad_calc: SAD of one candidate offset per thread."""
    t = k.global_id()
    with k.where(k.lt(t, n_positions * SEARCH)):
        pos = k.idiv(t, SEARCH)
        cand = k.irem(t, SEARCH)
        base_x = k.imul(k.irem(pos, width // BLK), BLK)
        base_y = k.imul(k.idiv(pos, width // BLK), BLK)
        ref_x = k.iadd(base_x, k.isub(cand, SEARCH // 2))

        sad = np.zeros(k.n_threads, dtype=np.int64)
        for dy in k.range(BLK):
            row = k.iadd(base_y, dy)
            row_off = k.imul(row, width)
            for dx in k.range(BLK):
                ci = k.iadd(row_off, k.iadd(base_x, dx))
                ri = k.iadd(row_off, k.iadd(ref_x, dx))
                diff = k.isub(k.ld_global(cur, ci),
                              k.ld_global(ref, ri))
                mag = k.imax(diff, k.isub(0, diff))   # |diff| via adder
                sad = k.iadd(sad, mag)
        k.st_global(sad_out, t, sad)


def prepare(scale: float = 1.0, seed: int = 0,
            gpu: GPUConfig = TITAN_V) -> PreparedKernel:
    """Two consecutive 'video frames': the reference is the current
    frame shifted by a small global motion plus noise, so SADs are
    small ints with occasional outliers (realistic residuals)."""
    rng = np.random.default_rng(seed)
    width = scaled(64, scale, minimum=16, multiple=BLK)
    height = scaled(32, scale, minimum=8, multiple=BLK)

    yy, xx = np.indices((height, width))
    frame = (128 + 60 * np.sin(xx / 9.0) + 40 * np.cos(yy / 7.0)
             + rng.normal(0, 6, (height, width)))
    cur = np.clip(frame, 0, 255).astype(np.int32)
    ref = np.clip(np.roll(frame, (0, 1), axis=(0, 1))
                  + rng.normal(0, 4, (height, width)), 0, 255) \
        .astype(np.int32)

    n_positions = (width // BLK) * (height // BLK)
    n_threads = n_positions * SEARCH
    grid = max(1, (n_threads + BLOCK - 1) // BLOCK)
    launcher = GridLauncher(gpu=gpu, seed=seed)
    return PreparedKernel(
        name="sad_K1",
        fn=sad_kernel,
        launch=LaunchConfig(grid, BLOCK),
        params=dict(
            cur=launcher.buffer("cur", cur.reshape(-1)),
            ref=launcher.buffer("ref", ref.reshape(-1)),
            sad_out=launcher.buffer(
                "sad", np.zeros(n_threads, np.int32)),
            width=width, n_positions=n_positions),
        launcher=launcher)
