"""``metrics.json`` I/O, metric addressing, diffs and baseline checks.

A metrics file is one :meth:`~repro.obs.registry.Obs.snapshot` plus run
metadata::

    {"metrics_version": 1,
     "meta":     {... the run header: kernels, configs, workers ...},
     "counters": {"sim.functional.trace_rows": 123456, ...},
     "timers":   {"runner.stage.eval": {"count": 1, "total_s": ..}, ..}}

Individual numbers are addressed with dotted **metric refs**:
``counters.<name>``, ``timers.<name>.<field>`` where ``<field>`` is
one of ``count`` / ``total_s`` / ``max_s`` / ``mean_s`` (field names
are reserved, so the trailing segment is unambiguous even though timer
names themselves contain dots), or ``meta.<path>`` for numeric run
metadata (nested dicts traverse dotted path segments, e.g.
``meta.stage_eval_s``).

A **baseline** (``BENCH_pipeline.json``) pins a set of metric refs with
tolerance bands; :func:`check_baseline` returns the deviations —
``st2-stats check`` exits 1 when any exist.  Entries support::

    {"metric": ref, "value": v, "rel_tol": 0.02, "abs_tol": 0.0}
    {"metric": ref, "max": upper}          # and/or "min": lower
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.registry import TIMER_FIELDS

METRICS_VERSION = 1
BASELINE_VERSION = 1

METRICS_SUFFIX = ".metrics.json"


def metrics_path_for(manifest_path) -> Path:
    """The metrics file that rides along a manifest:
    ``st2_manifest.jsonl`` → ``st2_manifest.metrics.json``."""
    path = Path(manifest_path)
    if path.name.endswith(METRICS_SUFFIX):
        return path
    return path.with_name(path.stem + METRICS_SUFFIX)


def write_metrics(path, snapshot: dict, meta: dict = None) -> Path:
    """Write one obs snapshot (plus run metadata) as ``metrics.json``."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"metrics_version": METRICS_VERSION, "meta": meta or {}}
    payload.update({"counters": snapshot.get("counters", {}),
                    "timers": snapshot.get("timers", {})})
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def read_metrics(path) -> dict:
    """Read a metrics file back; raises ValueError on a bad version."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("metrics_version") != METRICS_VERSION:
        raise ValueError(
            f"unsupported metrics version "
            f"{payload.get('metrics_version')!r} in {path}")
    return payload


# ----------------------------------------------------------------------
# metric addressing
# ----------------------------------------------------------------------

def flatten_metrics(metrics: dict) -> dict:
    """Every metric in a file as ``{ref: number}`` (sorted refs)."""
    flat = {}
    for name, value in metrics.get("counters", {}).items():
        flat[f"counters.{name}"] = value
    for name, stat in metrics.get("timers", {}).items():
        for fieldname in TIMER_FIELDS:
            if fieldname in stat:
                flat[f"timers.{name}.{fieldname}"] = stat[fieldname]
    return dict(sorted(flat.items()))


def lookup_metric(metrics: dict, ref: str):
    """Resolve one metric ref; raises KeyError with the failing ref."""
    try:
        kind, rest = ref.split(".", 1)
    except ValueError:
        raise KeyError(ref) from None
    if kind == "counters":
        counters = metrics.get("counters", {})
        if rest not in counters:
            raise KeyError(ref)
        return counters[rest]
    if kind == "timers":
        name, _, fieldname = rest.rpartition(".")
        if fieldname not in TIMER_FIELDS:
            raise KeyError(ref)
        stat = metrics.get("timers", {}).get(name)
        if stat is None or fieldname not in stat:
            raise KeyError(ref)
        return stat[fieldname]
    if kind == "meta":
        node = metrics.get("meta", {})
        for segment in rest.split("."):
            if not isinstance(node, dict) or segment not in node:
                raise KeyError(ref)
            node = node[segment]
        # refs address *numbers*: tolerance-band arithmetic needs one
        if isinstance(node, bool) or not isinstance(node, (int, float)):
            raise KeyError(ref)
        return node
    raise KeyError(ref)


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------

def diff_metrics(old: dict, new: dict) -> list:
    """Aligned comparison of two metrics files.

    Returns one row dict per metric ref present in either file:
    ``{"metric", "old", "new", "delta", "rel"}`` (``old``/``new`` are
    ``None`` when the ref exists on one side only; ``rel`` is NaN when
    undefined).
    """
    flat_old = flatten_metrics(old)
    flat_new = flatten_metrics(new)
    rows = []
    for ref in sorted(set(flat_old) | set(flat_new)):
        a = flat_old.get(ref)
        b = flat_new.get(ref)
        delta = (b - a) if a is not None and b is not None else None
        if delta is not None and a:
            rel = delta / abs(a)
        else:
            rel = float("nan")
        rows.append({"metric": ref, "old": a, "new": b,
                     "delta": delta, "rel": rel})
    return rows


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------

def load_baseline(path) -> dict:
    """Read a baseline file; raises ValueError on shape problems."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("bench_version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version "
            f"{payload.get('bench_version')!r} in {path}")
    entries = payload.get("metrics")
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} has no 'metrics' list")
    for entry in entries:
        if not isinstance(entry, dict) or "metric" not in entry:
            raise ValueError(
                f"baseline {path}: every entry needs a 'metric' ref")
    return payload


def check_baseline_rows(metrics: dict, baseline: dict) -> list:
    """Compare a metrics file against a baseline's tolerance bands.

    Returns one row dict per pinned metric, in baseline order::

        {"metric": ref,           # the pinned ref
         "value": measured,       # None when missing from metrics
         "ok": bool,              # inside every band it pins?
         "problems": [str, ...]}  # human-readable, empty when ok

    Rows carry the bound that applied: ``expect``/``band`` for value
    pins, ``max``/``min`` for bound pins (absent keys were not
    pinned).  CI consumes this via ``st2-stats check --json``.
    """
    rows = []
    for entry in baseline.get("metrics", []):
        ref = entry["metric"]
        row = {"metric": ref, "value": None, "ok": True, "problems": []}
        rows.append(row)
        try:
            value = lookup_metric(metrics, ref)
        except KeyError:
            row["ok"] = False
            row["problems"].append(f"{ref}: missing from metrics")
            continue
        row["value"] = value
        if "value" in entry:
            expect = entry["value"]
            rel_tol = float(entry.get("rel_tol", 0.0))
            abs_tol = float(entry.get("abs_tol", 0.0))
            band = abs_tol + rel_tol * abs(expect)
            row["expect"] = expect
            row["band"] = band
            if abs(value - expect) > band:
                row["problems"].append(
                    f"{ref}: {value:g} outside {expect:g} ± {band:g}")
        if "max" in entry:
            row["max"] = entry["max"]
            if value > entry["max"]:
                row["problems"].append(
                    f"{ref}: {value:g} exceeds max {entry['max']:g}")
        if "min" in entry:
            row["min"] = entry["min"]
            if value < entry["min"]:
                row["problems"].append(
                    f"{ref}: {value:g} below min {entry['min']:g}")
        row["ok"] = not row["problems"]
    return rows


def check_baseline(metrics: dict, baseline: dict) -> list:
    """The deviations from :func:`check_baseline_rows`, flattened to
    human-readable strings — empty means every pinned metric is inside
    its band."""
    problems = []
    for row in check_baseline_rows(metrics, baseline):
        problems.extend(row["problems"])
    return problems


def baseline_from_metrics(metrics: dict, rel_tol: float = 0.05,
                          time_factor: float = 25.0,
                          description: str = "") -> dict:
    """Seed a baseline from a measured metrics file.

    Counters are pinned at their measured value with ``rel_tol``;
    runner-level timers (names starting with ``runner``) get a
    machine-tolerant upper bound of ``time_factor`` × measured total —
    wall-clock differs wildly across hosts, so only catastrophic
    regressions should trip it.
    """
    entries = []
    for name, value in sorted(metrics.get("counters", {}).items()):
        entries.append({"metric": f"counters.{name}", "value": value,
                        "rel_tol": rel_tol})
    for name, stat in sorted(metrics.get("timers", {}).items()):
        if not name.startswith("runner"):
            continue
        entries.append({"metric": f"timers.{name}.total_s",
                        "max": round(stat["total_s"] * time_factor, 3)})
    return {"bench_version": BASELINE_VERSION,
            "description": description,
            "grid": metrics.get("meta", {}),
            "metrics": entries}
