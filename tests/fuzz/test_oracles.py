"""Oracle semantics: agreement on healthy kernels, detection of
injected bugs, and the big-int adder reference itself."""

import numpy as np
import pytest

from repro.fuzz.gen import generate_kernel
from repro.fuzz.harness import bundle_for, execute
from repro.fuzz.oracles import (check_engines, check_kernel,
                                check_static_facts, facts_as_json,
                                payload_diff, reference_outcome,
                                sample_rows, KernelVerdict)
from repro.runner.units import ModelBundle, resolve_configs

CONFIGS = resolve_configs("st2,prev")


@pytest.fixture(scope="module")
def models():
    return ModelBundle()


@pytest.fixture(scope="module")
def healthy(tmp_path_factory):
    """One materialized generated kernel plus its unsanitized run."""
    d = tmp_path_factory.mktemp("healthy")
    kernel = generate_kernel(21, 0)
    bundle = bundle_for(kernel, str(d))
    return bundle, execute(bundle, sanitize=False)


class TestPayloadDiff:
    def test_equal_trees_diff_empty(self):
        t = {"a": 1.5, "b": {"c": [1, 2]}}
        assert payload_diff(t, t) == []

    def test_nan_equals_nan(self):
        assert payload_diff({"x": float("nan")},
                            {"x": float("nan")}) == []

    def test_reports_dotted_paths(self):
        a = {"m": {"rate": 0.25, "cyc": 7}}
        b = {"m": {"rate": 0.5, "cyc": 7}}
        assert payload_diff(a, b) == ["m.rate"]

    def test_missing_keys_are_differences(self):
        assert payload_diff({"a": 1}, {}) == ["a"]


class TestAdderReference:
    def test_exact_add_and_carries(self):
        ref = reference_outcome(0xFF, 0x01, 0, 32, [0, 0, 0])
        assert ref["result"] == 0x100
        # slice 0 produces a carry the predictions missed
        assert ref["mispredicted"] is True
        assert ref["wrong_bits"] >= 1

    def test_correct_predictions_are_clean(self):
        a, b = 0x12345678, 0x0F0F0F0F
        bounds = [(lo, lo + 8) for lo in range(0, 32, 8)]
        carry, pred = 0, []
        for lo, hi in bounds[:-1]:
            sa = (a >> lo) & 0xFF
            sb = (b >> lo) & 0xFF
            carry = (sa + sb + carry) >> 8
            pred.append(carry)
        ref = reference_outcome(a, b, 0, 32, pred)
        assert ref["mispredicted"] is False
        assert ref["recomputed"] == 0
        assert ref["wrong_bits"] == 0
        assert ref["result"] == (a + b) & 0xFFFFFFFF

    def test_agrees_with_core_adder_on_random_rows(self):
        from repro.core.adder import ST2Adder
        from repro.core.slices import geometry_for

        rng = np.random.default_rng(3)
        geo = geometry_for(32)
        for _ in range(200):
            a = int(rng.integers(0, 1 << 32))
            b = int(rng.integers(0, 1 << 32))
            cin = int(rng.integers(0, 2))
            bits = rng.integers(0, 2, size=geo.n_predictions,
                                dtype=np.uint8)
            ref = reference_outcome(a, b, cin, 32, bits.tolist())
            out = ST2Adder(geo).add(
                np.asarray([a], dtype=np.uint64),
                np.asarray([b], dtype=np.uint64),
                bits.reshape(1, -1),
                cin=np.asarray([cin], dtype=np.uint8))
            assert int(out.result[0]) == ref["result"]
            assert bool(out.mispredicted[0]) == ref["mispredicted"]
            assert int(out.recomputed_slices[0]) == ref["recomputed"]

    def test_sample_rows_deterministic_and_bounded(self):
        rows = sample_rows(10_000, 128, seed=5)
        again = sample_rows(10_000, 128, seed=5)
        assert np.array_equal(rows, again)
        assert len(rows) == 128
        assert len(np.unique(rows)) == 128
        assert np.array_equal(sample_rows(50, 128, seed=5),
                              np.arange(50))


class TestHealthyKernel:
    def test_all_oracles_pass(self, healthy, models, tmp_path):
        bundle, _ = healthy
        verdict = check_kernel(bundle, CONFIGS, models=models)
        assert verdict.ok, [f.message for f in verdict.failures]
        assert verdict.checks.get("engine") == len(CONFIGS)
        assert verdict.checks.get("adder_rows", 0) > 0
        assert verdict.checks.get("sanitizer") == 1


class TestInjectedBugs:
    def test_contradicted_fact_is_reported(self, healthy, models):
        """A fact table claiming a wrong carry bit for a real label
        must be called out as a soundness bug."""
        from repro.lint.facts import module_facts_from_source

        bundle, run = healthy
        trace = run.trace
        facts = module_facts_from_source(bundle.source, bundle.path)
        facts_json = facts_as_json(facts)
        # poison: claim carry 1 at every boundary of a hot 32-bit
        # label (deterministic pick — ties must not depend on string
        # hash order, and the width must match the poisoned claim)
        labels = [trace.pc_labels[int(p)] for p in trace.pc]
        target = min(lab for lab, w in zip(labels, trace.width)
                     if int(w) == 32)
        poisoned = dict(facts_json)
        poisoned[target] = {"width": 32,
                            "carries": {"0": 1, "1": 1, "2": 1},
                            "sites": 1, "line": 1}
        verdict = KernelVerdict(name="poisoned")
        from repro.lint.absint import analyze_source
        summaries = analyze_source(bundle.source, bundle.path)
        check_static_facts(run, poisoned, poisoned, summaries, verdict)
        assert any(f.oracle == "static" for f in verdict.failures), \
            "poisoned fact table was not detected"

    def test_engine_divergence_is_reported(self, healthy, models,
                                           monkeypatch):
        """A perturbed vec payload must trip the engine oracle."""
        import repro.runner.units as units

        bundle, run = healthy
        real = units.evaluation_payload

        def skewed(run_, config, models=None, engine="interp",
                   facts=None, plan_key=None):
            payload = real(run_, config, models=models, engine=engine,
                           facts=facts, plan_key=plan_key)
            if engine == "vec":
                payload["metrics"]["misprediction_rate"] += 1e-9
            return payload

        monkeypatch.setattr(units, "evaluation_payload", skewed)
        verdict = KernelVerdict(name="skewed")
        check_engines(run, CONFIGS[:1], models, {}, verdict)
        assert any(f.oracle == "engine" for f in verdict.failures)
        assert "misprediction_rate" \
            in verdict.failures[0].details["paths"][0]

    def test_bailed_function_claiming_facts_is_reported(self, healthy,
                                                        models):
        from repro.lint.absint import analyze_source

        bundle, run = healthy
        summaries = analyze_source(
            "def fuzz_kernel(k, ints, flts, iout, fout, n):\n"
            "    vals = [k.iadd(n, c) for c in (1, 2)]\n",
            bundle.path)
        assert summaries["fuzz_kernel"].bailed
        leaked = {"fuzz_kernel:2": {"width": 32, "carries": {"0": 0},
                                    "sites": 1, "line": 2}}
        verdict = KernelVerdict(name="leak")
        check_static_facts(run, leaked, leaked, summaries, verdict)
        assert any("bailed" in f.message for f in verdict.failures)
