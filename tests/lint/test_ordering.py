"""Finding-order determinism: CLI output and baseline files must be
byte-identical regardless of the order paths are given in (satellite
of the flow-sensitive analyzer work: fingerprint counting is
order-sensitive for duplicate findings, so the sort is load-bearing).
"""

import io
import json

from repro.lint.analyzer import lint_paths
from repro.lint.baseline import write_baseline
from repro.lint.cli import main

BAD_A = """\
def kernel(k, out):
    t = k.thread_id()
    x = t + 1
    k.st_global(out, t, x)
"""

BAD_B = """\
def kernel(k, out, n):
    t = k.thread_id()
    y = t - n
    with k.where(k.lt(t, n)):
        k.syncthreads()
    k.st_global(out, t, y)
"""


def write_tree(tmp_path):
    d = tmp_path / "pkg"
    d.mkdir()
    (d / "zz_last.py").write_text(BAD_A)
    (d / "aa_first.py").write_text(BAD_B)
    (d / "mid.py").write_text(BAD_A)
    return d


def test_findings_sorted_regardless_of_argument_order(tmp_path):
    d = write_tree(tmp_path)
    files = [d / "zz_last.py", d / "aa_first.py", d / "mid.py"]
    forward = lint_paths([str(p) for p in files])
    reverse = lint_paths([str(p) for p in reversed(files)])
    keys = [(f.path, f.line, f.rule) for f in forward]
    assert keys == sorted(keys)
    assert [(f.path, f.line, f.rule, f.message) for f in forward] == \
        [(f.path, f.line, f.rule, f.message) for f in reverse]


def test_directory_walk_matches_explicit_files(tmp_path):
    d = write_tree(tmp_path)
    via_dir = lint_paths([str(d)])
    via_files = lint_paths(
        sorted(str(p) for p in d.glob("*.py")))
    assert [(f.path, f.line, f.rule) for f in via_dir] == \
        [(f.path, f.line, f.rule) for f in via_files]


def test_baseline_bytes_identical_under_shuffle(tmp_path):
    d = write_tree(tmp_path)
    files = [str(d / n) for n in
             ("zz_last.py", "aa_first.py", "mid.py")]
    p1 = tmp_path / "b1.json"
    p2 = tmp_path / "b2.json"
    write_baseline(p1, lint_paths(files))
    write_baseline(p2, lint_paths(list(reversed(files))))
    assert p1.read_bytes() == p2.read_bytes()


def test_cli_output_identical_under_shuffle(tmp_path):
    d = write_tree(tmp_path)
    files = [str(d / n) for n in
             ("zz_last.py", "aa_first.py", "mid.py")]

    def run(args):
        out = io.StringIO()
        code = main(args, out=out)
        return code, out.getvalue()

    c1, o1 = run(["--json", *files])
    c2, o2 = run(["--json", *list(reversed(files))])
    assert c1 == c2
    assert o1 == o2
    parsed = json.loads(o1)
    assert parsed["findings"]
