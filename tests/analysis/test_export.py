"""Structured result export."""

import csv
import json

import pytest

from repro.analysis.export import (export_breakdown_csv,
                                   export_energy_stacks_json,
                                   export_evaluations_csv,
                                   export_ladder_csv, write_csv)
from repro.st2.architecture import evaluate_kernel


@pytest.fixture(scope="module")
def evaluation():
    return {"pathfinder": evaluate_kernel("pathfinder", scale=0.2)}


class TestExports:
    def test_write_csv(self, tmp_path):
        p = tmp_path / "t.csv"
        write_csv(p, ["a", "b"], [(1, 2), (3, 4)])
        rows = list(csv.reader(p.open()))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_evaluations_csv_roundtrip(self, tmp_path, evaluation):
        p = tmp_path / "eval.csv"
        export_evaluations_csv(p, evaluation)
        rows = list(csv.DictReader(p.open()))
        assert rows[0]["kernel"] == "pathfinder"
        e = evaluation["pathfinder"]
        assert float(rows[0]["system_saving"]) == pytest.approx(
            e.system_saving, abs=1e-6)
        assert rows[0]["arithmetic_intensive"] in ("0", "1")

    def test_energy_stacks_json(self, tmp_path, evaluation):
        p = tmp_path / "stacks.json"
        export_energy_stacks_json(p, evaluation)
        data = json.loads(p.read_text())
        base = data["pathfinder"]["baseline"]
        assert sum(base.values()) == pytest.approx(1.0, abs=1e-6)
        assert "ALU+FPU" in base
        assert sum(data["pathfinder"]["st2"].values()) < 1.0

    def test_ladder_csv(self, tmp_path):
        p = tmp_path / "ladder.csv"
        export_ladder_csv(p, {"VaLHALLA": 0.26, "ST2": [0.09, 0.10]})
        rows = list(csv.reader(p.open()))
        assert rows[0][0] == "config"
        assert rows[1] == ["VaLHALLA", "0.260000"]
        assert rows[2][0] == "ST2" and len(rows[2]) == 3

    def test_breakdown_csv(self, tmp_path, evaluation):
        p = tmp_path / "bd.csv"
        export_breakdown_csv(p, evaluation["pathfinder"].energy.baseline)
        rows = list(csv.DictReader(p.open()))
        names = {r["component"] for r in rows}
        assert {"ALU+FPU", "DRAM", "constant", "idle_sm"} <= names
        assert all(float(r["energy_j"]) >= 0 for r in rows)
