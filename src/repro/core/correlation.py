"""Spatio-temporal value-correlation study (paper Section III).

Two artefacts come from here:

* **Figure 2** — the evolution of the values produced by each hot-loop
  addition PC over logical time, showing that values at the *same* PC
  are of similar magnitude while values across PCs differ wildly.
* **Figure 3** — the per-kernel fraction of 8-bit-slice carry-ins that
  match the predecessor under three history keys: previous op of the
  same thread regardless of PC (``Prev+Gtid``, ~50 % in the paper),
  previous op of the same thread at the same PC (``Prev+FullPC+Gtid``,
  ~83 %), and previous op at the same PC in the same warp lane across
  all threads (``Prev+FullPC+Ltid``, ~89 %).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import bitops
from repro.core.predictors import carry_match_rate
from repro.core.speculation import FIG3_CONFIGS


@dataclass
class PcValueSeries:
    """Logical-time value series of one addition PC (Figure 2)."""

    pc: int
    label: str
    times: np.ndarray       # logical time = global trace row index
    values: np.ndarray      # the additions' result values
    chain_lengths: np.ndarray

    @property
    def magnitude_band(self) -> tuple:
        """(p10, p90) of |value| — the 'similar magnitude' band."""
        mags = np.abs(self.values)
        return float(np.percentile(mags, 10)), float(np.percentile(mags, 90))


def value_evolution(trace, max_pcs: int = 12,
                    max_points_per_pc: int = 4000) -> list:
    """Per-PC value series in logical time (the Figure 2 study).

    PCs are ordered by dynamic execution count; the busiest ``max_pcs``
    are returned, which for a hot-loop kernel are exactly the loop-body
    additions the paper annotates PC1..PC7.
    """
    series = []
    pcs, counts = np.unique(trace.pc, return_counts=True)
    order = np.argsort(-counts)
    for pc in pcs[order][:max_pcs]:
        rows = np.nonzero(trace.pc == pc)[0][:max_points_per_pc]
        sub = trace.select(rows)
        widths = np.unique(sub.width)
        chains = np.zeros(len(rows), dtype=np.int64)
        for w in widths:
            sel = sub.width == w
            chains[sel] = bitops.carry_chain_length(
                sub.op_a[sel], sub.op_b[sel], int(w), sub.cin[sel])
        label = (trace.pc_labels[pc] if pc < len(trace.pc_labels)
                 else f"pc{pc}")
        series.append(PcValueSeries(pc=int(pc), label=label, times=rows,
                                    values=sub.value,
                                    chain_lengths=chains))
    return series


@dataclass
class CorrelationSummary:
    """Figure 3 numbers for one kernel."""

    kernel: str
    match_rates: dict       # config name -> match fraction

    def rate(self, name: str) -> float:
        return self.match_rates[name]


def slice_carry_correlation(trace, kernel: str = "",
                            configs=FIG3_CONFIGS) -> CorrelationSummary:
    """Carry-in match rates under the three Figure 3 history keys."""
    rates = {cfg.name: carry_match_rate(trace, cfg) for cfg in configs}
    return CorrelationSummary(kernel=kernel, match_rates=rates)


def intra_pc_value_spread(trace) -> float:
    """Median per-PC coefficient of variation of |result| — a scalar
    summary of 'values at the same PC have similar magnitude'."""
    spreads = []
    for pc in np.unique(trace.pc):
        vals = np.abs(trace.value[trace.pc == pc])
        if len(vals) < 8:
            continue
        mean = vals.mean()
        if mean > 0:
            spreads.append(vals.std() / mean)
    return float(np.median(spreads)) if spreads else 0.0


def inter_pc_value_spread(trace) -> float:
    """Coefficient of variation of |result| across *all* PCs mixed —
    contrast with :func:`intra_pc_value_spread` (Section III's claim is
    inter >> intra)."""
    vals = np.abs(trace.value)
    if len(vals) == 0 or vals.mean() == 0:
        return 0.0
    return float(vals.std() / vals.mean())
