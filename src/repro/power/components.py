"""Power-model component taxonomy and per-access model energies.

The component set follows the paper's Figure 7 legend: ALU+FPU, int
Mul/Div, fp Mul/Div, SFU, RegFile, Caches+MC, NoC, Others, DRAM — plus
the constant board power and per-idle-SM static power of Eq. (1).

``MODEL_ENERGY_PJ`` holds the *model's* per-event energies (the ``P_i``
of Eq. (1), before the least-squares scale factors).  The synthetic
silicon in :mod:`repro.power.hardware` deliberately deviates from these
at a finer granularity, which is exactly the error a GPUWattch-style
calibration has to absorb.
"""

from __future__ import annotations

import enum


class Component(enum.Enum):
    """Figure 7 energy-breakdown components."""

    ALU_FPU = "ALU+FPU"
    INT_MULDIV = "int Mul/Div"
    FP_MULDIV = "fp Mul/Div"
    SFU = "SFU"
    REGFILE = "RegFile"
    CACHES_MC = "Caches+MC"
    NOC = "NoC"
    OTHERS = "Others"
    DRAM = "DRAM"


#: Components counted as "chip" energy (the paper's 21 % claim excludes
#: DRAM; the 19 % system number includes it).
CHIP_COMPONENTS = tuple(c for c in Component if c is not Component.DRAM)

#: Model energy per counted event, picojoules.  Events are:
#: ALU_FPU/INT_MULDIV/FP_MULDIV/SFU — one thread-level operation;
#: REGFILE — one 32-bit register access; CACHES_MC — one 32-byte sector
#: access; NOC — one flit; OTHERS — one warp-level instruction through
#: fetch/decode/issue (plus shared-memory accesses folded in);
#: DRAM — one 32-byte DRAM access.
MODEL_ENERGY_PJ = {
    Component.ALU_FPU: 40.0,     # fallback; see MODEL_ALU_SUBTYPE_PJ
    Component.INT_MULDIV: 60.0,
    Component.FP_MULDIV: 70.0,
    Component.SFU: 130.0,
    Component.REGFILE: 8.0,
    Component.CACHES_MC: 180.0,
    Component.NOC: 90.0,
    Component.OTHERS: 140.0,
    Component.DRAM: 1400.0,
}

#: The ALU+FPU component is modelled per *operation subtype*, the way
#: GPUWattch models per-op access energies: adds (whose datapath is the
#: adder ST2 replaces) are costlier than simple logic ops.
MODEL_ALU_SUBTYPE_PJ = {
    "alu_add": 46.0,
    "alu_other": 24.0,
    "fpu_add": 56.0,
    "fpu_other": 32.0,
    "dpu_add": 102.0,
}

#: Nominal board-constant and idle-SM powers (watts) — the model's
#: starting guesses; the solver calibrates its own values.
MODEL_P_CONST_W = 38.0
MODEL_P_IDLE_SM_W = 0.55
