"""Circuit characterisation — the stand-in for the paper's Section V-B
Synopsys flow.

The reference adder is the 64-bit Brent-Kung parallel-prefix design at
nominal voltage (our stand-in for the DesignWare default *balanced*
adder the paper synthesises); its critical path defines the *nominal clock
period*.  For a sliced design we search for the minimum supply voltage
at which the slice datapath (including the misprediction comparator)
still fits in that period — voltage scaling is where the quadratic
energy savings come from.

:func:`slice_bitwidth_sweep` reproduces the design-space exploration
that led the paper to 8-bit slices: smaller slices allow lower voltage
but pay more per-prediction overhead (State/Cout DFFs, CRF bits,
comparators and a higher expected recompute cost); wider slices waste
voltage headroom.

:class:`AdderEnergyModel` packages the characterised energies for the
GPU power model: reference energy per add, ST2 first-cycle energy,
per-slice recompute energy, and the speculation-unit overheads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.adders_rtl import (brent_kung_adder,
                                       random_add_stimulus, sliced_adder)
from repro.circuits.technology import SAED90, Technology

REFERENCE_WIDTH = 64

# per-bit sequential/storage energies (fJ per operation), 90 nm-ish
DFF_ENERGY_FJ = 5.0           # one State/Cout flop clocking per cycle
CRF_BIT_ENERGY_FJ = 1.0       # read + conditional write-back, per bit
LEVEL_SHIFTER_FJ = 1.38       # per transition [Shapiro & Friedman]
LEVEL_SHIFTER_TOGGLE_RATE = 0.3


def nominal_period_ps(tech: Technology = SAED90,
                      width: int = REFERENCE_WIDTH) -> float:
    """Clock period defined by the reference adder at nominal Vdd."""
    return brent_kung_adder(width).critical_path_ps(tech)


def min_slice_voltage(slice_width: int, tech: Technology = SAED90,
                      width: int = REFERENCE_WIDTH,
                      period_ps: float = None) -> float:
    """Lowest Vdd at which the sliced datapath fits the nominal period."""
    period = nominal_period_ps(tech, width) if period_ps is None \
        else period_ps
    net = sliced_adder(width, slice_width)
    lo, hi = tech.min_vdd, tech.vdd_nominal
    if net.critical_path_ps(tech, hi) > period:
        return hi      # cannot scale at all
    if net.critical_path_ps(tech, lo) <= period:
        return lo      # floor reached
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        if net.critical_path_ps(tech, mid) <= period:
            hi = mid
        else:
            lo = mid
    return hi


@dataclass
class SlicePoint:
    """One column of the slice-bitwidth design space."""

    slice_width: int
    n_slices: int
    vdd: float
    vdd_fraction: float              # of nominal
    datapath_energy_fj: float        # all slices, one computation
    overhead_energy_fj: float        # DFFs + CRF bits + level shifters
    expected_recompute_fj: float     # misprediction recompute expectation
    reference_energy_fj: float

    @property
    def total_energy_fj(self) -> float:
        return (self.datapath_energy_fj + self.overhead_energy_fj
                + self.expected_recompute_fj)

    @property
    def potential_saving(self) -> float:
        """Datapath-only saving (the paper's 75-87 % 'potential')."""
        return 1.0 - self.datapath_energy_fj / self.reference_energy_fj

    @property
    def net_saving(self) -> float:
        return 1.0 - self.total_energy_fj / self.reference_energy_fj


def _boundary_miss_rate(rng, width: int, slice_width: int,
                        n_vectors: int = 2000) -> float:
    """Fraction of ops mispredicted on random vectors with a
    previous-carry predictor (used only for the sweep's recompute
    expectation; workload-driven rates come from the trace study)."""
    from repro.core import bitops
    a = rng.integers(0, 1 << 63, n_vectors, dtype=np.uint64) << np.uint64(1)
    b = rng.integers(0, 1 << 63, n_vectors, dtype=np.uint64) << np.uint64(1)
    carries = bitops.slice_carry_ins(a, b, width, slice_width, 0)[:, 1:]
    if carries.shape[1] == 0:
        return 0.0
    mismatch = (carries[1:] != carries[:-1]).any(axis=1)
    return float(mismatch.mean())


def slice_bitwidth_sweep(widths=(2, 4, 8, 16, 32),
                         tech: Technology = SAED90, seed: int = 0,
                         n_vectors: int = 1200) -> list:
    """The Section V-B exploration; returns one SlicePoint per width."""
    rng = np.random.default_rng(seed)
    period = nominal_period_ps(tech)
    reference = brent_kung_adder(REFERENCE_WIDTH)
    ref_stim = random_add_stimulus(rng, REFERENCE_WIDTH, n_vectors)
    ref_energy = reference.energy_per_op_fj(ref_stim, tech)

    points = []
    for sw in widths:
        net = sliced_adder(REFERENCE_WIDTH, sw)
        n_slices = (REFERENCE_WIDTH + sw - 1) // sw
        n_preds = n_slices - 1
        vdd = min_slice_voltage(sw, tech, period_ps=period)
        stim = random_add_stimulus(rng, REFERENCE_WIDTH, n_vectors,
                                   extra_inputs=n_preds)
        datapath = net.energy_per_op_fj(stim, tech, vdd)
        overhead = (2 * n_preds * DFF_ENERGY_FJ
                    + 2 * n_preds * CRF_BIT_ENERGY_FJ
                    + 2 * (REFERENCE_WIDTH + 1) * LEVEL_SHIFTER_FJ
                    * LEVEL_SHIFTER_TOGGLE_RATE)
        miss = _boundary_miss_rate(rng, REFERENCE_WIDTH, sw)
        recompute = miss * 0.5 * datapath   # about half the slices redo
        points.append(SlicePoint(
            slice_width=sw, n_slices=n_slices, vdd=vdd,
            vdd_fraction=vdd / tech.vdd_nominal,
            datapath_energy_fj=datapath, overhead_energy_fj=overhead,
            expected_recompute_fj=recompute,
            reference_energy_fj=ref_energy))
    return points


def best_slice_width(points=None) -> int:
    points = slice_bitwidth_sweep() if points is None else points
    return min(points, key=lambda p: p.total_energy_fj).slice_width


@dataclass
class AdderEnergyModel:
    """Characterised adder energies consumed by the GPU power model."""

    reference_fj: float          # monolithic adder @ nominal Vdd
    st2_cycle_fj: float          # all slices, one speculative cycle
    slice_recompute_fj: float    # one slice's second computation
    crf_fj: float                # CRF read/write-back bits per operation
    dff_fj: float                # State/Cout flop clocking per operation
    level_shifter_fj: float      # level shifting per operation
    vdd: float
    slice_width: int = 8
    n_slices: int = 8

    @property
    def speculation_fj(self) -> float:
        return self.crf_fj + self.dff_fj

    def st2_adder_fj(self, misprediction_rate: float,
                     recomputed_per_miss: float) -> float:
        """The quantity behind the paper's "70 % of the nominal adder
        power" headline: scaled datapath + CRF accesses + recompute.
        The DFF and level-shifter overheads are accounted separately,
        exactly as the paper reports them (Sections V-B and VI)."""
        recompute = (misprediction_rate * recomputed_per_miss
                     * self.slice_recompute_fj)
        return self.st2_cycle_fj + self.crf_fj + recompute

    def st2_energy_fj(self, misprediction_rate: float,
                      recomputed_per_miss: float) -> float:
        """Everything included — what the GPU power model charges."""
        return (self.st2_adder_fj(misprediction_rate, recomputed_per_miss)
                + self.dff_fj + self.level_shifter_fj)

    def saving(self, misprediction_rate: float,
               recomputed_per_miss: float) -> float:
        """Headline adder-power saving (paper: ~70 %)."""
        return 1.0 - (self.st2_adder_fj(misprediction_rate,
                                        recomputed_per_miss)
                      / self.reference_fj)

    def saving_with_overheads(self, misprediction_rate: float,
                              recomputed_per_miss: float) -> float:
        """Net saving including DFF clocking and level shifters."""
        return 1.0 - (self.st2_energy_fj(misprediction_rate,
                                         recomputed_per_miss)
                      / self.reference_fj)

    def csla_energy_fj(self) -> float:
        """Carry-select adder at the same scaled voltage: every slice
        above slice 0 computes both carry cases every cycle."""
        per_slice = self.st2_cycle_fj / self.n_slices
        return self.st2_cycle_fj + (self.n_slices - 1) * per_slice


def characterize_adders(tech: Technology = SAED90, seed: int = 0,
                        slice_width: int = 8,
                        n_vectors: int = 1500) -> AdderEnergyModel:
    """Full characterisation at the chosen slice width."""
    rng = np.random.default_rng(seed)
    reference = brent_kung_adder(REFERENCE_WIDTH)
    ref_stim = random_add_stimulus(rng, REFERENCE_WIDTH, n_vectors)
    ref_energy = reference.energy_per_op_fj(ref_stim, tech)

    vdd = min_slice_voltage(slice_width, tech)
    net = sliced_adder(REFERENCE_WIDTH, slice_width)
    n_slices = (REFERENCE_WIDTH + slice_width - 1) // slice_width
    stim = random_add_stimulus(rng, REFERENCE_WIDTH, n_vectors,
                               extra_inputs=n_slices - 1)
    st2_cycle = net.energy_per_op_fj(stim, tech, vdd)

    n_preds = n_slices - 1
    shifters = (2 * (REFERENCE_WIDTH + 1) * LEVEL_SHIFTER_FJ
                * LEVEL_SHIFTER_TOGGLE_RATE)
    return AdderEnergyModel(
        reference_fj=ref_energy,
        st2_cycle_fj=st2_cycle,
        slice_recompute_fj=st2_cycle / n_slices,
        crf_fj=2 * n_preds * CRF_BIT_ENERGY_FJ,
        dff_fj=2 * n_preds * DFF_ENERGY_FJ,
        level_shifter_fj=shifters,
        vdd=vdd, slice_width=slice_width, n_slices=n_slices)
