"""The GPUWattch-style linear power model — Eq. (1) of the paper:

    P_total = P_const + N_idleSM * P_idleSM + sum_i(P_i * Scale_i)

``P_i`` is the model's estimate of component i's dynamic power (event
rate times the per-event model energy); ``Scale_i`` are the per-component
correction factors a least-squares solver fits against hardware
measurements (:mod:`repro.power.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.activity import ActivityVector
from repro.power.components import (MODEL_ALU_SUBTYPE_PJ, MODEL_ENERGY_PJ,
                                    MODEL_P_CONST_W, MODEL_P_IDLE_SM_W,
                                    Component)


@dataclass
class GPUPowerModel:
    """Calibratable implementation of Eq. (1)."""

    scales: dict = field(
        default_factory=lambda: {c: 1.0 for c in Component})
    p_const_w: float = MODEL_P_CONST_W
    p_idle_sm_w: float = MODEL_P_IDLE_SM_W
    energies_pj: dict = field(
        default_factory=lambda: dict(MODEL_ENERGY_PJ))
    #: Optional literature-inspired refinements (GREENER register
    #: file, WaSP warp scheduler) — see :mod:`repro.power.extended`.
    #: ``None`` (the default) leaves every number bit-identical.
    extensions: object = None

    def raw_component_power_w(self, activity: ActivityVector,
                              component: Component) -> float:
        """``P_i`` — the uncalibrated model power of one component.

        ALU+FPU is modelled per operation subtype (adds vs logic vs FP)
        when the activity carries the fine counts; other components use
        their single per-event energy.
        """
        if component is Component.ALU_FPU:
            fine_j = sum(activity.fine.get(sub, 0.0) * pj
                         for sub, pj in MODEL_ALU_SUBTYPE_PJ.items())
            if fine_j > 0:
                return fine_j * 1e-12 / activity.duration_s
        return (activity.rate(component)
                * self.energies_pj[component] * 1e-12)

    def alu_subtype_energy_j(self, activity: ActivityVector,
                             subtype: str) -> float:
        """Calibrated model energy of one ALU+FPU op subtype."""
        return (activity.fine.get(subtype, 0.0)
                * MODEL_ALU_SUBTYPE_PJ[subtype] * 1e-12
                * self.scales[Component.ALU_FPU])

    def component_power_w(self, activity: ActivityVector) -> dict:
        """Calibrated per-component dynamic power (``P_i * Scale_i``),
        plus any enabled extension terms on their home components."""
        powers = {c: self.raw_component_power_w(activity, c)
                  * self.scales[c] for c in Component}
        if self.extensions is not None:
            powers = self.extensions.adjust_power_w(powers, activity)
        return powers

    def total_power_w(self, activity: ActivityVector) -> float:
        """Eq. (1)."""
        dynamic = sum(self.component_power_w(activity).values())
        return (self.p_const_w
                + activity.n_idle_sms * self.p_idle_sm_w
                + dynamic)

    def component_energy_j(self, activity: ActivityVector) -> dict:
        """Per-component dynamic energy over the kernel duration."""
        return {c: p * activity.duration_s
                for c, p in self.component_power_w(activity).items()}

    def total_energy_j(self, activity: ActivityVector) -> float:
        return self.total_power_w(activity) * activity.duration_s

    def static_energy_j(self, activity: ActivityVector) -> float:
        """Constant + idle-SM energy over the duration."""
        return (self.p_const_w + activity.n_idle_sms
                * self.p_idle_sm_w) * activity.duration_s
