"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from pathlib import Path


def save_artifact(artifact_dir: Path, name: str, text: str) -> None:
    """Write a rendered figure/table and echo it to the console."""
    (artifact_dir / name).write_text(text + "\n")
    print("\n" + text)
