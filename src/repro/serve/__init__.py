"""``repro.serve`` — the async sharded experiment service.

A zero-new-dependency HTTP/JSON daemon (``st2-serve``) fronting a
sharded multiprocessing worker pool, plus the matching client library
and CLI (``st2-client``).  Jobs are submitted as typed
:class:`repro.api.JobSpec` documents, expand server-side into the same
work units ``st2-run`` executes offline, and come back as
:class:`repro.api.JobResult` documents whose unit payloads are
bit-identical to the offline runner's (``results_equal``).

Layering (each module is independently testable):

* :mod:`repro.serve.httpd` — asyncio HTTP/1.1 (parsing, keep-alive,
  chunked streaming);
* :mod:`repro.serve.state` — jobs, priority queue, per-client quotas,
  request coalescing;
* :mod:`repro.serve.pool` — trace-key-sharded worker processes
  (capture-exactly-once by construction);
* :mod:`repro.serve.app` — routes + dispatcher + graceful drain;
* :mod:`repro.serve.client` — blocking client library over
  ``http.client``;
* :mod:`repro.serve.cli` / :mod:`repro.serve.client_cli` — the
  ``st2-serve`` and ``st2-client`` entry points.

See ``docs/serving.md`` for the API reference and deployment notes.
"""

from __future__ import annotations

from repro.serve.app import DISPATCH_DEPTH, ServeApp, run_app
from repro.serve.pool import ShardedPool, shard_of
from repro.serve.state import RejectError, ServeState

__all__ = [
    "DISPATCH_DEPTH", "RejectError", "ServeApp", "ServeState",
    "ShardedPool", "run_app", "shard_of",
]
