"""Static carry facts (repro.lint.facts) and their consumption by the
StaticPeekPredictor — including the end-to-end soundness check against
ground-truth trace carries on a real suite kernel.
"""

import numpy as np
import pytest

from repro.core.predictors import (predict_trace, speculation_events,
                                   trace_slice_carries,
                                   trace_static_peek,
                                   StaticPeekPredictor)
from repro.core.speculation import PREV, ST2_DESIGN
from repro.kernels.suite import run_kernel
from repro.lint.absint import AdderSite, FunctionSummary
from repro.lint.domains import AbsVal, Interval, KnownBits
from repro.lint.facts import (N_BOUNDARIES, facts_for_kernel,
                              facts_to_json, function_facts,
                              site_carries, site_label)

SCALE = 0.25


def site(kind, a, b, lineno=10, scopes=()):
    return AdderSite(kind=kind, lineno=lineno, scopes=scopes,
                     op_a=a, op_b=b, visits=1)


def iv(lo, hi, bits=KnownBits()):
    return AbsVal(Interval(lo, hi), bits)


class TestSiteCarries:
    def test_interval_rule_carry_zero(self):
        c = site_carries(site("iadd", iv(0, 100), iv(0, 100)))
        assert c == {0: 0, 1: 0, 2: 0}

    def test_interval_rule_carry_one(self):
        c = site_carries(site("iadd", iv(200, 255), iv(100, 255)))
        assert c == {0: 1, 1: 0, 2: 0}

    def test_isub_const_operands_exact(self):
        # 5 - 0 records 5 + ~0 + 1 = 5 + 2**32: every boundary carries
        c = site_carries(site("isub", iv(5, 5), iv(0, 0)))
        assert c == {0: 1, 1: 1, 2: 1}

    def test_ripple_rule_low_byte_zero(self):
        # operands with a known-zero low byte (e.g. both shifted left
        # by 8): interval is too wide, but bits pin boundary 0
        low_zero = KnownBits(0xFF, 0)
        a = iv(0, 2**32 - 1, low_zero)
        c = site_carries(site("iadd", a, a))
        assert c == {0: 0}

    def test_possible_negative_is_ineligible(self):
        assert site_carries(site("iadd", iv(-1, 5), iv(0, 5))) is None

    def test_unbounded_is_ineligible(self):
        assert site_carries(site("iadd", iv(0, None), iv(0, 5))) is None

    def test_unmodeled_kind_is_ineligible(self):
        assert site_carries(site("imul", iv(0, 5), iv(0, 5))) is None


class TestSiteLabel:
    def test_loop_inc_tag_composes_with_scopes(self):
        s = site("loop-inc", iv(0, 1), iv(1, 1), lineno=7,
                 scopes=("s",))
        assert site_label("fn", s) == "fn:7#s|loop-inc"
        bare = site("loop-inc", iv(0, 1), iv(1, 1), lineno=7)
        assert site_label("fn", bare) == "fn:7#loop-inc"


class TestMerging:
    def summary(self, sites):
        return FunctionSummary(name="fn", path="<t>", lineno=1,
                               adder_sites=sites)

    def test_same_label_must_agree(self):
        zero = site("iadd", iv(0, 100), iv(0, 100))
        one = site("iadd", iv(200, 255), iv(100, 255))
        facts = function_facts(self.summary([zero, one]))
        # boundary 0 disagrees (0 vs 1); boundaries 1, 2 agree on 0
        assert facts["fn:10"].carries == {1: 0, 2: 0}
        assert facts["fn:10"].sites == 2

    def test_ineligible_site_poisons_label(self):
        good = site("iadd", iv(0, 100), iv(0, 100))
        bad = site("iadd", iv(0, None), iv(0, 100))
        assert function_facts(self.summary([good, bad])) == {}

    def test_bailed_summary_has_no_facts(self):
        s = FunctionSummary(name="fn", path="<t>", lineno=1,
                            bailed=True, reason="x")
        assert function_facts(s) == {}

    def test_json_round_trip_shape(self):
        facts = function_facts(self.summary(
            [site("iadd", iv(0, 100), iv(0, 100))]))
        js = facts_to_json(facts)
        assert js == {"fn:10": {"width": 32,
                                "carries": {"0": 0, "1": 0, "2": 0},
                                "sites": 1, "line": 10}}


class TestSuiteFacts:
    def test_qrng_dimension_loop_is_proved(self):
        # for dim in k.range(QRNG_DIMENSIONS) with QRNG_DIMENSIONS = 3:
        # the latch adds 1 to dim in [0, 2] — every boundary carries 0
        facts = facts_for_kernel("qrng_K1")
        incs = {lbl: f for lbl, f in facts.items()
                if lbl.endswith("loop-inc")}
        assert incs, "no loop-inc fact exported for qrng_K1"
        assert any(f.carries == {j: 0 for j in range(N_BOUNDARIES)}
                   for f in incs.values())

    def test_unknown_kernel_yields_empty(self):
        assert facts_for_kernel("nonexistent_K9") == {}


@pytest.fixture(scope="module")
def qrng_run():
    return run_kernel("qrng_K1", scale=SCALE)


class TestStaticPeekSoundness:
    """Acceptance: facts match ground truth bit-for-bit on real traces,
    and static resolution never increases mispredictions."""

    def test_facts_cover_trace_rows(self, qrng_run):
        facts = facts_for_kernel("qrng_K1")
        known, _ = trace_static_peek(qrng_run.trace, facts)
        assert known.sum() > 0

    def test_static_values_equal_true_carries(self, qrng_run):
        facts = facts_for_kernel("qrng_K1")
        known, value = trace_static_peek(qrng_run.trace, facts)
        true = trace_slice_carries(qrng_run.trace)[:, 1:]
        assert np.array_equal(value[known], true[known])

    def test_dict_facts_match_object_facts(self, qrng_run):
        facts = facts_for_kernel("qrng_K1")
        k1, v1 = trace_static_peek(qrng_run.trace, facts)
        k2, v2 = trace_static_peek(qrng_run.trace,
                                   facts_to_json(facts))
        assert np.array_equal(k1, k2) and np.array_equal(v1, v2)

    def test_predictions_bit_identical_where_dynamic_agrees(self,
                                                            qrng_run):
        # overlaying true carries can only flip wrong bits right
        facts = facts_for_kernel("qrng_K1")
        trace = qrng_run.trace
        base = predict_trace(trace, ST2_DESIGN)
        static = StaticPeekPredictor(ST2_DESIGN, facts).predict(trace)
        true = trace_slice_carries(trace)[:, 1:]
        sk = static.static_known
        assert np.array_equal(static.bits[~sk], base.bits[~sk])
        assert np.array_equal(static.bits[sk], true[sk])

    def test_misprediction_rate_never_increases(self, qrng_run):
        facts = facts_for_kernel("qrng_K1")
        predictor = StaticPeekPredictor(ST2_DESIGN, facts)
        base = predictor.run(qrng_run.trace)
        from repro.core.predictors import run_speculation
        dyn = run_speculation(qrng_run.trace, ST2_DESIGN)
        assert base.thread_misprediction_rate <= \
            dyn.thread_misprediction_rate

    def test_speculation_events_reduced_vs_prev(self, qrng_run):
        # Prev has no runtime Peek, so every statically pinned slice
        # is a strict dynamic-event saving
        facts = facts_for_kernel("qrng_K1")
        trace = qrng_run.trace
        base = predict_trace(trace, PREV)
        static = StaticPeekPredictor(PREV, facts).predict(trace)
        assert speculation_events(static, trace) < \
            speculation_events(base, trace)

    def test_ablation_row_is_non_negative(self, qrng_run):
        from repro.st2.ablations import static_peek_ablation
        facts = facts_for_kernel("qrng_K1")
        point = static_peek_ablation(qrng_run.trace, facts,
                                     config=ST2_DESIGN)
        assert point.fact_labels == len(facts)
        assert point.static_bits > 0
        assert point.events_reduced >= 0
        assert point.misprediction_rate_static <= \
            point.misprediction_rate_base
