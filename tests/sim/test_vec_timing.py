"""The pre-planned timing replica vs the reference pair simulator.

:func:`repro.sim.vec.timing.run_pair` claims *exact* ``TimingResult``
equality with :func:`repro.sim.pipeline.simulate_sm_pair` — makespans
included, since they feed the energy model's duration scaling — so
every assertion here is ``==`` on the whole dataclass, never approx.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictors import run_speculation
from repro.core.speculation import PREV, ST2_DESIGN
from repro.kernels.suite import run_kernel
from repro.sim.pipeline import (compare_baseline_st2,
                                warp_misprediction_map)
from repro.sim.vec.timing import (build_timing_plan, plan_miss_frac,
                                  run_pair)

KERNELS = ["qrng_K2", "sortNets_K2", "pathfinder"]


@pytest.fixture(scope="module", params=KERNELS)
def run(request):
    return run_kernel(request.param, scale=0.12, seed=0)


def miss_patterns(run):
    n = len(run.trace)
    real = run_speculation(run.trace, ST2_DESIGN).mispredicted
    prev = run_speculation(run.trace, PREV).mispredicted
    return {
        "none": np.zeros(n, dtype=bool),
        "all": np.ones(n, dtype=bool),
        "st2": real,
        "prev": prev,
    }


class TestRunPairExactEquality:
    @pytest.mark.parametrize("pattern", ["none", "all", "st2", "prev"])
    def test_timing_results_identical(self, run, pattern):
        mispredicted = miss_patterns(run)[pattern]
        ref_base, ref_st2 = compare_baseline_st2(run, mispredicted)
        plan = build_timing_plan(run)
        base, st2 = run_pair(plan, plan_miss_frac(plan, mispredicted))
        assert base == ref_base, pattern
        assert st2 == ref_st2, pattern

    def test_plan_reusable_across_configs(self, run):
        """One plan must serve every config without mutation."""
        plan = build_timing_plan(run)
        patterns = miss_patterns(run)
        first = {k: run_pair(plan, plan_miss_frac(plan, m))
                 for k, m in patterns.items()}
        again = {k: run_pair(plan, plan_miss_frac(plan, m))
                 for k, m in patterns.items()}
        assert first == again


class TestPlanMissFrac:
    def test_matches_dict_lookup(self, run):
        """The vectorised gather vs the reference dict of decoded
        ``(block, seq, warp)`` tuples, instruction for instruction."""
        from repro.sim.config import TITAN_V
        from repro.sim.pipeline import _resident_blocks

        mispredicted = run_speculation(run.trace,
                                       ST2_DESIGN).mispredicted
        ref_map = warp_misprediction_map(run.trace, mispredicted)
        plan = build_timing_plan(run)
        frac = plan_miss_frac(plan, mispredicted)
        assert len(frac) == plan.n_insts

        # rebuild the planned rows' identities the way the plan did
        # (resident-block selection + the same lexsort), then compare
        # every row against the reference dict lookup
        insts = run.insts
        resident = _resident_blocks(insts, TITAN_V,
                                    run.launch.block_threads)
        sel = np.isin(insts.block, resident)
        blocks = insts.block[sel]
        seqs = insts.seq[sel]
        warps = insts.warp[sel]
        order = np.lexsort((seqs, warps))
        blocks, seqs, warps = blocks[order], seqs[order], warps[order]
        hits = 0
        for i in range(plan.n_insts):
            key = (int(blocks[i]), int(seqs[i]), int(warps[i]))
            expect = ref_map.get(key, 0.0)
            assert float(frac[i]) == expect, (i, key)
            hits += expect > 0
        assert hits > 0      # the pattern actually exercises the map

    def test_no_mispredictions_all_zero(self, run):
        plan = build_timing_plan(run)
        frac = plan_miss_frac(
            plan, np.zeros(len(run.trace), dtype=bool))
        assert not frac.any()
