"""Generator properties: determinism, validity, coverage, alignment."""

import ast

import pytest

from repro.fuzz.gen import (FuzzProfile, derive_stream, generate_batch,
                            generate_kernel)
from repro.fuzz.kast import KERNEL_NAME, program_ok


class TestDeterminism:
    def test_same_seed_index_is_identical(self):
        a = generate_kernel(11, 4)
        b = generate_kernel(11, 4)
        assert a.source == b.source
        assert (a.blocks, a.threads, a.data_seed) \
            == (b.blocks, b.threads, b.data_seed)

    def test_streams_are_per_index(self):
        """Growing the budget appends kernels — it never reshuffles
        the ones already generated (CI seeds stay meaningful)."""
        first = [k.source for k in generate_batch(3, 5)]
        grown = [k.source for k in generate_batch(3, 9)]
        assert grown[:5] == first

    def test_derive_stream_separates_tags(self):
        assert derive_stream(1, 2, "gen") != derive_stream(1, 2, "data")
        assert derive_stream(1, 2) != derive_stream(2, 1)


class TestValidity:
    @pytest.mark.parametrize("seed", [0, 1, 17])
    def test_programs_are_scope_valid_and_compile(self, seed):
        for index in range(40):
            kernel = generate_kernel(seed, index)
            assert program_ok(kernel.program), kernel.source
            tree = compile(kernel.source, f"<{kernel.name}>", "exec")
            assert tree is not None

    def test_launch_geometry_is_warp_aligned(self):
        for index in range(30):
            kernel = generate_kernel(5, index)
            assert kernel.threads % 32 == 0 and kernel.threads > 0
            assert kernel.blocks >= 1

    def test_defines_the_fixed_kernel_function(self):
        kernel = generate_kernel(0, 0)
        tree = ast.parse(kernel.source)
        fns = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
        assert [f.name for f in fns] == [KERNEL_NAME]


class TestCoverage:
    def test_constructs_all_appear_across_a_batch(self):
        blob = "\n".join(k.source for k in generate_batch(2, 80))
        for needle in ("k.where(", "k.range(", "k.inline(",
                       "k.syncthreads()", "k.shared(", "k.st_shared(",
                       "k.ld_shared(", "shfl_", "k.atomic_add(",
                       "warp_reduce", "k.ffma(", "k.sel(",
                       "k.st_global(", "k.ld_global("):
            assert needle in blob, f"{needle} never generated"

    def test_evil_constructs_appear_with_low_probability(self):
        blob = "\n".join(k.source for k in generate_batch(2, 120))
        assert ("try:" in blob or "for c in (1, 2)" in blob
                or "def _h" in blob or "'d' + 'yn'" in blob)

    def test_uniform_barrier_sources_vary(self):
        blob = "\n".join(k.source for k in generate_batch(4, 150))
        assert "k.lt(k.block_id," in blob
        assert "k.lt(n," in blob


class TestThreeAddressAlignment:
    def test_one_dsl_call_per_generated_line(self):
        """The PC-label contract: structured statements put exactly one
        DSL call on each line (Raw evil lines are exempt — they make
        the static analysis bail, so nothing is claimed about them)."""
        import re

        call = re.compile(r"\bk\.\w+\(")
        for index in range(25):
            kernel = generate_kernel(9, index)
            for line in kernel.source.splitlines():
                if "for c in" in line or "_h" in line:
                    continue        # Raw constructs
                assert len(call.findall(line)) <= 1, line

    def test_profile_bounds_are_respected(self):
        profile = FuzzProfile(min_stmts=2, max_stmts=3, max_depth=1)
        for index in range(10):
            kernel = generate_kernel(1, index, profile)
            assert kernel.program.size() <= 3 + 8 + 6
