"""ServeState in isolation: admission control, priority queue,
coalescing fan-out and completion accounting — no server, no pool."""

from __future__ import annotations

import pytest

from repro import obs
from repro.api import JobSpec
from repro.serve.state import RejectError, ServeState


class FakeUnit:
    """Stands in for a UnitSpec: state only touches ``.label``."""

    def __init__(self, label):
        self.label = label


def spec(client="anon", priority=0):
    return JobSpec(kernels=("qrng_K2",), client=client,
                   priority=priority)


def units_and_keys(n, prefix="u"):
    names = [f"{prefix}{i}" for i in range(n)]
    return [FakeUnit(n) for n in names], [f"key-{n}" for n in names]


@pytest.fixture
def registry():
    """Isolated obs registry so counter asserts don't see other
    tests' noise."""
    reg = obs.Obs()
    with obs.scoped(reg):
        yield reg


def counters(reg):
    return reg.snapshot()["counters"]


class TestAdmission:
    def test_admit_tracks_quota_and_backlog(self, registry):
        state = ServeState(client_quota=8, max_queued_units=16)
        job = state.admit(spec(client="ci"), *units_and_keys(3))
        assert job.state == "queued"
        assert state.stats()["clients"] == {"ci": 3}
        assert state.stats()["units_unresolved"] == 3
        assert counters(registry)["serve.jobs.submitted"] == 1
        assert counters(registry)["serve.units.submitted"] == 3

    def test_client_quota_is_per_client(self, registry):
        state = ServeState(client_quota=4, max_queued_units=100)
        state.admit(spec(client="a"), *units_and_keys(3))
        with pytest.raises(RejectError) as exc:
            state.admit(spec(client="a"), *units_and_keys(2, "v"))
        assert exc.value.code == "quota_exhausted"
        assert exc.value.retry_after_s >= 1.0
        # a different client still fits
        state.admit(spec(client="b"), *units_and_keys(4, "w"))
        assert counters(registry)["serve.jobs.rejected.quota"] == 1

    def test_global_backpressure_caps_all_clients(self, registry):
        state = ServeState(client_quota=100, max_queued_units=5)
        state.admit(spec(client="a"), *units_and_keys(3))
        with pytest.raises(RejectError) as exc:
            state.admit(spec(client="b"), *units_and_keys(3, "v"))
        assert exc.value.code == "backpressure"
        assert exc.value.retry_after_s >= 1.0
        assert counters(registry)["serve.jobs.rejected.backpressure"] \
            == 1

    def test_draining_refuses_everything(self, registry):
        state = ServeState()
        state.draining = True
        with pytest.raises(RejectError) as exc:
            state.admit(spec(), *units_and_keys(1))
        assert exc.value.code == "draining"

    def test_retry_after_scales_with_backlog(self, registry):
        state = ServeState(client_quota=10_000,
                           max_queued_units=10_000)
        assert state.retry_after_s() == 1.0     # empty server floor
        for _ in range(4):
            obs.record_timer("serve.unit.wall", 2.0)
        state.admit(spec(), *units_and_keys(10))
        assert state.retry_after_s() == pytest.approx(20.0)
        state._unresolved = 10_000              # pathological backlog
        assert state.retry_after_s() == 60.0    # clamped


class TestQueue:
    def test_priority_then_submission_order(self, registry):
        state = ServeState()
        late_urgent = None
        first = state.admit(spec(priority=0), *units_and_keys(1, "a"))
        second = state.admit(spec(priority=0), *units_and_keys(1, "b"))
        late_urgent = state.admit(spec(priority=-1),
                                  *units_and_keys(1, "c"))
        order = [state.next_job() for _ in range(3)]
        assert order == [late_urgent, first, second]
        assert state.next_job() is None

    def test_peek_does_not_pop(self, registry):
        state = ServeState()
        job = state.admit(spec(), *units_and_keys(1))
        assert state.peek_job() is job
        assert state.peek_job() is job          # still there
        assert state.next_job() is job
        assert state.peek_job() is None

    def test_peek_skips_stale_entries(self, registry):
        state = ServeState()
        gone = state.admit(spec(), *units_and_keys(1, "a"))
        kept = state.admit(spec(), *units_and_keys(1, "b"))
        gone.state = "running"                  # activated elsewhere
        assert state.peek_job() is kept


class TestCoalescing:
    def test_first_attach_creates_then_others_share(self, registry):
        state = ServeState()
        a = state.admit(spec(), [FakeUnit("u")], ["key-shared"])
        b = state.admit(spec(), [FakeUnit("u")], ["key-shared"])
        c = state.admit(spec(), [FakeUnit("u")], ["key-shared"])
        entry, created = state.attach(a, 0)
        assert created
        for job in (b, c):
            other, created = state.attach(job, 0)
            assert other is entry
            assert not created
        assert len(entry.waiters) == 3
        assert b.units_coalesced == c.units_coalesced == 1
        assert a.units_coalesced == 0           # the opener pays
        assert counters(registry)["serve.coalesce.miss"] == 1
        assert counters(registry)["serve.coalesce.hit"] == 2

    def test_resolve_fans_out_one_payload_to_all(self, registry):
        state = ServeState()
        jobs = [state.admit(spec(client=f"c{i}"), [FakeUnit("u")],
                            ["key-shared"]) for i in range(3)]
        for job in jobs:
            state.attach(job, 0)
        payload = {"kernel": "qrng_K2", "metrics": {}}
        touched = state.resolve_exec("key-shared", True, payload)
        assert set(touched) == set(jobs)
        for job in jobs:
            assert job.results[0] is payload    # shared, not copied
            assert job.state == "done"
        assert state.stats()["units_unresolved"] == 0
        assert state.stats()["clients"] == {}
        assert counters(registry)["serve.units.executed"] == 1

    def test_resolve_unknown_key_is_a_noop(self, registry):
        assert ServeState().resolve_exec("ghost", True, {}) == []


class TestCompletion:
    def test_cached_units_complete_without_execution(self, registry):
        state = ServeState()
        job = state.admit(spec(), *units_and_keys(2))
        state.resolve_cached(job, 0, {"kernel": "a"})
        assert job.state == "queued"            # one unit left
        state.resolve_cached(job, 1, {"kernel": "b"})
        assert job.state == "done"
        assert job.units_cached == 2
        assert job.finished_s is not None
        assert counters(registry)["serve.units.cache_hits"] == 2
        assert counters(registry)["serve.jobs.completed"] == 1

    def test_failed_unit_fails_the_job(self, registry):
        state = ServeState()
        job = state.admit(spec(), [FakeUnit("boom")], ["key-boom"])
        state.attach(job, 0)
        state.resolve_exec("key-boom", False, "Traceback ...")
        assert job.state == "failed"
        assert "boom" in job.error
        assert "Traceback" in job.error
        assert counters(registry)["serve.units.errors"] == 1
        assert counters(registry)["serve.jobs.failed"] == 1

    def test_status_mirrors_job_fields(self, registry):
        state = ServeState()
        job = state.admit(spec(client="ci", priority=2),
                          *units_and_keys(2))
        state.resolve_cached(job, 0, {})
        status = job.status()
        assert status.job_id == job.job_id
        assert status.units_total == 2
        assert status.units_done == 1
        assert status.units_cached == 1
        assert status.priority == 2
        assert status.client == "ci"
        assert not status.terminal


class TestAdmitMany:
    def test_batch_admits_in_submission_order(self, registry):
        state = ServeState(client_quota=16, max_queued_units=32)
        jobs = state.admit_many([
            (spec(client="a"), *units_and_keys(2, "x")),
            (spec(client="b"), *units_and_keys(3, "y")),
        ])
        assert [j.seq for j in jobs] == sorted(j.seq for j in jobs)
        assert state.stats()["clients"] == {"a": 2, "b": 3}
        assert counters(registry)["serve.jobs.batches"] == 1
        assert counters(registry)["serve.jobs.submitted"] == 2

    def test_aggregate_quota_rejects_whole_batch(self, registry):
        """Each job alone fits the quota; together they do not — and
        nothing is admitted."""
        state = ServeState(client_quota=4, max_queued_units=100)
        with pytest.raises(RejectError) as exc:
            state.admit_many([
                (spec(client="a"), *units_and_keys(3, "x")),
                (spec(client="a"), *units_and_keys(3, "y")),
            ])
        assert exc.value.code == "quota_exhausted"
        assert state.stats()["jobs"] == 0
        assert state.stats()["units_unresolved"] == 0

    def test_aggregate_backpressure_rejects_whole_batch(self,
                                                        registry):
        state = ServeState(client_quota=100, max_queued_units=5)
        with pytest.raises(RejectError) as exc:
            state.admit_many([
                (spec(client="a"), *units_and_keys(3, "x")),
                (spec(client="b"), *units_and_keys(3, "y")),
            ])
        assert exc.value.code == "backpressure"
        assert state.stats()["jobs"] == 0

    def test_quota_counts_already_held_units(self, registry):
        state = ServeState(client_quota=4, max_queued_units=100)
        state.admit(spec(client="a"), *units_and_keys(3))
        with pytest.raises(RejectError):
            state.admit_many(
                [(spec(client="a"), *units_and_keys(2, "v"))])
        assert state.stats()["clients"] == {"a": 3}

    def test_empty_batch_is_bad_request(self, registry):
        with pytest.raises(RejectError) as exc:
            ServeState().admit_many([])
        assert exc.value.code == "bad_request"

    def test_draining_rejects_batches(self, registry):
        state = ServeState()
        state.draining = True
        with pytest.raises(RejectError) as exc:
            state.admit_many(
                [(spec(), *units_and_keys(1))])
        assert exc.value.code == "draining"
