"""Flow-sensitive rules L6–L8 on top of the abstract interpreter.

These rules consume :class:`repro.lint.absint.FunctionSummary` — not
the raw AST — so they reason about proven value ranges and path
feasibility instead of syntax:

* **L6** (informational) — an integer adder site whose operand ranges
  statically pin one or more slice-boundary carries; the message lists
  the proven carries.  These are exactly the sites ``st2-lint facts``
  exports for :class:`~repro.core.predictors.StaticPeekPredictor`.
* **L7** — a ``k.syncthreads`` under a ``k.where`` mask where a
  divergent mask is *actually reachable* under the abstract state.
  The flow-sensitive upgrade of the syntactic L4: where the engine
  proves every path to the barrier uniform (or the barrier
  unreachable), the L4 finding is dropped instead.
* **L8** (informational) — an adder site where *every* speculated
  boundary carry is statically pinned: ST2 speculation at this PC can
  never mispredict, so its dynamic prediction machinery is dead
  weight.

A function the engine bails on (unlowerable construct, fixpoint cap)
contributes no L6/L8 findings and keeps its syntactic L4 findings
untouched — flow analysis only ever *adds* precision.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from repro.lint.absint import (FunctionSummary, analyze_function,
                               is_kernel_fn, module_constants)
from repro.lint.facts import N_BOUNDARIES, function_facts
from repro.lint.findings import Finding


def module_summaries(tree: ast.Module,
                     path: str) -> List[FunctionSummary]:
    """Engine summaries for every kernel function in the module,
    including nested ones (matching the analyzer's ``ast.walk``)."""
    consts = module_constants(tree)
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and is_kernel_fn(node):
            out.append(analyze_function(node, consts, path))
    return out


def check_l6_l8(summaries: Iterable[FunctionSummary], path: str,
                active: Set[str]) -> List[Finding]:
    """Informational carry-fact findings (merged per PC label)."""
    findings: List[Finding] = []
    for summary in summaries:
        if summary.bailed:
            continue
        facts = function_facts(summary)
        for label, fact in sorted(facts.items()):
            pinned = ", ".join(
                f"slice {j + 1} carry={fact.carries[j]}"
                for j in sorted(fact.carries))
            if "L6" in active:
                findings.append(Finding(
                    path, fact.line, "L6",
                    f"statically proven slice carries at PC "
                    f"`{label}`: {pinned}"))
            if "L8" in active and len(fact.carries) == N_BOUNDARIES:
                findings.append(Finding(
                    path, fact.line, "L8",
                    f"range-proven dead speculation at PC `{label}`: "
                    f"all {N_BOUNDARIES} boundary carries are static "
                    f"({pinned}) — dynamic prediction can never "
                    f"mispredict here"))
    return findings


def check_l7(summaries: Iterable[FunctionSummary],
             path: str) -> Tuple[List[Finding], Set[int]]:
    """Reachable-divergence barrier findings, plus the lines of
    barriers *proven clean* (whose syntactic L4 findings the analyzer
    drops)."""
    findings: List[Finding] = []
    clean: Set[int] = set()
    for summary in summaries:
        if summary.bailed:
            continue
        for site in summary.barrier_sites:
            if site.n_conds == 0:
                continue            # no enclosing k.where: L4-free
            if site.clean:
                clean.add(site.lineno)
            elif site.reachable:
                findings.append(Finding(
                    path, site.lineno, "L7",
                    "syncthreads under a k.where mask whose "
                    "divergence is reachable under flow analysis — "
                    "hoist the barrier out of the divergent region"))
    return findings, clean


def check_flow(tree: ast.Module, path: str,
               active: Set[str]) -> Tuple[List[Finding], Set[int]]:
    """Run the requested flow rules over one parsed module.

    Returns ``(findings, l4_clean_lines)``; the second element is
    non-empty only when L7 is active.
    """
    summaries = module_summaries(tree, path)
    findings = check_l6_l8(summaries, path, active)
    clean: Set[int] = set()
    if "L7" in active:
        l7, clean = check_l7(summaries, path)
        findings.extend(l7)
    return findings, clean
