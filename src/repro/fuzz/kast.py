"""The fuzz kernel mini-AST: three-address DSL programs.

:mod:`repro.fuzz` generates kernels in a deliberately restricted shape
— every statement is either one DSL call (``dest = k.op(atom, ...)``)
or a structured block (``k.where`` / ``k.range`` / ``k.inline``) over
such statements.  Three-address form buys three properties at once:

* every DSL emit sits on its **own source line**, so the PC labels the
  runtime interns (``function:line[#tag]``) coincide exactly with the
  line numbers the abstract interpreter reports — the static-facts
  oracle compares the two without any fuzzy matching;
* delta-debugging reduces to **statement-list surgery** (drop a
  statement, unwrap a block, swap an operand atom) — no expression
  tree rebalancing;
* validity is a **scope check**: a program is renderable iff every
  referenced name was defined earlier (:func:`program_ok`).

Atoms are either names (``str``) or literal numbers.  :class:`Raw`
carries verbatim source lines for the constructs the IR lowering
*refuses* (comprehensions, ``try``, nested ``def`` using the context,
dynamic ``k.inline`` tags) — they execute fine but must make the
static analysis bail soundly, which the fuzzer checks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

#: A variable/parameter/buffer name, or a literal int/float constant.
Atom = Union[str, int, float]

#: The fixed kernel function name every generated module defines.
KERNEL_NAME = "fuzz_kernel"

#: The fixed parameter list after ``k`` (two input buffers, two output
#: buffers, and the launch-uniform scalar thread count).
PARAMS = ("ints", "flts", "iout", "fout", "n")

_INDENT = "    "


def atom_src(atom: Atom) -> str:
    """Render one atom as Python source."""
    if isinstance(atom, bool):
        raise TypeError("bool atoms are not part of the grammar")
    if isinstance(atom, str):
        return atom
    if isinstance(atom, float):
        return repr(float(atom))
    return repr(int(atom))


@dataclass(frozen=True)
class Op:
    """``dest = k.method(args...)`` — one value-producing DSL call."""

    dest: str
    method: str
    args: Tuple[Atom, ...]


@dataclass(frozen=True)
class Call:
    """``k.method(args...)`` — one effect-only DSL call
    (stores, ``syncthreads``, ``tensor_mma``)."""

    method: str
    args: Tuple[Atom, ...]


@dataclass(frozen=True)
class Alloc:
    """``dest = k.shared(size, dtype)`` — a shared-memory buffer."""

    dest: str
    size: int
    dtype: str                      # "np.int64" | "np.float32"


@dataclass(frozen=True)
class Where:
    """``with k.where(cond): body`` — masked (divergent) execution."""

    cond: Atom
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class Loop:
    """``for var in k.range(trips): body`` — a recorded counted loop."""

    var: str
    trips: int
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class Inline:
    """``with k.inline(tag): body`` — a PC-label namespace."""

    tag: str
    body: Tuple["Stmt", ...]


@dataclass(frozen=True)
class Raw:
    """Verbatim source lines (the IR-unlowerable constructs).

    ``uses`` names the variables the lines read; ``defines`` the ones
    they bind — both feed the same scope check as structured
    statements so shrinking never orphans them.
    """

    lines: Tuple[str, ...]
    uses: Tuple[str, ...] = ()
    defines: Tuple[str, ...] = ()


Stmt = Union[Op, Call, Alloc, Where, Loop, Inline, Raw]
Body = Tuple[Stmt, ...]
Path = Tuple[int, ...]


@dataclass(frozen=True)
class Program:
    """One generated kernel module (a single kernel function)."""

    body: Body
    name: str = KERNEL_NAME
    params: Tuple[str, ...] = PARAMS

    def render(self) -> str:
        """The complete module source for this program."""
        lines = ["import numpy as np", "", "",
                 f"def {self.name}(k, {', '.join(self.params)}):"]
        body_lines = render_body(self.body, 1)
        lines.extend(body_lines if body_lines else [_INDENT + "pass"])
        return "\n".join(lines) + "\n"

    def size(self) -> int:
        return count_stmts(self.body)


def render_stmt(stmt: Stmt, depth: int) -> List[str]:
    """Source lines of one statement at the given indent depth."""
    pad = _INDENT * depth
    if isinstance(stmt, Op):
        args = ", ".join(atom_src(a) for a in stmt.args)
        return [f"{pad}{stmt.dest} = k.{stmt.method}({args})"]
    if isinstance(stmt, Call):
        args = ", ".join(atom_src(a) for a in stmt.args)
        return [f"{pad}k.{stmt.method}({args})"]
    if isinstance(stmt, Alloc):
        return [f"{pad}{stmt.dest} = k.shared({stmt.size}, {stmt.dtype})"]
    if isinstance(stmt, Where):
        head = f"{pad}with k.where({atom_src(stmt.cond)}):"
        return [head] + _block_lines(stmt.body, depth + 1)
    if isinstance(stmt, Loop):
        head = f"{pad}for {stmt.var} in k.range({stmt.trips}):"
        return [head] + _block_lines(stmt.body, depth + 1)
    if isinstance(stmt, Inline):
        head = f"{pad}with k.inline({stmt.tag!r}):"
        return [head] + _block_lines(stmt.body, depth + 1)
    if isinstance(stmt, Raw):
        return [pad + line for line in stmt.lines]
    raise TypeError(f"unknown statement {stmt!r}")


def _block_lines(body: Body, depth: int) -> List[str]:
    lines = render_body(body, depth)
    return lines if lines else [_INDENT * depth + "pass"]


def render_body(body: Body, depth: int) -> List[str]:
    lines: List[str] = []
    for stmt in body:
        lines.extend(render_stmt(stmt, depth))
    return lines


# ----------------------------------------------------------------------
# structure: paths, surgery (the shrinker's toolkit)
# ----------------------------------------------------------------------

def child_body(stmt: Stmt) -> Optional[Body]:
    """The nested statement tuple of a block statement, else None."""
    if isinstance(stmt, (Where, Loop, Inline)):
        return stmt.body
    return None


def with_body(stmt: Stmt, body: Body) -> Stmt:
    """A copy of a block statement with ``body`` swapped in."""
    if not isinstance(stmt, (Where, Loop, Inline)):
        raise TypeError(f"{stmt!r} has no body")
    return dataclasses.replace(stmt, body=body)


def all_paths(body: Body, prefix: Path = ()) -> List[Path]:
    """Every statement position, in depth-first source order."""
    out: List[Path] = []
    for i, stmt in enumerate(body):
        path = prefix + (i,)
        out.append(path)
        child = child_body(stmt)
        if child is not None:
            out.extend(all_paths(child, path))
    return out


def get_at(body: Body, path: Path) -> Stmt:
    stmt = body[path[0]]
    for index in path[1:]:
        child = child_body(stmt)
        assert child is not None, (stmt, path)
        stmt = child[index]
    return stmt


def splice_at(body: Body, path: Path,
              replacement: Sequence[Stmt]) -> Body:
    """A new body with the statement at ``path`` replaced by zero or
    more statements (the one structural edit shrinking needs)."""
    i = path[0]
    if len(path) == 1:
        return body[:i] + tuple(replacement) + body[i + 1:]
    stmt = body[i]
    child = child_body(stmt)
    assert child is not None, (stmt, path)
    new_child = splice_at(child, path[1:], replacement)
    return body[:i] + (with_body(stmt, new_child),) + body[i + 1:]


def count_stmts(body: Body) -> int:
    total = 0
    for stmt in body:
        total += 1
        child = child_body(stmt)
        if child is not None:
            total += count_stmts(child)
    return total


# ----------------------------------------------------------------------
# scope check
# ----------------------------------------------------------------------

def stmt_uses(stmt: Stmt) -> Tuple[str, ...]:
    """Names the statement reads (atoms that are names)."""
    if isinstance(stmt, (Op, Call)):
        return tuple(a for a in stmt.args if isinstance(a, str))
    if isinstance(stmt, Where):
        return (stmt.cond,) if isinstance(stmt.cond, str) else ()
    if isinstance(stmt, Raw):
        return stmt.uses
    return ()


def stmt_defines(stmt: Stmt) -> Tuple[str, ...]:
    """Names the statement binds in the enclosing scope."""
    if isinstance(stmt, (Op, Alloc)):
        return (stmt.dest,)
    if isinstance(stmt, Raw):
        return stmt.defines
    return ()


def _check_body(body: Body, defined: set) -> bool:
    for stmt in body:
        # dotted atoms ("k.block_id", "k.n_threads") are attribute
        # reads — in scope whenever their root object is
        if any(name.split(".", 1)[0] not in defined
               for name in stmt_uses(stmt)):
            return False
        child = child_body(stmt)
        if child is not None:
            inner = set(defined)
            if isinstance(stmt, Loop):
                inner.add(stmt.var)
            if not _check_body(child, inner):
                return False
            # DSL blocks always execute their bodies (k.where masks,
            # it does not skip; k.range trips >= 1), so names bound
            # inside remain bound afterwards — except the loop
            # variable, which the generator keeps body-scoped.
            for sub in _bound_names(child):
                defined.add(sub)
        for name in stmt_defines(stmt):
            defined.add(name)
    return True


def _bound_names(body: Body) -> Iterable[str]:
    for stmt in body:
        yield from stmt_defines(stmt)
        child = child_body(stmt)
        if child is not None:
            yield from _bound_names(child)


def program_ok(program: Program) -> bool:
    """Every referenced name is defined before use (renderable and
    runnable as straight-line DSL code)."""
    defined = {"k", "np"}
    defined.update(program.params)
    return _check_body(program.body, defined)


__all__ = [
    "Alloc", "Atom", "Body", "Call", "Inline", "KERNEL_NAME", "Loop",
    "Op", "PARAMS", "Path", "Program", "Raw", "Stmt", "Where",
    "all_paths", "atom_src", "child_body", "count_stmts", "get_at",
    "program_ok", "render_body", "render_stmt", "splice_at",
    "stmt_defines", "stmt_uses", "with_body",
]
