"""The five-way differential oracle over one generated kernel.

Every kernel is executed once (unsanitized) to capture its trace, then
cross-examined by independent implementations of the same claims:

* **engine oracle** — :func:`repro.runner.units.evaluation_payload`
  under ``interp`` and ``vec`` must be numerically identical
  (``results_equal``: exact floats, NaN == NaN) for every speculation
  config.  Runs the production payload path, not a simplification.

* **static-facts oracle** — every ``CarryFact`` the abstract
  interpreter proves is checked against the observed dynamic carries
  of every trace row it matches: a single contradicted bit is a hard
  soundness bug.  Facts are consumed in their ``st2-lint facts
  --json`` dict form (the ``--fact-dump`` interchange format) and
  cross-checked against the in-memory objects, so the export itself is
  under test.  Bailed analyses must claim nothing, proven-clean
  barriers must never trip the sanitizer, and a fully lint-clean
  kernel must execute sanitizer-clean.

* **adder oracle** — per sampled trace row, a from-first-principles
  big-int reference of the ST2 sliced adder (true carries, cycle-1
  carry-outs, error/suspect sets) recomputes what
  :class:`~repro.core.adder.ST2Adder` and
  :func:`~repro.core.predictors.evaluate_trace` report, across
  predictor configs; the speculative result must equal the exact
  wrapped add.

* **bounds oracle** — the static speculation-outcome bounds of
  :mod:`repro.lint.bounds` must *contain* the dynamically observed
  metrics: aggregate adder-row count within the per-thread count box
  scaled by the launch, and per config class the observed
  misprediction rate, recompute-per-row, slowdown and system energy
  saving inside the report's intervals.  A bailed analysis must
  export trivial bounds only (a bail that still claims something is
  itself a soundness bug).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fuzz.gen import derive_stream
from repro.fuzz.harness import KernelBundle, execute
from repro.sim.sanitizer import BarrierDivergenceError, SanitizerError

#: oracle names, in report order
ORACLES = ("engine", "static", "adder", "sanitizer", "bounds")

#: configs the oracles default to — the design point, the plain shared
#: history, an operand predictor and VaLHALLA cover every prediction
#: mechanism class
DEFAULT_CONFIGS = "st2,prev,casa,valhalla"

#: per-kernel row cap of the big-int adder reference (per config)
ADDER_SAMPLE_ROWS = 160


@dataclass(frozen=True)
class OracleFailure:
    """One verified disagreement between two layers."""

    oracle: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"oracle": self.oracle, "message": self.message,
                "details": self.details}


@dataclass
class KernelVerdict:
    """All oracle outcomes for one kernel."""

    name: str
    checks: Dict[str, int] = field(default_factory=dict)
    skips: Dict[str, str] = field(default_factory=dict)
    failures: List[OracleFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "ok": self.ok,
                "checks": dict(self.checks), "skips": dict(self.skips),
                "failures": [f.to_dict() for f in self.failures]}


# ----------------------------------------------------------------------
# engine oracle
# ----------------------------------------------------------------------

def payload_diff(a: Any, b: Any, prefix: str = "",
                 out: Optional[List[str]] = None) -> List[str]:
    """Dotted paths at which two payload trees differ (NaN == NaN)."""
    if out is None:
        out = []
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in a or key not in b:
                out.append(path)
            else:
                payload_diff(a[key], b[key], path, out)
        return out
    if isinstance(a, float) and isinstance(b, float):
        if a == b or (np.isnan(a) and np.isnan(b)):
            return out
        out.append(prefix)
        return out
    if a != b:
        out.append(prefix)
    return out


def check_engines(run: Any, configs: Sequence[Any], models: Any,
                  facts: Dict[str, Dict[str, Any]],
                  verdict: KernelVerdict) -> None:
    """interp and vec payloads must be numerically identical."""
    from repro.runner.units import evaluation_payload
    from repro.sim import vec

    reason = vec.supported(run)
    if reason is not None:
        verdict.skips["engine"] = f"vec unsupported: {reason}"
        return
    for config in configs:
        interp = evaluation_payload(run, config, models=models,
                                    engine="interp", facts=facts)
        vec_p = evaluation_payload(run, config, models=models,
                                   engine="vec", facts=facts)
        diff = payload_diff(interp["metrics"], vec_p["metrics"])
        diff += payload_diff(interp["energy_stacks"],
                             vec_p["energy_stacks"],
                             prefix="energy_stacks")
        verdict.checks["engine"] = verdict.checks.get("engine", 0) + 1
        if diff:
            verdict.failures.append(OracleFailure(
                "engine",
                f"interp and vec payloads differ under "
                f"{config.name}: {', '.join(diff[:6])}",
                {"config": config.name, "paths": diff[:20]}))


# ----------------------------------------------------------------------
# static-facts oracle
# ----------------------------------------------------------------------

def facts_as_json(facts: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """The ``--fact-dump`` dict form, round-tripped through ``json``
    so the oracle consumes exactly what external tools would read."""
    from repro.lint.facts import facts_to_json

    payload: Dict[str, Dict[str, Any]] = json.loads(
        json.dumps(facts_to_json(facts)))
    return payload


def check_static_facts(run: Any, facts: Dict[str, Any],
                       facts_json: Dict[str, Dict[str, Any]],
                       summaries: Dict[str, Any],
                       verdict: KernelVerdict) -> None:
    """Every proven carry bit must match the observed dynamic carry of
    every trace row its label covers; bails must claim nothing."""
    from repro.core.predictors import (trace_slice_carries,
                                       trace_static_peek)

    trace = run.trace
    known, value = trace_static_peek(trace, facts_json)
    known_obj, value_obj = trace_static_peek(trace, facts)
    if not (np.array_equal(known, known_obj)
            and np.array_equal(value[known], value_obj[known_obj])):
        verdict.failures.append(OracleFailure(
            "static",
            "facts JSON export disagrees with in-memory CarryFacts",
            {"labels": sorted(facts_json)}))
    verdict.checks["static_bits"] = int(known.sum())
    truth = trace_slice_carries(trace)[:, 1:]
    bad = known & (value != truth[:, :known.shape[1]])
    if bad.any():
        rows, bounds = np.nonzero(bad)
        r, j = int(rows[0]), int(bounds[0])
        label = trace.pc_labels[int(trace.pc[r])]
        verdict.failures.append(OracleFailure(
            "static",
            f"statically proven carry contradicted at runtime: "
            f"label {label!r} boundary {j} claims "
            f"{int(value[r, j])}, trace row {r} observed "
            f"{int(truth[r, j])}",
            {"label": label, "row": r, "boundary": j,
             "claimed": int(value[r, j]),
             "observed": int(truth[r, j]),
             "contradicted_bits": int(bad.sum())}))
    for name, summary in summaries.items():
        if not summary.bailed:
            continue
        claimed = [lbl for lbl in facts_json
                   if lbl.startswith(f"{name}:")]
        if claimed:
            verdict.failures.append(OracleFailure(
                "static",
                f"analysis of {name!r} bailed ({summary.reason}) but "
                f"still exported facts — bail must mean no claims",
                {"function": name, "labels": claimed}))


# ----------------------------------------------------------------------
# sanitizer contract
# ----------------------------------------------------------------------

def _parse_finding_line(exc: SanitizerError, path: str) -> int:
    """Source line of a sanitizer finding in ``path`` (0 if foreign)."""
    text = str(exc)
    for piece in text.replace("(", " ").split():
        if piece.startswith(path + ":"):
            tail = piece[len(path) + 1:].rstrip(":,")
            try:
                return int(tail)
            except ValueError:
                return 0
    return 0


def lint_is_clean(source: str, path: str) -> bool:
    """No unsuppressed, non-informational findings over the module."""
    from repro.lint.analyzer import lint_source
    from repro.lint.findings import INFO_RULES

    findings = lint_source(source, path, hashed=False)
    return not any(f.rule not in INFO_RULES and not f.suppressed
                   for f in findings)


def check_sanitizer_contract(bundle: KernelBundle,
                             summaries: Dict[str, Any],
                             verdict: KernelVerdict) -> None:
    """Flow-proven-clean barriers must not trip the sanitizer, and a
    lint-clean kernel must run sanitizer-clean end to end."""
    clean_lines = set()
    unreachable_lines = set()
    for summary in summaries.values():
        if summary.bailed:
            continue
        for site in summary.barrier_sites:
            if not site.reachable:
                unreachable_lines.add(site.lineno)
            elif site.n_conds > 0 and not site.divergent:
                clean_lines.add(site.lineno)
    error: Optional[SanitizerError] = None
    try:
        execute(bundle, sanitize=True)
    except SanitizerError as exc:
        error = exc
    verdict.checks["sanitizer"] = 1
    if error is None:
        return
    line = _parse_finding_line(error, bundle.path)
    if isinstance(error, BarrierDivergenceError):
        if line in clean_lines:
            verdict.failures.append(OracleFailure(
                "static",
                f"sanitizer reports divergent barrier at line {line} "
                f"that the flow analysis proved uniformly masked",
                {"line": line, "error": str(error)}))
            return
        if line in unreachable_lines:
            verdict.failures.append(OracleFailure(
                "static",
                f"sanitizer reached the barrier at line {line} that "
                f"the flow analysis proved unreachable",
                {"line": line, "error": str(error)}))
            return
    if lint_is_clean(bundle.source, bundle.path):
        verdict.failures.append(OracleFailure(
            "sanitizer",
            f"lint-clean kernel fails the runtime sanitizer: "
            f"{type(error).__name__} at line {line}",
            {"line": line, "error": str(error),
             "kind": type(error).__name__}))
    else:
        # a correctly-dirty kernel legitimately trips the sanitizer;
        # record it so the run report shows coverage
        verdict.skips.setdefault(
            "sanitizer", f"{type(error).__name__} on a non-lint-clean "
                         f"kernel (consistent)")


# ----------------------------------------------------------------------
# adder oracle
# ----------------------------------------------------------------------

def reference_outcome(a: int, b: int, cin: int, width: int,
                      pred_bits: Sequence[int]) -> Dict[str, Any]:
    """Big-int, from-scratch reference of one speculative addition.

    Independent of :mod:`repro.core.bitops`: slice sums, true
    carry-ins, cycle-1 carry-outs under the *assumed* (predicted)
    carries, the error/suspect sets and the misprediction accounting
    are all rebuilt from Python integers.
    """
    bounds = [(lo, min(lo + 8, width)) for lo in range(0, width, 8)]
    n_slices = len(bounds)
    n_pred = n_slices - 1
    carries = [int(cin)]
    carry = int(cin)
    for lo, hi in bounds:
        w = hi - lo
        sa = (a >> lo) & ((1 << w) - 1)
        sb = (b >> lo) & ((1 << w) - 1)
        carry = (sa + sb + carry) >> w
        carries.append(carry)
    couts = []
    for idx, (lo, hi) in enumerate(bounds):
        w = hi - lo
        sa = (a >> lo) & ((1 << w) - 1)
        sb = (b >> lo) & ((1 << w) - 1)
        assumed = int(cin) if idx == 0 else int(pred_bits[idx - 1])
        couts.append(((sa + sb + assumed) >> w) & 1)
    errors = [0] * n_slices
    for i in range(1, n_slices):
        errors[i] = int(int(pred_bits[i - 1]) != couts[i - 1])
    suspect = []
    seen = 0
    for e in errors:
        seen |= e
        suspect.append(seen)
    wrong_bits = sum(int(int(pred_bits[j]) != carries[j + 1])
                     for j in range(n_pred))
    return {
        "result": (a + b + cin) & ((1 << width) - 1),
        "carry_ins": carries[:n_slices],
        "carry_out": carries[n_slices],
        "mispredicted": bool(any(errors)),
        "recomputed": sum(suspect),
        "wrong_bits": wrong_bits,
    }


def sample_rows(n: int, limit: int, seed: int) -> np.ndarray:
    """A deterministic row sample: a head prefix plus a seeded draw."""
    if n <= limit:
        return np.arange(n)
    head = limit // 4
    rng = random.Random(seed)  # st2-lint: disable=L5 — explicitly seeded sample
    rest = sorted(rng.sample(range(head, n), limit - head))
    return np.concatenate([np.arange(head), np.asarray(rest)])


def check_adder(run: Any, configs: Sequence[Any],
                verdict: KernelVerdict, limit: int = ADDER_SAMPLE_ROWS,
                seed: int = 0) -> None:
    """Reference-check the speculative adder row by row, per config."""
    from repro.core.adder import ST2Adder
    from repro.core.predictors import (evaluate_trace, predict_trace,
                                       trace_slice_carries)
    from repro.core.slices import geometry_for

    trace = run.trace
    n = len(trace)
    if n == 0:
        verdict.skips["adder"] = "empty adder trace"
        return
    rows = sample_rows(n, limit, seed)
    carries = trace_slice_carries(trace)
    checked = 0
    for config in configs:
        pred = predict_trace(trace, config)
        res = evaluate_trace(trace, pred)
        for r in rows.tolist():
            a = int(trace.op_a[r])
            b = int(trace.op_b[r])
            cin = int(trace.cin[r])
            width = int(trace.width[r])
            geo = geometry_for(width)
            bits = pred.bits[r, :geo.n_predictions]
            ref = reference_outcome(a, b, cin, width, bits.tolist())
            checked += 1
            problems: List[str] = []
            if not np.array_equal(
                    carries[r, :geo.n_slices],
                    np.asarray(ref["carry_ins"], dtype=np.uint8)):
                problems.append(
                    f"trace_slice_carries {carries[r, :geo.n_slices].tolist()} "
                    f"!= reference {ref['carry_ins']}")
            if geo.n_predictions:
                out = ST2Adder(geo).add(
                    np.asarray([a], dtype=np.uint64),
                    np.asarray([b], dtype=np.uint64),
                    bits.reshape(1, -1),
                    cin=np.asarray([cin], dtype=np.uint8))
                if int(out.result[0]) != ref["result"]:
                    problems.append(
                        f"ST2Adder result {int(out.result[0])} != "
                        f"exact add {ref['result']}")
                if bool(out.mispredicted[0]) != ref["mispredicted"]:
                    problems.append(
                        f"ST2Adder mispredicted "
                        f"{bool(out.mispredicted[0])} != reference "
                        f"{ref['mispredicted']}")
                if int(out.recomputed_slices[0]) != ref["recomputed"]:
                    problems.append(
                        f"ST2Adder recomputed "
                        f"{int(out.recomputed_slices[0])} != reference "
                        f"{ref['recomputed']}")
                if bool(res.mispredicted[r]) != ref["mispredicted"] \
                        or int(res.recomputed[r]) != ref["recomputed"] \
                        or int(res.wrong_bits[r]) != ref["wrong_bits"]:
                    problems.append(
                        f"evaluate_trace accounting "
                        f"(mis={bool(res.mispredicted[r])}, "
                        f"rec={int(res.recomputed[r])}, "
                        f"wrong={int(res.wrong_bits[r])}) != reference "
                        f"(mis={ref['mispredicted']}, "
                        f"rec={ref['recomputed']}, "
                        f"wrong={ref['wrong_bits']})")
            if problems:
                label = trace.pc_labels[int(trace.pc[r])]
                verdict.failures.append(OracleFailure(
                    "adder",
                    f"row {r} ({label!r}, width {width}, config "
                    f"{config.name}): " + "; ".join(problems),
                    {"row": r, "config": config.name, "width": width,
                     "a": a, "b": b, "cin": cin,
                     "pred_bits": bits.tolist(),
                     "problems": problems}))
                break       # one row per config is plenty of signal
    verdict.checks["adder_rows"] = checked


# ----------------------------------------------------------------------
# bounds oracle
# ----------------------------------------------------------------------

def check_bounds(bundle: KernelBundle, run: Any,
                 configs: Sequence[Any], models: Any,
                 verdict: KernelVerdict) -> None:
    """Every static bound must contain the observed value.

    The soundness contract of :mod:`repro.lint.bounds`: for any launch
    geometry and any input data, the aggregate adder-row count lies in
    the per-thread count box scaled by the thread count, and the
    headline ``interp`` metrics of every config lie inside that
    config's class bounds.  Trivial (bailed) reports must claim
    nothing beyond the trivial template.
    """
    from repro.lint.bounds import (bound_constants,
                                   module_bounds_from_source,
                                   trivial_report)
    from repro.runner.units import evaluation_payload

    models.ensure()
    bound_constants(models.power_model, models.adder_model)
    reports = module_bounds_from_source(bundle.source, bundle.path)
    report = reports.get(bundle.fn.__name__)
    if report is None:
        verdict.failures.append(OracleFailure(
            "bounds",
            f"no bounds report for kernel function "
            f"{bundle.fn.__name__!r} — every kernel must yield a "
            f"report (trivial at worst)",
            {"function": bundle.fn.__name__,
             "reports": sorted(reports)}))
        return
    checked = 0
    if report.trivial:
        # a bail is fine; a bail that still claims something is not
        template = trivial_report(report.function, report.path,
                                  report.lineno, report.bail_reason)
        checked += 1
        if report.classes != template.classes \
                or report.rows != template.rows or report.sites:
            verdict.failures.append(OracleFailure(
                "bounds",
                f"bailed analysis of {report.function!r} "
                f"({report.bail_reason}) exports non-trivial bounds "
                f"— bail must mean no claims",
                {"function": report.function,
                 "bail_reason": report.bail_reason}))
        verdict.checks["bounds"] = \
            verdict.checks.get("bounds", 0) + checked
        return
    threads = bundle.blocks * bundle.threads
    total = report.rows.scaled(threads)
    n_rows = len(run.trace)
    checked += 1
    if not (total.lo <= n_rows
            and (total.hi is None or n_rows <= total.hi)):
        verdict.failures.append(OracleFailure(
            "bounds",
            f"observed {n_rows} adder row(s) outside the static "
            f"count bound [{total.lo}, {total.hi}] "
            f"({threads} thread(s) x per-thread {report.rows.lo}.."
            f"{report.rows.hi})",
            {"rows": n_rows, "threads": threads,
             "lo": total.lo, "hi": total.hi}))
    for config in configs:
        cls = report.bounds_for_config(config)
        payload = evaluation_payload(run, config, models=models,
                                     engine="interp", facts=None)
        metrics = payload["metrics"]
        mis = float(metrics["misprediction_rate"])
        mrec = mis * float(metrics["recomputed_per_misprediction"])
        observed = (
            ("misprediction_rate", mis, cls.mis),
            ("recompute_per_row", mrec, cls.mrec),
            ("perf_overhead", float(metrics["slowdown"]), cls.over),
            ("energy_saved", float(metrics["system_saving"]),
             cls.saved),
        )
        for name, value, bound in observed:
            checked += 1
            if not bound.contains(value):
                verdict.failures.append(OracleFailure(
                    "bounds",
                    f"static bound violated under {config.name} "
                    f"(class {cls.key}): {name} observed "
                    f"{value:.6g}, bound [{bound.lo}, {bound.hi}]",
                    {"config": config.name, "class": cls.key,
                     "metric": name, "observed": value,
                     "lo": bound.lo, "hi": bound.hi}))
    verdict.checks["bounds"] = verdict.checks.get("bounds", 0) + checked


# ----------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------

def check_kernel(bundle: KernelBundle, configs: Sequence[Any],
                 models: Any = None,
                 oracles: Sequence[str] = ORACLES,
                 adder_limit: int = ADDER_SAMPLE_ROWS,
                 adder_seed: int = 0) -> KernelVerdict:
    """Run the requested oracles over one materialized kernel."""
    from repro.lint.absint import analyze_source
    from repro.lint.facts import module_facts_from_source
    from repro.runner.units import ModelBundle

    models = models if models is not None else ModelBundle()
    verdict = KernelVerdict(name=bundle.name)
    run = execute(bundle, sanitize=False)
    facts = module_facts_from_source(bundle.source, bundle.path)
    facts_json = facts_as_json(facts)
    summaries = analyze_source(bundle.source, bundle.path)
    if "engine" in oracles:
        check_engines(run, configs, models, facts_json, verdict)
    if "static" in oracles:
        check_static_facts(run, facts, facts_json, summaries, verdict)
    if "sanitizer" in oracles:
        check_sanitizer_contract(bundle, summaries, verdict)
    if "adder" in oracles:
        check_adder(run, configs, verdict, limit=adder_limit,
                    seed=adder_seed)
    if "bounds" in oracles:
        check_bounds(bundle, run, configs, models, verdict)
    return verdict


def verdict_for_kernel(kernel: Any, directory: str,
                       configs: Sequence[Any], models: Any = None,
                       oracles: Sequence[str] = ORACLES
                       ) -> KernelVerdict:
    """Materialize a :class:`~repro.fuzz.gen.GeneratedKernel` and run
    the oracles (the one-call form the CLI and shrinker use)."""
    from repro.fuzz.harness import bundle_for

    bundle = bundle_for(kernel, directory)
    return check_kernel(bundle, configs, models=models, oracles=oracles,
                        adder_seed=derive_stream(kernel.seed,
                                                 kernel.index, "rows"))


__all__ = [
    "ADDER_SAMPLE_ROWS", "DEFAULT_CONFIGS", "KernelVerdict",
    "ORACLES", "OracleFailure", "check_adder", "check_bounds",
    "check_engines",
    "check_kernel", "check_sanitizer_contract", "check_static_facts",
    "facts_as_json", "lint_is_clean", "payload_diff",
    "reference_outcome", "sample_rows", "verdict_for_kernel",
]
